//! # fedfl — unbiased federated learning with randomized client participation
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! architecture overview and the `examples/` directory for runnable
//! walkthroughs.

pub use fedfl_core as core;
pub use fedfl_data as data;
pub use fedfl_model as model;
pub use fedfl_num as num;
pub use fedfl_obs as obs;
pub use fedfl_service as service;
pub use fedfl_sim as sim;
pub use fedfl_workload as workload;
