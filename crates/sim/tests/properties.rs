//! Property-based tests for the simulator: participation statistics,
//! aggregation identities, and timing monotonicity on random instances.

use fedfl_model::ModelParams;
use fedfl_num::rng::seeded;
use fedfl_sim::aggregation::{full_participation_aggregate, AggregationRule};
use fedfl_sim::participation::ParticipationLevels;
use fedfl_sim::timing::SystemProfile;
use fedfl_sim::trace::{RoundRecord, TrainingTrace};
use proptest::prelude::*;

fn params_from(values: &[f64]) -> ModelParams {
    let mut p = ModelParams::zeros(values.len().max(1), 1);
    // shape: 1 class × (len+1); fill the first `len` slots.
    for (i, &v) in values.iter().enumerate() {
        p.as_mut_slice()[i] = v;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn participation_levels_validate_and_sum(
        levels in prop::collection::vec(0.01f64..1.0, 1..32),
    ) {
        let q = ParticipationLevels::new(levels.clone()).unwrap();
        prop_assert_eq!(q.len(), levels.len());
        let expected: f64 = levels.iter().sum();
        prop_assert!((q.expected_participants() - expected).abs() < 1e-12);
    }

    #[test]
    fn sampled_participants_are_sorted_and_unique(
        levels in prop::collection::vec(0.05f64..1.0, 1..24),
        seed in any::<u64>(),
    ) {
        let q = ParticipationLevels::new(levels).unwrap();
        let mut rng = seeded(seed);
        for _ in 0..8 {
            let s = q.sample_participants(&mut rng);
            prop_assert!(s.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(s.iter().all(|&n| n < q.len()));
        }
    }

    #[test]
    fn unbiased_rule_with_full_participation_is_exact(
        values in prop::collection::vec(-10.0f64..10.0, 3..10),
        weights_raw in prop::collection::vec(0.1f64..5.0, 3..10),
    ) {
        let n = values.len().min(weights_raw.len());
        let total: f64 = weights_raw[..n].iter().sum();
        let weights: Vec<f64> = weights_raw[..n].iter().map(|w| w / total).collect();
        let locals: Vec<ModelParams> = values[..n]
            .iter()
            .map(|&v| params_from(&[v, v * 0.5, -v]))
            .collect();
        let global = params_from(&[0.0, 0.0, 0.0]);
        let q = ParticipationLevels::full(n);
        let updates: Vec<(usize, ModelParams)> =
            locals.iter().cloned().enumerate().collect();
        let agg = AggregationRule::UnbiasedInverseProbability
            .aggregate(&global, &updates, &weights, &q);
        let reference = full_participation_aggregate(&locals, &weights);
        for (a, b) in agg.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_round_is_identity_for_every_rule(
        global_vals in prop::collection::vec(-5.0f64..5.0, 3..6),
        q_level in 0.1f64..0.9,
    ) {
        let global = params_from(&global_vals);
        let n = 4;
        let weights = vec![0.25; n];
        let q = ParticipationLevels::uniform(n, q_level).unwrap();
        for rule in [
            AggregationRule::UnbiasedInverseProbability,
            AggregationRule::ParticipantWeightedAverage,
            AggregationRule::NaiveInverseWeighting,
        ] {
            let agg = rule.aggregate(&global, &[], &weights, &q);
            prop_assert_eq!(agg.as_slice(), global.as_slice());
        }
    }

    #[test]
    fn round_time_is_monotone_in_participants(
        seed in any::<u64>(),
        steps in 1usize..200,
        model_size in 100usize..10_000,
    ) {
        let profile = SystemProfile::generate(seed, 8);
        let small = profile.round_time(&[0, 1], steps, model_size);
        let large = profile.round_time(&[0, 1, 2, 3, 4], steps, model_size);
        prop_assert!(large >= small);
        // And no faster than the slowest member's own time.
        for &n in &[0usize, 1] {
            prop_assert!(small >= profile.client_time(n, steps, model_size));
        }
    }

    #[test]
    fn more_local_steps_never_shorten_a_round(
        seed in any::<u64>(),
        steps in 1usize..100,
    ) {
        let profile = SystemProfile::generate(seed, 4);
        let t1 = profile.round_time(&[0, 1, 2], steps, 1_000);
        let t2 = profile.round_time(&[0, 1, 2], steps * 2, 1_000);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn trace_time_queries_are_consistent(
        losses in prop::collection::vec(0.1f64..3.0, 2..20),
    ) {
        let mut trace = TrainingTrace::new();
        for (i, &l) in losses.iter().enumerate() {
            trace.push(RoundRecord {
                round: i,
                sim_time: i as f64,
                n_participants: 1,
                global_loss: l,
                test_accuracy: 1.0 - l / 3.0,
            });
        }
        // For any target, the first-crossing time must point at a record
        // whose loss is <= target, with no earlier crossing.
        let target = losses.iter().cloned().fold(f64::INFINITY, f64::min) + 0.05;
        if let Some(t) = trace.time_to_loss(target) {
            let idx = t as usize;
            prop_assert!(losses[idx] <= target);
            for &l in &losses[..idx] {
                prop_assert!(l > target);
            }
        }
        // duration equals the last record's time.
        prop_assert_eq!(trace.duration(), (losses.len() - 1) as f64);
    }
}
