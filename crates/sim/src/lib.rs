//! # fedfl-sim — federated-learning simulator
//!
//! A synchronous FL training loop with the paper's randomized independent
//! client participation (Section III-A) and the simulated cross-device
//! testbed standing in for the 40-Raspberry-Pi prototype of Section VI:
//!
//! * [`participation`] — independent Bernoulli(q_n) participation sampling
//!   and validation of participation-level vectors.
//! * [`aggregation`] — the paper's unbiased inverse-probability aggregation
//!   (Lemma 1) plus the biased/naive baselines it is compared against.
//! * [`timing`] — heterogeneous per-client compute/communication times that
//!   produce the wall-clock axis of Figure 4 and Tables II/III.
//! * [`trace`] — round-by-round records with time-to-target queries.
//! * [`runner`] — the training loop itself, with deterministic parallel
//!   client execution.
//! * [`availability`] — intermittent client availability (the usage-pattern
//!   motivation of the paper's Section I), composing with Lemma 1 through
//!   effective participation levels.
//!
//! # Example
//!
//! ```
//! use fedfl_data::synthetic::SyntheticConfig;
//! use fedfl_model::LogisticModel;
//! use fedfl_sim::participation::ParticipationLevels;
//! use fedfl_sim::runner::{run_federated, FlRunConfig};
//! use fedfl_sim::timing::SystemProfile;
//!
//! let ds = SyntheticConfig::small().generate(1)?;
//! let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-4)?;
//! let q = ParticipationLevels::uniform(ds.n_clients(), 0.5)?;
//! let system = SystemProfile::generate(7, ds.n_clients());
//! let mut config = FlRunConfig::fast();
//! config.rounds = 5;
//! let trace = run_federated(&model, &ds, &q, &system, &config)?;
//! assert_eq!(trace.records().len(), trace.n_evaluations());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregation;
pub mod availability;
pub mod error;
pub mod participation;
pub mod runner;
pub mod timing;
pub mod trace;

pub use error::SimError;
pub use participation::ParticipationLevels;
pub use runner::{run_federated, FlRunConfig};
pub use trace::TrainingTrace;
