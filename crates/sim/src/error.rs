//! Error type for the simulator.

use fedfl_model::ModelError;
use std::fmt;

/// Error returned by simulator routines.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// A configuration field was invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A participation level was outside `[0, 1]` or otherwise unusable.
    InvalidParticipation {
        /// Index of the offending client.
        client: usize,
        /// The offending value.
        value: f64,
    },
    /// The model substrate reported an error.
    Model(ModelError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            SimError::InvalidParticipation { client, value } => {
                write!(f, "client {client} has invalid participation level {value}")
            }
            SimError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e = SimError::InvalidParticipation {
            client: 3,
            value: 1.5,
        };
        assert!(e.to_string().contains("client 3"));
        let m: SimError = ModelError::EmptyDataset.into();
        assert!(std::error::Error::source(&m).is_some());
        let c = SimError::InvalidConfig {
            field: "rounds",
            reason: "must be positive".into(),
        };
        assert!(c.to_string().contains("rounds"));
    }
}
