//! The federated training loop.
//!
//! One run of [`run_federated`] reproduces the paper's training pipeline:
//! every round, each client joins independently with probability `q_n`,
//! participants run `E` local SGD steps from the current global model, and
//! the server aggregates with the chosen [`AggregationRule`] while the
//! simulated testbed clock advances by the straggler-gated round time.
//!
//! Client training within a round is executed on a deterministic parallel
//! worker pool: each client's mini-batch randomness is derived from
//! `(seed, round, client)` alone, so the result is bit-identical regardless
//! of thread count.

use crate::aggregation::AggregationRule;
use crate::error::SimError;
use crate::participation::ParticipationLevels;
use crate::timing::SystemProfile;
use crate::trace::{RoundRecord, TrainingTrace};
use crossbeam::channel;
use fedfl_data::FederatedDataset;
use fedfl_model::metrics::{global_loss, test_accuracy};
use fedfl_model::sgd::{run_local_sgd, LocalSgdConfig, LocalUpdate};
use fedfl_model::{LogisticModel, ModelParams};
use fedfl_num::rng::{seeded, split};
use serde::{Deserialize, Serialize};

/// Configuration of one federated training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlRunConfig {
    /// Number of communication rounds `R`.
    pub rounds: usize,
    /// Client-side optimiser configuration.
    pub sgd: LocalSgdConfig,
    /// Server-side aggregation rule.
    pub aggregation: AggregationRule,
    /// Evaluate (loss + accuracy) every this many rounds.
    pub eval_every: usize,
    /// Master seed; all round/client randomness derives from it.
    pub seed: u64,
    /// Worker threads for client training (0 = one per available core).
    pub n_threads: usize,
}

impl FlRunConfig {
    /// The paper's experimental configuration: `R = 1000`, `E = 100`,
    /// batch 24, decaying learning rate, unbiased aggregation.
    pub fn paper_default() -> Self {
        Self {
            rounds: 1000,
            sgd: LocalSgdConfig::paper_default(),
            aggregation: AggregationRule::UnbiasedInverseProbability,
            eval_every: 10,
            seed: 0,
            n_threads: 0,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            rounds: 20,
            sgd: LocalSgdConfig::fast(),
            aggregation: AggregationRule::UnbiasedInverseProbability,
            eval_every: 5,
            seed: 0,
            n_threads: 0,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero rounds or evaluation
    /// period, or an invalid SGD configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.rounds == 0 {
            return Err(SimError::InvalidConfig {
                field: "rounds",
                reason: "must be positive".into(),
            });
        }
        if self.eval_every == 0 {
            return Err(SimError::InvalidConfig {
                field: "eval_every",
                reason: "must be positive".into(),
            });
        }
        self.sgd.validate()?;
        Ok(())
    }

    fn worker_count(&self) -> usize {
        if self.n_threads > 0 {
            self.n_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Train the participants of one round in parallel and return
/// `(client index, local update)` pairs in client order.
fn train_participants(
    model: &LogisticModel,
    dataset: &FederatedDataset,
    global: &ModelParams,
    participants: &[usize],
    config: &FlRunConfig,
    round: usize,
) -> Result<Vec<(usize, LocalUpdate)>, SimError> {
    let workers = config.worker_count().min(participants.len().max(1));
    // Per-client seed: independent of scheduling, so parallel == serial.
    let client_seed = |client: usize| {
        split(
            split(config.seed, 0x524E_4400 + round as u64),
            client as u64,
        )
    };

    if workers <= 1 || participants.len() <= 1 {
        let mut out = Vec::with_capacity(participants.len());
        for &n in participants {
            let mut rng = seeded(client_seed(n));
            let update = run_local_sgd(
                &mut rng,
                model,
                global,
                dataset.client(n).samples(),
                &config.sgd,
                round,
            )?;
            out.push((n, update));
        }
        return Ok(out);
    }

    // Dynamic work queue: client shards are power-law sized, so static
    // chunking would leave most workers idle behind the largest shard.
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for &n in participants {
        job_tx.send(n).expect("queue open");
    }
    drop(job_tx);

    let results: Vec<Result<(usize, LocalUpdate), SimError>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(n) = job_rx.recv() {
                    let mut rng = seeded(client_seed(n));
                    let result = run_local_sgd(
                        &mut rng,
                        model,
                        global,
                        dataset.client(n).samples(),
                        &config.sgd,
                        round,
                    )
                    .map(|u| (n, u))
                    .map_err(SimError::from);
                    local.push(result);
                }
                local
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut out = Vec::with_capacity(participants.len());
    for r in results {
        out.push(r?);
    }
    out.sort_by_key(|(n, _)| *n);
    Ok(out)
}

/// Run one federated training simulation and return its evaluation trace.
///
/// The trace contains one record per evaluation (every
/// [`FlRunConfig::eval_every`] rounds, plus the initial model at time 0).
///
/// # Errors
///
/// Returns [`SimError`] for invalid configuration, mismatched client counts,
/// or model-substrate failures (e.g. an empty client shard).
pub fn run_federated(
    model: &LogisticModel,
    dataset: &FederatedDataset,
    q: &ParticipationLevels,
    system: &SystemProfile,
    config: &FlRunConfig,
) -> Result<TrainingTrace, SimError> {
    config.validate()?;
    let n = dataset.n_clients();
    if q.len() != n {
        return Err(SimError::InvalidConfig {
            field: "q",
            reason: format!("{} levels for {n} clients", q.len()),
        });
    }
    if system.n_clients() != n {
        return Err(SimError::InvalidConfig {
            field: "system",
            reason: format!("{} device profiles for {n} clients", system.n_clients()),
        });
    }

    let weights = dataset.weights();
    let mut params = model.zero_params();
    let model_size = params.len();
    let mut sim_time = 0.0;
    let mut trace = TrainingTrace::new();
    trace.push(RoundRecord {
        round: 0,
        sim_time,
        n_participants: 0,
        global_loss: global_loss(model, &params, dataset),
        test_accuracy: test_accuracy(model, &params, dataset),
    });

    for round in 0..config.rounds {
        let mut part_rng = seeded(split(config.seed, 0x5041_5254 + round as u64));
        let participants = q.sample_participants(&mut part_rng);
        let updates = train_participants(model, dataset, &params, &participants, config, round)?;
        let update_params: Vec<(usize, ModelParams)> =
            updates.into_iter().map(|(n, u)| (n, u.params)).collect();
        params = config
            .aggregation
            .aggregate(&params, &update_params, &weights, q);
        sim_time += system.round_time(&participants, config.sgd.local_steps, model_size);

        if (round + 1) % config.eval_every == 0 || round + 1 == config.rounds {
            trace.push(RoundRecord {
                round: round + 1,
                sim_time,
                n_participants: participants.len(),
                global_loss: global_loss(model, &params, dataset),
                test_accuracy: test_accuracy(model, &params, dataset),
            });
        }
    }
    Ok(trace)
}

/// Run a federated training simulation under intermittent client
/// availability (see [`crate::availability`]): each round a client can
/// only join if its availability pattern allows it, and the unbiased
/// aggregation divides by the *effective* long-run probabilities
/// `q_eff,n = q_n · rate_n`.
///
/// For [`crate::availability::AvailabilityPattern::Random`] patterns this
/// keeps Lemma 1 exact (the product of independent Bernoullis is an
/// independent Bernoulli). For deterministic duty cycles the per-round
/// unbiasedness guarantee is structurally broken — rounds in which a client
/// is off cannot be reweighted — which this function makes observable.
///
/// # Errors
///
/// Returns [`SimError`] for mismatched client counts or simulation
/// failures.
pub fn run_federated_available(
    model: &LogisticModel,
    dataset: &FederatedDataset,
    q: &ParticipationLevels,
    availability: &crate::availability::AvailabilityModel,
    system: &SystemProfile,
    config: &FlRunConfig,
) -> Result<TrainingTrace, SimError> {
    config.validate()?;
    let n = dataset.n_clients();
    if q.len() != n || availability.len() != n || system.n_clients() != n {
        return Err(SimError::InvalidConfig {
            field: "q/availability/system",
            reason: format!(
                "{} levels, {} patterns, {} device profiles for {n} clients",
                q.len(),
                availability.len(),
                system.n_clients()
            ),
        });
    }
    let q_eff = availability.effective_levels(q)?;
    let weights = dataset.weights();
    let mut params = model.zero_params();
    let model_size = params.len();
    let mut sim_time = 0.0;
    let mut trace = TrainingTrace::new();
    trace.push(RoundRecord {
        round: 0,
        sim_time,
        n_participants: 0,
        global_loss: global_loss(model, &params, dataset),
        test_accuracy: test_accuracy(model, &params, dataset),
    });

    for round in 0..config.rounds {
        let mut avail_rng = seeded(split(config.seed, 0xAA_A11 + round as u64));
        let mask = availability.available_mask(round, &mut avail_rng);
        let mut part_rng = seeded(split(config.seed, 0x5041_5254 + round as u64));
        let participants: Vec<usize> = q
            .sample_participants(&mut part_rng)
            .into_iter()
            .filter(|&c| mask[c])
            .collect();
        let updates = train_participants(model, dataset, &params, &participants, config, round)?;
        let update_params: Vec<(usize, ModelParams)> = updates
            .into_iter()
            .map(|(idx, u)| (idx, u.params))
            .collect();
        params = config
            .aggregation
            .aggregate(&params, &update_params, &weights, &q_eff);
        sim_time += system.round_time(&participants, config.sgd.local_steps, model_size);
        if (round + 1) % config.eval_every == 0 || round + 1 == config.rounds {
            trace.push(RoundRecord {
                round: round + 1,
                sim_time,
                n_participants: participants.len(),
                global_loss: global_loss(model, &params, dataset),
                test_accuracy: test_accuracy(model, &params, dataset),
            });
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_data::synthetic::SyntheticConfig;

    fn setup() -> (FederatedDataset, LogisticModel, SystemProfile) {
        let ds = SyntheticConfig::small().generate(33).unwrap();
        let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-3).unwrap();
        let system = SystemProfile::generate(33, ds.n_clients());
        (ds, model, system)
    }

    #[test]
    fn training_reduces_loss() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.6).unwrap();
        let mut config = FlRunConfig::fast();
        config.rounds = 30;
        let trace = run_federated(&model, &ds, &q, &system, &config).unwrap();
        let first = trace.records().first().unwrap().global_loss;
        let last = trace.final_loss().unwrap();
        assert!(last < first, "loss did not drop: {first} -> {last}");
        assert!(trace.final_accuracy().unwrap() > 1.0 / ds.n_classes() as f64);
    }

    #[test]
    fn parallel_and_serial_agree_exactly() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.7).unwrap();
        let mut serial = FlRunConfig::fast();
        serial.rounds = 6;
        serial.n_threads = 1;
        let mut parallel = serial;
        parallel.n_threads = 4;
        let a = run_federated(&model, &ds, &q, &system, &serial).unwrap();
        let b = run_federated(&model, &ds, &q, &system, &parallel).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.5).unwrap();
        let config = FlRunConfig::fast();
        let a = run_federated(&model, &ds, &q, &system, &config).unwrap();
        let b = run_federated(&model, &ds, &q, &system, &config).unwrap();
        assert_eq!(a, b);
        let mut other = config;
        other.seed = 99;
        let c = run_federated(&model, &ds, &q, &system, &other).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn sim_time_advances_monotonically() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.4).unwrap();
        let trace = run_federated(&model, &ds, &q, &system, &FlRunConfig::fast()).unwrap();
        let times: Vec<f64> = trace.records().iter().map(|r| r.sim_time).collect();
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        assert!(trace.duration() > 0.0);
    }

    #[test]
    fn full_participation_beats_sparse_on_rounds() {
        let (ds, model, system) = setup();
        let mut config = FlRunConfig::fast();
        // Long enough for full participation's variance advantage to
        // dominate the 1/q step-size amplification sparse runs get early.
        config.rounds = 60;
        let full = run_federated(
            &model,
            &ds,
            &ParticipationLevels::full(ds.n_clients()),
            &system,
            &config,
        )
        .unwrap();
        let sparse = run_federated(
            &model,
            &ds,
            &ParticipationLevels::uniform(ds.n_clients(), 0.15).unwrap(),
            &system,
            &config,
        )
        .unwrap();
        assert!(
            full.final_loss().unwrap() < sparse.final_loss().unwrap(),
            "full {:?} vs sparse {:?}",
            full.final_loss(),
            sparse.final_loss()
        );
    }

    #[test]
    fn config_validation_and_shape_checks() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.5).unwrap();
        let mut bad = FlRunConfig::fast();
        bad.rounds = 0;
        assert!(run_federated(&model, &ds, &q, &system, &bad).is_err());
        let mut bad = FlRunConfig::fast();
        bad.eval_every = 0;
        assert!(run_federated(&model, &ds, &q, &system, &bad).is_err());
        let short_q = ParticipationLevels::uniform(2, 0.5).unwrap();
        assert!(run_federated(&model, &ds, &short_q, &system, &FlRunConfig::fast()).is_err());
        let wrong_system = SystemProfile::generate(1, 3);
        assert!(run_federated(&model, &ds, &q, &wrong_system, &FlRunConfig::fast()).is_err());
    }

    #[test]
    fn trace_contains_initial_record_plus_evaluations() {
        let (ds, model, system) = setup();
        let q = ParticipationLevels::uniform(ds.n_clients(), 0.5).unwrap();
        let mut config = FlRunConfig::fast();
        config.rounds = 10;
        config.eval_every = 3;
        let trace = run_federated(&model, &ds, &q, &system, &config).unwrap();
        // Initial + rounds 3, 6, 9, 10.
        assert_eq!(trace.n_evaluations(), 5);
        assert_eq!(trace.records()[0].round, 0);
        assert_eq!(trace.records().last().unwrap().round, 10);
    }
}
