//! Training traces and time-to-target queries.
//!
//! The paper's headline comparisons are *time to reach a target loss*
//! (Table II) and *time to reach a target accuracy* (Table III), read off
//! loss/accuracy-versus-time curves (Fig. 4). A [`TrainingTrace`] records
//! one run's evaluation points; [`TraceBundle`] averages several independent
//! runs the way the paper averages 20.

use serde::{Deserialize, Serialize};

/// One evaluation point of a training run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Communication round index (0-based).
    pub round: usize,
    /// Simulated wall-clock seconds since training started.
    pub sim_time: f64,
    /// Number of clients that participated in this round.
    pub n_participants: usize,
    /// Global training loss `F(w^r)` (equation (2)).
    pub global_loss: f64,
    /// Held-out test accuracy.
    pub test_accuracy: f64,
}

/// The evaluation series of a single training run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TrainingTrace {
    records: Vec<RoundRecord>,
}

impl TrainingTrace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an evaluation point.
    ///
    /// # Panics
    ///
    /// Panics if `sim_time` decreases relative to the last record.
    pub fn push(&mut self, record: RoundRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                record.sim_time >= last.sim_time,
                "simulated time must be nondecreasing"
            );
        }
        self.records.push(record);
    }

    /// Borrow all records.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// Number of evaluation points.
    pub fn n_evaluations(&self) -> usize {
        self.records.len()
    }

    /// Final global loss, if any evaluation happened.
    pub fn final_loss(&self) -> Option<f64> {
        self.records.last().map(|r| r.global_loss)
    }

    /// Final test accuracy, if any evaluation happened.
    pub fn final_accuracy(&self) -> Option<f64> {
        self.records.last().map(|r| r.test_accuracy)
    }

    /// First simulated time at which the loss reached `target` (loss is
    /// noisy, so the *first crossing* is used, matching how the paper reads
    /// its curves). `None` if never reached.
    pub fn time_to_loss(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.global_loss <= target)
            .map(|r| r.sim_time)
    }

    /// First simulated time at which accuracy reached `target`.
    pub fn time_to_accuracy(&self, target: f64) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| r.sim_time)
    }

    /// Loss at the last evaluation not later than `t` (`None` before the
    /// first evaluation).
    pub fn loss_at_time(&self, t: f64) -> Option<f64> {
        self.records
            .iter()
            .take_while(|r| r.sim_time <= t)
            .last()
            .map(|r| r.global_loss)
    }

    /// Accuracy at the last evaluation not later than `t`.
    pub fn accuracy_at_time(&self, t: f64) -> Option<f64> {
        self.records
            .iter()
            .take_while(|r| r.sim_time <= t)
            .last()
            .map(|r| r.test_accuracy)
    }

    /// `(time, loss)` series for plotting.
    pub fn loss_series(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.sim_time, r.global_loss))
            .collect()
    }

    /// `(time, accuracy)` series for plotting.
    pub fn accuracy_series(&self) -> Vec<(f64, f64)> {
        self.records
            .iter()
            .map(|r| (r.sim_time, r.test_accuracy))
            .collect()
    }

    /// Total simulated duration of the run (0 for an empty trace).
    pub fn duration(&self) -> f64 {
        self.records.last().map(|r| r.sim_time).unwrap_or(0.0)
    }
}

impl FromIterator<RoundRecord> for TrainingTrace {
    fn from_iter<T: IntoIterator<Item = RoundRecord>>(iter: T) -> Self {
        let mut trace = TrainingTrace::new();
        for r in iter {
            trace.push(r);
        }
        trace
    }
}

/// Several independent runs of the same configuration, averaged the way the
/// paper averages its 20 repetitions.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceBundle {
    traces: Vec<TrainingTrace>,
}

impl TraceBundle {
    /// Create an empty bundle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one run.
    pub fn push(&mut self, trace: TrainingTrace) {
        self.traces.push(trace);
    }

    /// Borrow the runs.
    pub fn traces(&self) -> &[TrainingTrace] {
        &self.traces
    }

    /// Number of runs.
    pub fn n_runs(&self) -> usize {
        self.traces.len()
    }

    /// Mean time-to-target-loss over runs that reached the target, together
    /// with how many did.
    pub fn mean_time_to_loss(&self, target: f64) -> (Option<f64>, usize) {
        let times: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|t| t.time_to_loss(target))
            .collect();
        let reached = times.len();
        if reached == 0 {
            (None, 0)
        } else {
            (Some(times.iter().sum::<f64>() / reached as f64), reached)
        }
    }

    /// Mean time-to-target-accuracy over runs that reached the target.
    pub fn mean_time_to_accuracy(&self, target: f64) -> (Option<f64>, usize) {
        let times: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|t| t.time_to_accuracy(target))
            .collect();
        let reached = times.len();
        if reached == 0 {
            (None, 0)
        } else {
            (Some(times.iter().sum::<f64>() / reached as f64), reached)
        }
    }

    /// Mean loss across runs at simulated time `t` (runs without an
    /// evaluation by `t` are skipped).
    pub fn mean_loss_at_time(&self, t: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|x| x.loss_at_time(t))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Mean accuracy across runs at simulated time `t`.
    pub fn mean_accuracy_at_time(&self, t: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|x| x.accuracy_at_time(t))
            .collect();
        if vals.is_empty() {
            None
        } else {
            Some(vals.iter().sum::<f64>() / vals.len() as f64)
        }
    }

    /// Standard deviation of the loss across runs at time `t` — the paper
    /// highlights that its scheme also has *smaller variance*.
    pub fn loss_std_at_time(&self, t: f64) -> Option<f64> {
        let vals: Vec<f64> = self
            .traces
            .iter()
            .filter_map(|x| x.loss_at_time(t))
            .collect();
        if vals.is_empty() {
            None
        } else {
            fedfl_num::stats::std_dev(&vals).ok()
        }
    }
}

impl FromIterator<TrainingTrace> for TraceBundle {
    fn from_iter<T: IntoIterator<Item = TrainingTrace>>(iter: T) -> Self {
        Self {
            traces: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, time: f64, loss: f64, acc: f64) -> RoundRecord {
        RoundRecord {
            round,
            sim_time: time,
            n_participants: 2,
            global_loss: loss,
            test_accuracy: acc,
        }
    }

    fn sample_trace() -> TrainingTrace {
        [
            record(0, 1.0, 2.0, 0.2),
            record(1, 2.0, 1.5, 0.4),
            record(2, 3.0, 1.0, 0.6),
            record(3, 4.0, 0.8, 0.7),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn time_to_targets() {
        let t = sample_trace();
        assert_eq!(t.time_to_loss(1.5), Some(2.0));
        assert_eq!(t.time_to_loss(0.9), Some(4.0));
        assert_eq!(t.time_to_loss(0.1), None);
        assert_eq!(t.time_to_accuracy(0.6), Some(3.0));
        assert_eq!(t.time_to_accuracy(0.99), None);
    }

    #[test]
    fn at_time_queries_use_latest_earlier_record() {
        let t = sample_trace();
        assert_eq!(t.loss_at_time(2.5), Some(1.5));
        assert_eq!(t.loss_at_time(0.5), None);
        assert_eq!(t.accuracy_at_time(10.0), Some(0.7));
    }

    #[test]
    fn final_values_and_series() {
        let t = sample_trace();
        assert_eq!(t.final_loss(), Some(0.8));
        assert_eq!(t.final_accuracy(), Some(0.7));
        assert_eq!(t.duration(), 4.0);
        assert_eq!(t.loss_series().len(), 4);
        assert_eq!(t.accuracy_series()[1], (2.0, 0.4));
        assert_eq!(TrainingTrace::new().final_loss(), None);
        assert_eq!(TrainingTrace::new().duration(), 0.0);
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn push_rejects_time_travel() {
        let mut t = sample_trace();
        t.push(record(4, 1.0, 0.5, 0.9));
    }

    #[test]
    fn bundle_averages() {
        let mut fast = TrainingTrace::new();
        fast.push(record(0, 1.0, 0.5, 0.9));
        let slow = sample_trace();
        let bundle: TraceBundle = vec![fast, slow].into_iter().collect();
        assert_eq!(bundle.n_runs(), 2);
        let (mean, reached) = bundle.mean_time_to_loss(0.9);
        assert_eq!(reached, 2);
        assert!((mean.unwrap() - (1.0 + 4.0) / 2.0).abs() < 1e-12);
        let (_, reached_acc) = bundle.mean_time_to_accuracy(0.9);
        assert_eq!(reached_acc, 1);
        assert!(bundle.mean_loss_at_time(1.0).is_some());
        assert!(bundle.loss_std_at_time(1.0).unwrap() >= 0.0);
    }

    #[test]
    fn bundle_handles_unreachable_targets() {
        let bundle: TraceBundle = vec![sample_trace()].into_iter().collect();
        assert_eq!(bundle.mean_time_to_loss(0.0), (None, 0));
        assert_eq!(bundle.mean_loss_at_time(0.1), None);
    }
}
