//! Randomized independent client participation.
//!
//! In the paper each client independently decides to join round `r` with its
//! participation level (probability) `q_n` (Section III-A). Unlike active
//! client-sampling schemes, the `q_n` are *independent*: `Σ q_n` can be
//! anywhere in `(0, N]`, and the realised participant set `S(q)_r` varies in
//! size from round to round.

use crate::error::SimError;
use fedfl_num::dist::bernoulli;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Minimum participation level accepted for a client.
///
/// Theorem 1 requires `q_n > 0` for convergence to the unbiased optimum
/// (`q_n → 0` blows up the `(1−q_n)/q_n` variance term), so levels are
/// floored here; equilibrium solvers use the same floor for their `q_min`.
pub const MIN_PARTICIPATION: f64 = 1e-4;

/// A validated vector of independent participation levels `q`.
///
/// # Example
///
/// ```
/// use fedfl_sim::participation::ParticipationLevels;
///
/// let q = ParticipationLevels::new(vec![0.2, 1.0, 0.75])?;
/// assert_eq!(q.len(), 3);
/// assert!((q.expected_participants() - 1.95).abs() < 1e-12);
/// # Ok::<(), fedfl_sim::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParticipationLevels {
    levels: Vec<f64>,
}

impl ParticipationLevels {
    /// Validate and wrap a vector of levels.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidParticipation`] if any level is not in
    /// `[MIN_PARTICIPATION, 1]` (up to a small numerical slack above 1,
    /// which is clamped), and [`SimError::InvalidConfig`] for an empty
    /// vector.
    pub fn new(levels: Vec<f64>) -> Result<Self, SimError> {
        if levels.is_empty() {
            return Err(SimError::InvalidConfig {
                field: "levels",
                reason: "need at least one client".into(),
            });
        }
        let mut clamped = levels;
        for (i, q) in clamped.iter_mut().enumerate() {
            if !q.is_finite() || *q < MIN_PARTICIPATION || *q > 1.0 + 1e-9 {
                return Err(SimError::InvalidParticipation {
                    client: i,
                    value: *q,
                });
            }
            *q = q.min(1.0);
        }
        Ok(Self { levels: clamped })
    }

    /// All clients participate with the same level.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ParticipationLevels::new`].
    pub fn uniform(n_clients: usize, level: f64) -> Result<Self, SimError> {
        Self::new(vec![level; n_clients])
    }

    /// Full participation (`q_n = 1` for all clients).
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0`.
    pub fn full(n_clients: usize) -> Self {
        Self::new(vec![1.0; n_clients]).expect("q = 1 is always valid for n >= 1")
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.levels.len()
    }

    /// Whether the vector is empty (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.levels.is_empty()
    }

    /// Borrow the levels.
    pub fn as_slice(&self) -> &[f64] {
        &self.levels
    }

    /// Level of client `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn level(&self, n: usize) -> f64 {
        self.levels[n]
    }

    /// Expected number of participants per round, `Σ q_n`.
    pub fn expected_participants(&self) -> f64 {
        self.levels.iter().sum()
    }

    /// Whether every client participates in every round.
    pub fn is_full(&self) -> bool {
        self.levels.iter().all(|&q| q >= 1.0)
    }

    /// Draw the participant set `S(q)_r`: each client joins independently
    /// with probability `q_n`. The returned indices are sorted.
    pub fn sample_participants<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<usize> {
        (0..self.levels.len())
            .filter(|&n| bernoulli(rng, self.levels[n]))
            .collect()
    }
}

impl AsRef<[f64]> for ParticipationLevels {
    fn as_ref(&self) -> &[f64] {
        &self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::rng::seeded;

    #[test]
    fn validation_bounds() {
        assert!(ParticipationLevels::new(vec![]).is_err());
        assert!(ParticipationLevels::new(vec![0.0]).is_err());
        assert!(ParticipationLevels::new(vec![-0.1]).is_err());
        assert!(ParticipationLevels::new(vec![1.2]).is_err());
        assert!(ParticipationLevels::new(vec![f64::NAN]).is_err());
        // Tiny numerical overshoot above 1 is clamped.
        let q = ParticipationLevels::new(vec![1.0 + 1e-12]).unwrap();
        assert_eq!(q.level(0), 1.0);
    }

    #[test]
    fn full_participation_always_samples_everyone() {
        let q = ParticipationLevels::full(5);
        assert!(q.is_full());
        let mut rng = seeded(1);
        for _ in 0..10 {
            assert_eq!(q.sample_participants(&mut rng), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn sampling_frequency_matches_levels() {
        let q = ParticipationLevels::new(vec![0.1, 0.9]).unwrap();
        let mut rng = seeded(2);
        let mut counts = [0usize; 2];
        let rounds = 20_000;
        for _ in 0..rounds {
            for n in q.sample_participants(&mut rng) {
                counts[n] += 1;
            }
        }
        assert!((counts[0] as f64 / rounds as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / rounds as f64 - 0.9).abs() < 0.01);
    }

    #[test]
    fn expected_participants_is_sum() {
        let q = ParticipationLevels::new(vec![0.25, 0.5, 1.0]).unwrap();
        assert!((q.expected_participants() - 1.75).abs() < 1e-12);
        assert!(!q.is_full());
    }

    #[test]
    fn uniform_constructor() {
        let q = ParticipationLevels::uniform(4, 0.3).unwrap();
        assert_eq!(q.as_slice(), &[0.3; 4]);
        assert_eq!(q.as_ref().len(), 4);
        assert!(ParticipationLevels::uniform(0, 0.3).is_err());
    }

    #[test]
    fn empty_rounds_are_possible_with_low_q() {
        let q = ParticipationLevels::uniform(3, MIN_PARTICIPATION).unwrap();
        let mut rng = seeded(3);
        let mut saw_empty = false;
        for _ in 0..50 {
            if q.sample_participants(&mut rng).is_empty() {
                saw_empty = true;
                break;
            }
        }
        assert!(saw_empty, "tiny q should often produce empty rounds");
    }
}
