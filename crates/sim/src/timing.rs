//! Simulated cross-device testbed timing.
//!
//! The paper evaluates on 40 Raspberry Pis behind an enterprise Wi-Fi
//! router (Fig. 3) and reports wall-clock time to target loss/accuracy
//! (Tables II/III, Fig. 4). This module is the DESIGN.md §3 substitution for
//! that hardware: each client has a compute speed (local SGD iterations per
//! second) and an upload rate (parameters per second) drawn from seeded
//! log-normal distributions, and a synchronous round costs
//!
//! ```text
//! T_round = max_{n ∈ S} (compute_n + upload_n) + server_overhead
//! ```
//!
//! The straggler effect of the max-over-participants is what differentiates
//! pricing schemes on the time axis: schemes that stimulate many slow,
//! low-value clients pay for it in round latency.

use fedfl_num::dist::LogNormal;
use fedfl_num::rng::substream;
use serde::{Deserialize, Serialize};

/// Heterogeneous device/network profile of the simulated testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemProfile {
    /// Local SGD iterations per second for each client.
    compute_speed: Vec<f64>,
    /// Model parameters uploaded per second for each client.
    upload_rate: Vec<f64>,
    /// Fixed server-side aggregation overhead per round (seconds).
    server_overhead: f64,
    /// Idle time charged for a round with no participants (seconds).
    idle_round_time: f64,
}

/// Configuration of the heterogeneity distributions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Median local-SGD iterations per second (Raspberry-Pi-class device on
    /// a logistic-regression workload).
    pub median_compute_speed: f64,
    /// Log-scale spread of compute speeds.
    pub compute_sigma: f64,
    /// Median parameters per second on the uplink.
    pub median_upload_rate: f64,
    /// Log-scale spread of upload rates.
    pub upload_sigma: f64,
    /// Server aggregation overhead per round (seconds).
    pub server_overhead: f64,
    /// Time charged when a round has no participants (seconds).
    pub idle_round_time: f64,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self {
            // ~200 mini-batch iterations/s for a 784×10 logistic model on a
            // Pi-class CPU; E = 100 then costs ~0.5 s of compute.
            median_compute_speed: 200.0,
            // The paper's prototype uses 40 *identical* Raspberry Pis, so
            // hardware speeds are nearly homogeneous; the economically
            // relevant heterogeneity lives in the game's cost/value
            // parameters. A small spread models thermal/background noise.
            compute_sigma: 0.08,
            // ~1.6M parameters/s ≈ 13 Mbit/s of f64 traffic on shared Wi-Fi;
            // a 7850-parameter model uploads in ~5 ms, a realistic LAN RTT.
            median_upload_rate: 1.6e6,
            upload_sigma: 0.15,
            server_overhead: 0.05,
            idle_round_time: 0.05,
        }
    }
}

impl SystemProfile {
    /// Draw a profile for `n_clients` devices from the default
    /// [`SystemConfig`].
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0`.
    pub fn generate(seed: u64, n_clients: usize) -> Self {
        Self::generate_with(seed, n_clients, &SystemConfig::default())
    }

    /// Draw a profile for `n_clients` devices from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0` or a distribution parameter is invalid.
    pub fn generate_with(seed: u64, n_clients: usize, config: &SystemConfig) -> Self {
        assert!(n_clients > 0, "need at least one client");
        let mut rng = substream(seed, 0x5157);
        let compute = LogNormal::with_median(config.median_compute_speed, config.compute_sigma)
            .expect("valid compute distribution");
        let upload = LogNormal::with_median(config.median_upload_rate, config.upload_sigma)
            .expect("valid upload distribution");
        Self {
            compute_speed: compute.sample_vec(&mut rng, n_clients),
            upload_rate: upload.sample_vec(&mut rng, n_clients),
            server_overhead: config.server_overhead,
            idle_round_time: config.idle_round_time,
        }
    }

    /// A homogeneous profile (identical devices), useful for isolating
    /// statistical effects in tests.
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0`.
    pub fn homogeneous(n_clients: usize, compute_speed: f64, upload_rate: f64) -> Self {
        assert!(n_clients > 0, "need at least one client");
        Self {
            compute_speed: vec![compute_speed; n_clients],
            upload_rate: vec![upload_rate; n_clients],
            server_overhead: 0.05,
            idle_round_time: 0.05,
        }
    }

    /// Number of clients in the profile.
    pub fn n_clients(&self) -> usize {
        self.compute_speed.len()
    }

    /// Seconds client `n` needs for `local_steps` SGD iterations plus the
    /// upload of `model_size` parameters.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn client_time(&self, n: usize, local_steps: usize, model_size: usize) -> f64 {
        local_steps as f64 / self.compute_speed[n] + model_size as f64 / self.upload_rate[n]
    }

    /// Wall-clock seconds for a synchronous round with the given participant
    /// set: the slowest participant gates the round.
    pub fn round_time(&self, participants: &[usize], local_steps: usize, model_size: usize) -> f64 {
        if participants.is_empty() {
            return self.idle_round_time;
        }
        let slowest = participants
            .iter()
            .map(|&n| self.client_time(n, local_steps, model_size))
            .fold(0.0f64, f64::max);
        slowest + self.server_overhead
    }

    /// Per-client compute speeds (iterations/second).
    pub fn compute_speeds(&self) -> &[f64] {
        &self.compute_speed
    }

    /// Per-client upload rates (parameters/second).
    pub fn upload_rates(&self) -> &[f64] {
        &self.upload_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_mildly_heterogeneous() {
        let a = SystemProfile::generate(5, 40);
        let b = SystemProfile::generate(5, 40);
        assert_eq!(a, b);
        // Identical-hardware fleet: a small but non-zero spread.
        let max = a.compute_speeds().iter().cloned().fold(f64::MIN, f64::max);
        let min = a.compute_speeds().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.02, "expected some spread");
        assert!(max / min < 3.0, "identical Pis should not differ wildly");
    }

    #[test]
    fn custom_config_allows_strong_heterogeneity() {
        let config = SystemConfig {
            compute_sigma: 0.8,
            ..Default::default()
        };
        let p = SystemProfile::generate_with(5, 40, &config);
        let max = p.compute_speeds().iter().cloned().fold(f64::MIN, f64::max);
        let min = p.compute_speeds().iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 2.0, "custom sigma should spread speeds");
    }

    #[test]
    fn round_time_is_maximum_over_participants() {
        let profile = SystemProfile::homogeneous(3, 100.0, 1e6);
        let mut slow = profile.clone();
        // Client 2 is 10x slower.
        slow = SystemProfile {
            compute_speed: vec![100.0, 100.0, 10.0],
            upload_rate: vec![1e6; 3],
            ..slow
        };
        let fast_round = slow.round_time(&[0, 1], 100, 1000);
        let slow_round = slow.round_time(&[0, 1, 2], 100, 1000);
        assert!(slow_round > fast_round * 5.0);
    }

    #[test]
    fn empty_round_costs_idle_time() {
        let profile = SystemProfile::homogeneous(2, 100.0, 1e6);
        assert_eq!(profile.round_time(&[], 100, 1000), 0.05);
    }

    #[test]
    fn client_time_decomposes() {
        let profile = SystemProfile::homogeneous(1, 50.0, 1000.0);
        // 100 steps at 50/s = 2s; 500 params at 1000/s = 0.5s.
        assert!((profile.client_time(0, 100, 500) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn more_participants_never_speed_up_a_round() {
        let profile = SystemProfile::generate(11, 10);
        let t_small = profile.round_time(&[0, 1], 50, 1000);
        let t_large = profile.round_time(&[0, 1, 2, 3, 4, 5], 50, 1000);
        assert!(t_large >= t_small);
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        SystemProfile::generate(1, 0);
    }
}
