//! Intermittent client availability.
//!
//! The paper motivates randomized participation partly by device usage
//! patterns: "clients may be only intermittently available due to their
//! usage patterns, which prevents them from participating in every training
//! round" (Section I). This module models that layer explicitly:
//! a client can only join round `r` if it is *available* in round `r`, and
//! its effective participation probability becomes
//! `q_eff = q_n · P(available)`.
//!
//! Two regimes matter for the unbiasedness guarantee of Lemma 1:
//!
//! * [`AvailabilityPattern::Random`] — availability is i.i.d. Bernoulli per
//!   round. The product `q_n · p_n` is again an independent per-round
//!   probability, so aggregating with the *effective* levels keeps Lemma 1
//!   exact ([`AvailabilityModel::effective_levels`]).
//! * [`AvailabilityPattern::DutyCycle`] — deterministic on/off phases
//!   (e.g. "charging overnight"). In an off round the client's effective
//!   probability is zero, so no reweighting can make that round unbiased;
//!   the integration tests demonstrate the resulting bias, which is exactly
//!   why the paper's mechanism keeps every `q_n > 0` *per round*.

use crate::error::SimError;
use crate::participation::{ParticipationLevels, MIN_PARTICIPATION};
use fedfl_num::dist::bernoulli;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// When a client is reachable by the server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AvailabilityPattern {
    /// Always reachable (the implicit assumption of the main experiments).
    AlwaysOn,
    /// Reachable i.i.d. with this probability each round.
    Random {
        /// Per-round availability probability in `(0, 1]`.
        probability: f64,
    },
    /// Deterministic duty cycle: available in rounds `r` with
    /// `(r + offset) % period < on_rounds`.
    DutyCycle {
        /// Cycle length in rounds.
        period: usize,
        /// Leading rounds of each cycle the client is reachable.
        on_rounds: usize,
        /// Phase shift of the cycle.
        offset: usize,
    },
}

impl AvailabilityPattern {
    /// Validate the pattern parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for probabilities outside
    /// `(0, 1]` or degenerate duty cycles.
    pub fn validate(&self) -> Result<(), SimError> {
        match *self {
            AvailabilityPattern::AlwaysOn => Ok(()),
            AvailabilityPattern::Random { probability } => {
                if !(probability.is_finite() && probability > 0.0 && probability <= 1.0) {
                    return Err(SimError::InvalidConfig {
                        field: "probability",
                        reason: format!("must lie in (0, 1], got {probability}"),
                    });
                }
                Ok(())
            }
            AvailabilityPattern::DutyCycle {
                period, on_rounds, ..
            } => {
                if period == 0 || on_rounds == 0 || on_rounds > period {
                    return Err(SimError::InvalidConfig {
                        field: "duty cycle",
                        reason: format!(
                            "need 1 <= on_rounds <= period, got on={on_rounds}, period={period}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }

    /// Whether the client is reachable in `round` (random patterns draw
    /// from `rng`).
    ///
    /// Total even for unvalidated patterns: a degenerate duty cycle with
    /// `period == 0` is never available (no modulo-by-zero panic).
    pub fn is_available<R: Rng + ?Sized>(&self, round: usize, rng: &mut R) -> bool {
        match *self {
            AvailabilityPattern::AlwaysOn => true,
            AvailabilityPattern::Random { probability } => bernoulli(rng, probability),
            AvailabilityPattern::DutyCycle {
                period,
                on_rounds,
                offset,
            } => period > 0 && (round + offset) % period < on_rounds,
        }
    }

    /// Long-run fraction of rounds the client is reachable, always in
    /// `[0, 1]`.
    ///
    /// Total even for unvalidated patterns — the pricing layer keys its
    /// never-available handling off an exact `0.0`, so the degenerate
    /// cases must not leak NaN into prices: a duty cycle with
    /// `period == 0` has rate `0.0` (not `0/0 = NaN`), `on_rounds` above
    /// `period` caps at `1.0`, and random probabilities are clamped to
    /// `[0, 1]`.
    pub fn availability_rate(&self) -> f64 {
        match *self {
            AvailabilityPattern::AlwaysOn => 1.0,
            AvailabilityPattern::Random { probability } => {
                if probability.is_nan() {
                    0.0
                } else {
                    probability.clamp(0.0, 1.0)
                }
            }
            AvailabilityPattern::DutyCycle {
                period, on_rounds, ..
            } => {
                if period == 0 {
                    0.0
                } else {
                    on_rounds.min(period) as f64 / period as f64
                }
            }
        }
    }

    /// Whether per-round availability is independent across rounds, i.e.
    /// the pattern composes with Lemma 1 via effective levels.
    pub fn preserves_unbiasedness(&self) -> bool {
        matches!(
            self,
            AvailabilityPattern::AlwaysOn | AvailabilityPattern::Random { .. }
        )
    }
}

/// A population-wide day/night availability cycle: per-round availability
/// probability rises smoothly from `trough` (deep night) to `peak` (midday)
/// and back over `period` rounds, following a raised cosine.
///
/// Each client carries a *phase* in `[0, 1)` — its timezone offset as a
/// fraction of the day — so a federation spread across phases produces the
/// staggered dawn/dusk waves the workload harness replays against the
/// pricing service. The cycle composes with Lemma 1 the same way
/// [`AvailabilityPattern::Random`] does: at any fixed round the pattern it
/// yields is an independent Bernoulli.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiurnalCycle {
    /// Rounds per simulated day.
    pub period: usize,
    /// Minimum per-round availability probability, at the phase's midnight.
    pub trough: f64,
    /// Maximum per-round availability probability, at the phase's midday.
    pub peak: f64,
}

impl DiurnalCycle {
    /// A validated cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero-length period or
    /// probabilities outside `0 < trough <= peak <= 1`.
    pub fn new(period: usize, trough: f64, peak: f64) -> Result<Self, SimError> {
        let cycle = Self {
            period,
            trough,
            peak,
        };
        cycle.validate()?;
        Ok(cycle)
    }

    /// Validate the cycle parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero-length period (which
    /// would otherwise degenerate to a rate the pricing layer cannot use)
    /// or probabilities outside `0 < trough <= peak <= 1`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.period == 0 {
            return Err(SimError::InvalidConfig {
                field: "period",
                reason: "diurnal period must cover at least one round".into(),
            });
        }
        let ok = self.trough.is_finite()
            && self.peak.is_finite()
            && self.trough > 0.0
            && self.trough <= self.peak
            && self.peak <= 1.0;
        if !ok {
            return Err(SimError::InvalidConfig {
                field: "diurnal probabilities",
                reason: format!(
                    "need 0 < trough <= peak <= 1, got trough={}, peak={}",
                    self.trough, self.peak
                ),
            });
        }
        Ok(())
    }

    /// Availability probability at `round` for a client at `phase` (its
    /// timezone offset as a fraction of the day).
    ///
    /// Total even for unvalidated cycles — never NaN: a `period == 0`
    /// cycle pins to the trough, and a non-finite phase is treated as `0`.
    /// Validated cycles always return a value in `[trough, peak]`.
    pub fn probability_at(&self, round: usize, phase: f64) -> f64 {
        let trough = if self.trough.is_nan() {
            0.0
        } else {
            self.trough.clamp(0.0, 1.0)
        };
        let peak = if self.peak.is_nan() {
            trough
        } else {
            self.peak.clamp(trough, 1.0)
        };
        if self.period == 0 {
            return trough;
        }
        let phase = if phase.is_finite() {
            phase.rem_euclid(1.0)
        } else {
            0.0
        };
        let day_fraction = ((round % self.period) as f64 / self.period as f64 + phase).fract();
        // Raised cosine: trough at day_fraction 0, peak at 0.5.
        let lift = 0.5 * (1.0 - (2.0 * std::f64::consts::PI * day_fraction).cos());
        (trough + (peak - trough) * lift).clamp(trough, peak)
    }

    /// The pattern a client at `phase` follows during `round` — an
    /// independent Bernoulli at [`DiurnalCycle::probability_at`], collapsed
    /// to [`AvailabilityPattern::AlwaysOn`] at probability `1`.
    pub fn pattern_at(&self, round: usize, phase: f64) -> AvailabilityPattern {
        let probability = self.probability_at(round, phase);
        if probability >= 1.0 {
            AvailabilityPattern::AlwaysOn
        } else {
            AvailabilityPattern::Random { probability }
        }
    }

    /// The full per-client model at `round` for clients at the given
    /// phases, in client order.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `phases` is empty or the
    /// cycle is invalid (an invalid cycle could emit out-of-range
    /// Bernoulli patterns, which [`AvailabilityModel::new`] rejects).
    pub fn model_at(&self, round: usize, phases: &[f64]) -> Result<AvailabilityModel, SimError> {
        self.validate()?;
        AvailabilityModel::new(
            phases
                .iter()
                .map(|&phase| self.pattern_at(round, phase))
                .collect(),
        )
    }
}

/// Per-client availability patterns for a federation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AvailabilityModel {
    patterns: Vec<AvailabilityPattern>,
}

impl AvailabilityModel {
    /// Wrap validated per-client patterns.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if empty or any pattern is
    /// invalid.
    pub fn new(patterns: Vec<AvailabilityPattern>) -> Result<Self, SimError> {
        if patterns.is_empty() {
            return Err(SimError::InvalidConfig {
                field: "patterns",
                reason: "need at least one client".into(),
            });
        }
        for p in &patterns {
            p.validate()?;
        }
        Ok(Self { patterns })
    }

    /// Everyone always on.
    ///
    /// # Panics
    ///
    /// Panics if `n_clients == 0`.
    pub fn always_on(n_clients: usize) -> Self {
        Self::new(vec![AvailabilityPattern::AlwaysOn; n_clients])
            .expect("always-on model is valid for n >= 1")
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the model is empty (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Borrow the patterns.
    pub fn patterns(&self) -> &[AvailabilityPattern] {
        &self.patterns
    }

    /// Whether every pattern composes with Lemma 1 (see
    /// [`AvailabilityPattern::preserves_unbiasedness`]).
    pub fn preserves_unbiasedness(&self) -> bool {
        self.patterns
            .iter()
            .all(AvailabilityPattern::preserves_unbiasedness)
    }

    /// Per-client long-run availability rates in client order — the vector
    /// the availability-aware pricing service feeds into the effective
    /// participation view (`q_eff = q · rate`).
    pub fn rates(&self) -> Vec<f64> {
        self.patterns
            .iter()
            .map(AvailabilityPattern::availability_rate)
            .collect()
    }

    /// The effective independent participation levels
    /// `q_eff,n = q_n · rate_n`, floored at the simulator minimum — these
    /// are what the unbiased aggregation must divide by when availability
    /// is random.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the level count mismatches or an effective
    /// level falls below the floor.
    pub fn effective_levels(
        &self,
        q: &ParticipationLevels,
    ) -> Result<ParticipationLevels, SimError> {
        if q.len() != self.patterns.len() {
            return Err(SimError::InvalidConfig {
                field: "q",
                reason: format!(
                    "{} levels for {} availability patterns",
                    q.len(),
                    self.patterns.len()
                ),
            });
        }
        let levels: Vec<f64> = q
            .as_slice()
            .iter()
            .zip(&self.patterns)
            .map(|(&qn, p)| (qn * p.availability_rate()).max(MIN_PARTICIPATION))
            .collect();
        ParticipationLevels::new(levels)
    }

    /// Reachability mask for one round.
    pub fn available_mask<R: Rng + ?Sized>(&self, round: usize, rng: &mut R) -> Vec<bool> {
        self.patterns
            .iter()
            .map(|p| p.is_available(round, rng))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::rng::seeded;

    #[test]
    fn validation_rules() {
        assert!(AvailabilityPattern::AlwaysOn.validate().is_ok());
        assert!(AvailabilityPattern::Random { probability: 0.5 }
            .validate()
            .is_ok());
        assert!(AvailabilityPattern::Random { probability: 0.0 }
            .validate()
            .is_err());
        assert!(AvailabilityPattern::Random { probability: 1.5 }
            .validate()
            .is_err());
        assert!(AvailabilityPattern::DutyCycle {
            period: 10,
            on_rounds: 3,
            offset: 0
        }
        .validate()
        .is_ok());
        assert!(AvailabilityPattern::DutyCycle {
            period: 0,
            on_rounds: 0,
            offset: 0
        }
        .validate()
        .is_err());
        assert!(AvailabilityPattern::DutyCycle {
            period: 5,
            on_rounds: 6,
            offset: 0
        }
        .validate()
        .is_err());
        assert!(AvailabilityModel::new(vec![]).is_err());
    }

    #[test]
    fn duty_cycle_is_deterministic_and_periodic() {
        let p = AvailabilityPattern::DutyCycle {
            period: 4,
            on_rounds: 2,
            offset: 1,
        };
        let mut rng = seeded(1);
        let mask: Vec<bool> = (0..8).map(|r| p.is_available(r, &mut rng)).collect();
        // (r+1) % 4 < 2 -> rounds 0,3,4,7 on.
        assert_eq!(
            mask,
            vec![true, false, false, true, true, false, false, true]
        );
        assert!((p.availability_rate() - 0.5).abs() < 1e-12);
        assert!(!p.preserves_unbiasedness());
    }

    #[test]
    fn random_pattern_matches_its_rate() {
        let p = AvailabilityPattern::Random { probability: 0.3 };
        let mut rng = seeded(2);
        let hits = (0..50_000).filter(|&r| p.is_available(r, &mut rng)).count();
        assert!((hits as f64 / 50_000.0 - 0.3).abs() < 0.01);
        assert!(p.preserves_unbiasedness());
    }

    #[test]
    fn effective_levels_multiply_rates() {
        let model = AvailabilityModel::new(vec![
            AvailabilityPattern::AlwaysOn,
            AvailabilityPattern::Random { probability: 0.5 },
        ])
        .unwrap();
        let q = ParticipationLevels::new(vec![0.8, 0.8]).unwrap();
        let eff = model.effective_levels(&q).unwrap();
        assert!((eff.level(0) - 0.8).abs() < 1e-12);
        assert!((eff.level(1) - 0.4).abs() < 1e-12);
        assert!(model.preserves_unbiasedness());
    }

    #[test]
    fn effective_levels_reject_mismatch() {
        let model = AvailabilityModel::always_on(3);
        let q = ParticipationLevels::new(vec![0.5, 0.5]).unwrap();
        assert!(model.effective_levels(&q).is_err());
        assert_eq!(model.len(), 3);
        assert!(!model.is_empty());
        assert_eq!(model.patterns().len(), 3);
    }

    #[test]
    fn rate_zero_edge_cases_stay_finite() {
        // Unvalidated degenerate patterns must yield an exact 0.0 rate —
        // never NaN — so the pricing layer can exclude never-available
        // clients instead of producing NaN prices.
        let degenerate = [
            AvailabilityPattern::DutyCycle {
                period: 0,
                on_rounds: 0,
                offset: 3,
            },
            AvailabilityPattern::Random { probability: 0.0 },
            AvailabilityPattern::Random { probability: -0.5 },
            AvailabilityPattern::Random {
                probability: f64::NAN,
            },
        ];
        let mut rng = seeded(9);
        for p in degenerate {
            assert_eq!(p.availability_rate(), 0.0, "{p:?}");
            // And a never-available client is indeed never available.
            assert!((0..32).all(|r| !p.is_available(r, &mut rng)), "{p:?}");
        }
        // Out-of-range-high parameters clamp to 1.0 instead of > 1 rates.
        assert_eq!(
            AvailabilityPattern::Random { probability: 1.5 }.availability_rate(),
            1.0
        );
        assert_eq!(
            AvailabilityPattern::DutyCycle {
                period: 4,
                on_rounds: 9,
                offset: 0
            }
            .availability_rate(),
            1.0
        );
    }

    #[test]
    fn rates_export_matches_patterns() {
        let model = AvailabilityModel::new(vec![
            AvailabilityPattern::AlwaysOn,
            AvailabilityPattern::Random { probability: 0.25 },
            AvailabilityPattern::DutyCycle {
                period: 8,
                on_rounds: 2,
                offset: 1,
            },
        ])
        .unwrap();
        assert_eq!(model.rates(), vec![1.0, 0.25, 0.25]);
    }

    #[test]
    fn diurnal_validation_rules() {
        assert!(DiurnalCycle::new(24, 0.2, 0.9).is_ok());
        // Zero-length period errors instead of degenerating to NaN rates.
        assert!(DiurnalCycle::new(0, 0.2, 0.9).is_err());
        // Probabilities must satisfy 0 < trough <= peak <= 1.
        assert!(DiurnalCycle::new(24, 0.0, 0.9).is_err());
        assert!(DiurnalCycle::new(24, 0.9, 0.2).is_err());
        assert!(DiurnalCycle::new(24, 0.2, 1.5).is_err());
        assert!(DiurnalCycle::new(24, f64::NAN, 0.9).is_err());
    }

    #[test]
    fn diurnal_cycle_is_periodic_and_bounded() {
        let cycle = DiurnalCycle::new(8, 0.25, 0.95).unwrap();
        for round in 0..32 {
            let p = cycle.probability_at(round, 0.0);
            assert!((0.25..=0.95).contains(&p), "round {round}: {p}");
            assert_eq!(p, cycle.probability_at(round + 8, 0.0));
        }
        // Trough at the phase's midnight, peak at its midday.
        assert!((cycle.probability_at(0, 0.0) - 0.25).abs() < 1e-12);
        assert!((cycle.probability_at(4, 0.0) - 0.95).abs() < 1e-12);
        // A half-day phase offset swaps midnight and midday.
        assert!((cycle.probability_at(0, 0.5) - 0.95).abs() < 1e-12);
        // Validated cycles yield valid patterns at every round.
        for round in 0..8 {
            assert!(cycle.pattern_at(round, 0.3).validate().is_ok());
        }
    }

    #[test]
    fn diurnal_degenerate_inputs_stay_finite() {
        // Unvalidated degenerate cycles must stay total — the workload
        // generator guards with validate(), but nothing may emit NaN.
        let zero_period = DiurnalCycle {
            period: 0,
            trough: 0.3,
            peak: 0.9,
        };
        assert_eq!(zero_period.probability_at(7, 0.25), 0.3);
        let nan_cycle = DiurnalCycle {
            period: 4,
            trough: f64::NAN,
            peak: f64::NAN,
        };
        assert_eq!(nan_cycle.probability_at(1, 0.0), 0.0);
        let cycle = DiurnalCycle::new(4, 0.5, 0.5).unwrap();
        // Non-finite phases are treated as zero, never propagated.
        assert_eq!(cycle.probability_at(2, f64::INFINITY), 0.5);
        // Constant cycles at probability 1 collapse to AlwaysOn.
        let always = DiurnalCycle::new(4, 1.0, 1.0).unwrap();
        assert_eq!(always.pattern_at(0, 0.0), AvailabilityPattern::AlwaysOn);
    }

    #[test]
    fn diurnal_model_covers_all_phases() {
        let cycle = DiurnalCycle::new(6, 0.2, 0.8).unwrap();
        let phases: Vec<f64> = (0..5).map(|k| k as f64 / 5.0).collect();
        let model = cycle.model_at(2, &phases).unwrap();
        assert_eq!(model.len(), 5);
        assert!(model.preserves_unbiasedness());
        // Invalid cycles and empty phase lists are rejected.
        assert!(cycle.model_at(2, &[]).is_err());
        let bad = DiurnalCycle {
            period: 0,
            trough: 0.2,
            peak: 0.8,
        };
        assert!(bad.model_at(2, &phases).is_err());
    }

    #[test]
    fn mask_respects_patterns() {
        let model = AvailabilityModel::new(vec![
            AvailabilityPattern::AlwaysOn,
            AvailabilityPattern::DutyCycle {
                period: 2,
                on_rounds: 1,
                offset: 0,
            },
        ])
        .unwrap();
        let mut rng = seeded(3);
        assert_eq!(model.available_mask(0, &mut rng), vec![true, true]);
        assert_eq!(model.available_mask(1, &mut rng), vec![true, false]);
        assert!(!model.preserves_unbiasedness());
    }
}
