//! Model aggregation rules.
//!
//! The centrepiece is the paper's Lemma 1: for independent participation
//! levels `q`, aggregating
//!
//! ```text
//! w^{r+1} = w^r + Σ_{n ∈ S(q)_r} (a_n / q_n) (w_n^{r+1} − w^r)
//! ```
//!
//! gives `E[w^{r+1}] = Σ_n a_n w_n^{r+1}`, the full-participation aggregate
//! — the model is *unbiased*. Two biased baselines from the paper's
//! discussion are implemented for ablation: plain weighted averaging over
//! the participants (what deterministic-subset mechanisms do) and the
//! "naive inverse" reweighting the remark after Lemma 1 shows is *not*
//! unbiased for independent participation.

use crate::participation::ParticipationLevels;
use fedfl_model::ModelParams;
use serde::{Deserialize, Serialize};

/// Which aggregation rule the server applies each round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregationRule {
    /// Lemma 1: inverse-probability reweighted *update* aggregation —
    /// unbiased for any independent `q`.
    UnbiasedInverseProbability,
    /// Plain data-weighted average over the realised participant set
    /// (biased towards frequently-participating clients).
    ParticipantWeightedAverage,
    /// The incorrect inverse weighting of whole models discussed in the
    /// remark after Lemma 1: `Σ_{i∈S} a_i/(|S| q_i) · w_i^{r+1}` — biased
    /// unless sampling is uniform.
    NaiveInverseWeighting,
}

impl AggregationRule {
    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            AggregationRule::UnbiasedInverseProbability => "unbiased (Lemma 1)",
            AggregationRule::ParticipantWeightedAverage => "participant weighted average",
            AggregationRule::NaiveInverseWeighting => "naive inverse weighting",
        }
    }

    /// Combine the participants' local results into the next global model.
    ///
    /// `updates` holds `(client index, locally-trained parameters)` for the
    /// realised participant set; `weights` are the data weights `a_n` over
    /// *all* clients; `q` are the participation levels. When no client
    /// participated the global model is returned unchanged (the round is
    /// skipped), matching the behaviour of a synchronous server that
    /// receives nothing.
    ///
    /// # Panics
    ///
    /// Panics if an update's client index is out of range or parameter
    /// shapes disagree.
    pub fn aggregate(
        &self,
        global: &ModelParams,
        updates: &[(usize, ModelParams)],
        weights: &[f64],
        q: &ParticipationLevels,
    ) -> ModelParams {
        assert_eq!(weights.len(), q.len(), "weights/levels length mismatch");
        if updates.is_empty() {
            return global.clone();
        }
        for (n, params) in updates {
            assert!(*n < weights.len(), "client index {n} out of range");
            assert!(
                params.same_shape(global),
                "client {n} returned mismatched parameter shape"
            );
        }
        match self {
            AggregationRule::UnbiasedInverseProbability => {
                let mut next = global.clone();
                for (n, params) in updates {
                    let delta = params.delta(global);
                    next.add_scaled(weights[*n] / q.level(*n), &delta);
                }
                next
            }
            AggregationRule::ParticipantWeightedAverage => {
                let total: f64 = updates.iter().map(|(n, _)| weights[*n]).sum();
                if total <= 0.0 {
                    return global.clone();
                }
                let items: Vec<(f64, &ModelParams)> = updates
                    .iter()
                    .map(|(n, p)| (weights[*n] / total, p))
                    .collect();
                ModelParams::weighted_sum(&items)
            }
            AggregationRule::NaiveInverseWeighting => {
                let k = updates.len() as f64;
                let items: Vec<(f64, &ModelParams)> = updates
                    .iter()
                    .map(|(n, p)| (weights[*n] / (k * q.level(*n)), p))
                    .collect();
                ModelParams::weighted_sum(&items)
            }
        }
    }
}

/// The full-participation aggregate `Σ_n a_n w_n^{r+1}` that Lemma 1's
/// expectation recovers — used as ground truth in unbiasedness tests and by
/// the full-participation reference runs.
///
/// # Panics
///
/// Panics if shapes or lengths disagree.
pub fn full_participation_aggregate(updates: &[ModelParams], weights: &[f64]) -> ModelParams {
    assert_eq!(updates.len(), weights.len(), "length mismatch");
    let items: Vec<(f64, &ModelParams)> = weights.iter().cloned().zip(updates.iter()).collect();
    ModelParams::weighted_sum(&items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::rng::seeded;

    /// Build a tiny scenario: scalar-ish params (dim 1, 2 classes = 4 numbers).
    fn make_params(values: &[f64]) -> ModelParams {
        let mut p = ModelParams::zeros(1, 2);
        p.as_mut_slice().copy_from_slice(values);
        p
    }

    fn scenario() -> (ModelParams, Vec<ModelParams>, Vec<f64>) {
        let global = make_params(&[1.0, 1.0, 1.0, 1.0]);
        let locals = vec![
            make_params(&[2.0, 0.0, 1.0, 1.0]),
            make_params(&[0.0, 3.0, 1.0, 1.0]),
            make_params(&[1.0, 1.0, 5.0, 1.0]),
        ];
        let weights = vec![0.5, 0.3, 0.2];
        (global, locals, weights)
    }

    #[test]
    fn full_participation_recovers_weighted_average() {
        let (_, locals, weights) = scenario();
        let agg = full_participation_aggregate(&locals, &weights);
        assert!((agg.as_slice()[0] - (0.5 * 2.0 + 0.3 * 0.0 + 0.2 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn unbiased_rule_with_q1_equals_full_participation() {
        let (global, locals, weights) = scenario();
        let q = ParticipationLevels::full(3);
        let updates: Vec<(usize, ModelParams)> = locals.iter().cloned().enumerate().collect();
        let agg =
            AggregationRule::UnbiasedInverseProbability.aggregate(&global, &updates, &weights, &q);
        let reference = full_participation_aggregate(&locals, &weights);
        for (a, b) in agg.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn unbiased_rule_is_unbiased_in_expectation() {
        // Monte-Carlo check of Lemma 1 over the participation randomness.
        let (global, locals, weights) = scenario();
        let q = ParticipationLevels::new(vec![0.3, 0.6, 0.9]).unwrap();
        let reference = full_participation_aggregate(&locals, &weights);
        let mut rng = seeded(17);
        let trials = 200_000;
        let mut mean = ModelParams::zeros(1, 2);
        for _ in 0..trials {
            let participants = q.sample_participants(&mut rng);
            let updates: Vec<(usize, ModelParams)> = participants
                .iter()
                .map(|&n| (n, locals[n].clone()))
                .collect();
            let agg = AggregationRule::UnbiasedInverseProbability
                .aggregate(&global, &updates, &weights, &q);
            mean.add_scaled(1.0 / trials as f64, &agg);
        }
        for (m, r) in mean.as_slice().iter().zip(reference.as_slice()) {
            assert!((m - r).abs() < 0.02, "mean {m} vs reference {r}");
        }
    }

    #[test]
    fn naive_inverse_is_biased_under_nonuniform_q() {
        // The remark after Lemma 1: inverse weighting of whole models is NOT
        // unbiased when the q_n differ.
        let (global, locals, weights) = scenario();
        let q = ParticipationLevels::new(vec![0.2, 0.9, 0.5]).unwrap();
        let reference = full_participation_aggregate(&locals, &weights);
        let mut rng = seeded(23);
        let trials = 100_000;
        let mut mean = ModelParams::zeros(1, 2);
        for _ in 0..trials {
            let participants = q.sample_participants(&mut rng);
            let updates: Vec<(usize, ModelParams)> = participants
                .iter()
                .map(|&n| (n, locals[n].clone()))
                .collect();
            let agg =
                AggregationRule::NaiveInverseWeighting.aggregate(&global, &updates, &weights, &q);
            mean.add_scaled(1.0 / trials as f64, &agg);
        }
        let bias: f64 = mean
            .as_slice()
            .iter()
            .zip(reference.as_slice())
            .map(|(m, r)| (m - r).abs())
            .sum();
        assert!(bias > 0.05, "naive scheme unexpectedly unbiased: {bias}");
    }

    #[test]
    fn participant_average_ignores_absent_clients() {
        let (global, locals, weights) = scenario();
        let q = ParticipationLevels::new(vec![0.5, 0.5, 0.5]).unwrap();
        let updates = vec![(0usize, locals[0].clone())];
        let agg =
            AggregationRule::ParticipantWeightedAverage.aggregate(&global, &updates, &weights, &q);
        // Sole participant: the aggregate IS its model.
        assert_eq!(agg.as_slice(), locals[0].as_slice());
    }

    #[test]
    fn empty_round_keeps_global_model() {
        let (global, _, weights) = scenario();
        let q = ParticipationLevels::new(vec![0.5, 0.5, 0.5]).unwrap();
        for rule in [
            AggregationRule::UnbiasedInverseProbability,
            AggregationRule::ParticipantWeightedAverage,
            AggregationRule::NaiveInverseWeighting,
        ] {
            let agg = rule.aggregate(&global, &[], &weights, &q);
            assert_eq!(agg.as_slice(), global.as_slice(), "{}", rule.name());
        }
    }

    #[test]
    fn rule_names_are_distinct() {
        let names = [
            AggregationRule::UnbiasedInverseProbability.name(),
            AggregationRule::ParticipantWeightedAverage.name(),
            AggregationRule::NaiveInverseWeighting.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn aggregate_rejects_bad_index() {
        let (global, locals, weights) = scenario();
        let q = ParticipationLevels::full(3);
        AggregationRule::UnbiasedInverseProbability.aggregate(
            &global,
            &[(7, locals[0].clone())],
            &weights,
            &q,
        );
    }
}
