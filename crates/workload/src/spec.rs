//! Workload specification: every knob of the closed-loop traffic model.

use crate::error::WorkloadError;
use fedfl_num::dist::BoundedPareto;
use fedfl_sim::availability::DiurnalCycle;
use serde::{Deserialize, Serialize};

/// Parameters of one closed-loop workload run.
///
/// The spec fully determines the command trace: the same spec (including
/// `seed`) generates a byte-identical trace on every run and every
/// machine, independent of `shards`/`threads`, which only affect how the
/// service executes it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Initial population size.
    pub clients: usize,
    /// Number of traffic steps after the seeding step.
    pub steps: usize,
    /// Master seed; every stochastic choice derives from it via labelled
    /// substreams.
    pub seed: u64,
    /// Store shards the service is configured with.
    pub shards: usize,
    /// Solver threads (`0` = auto).
    pub threads: usize,
    /// Diurnal availability cycle shared by all cohorts.
    pub diurnal: DiurnalCycle,
    /// Number of timezone cohorts; cohort `k` runs the cycle at phase
    /// `k / cohorts`. Cohorts are keyed on the same 32-id blocks the
    /// store routes on, so a cohort's swing dirties a coherent shard set.
    pub cohorts: usize,
    /// Steady-state client arrivals per step.
    pub arrivals_per_step: usize,
    /// Steady-state client departures per step (clamped so the population
    /// never drops below [`WorkloadSpec::min_population`]).
    pub departures_per_step: usize,
    /// A flash crowd joins every this many steps (`0` disables surges).
    pub surge_every: usize,
    /// Clients per flash crowd.
    pub surge_size: usize,
    /// Steps a flash crowd stays before leaving together.
    pub surge_hold: usize,
    /// The budget is re-drawn every this many steps (`0` disables budget
    /// churn).
    pub budget_every: usize,
    /// Base budget as a fraction of the initial population's saturation
    /// path spend, in `(0, 1]`.
    pub budget_frac: f64,
    /// Lower bound of the heavy-tail budget multiplier.
    pub budget_tail_lo: f64,
    /// Upper bound of the heavy-tail budget multiplier.
    pub budget_tail_hi: f64,
    /// Pareto shape of the budget multiplier (smaller = heavier tail).
    pub budget_tail_alpha: f64,
    /// `GetPrices` batches issued per step.
    pub reads_per_step: usize,
    /// Ids per `GetPrices` batch.
    pub read_batch: usize,
    /// A full `Snapshot` is taken every this many steps (`0` disables).
    pub snapshot_every: usize,
    /// Every this many steps the served prices are checked bit-identical
    /// against a from-scratch solve (`0` disables verification).
    pub verify_every: usize,
    /// Hard floor on the live population; departures are clamped so the
    /// store is never drained to fewer clients than this.
    pub min_population: usize,
    /// Solve through the threshold-indexed fast path
    /// ([`fedfl_service::ServiceConfig::fast_path`]). Like
    /// `shards`/`threads` this only affects how the service executes the
    /// trace, never the trace itself; `verify_every` checkpoints switch
    /// from bit-identity to the certification tolerance.
    pub fast_path: bool,
}

impl WorkloadSpec {
    /// The committed 10k-client reference trace: a few diurnal periods of
    /// mixed churn, two flash crowds, heavy-tail budget churn, and steady
    /// read traffic.
    pub fn reference_10k() -> Self {
        WorkloadSpec {
            clients: 10_000,
            steps: 36,
            seed: 2023,
            shards: 256,
            threads: 0,
            diurnal: DiurnalCycle {
                period: 12,
                trough: 0.25,
                peak: 0.95,
            },
            cohorts: 8,
            arrivals_per_step: 150,
            departures_per_step: 150,
            surge_every: 12,
            surge_size: 800,
            surge_hold: 4,
            budget_every: 6,
            budget_frac: 0.45,
            budget_tail_lo: 0.6,
            budget_tail_hi: 2.4,
            budget_tail_alpha: 1.5,
            reads_per_step: 4,
            read_batch: 64,
            snapshot_every: 6,
            verify_every: 12,
            min_population: 1_000,
            fast_path: false,
        }
    }

    /// Validate every knob; returns the first violated constraint.
    ///
    /// Degenerate traffic models that the paper-scale engine would turn
    /// into panics or NaN rates — a zero-length diurnal period, a churn
    /// floor above the initial population, a non-distribution budget
    /// tail — are rejected here, before any command is generated.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] naming the offending field.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.clients == 0 {
            return Err(invalid("clients", "must be positive"));
        }
        if self.steps == 0 {
            return Err(invalid("steps", "must be positive"));
        }
        if self.shards == 0 {
            return Err(invalid("shards", "must be positive"));
        }
        self.diurnal.validate()?;
        if self.cohorts == 0 {
            return Err(invalid("cohorts", "must be positive"));
        }
        if self.min_population == 0 {
            return Err(invalid(
                "min_population",
                "must be positive: draining the store leaves no equilibrium to serve",
            ));
        }
        if self.min_population > self.clients {
            return Err(invalid(
                "min_population",
                "must not exceed the initial population",
            ));
        }
        if !(self.budget_frac.is_finite() && self.budget_frac > 0.0 && self.budget_frac <= 1.0) {
            return Err(invalid("budget_frac", "must lie in (0, 1]"));
        }
        if self.budget_every > 0 {
            // BoundedPareto::new enforces 0 < lo < hi and alpha > 0.
            BoundedPareto::new(
                self.budget_tail_lo,
                self.budget_tail_hi,
                self.budget_tail_alpha,
            )
            .map_err(|e| invalid("budget_tail", &e.to_string()))?;
        }
        if self.surge_every > 0 && (self.surge_size == 0 || self.surge_hold == 0) {
            return Err(invalid(
                "surge_size/surge_hold",
                "must be positive when surges are enabled",
            ));
        }
        if self.reads_per_step > 0 && self.read_batch == 0 {
            return Err(invalid(
                "read_batch",
                "must be positive when reads are enabled",
            ));
        }
        if self.arrivals_per_step == 0
            && self.departures_per_step == 0
            && self.surge_every == 0
            && self.budget_every == 0
        {
            return Err(invalid(
                "arrivals_per_step",
                "the workload has no write traffic at all: enable churn, surges, or budget churn",
            ));
        }
        Ok(())
    }

    /// The heavy-tail budget multiplier distribution (validated).
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::InvalidSpec`] if the tail parameters are
    /// not a distribution.
    pub fn budget_tail(&self) -> Result<BoundedPareto, WorkloadError> {
        BoundedPareto::new(
            self.budget_tail_lo,
            self.budget_tail_hi,
            self.budget_tail_alpha,
        )
        .map_err(|e| invalid("budget_tail", &e.to_string()))
    }
}

fn invalid(field: &'static str, reason: &str) -> WorkloadError {
    WorkloadError::InvalidSpec {
        field,
        reason: reason.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_spec_is_valid() {
        WorkloadSpec::reference_10k().validate().expect("valid");
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let base = WorkloadSpec::reference_10k();

        let mut s = base.clone();
        s.diurnal.period = 0;
        assert!(matches!(
            s.validate(),
            Err(WorkloadError::InvalidSpec {
                field: "diurnal",
                ..
            })
        ));

        let mut s = base.clone();
        s.min_population = 0;
        assert!(s.validate().is_err(), "all-clients-removed floor");

        let mut s = base.clone();
        s.min_population = s.clients + 1;
        assert!(s.validate().is_err(), "floor above initial population");

        let mut s = base.clone();
        s.budget_tail_lo = 0.0;
        assert!(s.validate().is_err(), "non-distribution budget tail");

        let mut s = base.clone();
        s.budget_tail_hi = s.budget_tail_lo;
        assert!(s.validate().is_err(), "empty tail support");

        let mut s = base.clone();
        s.arrivals_per_step = 0;
        s.departures_per_step = 0;
        s.surge_every = 0;
        s.budget_every = 0;
        assert!(s.validate().is_err(), "no write traffic");

        let mut s = base.clone();
        s.diurnal.trough = 0.0;
        assert!(
            s.validate().is_err(),
            "zero trough would emit rate-0 NaN risks"
        );
    }

    #[test]
    fn disabled_features_skip_their_validation() {
        let mut s = WorkloadSpec::reference_10k();
        s.surge_every = 0;
        s.surge_size = 0;
        s.surge_hold = 0;
        s.budget_every = 0;
        s.budget_tail_lo = f64::NAN; // unused when budget churn is off
        s.validate().expect("disabled knobs are not validated");
    }
}
