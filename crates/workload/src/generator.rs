//! Deterministic closed-loop trace generation.
//!
//! The generator mirrors the service's id assignment (sequential from 0,
//! never reused) and its insertion-order store layout, so it can emit
//! `RemoveClients`/`GetPrices` ids and full `UpdateAvailability` models
//! without ever observing the service. Every stochastic choice draws from
//! a labelled substream of the master seed, so a spec maps to exactly one
//! trace — byte-identical across runs, machines, and `--shards`/thread
//! settings.

use crate::error::WorkloadError;
use crate::spec::WorkloadSpec;
use fedfl_core::population::PopulationSpec;
use fedfl_num::rng::substream;
use fedfl_service::{AvailabilityPattern, ClientId, ClientParams};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;

/// Ids are routed to shards (and availability cohorts) in blocks of this
/// many consecutive ids, matching the store's routing constant.
pub const ROUTE_BLOCK: u64 = 32;

/// Availability probabilities are quantized to this many duty-level
/// buckets before being compared and emitted, so a cohort's pattern only
/// changes when its diurnal probability crosses a bucket boundary — on a
/// 12-step day roughly half the cohorts move per step, which is what
/// keeps the dirty-shard accounting partial instead of trivially full.
pub const PROBABILITY_GRID: f64 = 8.0;

/// Which traffic regime a step belongs to (latency stats are bucketed per
/// phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Background diurnal churn.
    Steady,
    /// A flash crowd is joining or being held.
    Flash,
}

impl Phase {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Steady => "steady",
            Phase::Flash => "flash",
        }
    }
}

/// One command of the generated trace.
///
/// `UpdateBudgetFactor` carries a multiplier rather than an absolute
/// budget: the base budget is derived from the initial population's
/// saturation path at replay time, which the generator never sees.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceOp {
    /// Register a batch of arrivals (each carrying its cohort's current
    /// quantized diurnal pattern).
    AddClients(Vec<ClientParams>),
    /// Deregister clients.
    RemoveClients(Vec<ClientId>),
    /// Replace every live client's availability pattern, aligned to
    /// insertion order.
    UpdateAvailability(Vec<AvailabilityPattern>),
    /// Scale the base budget by this heavy-tail factor.
    UpdateBudgetFactor(f64),
    /// Batched price read.
    GetPrices(Vec<ClientId>),
    /// Full equilibrium snapshot.
    Snapshot,
}

/// One step of the trace: its phase tag and its ops in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStep {
    /// 1-based step number (step 0 is the seeding setup).
    pub step: usize,
    /// Traffic regime for latency bucketing.
    pub phase: Phase,
    /// Commands in execution order.
    pub ops: Vec<TraceOp>,
}

/// A complete deterministic workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Seeding ops (initial `AddClients`, initial availability model).
    pub setup: Vec<TraceOp>,
    /// The traffic steps.
    pub steps: Vec<TraceStep>,
    /// FNV-1a fingerprint of the canonical byte encoding of the whole
    /// trace — equal fingerprints mean byte-identical traces.
    pub fingerprint: u64,
}

impl Trace {
    /// Total command count (setup + steps).
    pub fn commands(&self) -> usize {
        self.setup.len() + self.steps.iter().map(|s| s.ops.len()).sum::<usize>()
    }

    /// Canonical byte encoding (the fingerprint preimage). Two traces are
    /// identical iff their encodings are equal.
    pub fn encode(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        for op in &self.setup {
            encode_op(op, &mut bytes);
        }
        for step in &self.steps {
            bytes.push(0xFE);
            bytes.extend_from_slice(&(step.step as u64).to_le_bytes());
            bytes.push(match step.phase {
                Phase::Steady => 0,
                Phase::Flash => 1,
            });
            for op in &step.ops {
                encode_op(op, &mut bytes);
            }
        }
        bytes
    }
}

/// RNG substream labels (stable across releases: changing one silently
/// changes every committed fingerprint).
const LABEL_DEPARTURES: u64 = 1;
const LABEL_BUDGET: u64 = 2;
const LABEL_READS: u64 = 3;

/// Generate the deterministic trace for `spec`.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidSpec`] if the spec fails
/// [`WorkloadSpec::validate`].
pub fn generate(spec: &WorkloadSpec) -> Result<Trace, WorkloadError> {
    spec.validate()?;
    let population_spec = PopulationSpec::table1_like();
    let mut gen = Generator {
        spec,
        population_spec,
        next_id: 0,
        next_draw: 0,
        live: Vec::new(),
        surge_ids: HashSet::new(),
        active_surges: Vec::new(),
        cohort_patterns: vec![AvailabilityPattern::AlwaysOn; spec.cohorts],
        departure_rng: substream(spec.seed, LABEL_DEPARTURES),
        budget_rng: substream(spec.seed, LABEL_BUDGET),
        read_rng: substream(spec.seed, LABEL_READS),
    };

    let setup = gen.setup()?;
    let mut steps = Vec::with_capacity(spec.steps);
    for step in 1..=spec.steps {
        steps.push(gen.step(step)?);
    }

    let mut trace = Trace {
        setup,
        steps,
        fingerprint: 0,
    };
    trace.fingerprint = fnv1a(&trace.encode());
    Ok(trace)
}

/// The cohort an id belongs to: consecutive 32-id blocks cycle through
/// the cohorts, the same blocks the store routes to shards, so one
/// cohort's diurnal swing touches a coherent set of shard columns.
pub fn cohort_of(id: u64, cohorts: usize) -> usize {
    ((id / ROUTE_BLOCK) % cohorts as u64) as usize
}

struct Generator<'a> {
    spec: &'a WorkloadSpec,
    population_spec: PopulationSpec,
    /// Mirrors the service's id counter.
    next_id: u64,
    /// Index into the arrival parameter stream (decoupled from ids so the
    /// stream is stable even if id policy ever changes).
    next_draw: usize,
    /// Live ids in the service's insertion order.
    live: Vec<ClientId>,
    /// Ids currently held by an active flash crowd (excluded from steady
    /// departures so a surge leaves as the cohesive block it joined as).
    surge_ids: HashSet<ClientId>,
    /// `(departure_step, ids)` of active flash crowds.
    active_surges: Vec<(usize, Vec<ClientId>)>,
    cohort_patterns: Vec<AvailabilityPattern>,
    departure_rng: StdRng,
    budget_rng: StdRng,
    read_rng: StdRng,
}

impl Generator<'_> {
    fn setup(&mut self) -> Result<Vec<TraceOp>, WorkloadError> {
        self.refresh_cohort_patterns(0);
        let batch = self.draw_arrivals(self.spec.clients);
        // Arrivals already carry the round-0 patterns, so no separate
        // UpdateAvailability is needed to seed the model.
        Ok(vec![TraceOp::AddClients(batch)])
    }

    fn step(&mut self, step: usize) -> Result<TraceStep, WorkloadError> {
        let spec = self.spec;
        let mut ops = Vec::new();

        // 1. Diurnal rotation: re-emit the full model only when at least
        //    one cohort's quantized probability actually moved.
        if self.refresh_cohort_patterns(step) && !self.live.is_empty() {
            let model: Vec<AvailabilityPattern> = self
                .live
                .iter()
                .map(|id| self.cohort_patterns[cohort_of(id.0, spec.cohorts)])
                .collect();
            ops.push(TraceOp::UpdateAvailability(model));
        }

        // 2. Departures: an expiring flash crowd leaves together; steady
        //    departures are sampled from the non-surge pool, clamped so
        //    the population never drops below the floor.
        let mut departures: Vec<ClientId> = Vec::new();
        let mut expired = Vec::new();
        self.active_surges.retain(|(leave_step, ids)| {
            if *leave_step == step {
                expired.push(ids.clone());
                false
            } else {
                true
            }
        });
        for ids in expired {
            for id in &ids {
                self.surge_ids.remove(id);
            }
            departures.extend(ids);
        }
        let headroom = (self.live.len() - departures.len()).saturating_sub(spec.min_population);
        let steady_departures = spec.departures_per_step.min(headroom);
        if steady_departures > 0 {
            let leaving: HashSet<ClientId> = departures.iter().copied().collect();
            let mut pool: Vec<ClientId> = self
                .live
                .iter()
                .filter(|id| !self.surge_ids.contains(id) && !leaving.contains(id))
                .copied()
                .collect();
            let k = steady_departures.min(pool.len());
            // Partial Fisher–Yates: the first k slots become the sample.
            for i in 0..k {
                let j = self.departure_rng.random_range(i..pool.len());
                pool.swap(i, j);
            }
            departures.extend(pool[..k].iter().copied());
        }
        if !departures.is_empty() {
            let leaving: HashSet<ClientId> = departures.iter().copied().collect();
            self.live.retain(|id| !leaving.contains(id));
            ops.push(TraceOp::RemoveClients(departures));
        }

        // 3. Steady arrivals.
        if spec.arrivals_per_step > 0 {
            ops.push(TraceOp::AddClients(
                self.draw_arrivals(spec.arrivals_per_step),
            ));
        }

        // 4. Flash crowd: a block of surge_size clients joins together and
        //    is scheduled to leave together surge_hold steps later.
        let mut phase = Phase::Steady;
        if spec.surge_every > 0 && step.is_multiple_of(spec.surge_every) {
            phase = Phase::Flash;
            let first_id = self.next_id;
            let batch = self.draw_arrivals(spec.surge_size);
            let ids: Vec<ClientId> = (first_id..self.next_id).map(ClientId).collect();
            for id in &ids {
                self.surge_ids.insert(*id);
            }
            self.active_surges.push((step + spec.surge_hold, ids));
            ops.push(TraceOp::AddClients(batch));
        } else if !self.surge_ids.is_empty() {
            // A crowd is being held: its read/solve traffic is still
            // flash-phase load.
            phase = Phase::Flash;
        }

        // 5. Heavy-tail budget churn.
        if spec.budget_every > 0 && step.is_multiple_of(spec.budget_every) {
            let tail = spec.budget_tail()?;
            ops.push(TraceOp::UpdateBudgetFactor(
                tail.sample(&mut self.budget_rng),
            ));
        }

        // 6. Reads: the first GetPrices after the writes absorbs the
        //    re-solve; the rest measure pure read latency.
        for _ in 0..spec.reads_per_step {
            let batch: Vec<ClientId> = (0..spec.read_batch)
                .map(|_| self.live[self.read_rng.random_range(0..self.live.len())])
                .collect();
            ops.push(TraceOp::GetPrices(batch));
        }
        if spec.snapshot_every > 0 && step.is_multiple_of(spec.snapshot_every) {
            ops.push(TraceOp::Snapshot);
        }

        Ok(TraceStep { step, phase, ops })
    }

    /// Recompute the quantized per-cohort patterns for `round`; returns
    /// whether any cohort changed.
    fn refresh_cohort_patterns(&mut self, round: usize) -> bool {
        let mut changed = false;
        for (k, slot) in self.cohort_patterns.iter_mut().enumerate() {
            let phase = k as f64 / self.spec.cohorts as f64;
            let p = self.spec.diurnal.probability_at(round, phase);
            let q = (p * PROBABILITY_GRID).round() / PROBABILITY_GRID;
            let pattern = if q >= 1.0 {
                AvailabilityPattern::AlwaysOn
            } else {
                AvailabilityPattern::Random {
                    // The quantized grid can round a valid probability to
                    // 0.0, which the model validator rejects; pin it to
                    // the smallest grid step instead.
                    probability: q.max(1.0 / PROBABILITY_GRID),
                }
            };
            if *slot != pattern {
                *slot = pattern;
                changed = true;
            }
        }
        changed
    }

    /// Draw `k` arrivals from the Table-I-like spec, assign them the next
    /// `k` ids (mirroring the service), and stamp each with its cohort's
    /// current pattern.
    fn draw_arrivals(&mut self, k: usize) -> Vec<ClientParams> {
        let mut batch = Vec::with_capacity(k);
        for _ in 0..k {
            let profile = self
                .population_spec
                .draw_client(self.spec.seed, self.next_draw)
                .expect("spec validated at generate()");
            self.next_draw += 1;
            let id = self.next_id;
            self.next_id += 1;
            self.live.push(ClientId(id));
            batch.push(ClientParams {
                data_size: profile.weight, // raw, pre-normalisation draw
                g_squared: profile.g_squared,
                cost: profile.cost,
                value: profile.value,
                q_max: profile.q_max,
                availability: self.cohort_patterns[cohort_of(id, self.spec.cohorts)],
            });
        }
        batch
    }
}

fn encode_op(op: &TraceOp, bytes: &mut Vec<u8>) {
    match op {
        TraceOp::AddClients(batch) => {
            bytes.push(1);
            bytes.extend_from_slice(&(batch.len() as u64).to_le_bytes());
            for p in batch {
                for x in [p.data_size, p.g_squared, p.cost, p.value, p.q_max] {
                    bytes.extend_from_slice(&x.to_bits().to_le_bytes());
                }
                encode_pattern(&p.availability, bytes);
            }
        }
        TraceOp::RemoveClients(ids) => {
            bytes.push(2);
            bytes.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for id in ids {
                bytes.extend_from_slice(&id.0.to_le_bytes());
            }
        }
        TraceOp::UpdateAvailability(patterns) => {
            bytes.push(3);
            bytes.extend_from_slice(&(patterns.len() as u64).to_le_bytes());
            for p in patterns {
                encode_pattern(p, bytes);
            }
        }
        TraceOp::UpdateBudgetFactor(factor) => {
            bytes.push(4);
            bytes.extend_from_slice(&factor.to_bits().to_le_bytes());
        }
        TraceOp::GetPrices(ids) => {
            bytes.push(5);
            bytes.extend_from_slice(&(ids.len() as u64).to_le_bytes());
            for id in ids {
                bytes.extend_from_slice(&id.0.to_le_bytes());
            }
        }
        TraceOp::Snapshot => bytes.push(6),
    }
}

fn encode_pattern(pattern: &AvailabilityPattern, bytes: &mut Vec<u8>) {
    match *pattern {
        AvailabilityPattern::AlwaysOn => bytes.push(0),
        AvailabilityPattern::Random { probability } => {
            bytes.push(1);
            bytes.extend_from_slice(&probability.to_bits().to_le_bytes());
        }
        AvailabilityPattern::DutyCycle {
            period,
            on_rounds,
            offset,
        } => {
            bytes.push(2);
            for x in [period, on_rounds, offset] {
                bytes.extend_from_slice(&(x as u64).to_le_bytes());
            }
        }
    }
}

/// FNV-1a over `bytes` — a stable, dependency-free structural hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::reference_10k();
        spec.clients = 64;
        spec.steps = 8;
        spec.cohorts = 4;
        spec.arrivals_per_step = 6;
        spec.departures_per_step = 6;
        spec.surge_every = 4;
        spec.surge_size = 16;
        spec.surge_hold = 2;
        spec.reads_per_step = 2;
        spec.read_batch = 8;
        spec.min_population = 16;
        spec
    }

    #[test]
    fn same_spec_yields_identical_trace() {
        let spec = tiny_spec();
        let a = generate(&spec).expect("generate");
        let b = generate(&spec).expect("generate");
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_yield_different_traces() {
        let spec = tiny_spec();
        let mut other = spec.clone();
        other.seed += 1;
        assert_ne!(
            generate(&spec).unwrap().fingerprint,
            generate(&other).unwrap().fingerprint
        );
    }

    #[test]
    fn departures_respect_the_population_floor() {
        let mut spec = tiny_spec();
        spec.clients = 20;
        spec.min_population = 18;
        spec.arrivals_per_step = 0;
        spec.departures_per_step = 50;
        spec.surge_every = 0;
        spec.surge_size = 0;
        spec.surge_hold = 0;
        let trace = generate(&spec).expect("generate");
        let mut live = spec.clients as i64;
        for step in &trace.steps {
            for op in &step.ops {
                match op {
                    TraceOp::AddClients(batch) => live += batch.len() as i64,
                    TraceOp::RemoveClients(ids) => live -= ids.len() as i64,
                    _ => {}
                }
            }
            assert!(live >= spec.min_population as i64, "step {}", step.step);
        }
    }

    #[test]
    fn flash_crowds_join_and_leave_together() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        // Every surge step is tagged Flash and adds a surge_size batch.
        let surge_steps: Vec<&TraceStep> = trace
            .steps
            .iter()
            .filter(|s| s.step.is_multiple_of(spec.surge_every))
            .collect();
        assert!(!surge_steps.is_empty());
        for s in surge_steps {
            assert_eq!(s.phase, Phase::Flash);
            assert!(s
                .ops
                .iter()
                .any(|op| matches!(op, TraceOp::AddClients(b) if b.len() == spec.surge_size)));
            // surge_hold steps later the same number of clients leaves.
            if let Some(leave) = trace
                .steps
                .iter()
                .find(|t| t.step == s.step + spec.surge_hold)
            {
                let removed: usize = leave
                    .ops
                    .iter()
                    .filter_map(|op| match op {
                        TraceOp::RemoveClients(ids) => Some(ids.len()),
                        _ => None,
                    })
                    .sum();
                assert!(removed >= spec.surge_size, "step {}", leave.step);
            }
        }
    }

    #[test]
    fn availability_updates_match_live_population_size() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let mut live: Vec<ClientId> = Vec::new();
        let mut next_id = 0u64;
        let mut apply = |op: &TraceOp, live: &mut Vec<ClientId>| match op {
            TraceOp::AddClients(batch) => {
                for _ in batch {
                    live.push(ClientId(next_id));
                    next_id += 1;
                }
            }
            TraceOp::RemoveClients(ids) => {
                let gone: HashSet<ClientId> = ids.iter().copied().collect();
                live.retain(|id| !gone.contains(id));
            }
            TraceOp::UpdateAvailability(patterns) => {
                assert_eq!(patterns.len(), live.len());
            }
            _ => {}
        };
        for op in &trace.setup {
            apply(op, &mut live);
        }
        for step in &trace.steps {
            for op in &step.ops {
                apply(op, &mut live);
            }
        }
    }

    #[test]
    fn reads_only_name_live_clients() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let mut live: HashSet<ClientId> = HashSet::new();
        let mut next_id = 0u64;
        let mut check = |op: &TraceOp, live: &mut HashSet<ClientId>| match op {
            TraceOp::AddClients(batch) => {
                for _ in batch {
                    live.insert(ClientId(next_id));
                    next_id += 1;
                }
            }
            TraceOp::RemoveClients(ids) => {
                for id in ids {
                    assert!(live.remove(id), "removed unknown id {id:?}");
                }
            }
            TraceOp::GetPrices(ids) => {
                for id in ids {
                    assert!(live.contains(id), "read of dead id {id:?}");
                }
            }
            _ => {}
        };
        for op in &trace.setup {
            check(op, &mut live);
        }
        for step in &trace.steps {
            for op in &step.ops {
                check(op, &mut live);
            }
        }
    }
}
