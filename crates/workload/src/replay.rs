//! Replay a generated trace through a live [`PricingService`] — in
//! process or across a transport — timing every read and re-solve and
//! (optionally) certifying served prices bit-identical to from-scratch
//! solves.
//!
//! The replay loop is written against the [`CommandDriver`] trait, so
//! the same trace drives the in-process service and a remote front-end
//! speaking the identical command stream. Whether a timed read absorbs a
//! re-solve is predicted client-side from the mirrored population — the
//! prediction replicates the service's own dirty-tracking rules exactly,
//! so the solve/read classification (and with it the warm/cold counts of
//! [`crate::report::WorkloadRecord::deterministic_key`]) is
//! transport-independent by construction.

use crate::error::WorkloadError;
use crate::generator::{fnv1a, Phase, Trace, TraceOp};
use crate::spec::WorkloadSpec;
use fedfl_core::population::{ClientProfile, Population};
use fedfl_core::server::{path_budget, solve_kkt_columns_hinted, SolverMode, SolverOptions};
use fedfl_obs::{
    Histogram, HistogramSnapshot, Metric, NoopRecorder, Recorder, Registry, Stopwatch,
};
use fedfl_service::{
    AvailabilityModel, ClientId, ClientParams, Command, PricingService, RepriceReport, Response,
    ServiceConfig, ServiceSnapshot,
};
use std::sync::Arc;
use std::time::Instant;

/// A transport adapter the replay drives: the in-process service, or a
/// remote front-end speaking the same `Command`/`Response` stream.
pub trait CommandDriver {
    /// Execute one command, returning the service's reply.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Service`] for a service rejection and
    /// [`WorkloadError::Transport`] for a transport failure.
    fn execute(&mut self, command: Command) -> Result<Response, WorkloadError>;

    /// The service's exact staleness flag, when the driver can observe it
    /// (the in-process service); `None` for remote transports. Used only
    /// to cross-check the replay's transport-independent prediction.
    fn observed_dirty(&self) -> Option<bool>;

    /// The report of the most recent successful re-solve, if any. Remote
    /// drivers may issue an (untimed) `Snapshot` to obtain it.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if fetching the report itself fails.
    fn solve_report(&mut self) -> Result<Option<RepriceReport>, WorkloadError>;
}

/// The in-process driver: owns the [`PricingService`] and observes its
/// dirty flag and last report directly.
#[derive(Debug)]
pub struct InProcessDriver {
    service: PricingService,
}

impl InProcessDriver {
    /// Create a driver around a fresh service deployed with `config`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Service`] for an invalid config.
    pub fn new(config: ServiceConfig) -> Result<Self, WorkloadError> {
        Ok(Self {
            service: PricingService::new(config)?,
        })
    }

    /// Create a driver whose service records solver and store metrics
    /// into `registry`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Service`] for an invalid config.
    pub fn with_recorder(
        config: ServiceConfig,
        registry: Arc<Registry>,
    ) -> Result<Self, WorkloadError> {
        Ok(Self {
            service: PricingService::with_recorder(config, registry)?,
        })
    }

    /// The service this driver wraps.
    pub fn service(&self) -> &PricingService {
        &self.service
    }
}

impl CommandDriver for InProcessDriver {
    fn execute(&mut self, command: Command) -> Result<Response, WorkloadError> {
        Ok(self.service.execute(command)?)
    }

    fn observed_dirty(&self) -> Option<bool> {
        Some(self.service.is_dirty())
    }

    fn solve_report(&mut self) -> Result<Option<RepriceReport>, WorkloadError> {
        Ok(self.service.last_report().copied())
    }
}

/// Relative tolerance `verify_every` checkpoints allow served prices
/// under the fast path: one decade of headroom over the per-solve
/// certification band (relative price error ≤ 1e-6 against the exact
/// root of the same population).
const FAST_VERIFY_TOLERANCE: f64 = 1e-5;

/// Timing and warm-start diagnostics of one triggered re-solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveSample {
    /// Traffic regime of the step that triggered the solve.
    pub phase: Phase,
    /// Wall-clock of the command that absorbed the solve, in ms.
    pub millis: f64,
    /// Whether the λ-bisection started from a warm hint.
    pub warm: bool,
    /// Midpoint iterations the bisection ran.
    pub iterations: usize,
    /// Shards whose column caches were rebuilt.
    pub dirty_shards: usize,
    /// Total store shards.
    pub shard_count: usize,
    /// Columns recomputed for this solve.
    pub rebuilt_columns: usize,
    /// Clients registered at solve time.
    pub clients: usize,
    /// Which solver path produced the prices (exact, certified fast, or
    /// certification fallback).
    pub mode: SolverMode,
    /// Probe-phase work in per-client spend-evaluation units.
    pub probe_evaluations: u64,
    /// Nanoseconds building or patching the threshold index (0 on reuse
    /// or exact).
    pub index_rebuild_ns: u64,
    /// Index segments re-sorted for this solve (every segment on a cold
    /// build, only dirty ones on an incremental patch).
    pub index_segments_rebuilt: u64,
    /// Clean segments a patch re-sorted because scale drift reordered
    /// their thresholds.
    pub index_segments_repaired: u64,
    /// Segments a patch reused verbatim.
    pub index_segments_reused: u64,
}

/// Timing of one clean (already-priced) read.
#[derive(Debug, Clone, Copy)]
pub struct ReadSample {
    /// Traffic regime of the step issuing the read.
    pub phase: Phase,
    /// Wall-clock of the read, in ms.
    pub millis: f64,
}

/// Nanosecond latency histograms of one replay, one per
/// (operation, traffic phase) pair. These are the authoritative source
/// of the p50/p99 figures in [`crate::report::PhaseStats`]; the sample
/// vectors on [`ReplayOutcome`] remain for means and confidence
/// intervals.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistograms {
    /// Re-solves absorbed by reads issued in the steady phase.
    pub resolve_steady: HistogramSnapshot,
    /// Re-solves absorbed by reads issued during flash crowds.
    pub resolve_flash: HistogramSnapshot,
    /// Clean reads in the steady phase.
    pub read_steady: HistogramSnapshot,
    /// Clean reads during flash crowds.
    pub read_flash: HistogramSnapshot,
}

impl LatencyHistograms {
    /// The re-solve histogram of `phase`.
    pub fn resolve(&self, phase: Phase) -> &HistogramSnapshot {
        match phase {
            Phase::Steady => &self.resolve_steady,
            Phase::Flash => &self.resolve_flash,
        }
    }

    /// The clean-read histogram of `phase`.
    pub fn read(&self, phase: Phase) -> &HistogramSnapshot {
        match phase {
            Phase::Steady => &self.read_steady,
            Phase::Flash => &self.read_flash,
        }
    }
}

/// Everything a replay run observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Budget at `budget_frac` of the initial population's saturation
    /// path (the base the heavy-tail factors multiply).
    pub base_budget: f64,
    /// Clients registered when the trace ended.
    pub final_clients: usize,
    /// One sample per triggered re-solve, in trace order.
    pub solves: Vec<SolveSample>,
    /// One sample per clean read, in trace order.
    pub reads: Vec<ReadSample>,
    /// Per-phase latency histograms (nanoseconds) fed by the same clock
    /// reads as `solves`/`reads` — the report's p50/p99 source.
    pub latency: LatencyHistograms,
    /// Steps whose served prices were certified bit-identical to a
    /// from-scratch solve.
    pub verified_steps: usize,
    /// FNV-1a over the final snapshot's `(id, price, q_eff)` bits — equal
    /// checksums mean bit-identical served equilibria.
    pub price_checksum: u64,
    /// Total replay wall-clock, in seconds.
    pub total_wall_seconds: f64,
}

/// Derive the service configuration a trace replays against: shards and
/// threads from the spec, availability-aware pricing, and the budget at
/// `budget_frac` of the seeding batch's always-on saturation path.
///
/// Every transport must deploy *exactly* this config — the bit-identity
/// contract between the in-process and networked replays starts here.
///
/// # Errors
///
/// Returns [`WorkloadError::InvalidSpec`] for an invalid spec or a trace
/// without a seeding `AddClients` batch.
pub fn replay_config(spec: &WorkloadSpec, trace: &Trace) -> Result<ServiceConfig, WorkloadError> {
    spec.validate()?;
    // The base budget comes from the initial batch's always-on saturation
    // path, mirroring the service bench so records are comparable.
    let initial = seeding_batch(trace)?;
    let mut config = ServiceConfig::new(bound(), 0.0);
    config.solver = SolverOptions::with_threads(spec.threads);
    config.availability_aware = true;
    config.shards = spec.shards;
    config.fast_path = spec.fast_path;
    let initial_population = Population::from_raw(
        initial.iter().map(ClientParams::raw_profile).collect(),
    )
    .map_err(|e| WorkloadError::InvalidSpec {
        field: "clients",
        reason: e.to_string(),
    })?;
    // A value-heavy or floored seeding batch can realise a non-positive
    // path spend; the service rejects non-positive budgets, so clamp to
    // an epsilon floored-regime budget (a no-op for realistic batches,
    // bit-preserving whenever the spend is positive).
    config.budget = path_budget(
        &initial_population,
        &bound(),
        &config.solver,
        spec.budget_frac,
    )
    .max(1e-12);
    Ok(config)
}

/// The seeding `AddClients` batch of a trace's setup phase.
fn seeding_batch(trace: &Trace) -> Result<Vec<ClientParams>, WorkloadError> {
    trace
        .setup
        .iter()
        .find_map(|op| match op {
            TraceOp::AddClients(batch) => Some(batch.clone()),
            _ => None,
        })
        .ok_or_else(|| WorkloadError::InvalidSpec {
            field: "trace",
            reason: "setup has no AddClients seeding batch".to_string(),
        })
}

/// Replay `trace` (generated from `spec`) through a fresh in-process
/// service.
///
/// # Errors
///
/// Returns [`WorkloadError::Service`] if the service rejects a command
/// and [`WorkloadError::VerificationFailed`] if a `verify_every`
/// checkpoint finds served prices diverging from a from-scratch solve.
pub fn replay(spec: &WorkloadSpec, trace: &Trace) -> Result<ReplayOutcome, WorkloadError> {
    let config = replay_config(spec, trace)?;
    let mut driver = InProcessDriver::new(config)?;
    replay_with(spec, trace, &mut driver)
}

/// [`replay`], with every layer recording into `registry`: the service
/// and solver record through the driver's recorder, and the replay loop
/// itself records command counts, verified steps and per-phase latency
/// spans.
///
/// Prices are bit-identical to an unobserved [`replay`] of the same
/// trace — recording never touches solver arithmetic.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_observed(
    spec: &WorkloadSpec,
    trace: &Trace,
    registry: Arc<Registry>,
) -> Result<ReplayOutcome, WorkloadError> {
    let config = replay_config(spec, trace)?;
    let mut driver = InProcessDriver::with_recorder(config, Arc::clone(&registry))?;
    replay_with_recorder(spec, trace, &mut driver, &*registry)
}

/// Replay `trace` through an already-connected [`CommandDriver`].
///
/// The driver's service must be a fresh deployment of
/// [`replay_config`]`(spec, trace)`; the replay re-derives that config to
/// obtain the base budget and the reference-solve parameters for
/// `verify_every` checkpoints.
///
/// # Errors
///
/// Returns [`WorkloadError::Service`]/[`WorkloadError::Transport`] for
/// rejected commands, [`WorkloadError::VerificationFailed`] for a
/// bit-identity divergence, and [`WorkloadError::MissingSolveReport`] if
/// a read absorbed a re-solve the driver has no report for.
pub fn replay_with<D: CommandDriver>(
    spec: &WorkloadSpec,
    trace: &Trace,
    driver: &mut D,
) -> Result<ReplayOutcome, WorkloadError> {
    replay_with_recorder(spec, trace, driver, &NoopRecorder)
}

/// [`replay_with`], recording replay-loop metrics (command counts,
/// verified steps, per-phase latency spans) into `recorder`.
///
/// # Errors
///
/// Same conditions as [`replay_with`].
pub fn replay_with_recorder<D: CommandDriver, R: Recorder + ?Sized>(
    spec: &WorkloadSpec,
    trace: &Trace,
    driver: &mut D,
    recorder: &R,
) -> Result<ReplayOutcome, WorkloadError> {
    let config = replay_config(spec, trace)?;
    let base_budget = config.budget;
    let started = Instant::now();

    let mut run = ReplayRun {
        driver,
        recorder,
        base_budget,
        current_budget: base_budget,
        dirty: true,
        mirror: Vec::new(),
        next_id: 0,
        solves: Vec::new(),
        reads: Vec::new(),
        latency: PhasedHistograms::default(),
    };
    let mut verified_steps = 0usize;

    for op in &trace.setup {
        run.run_op(op, Phase::Steady, 0)?;
    }
    for step in &trace.steps {
        for op in &step.ops {
            run.run_op(op, step.phase, step.step)?;
        }
        if spec.verify_every > 0 && step.step.is_multiple_of(spec.verify_every) {
            run.verify_step(&config, step.step)?;
            recorder.add(Metric::WorkloadVerifiedSteps, 1);
            verified_steps += 1;
        }
    }

    // Final untimed snapshot: the deterministic equilibrium checksum.
    recorder.add(Metric::WorkloadCommands, 1);
    let snapshot = match run.driver.execute(Command::Snapshot)? {
        Response::Snapshot(snapshot) => snapshot,
        other => return Err(unexpected_reply("Snapshot", &other)),
    };
    let price_checksum = checksum(&snapshot);

    Ok(ReplayOutcome {
        base_budget,
        final_clients: run.mirror.len(),
        solves: run.solves,
        reads: run.reads,
        latency: run.latency.snapshot(),
        verified_steps,
        price_checksum,
        total_wall_seconds: started.elapsed().as_secs_f64(),
    })
}

/// The live (unsnapshotted) counterpart of [`LatencyHistograms`].
#[derive(Default)]
struct PhasedHistograms {
    resolve_steady: Histogram,
    resolve_flash: Histogram,
    read_steady: Histogram,
    read_flash: Histogram,
}

impl PhasedHistograms {
    fn snapshot(&self) -> LatencyHistograms {
        LatencyHistograms {
            resolve_steady: self.resolve_steady.snapshot(),
            resolve_flash: self.resolve_flash.snapshot(),
            read_steady: self.read_steady.snapshot(),
            read_flash: self.read_flash.snapshot(),
        }
    }
}

/// Mutable state of one replay pass over a trace.
struct ReplayRun<'a, D: CommandDriver, R: Recorder + ?Sized> {
    driver: &'a mut D,
    recorder: &'a R,
    base_budget: f64,
    /// Mirror of the service's `config.budget` — bitwise, so the
    /// `UpdateBudget` no-op rule (`new == old` leaves the service clean)
    /// is predicted exactly.
    current_budget: f64,
    /// Client-side prediction of the service's dirty flag. Replicates the
    /// service's own rules: churn and effective availability/budget
    /// changes dirty it, successful reads clean it.
    dirty: bool,
    mirror: Vec<(ClientId, ClientParams)>,
    next_id: u64,
    solves: Vec<SolveSample>,
    reads: Vec<ReadSample>,
    latency: PhasedHistograms,
}

impl<D: CommandDriver, R: Recorder + ?Sized> ReplayRun<'_, D, R> {
    fn run_op(&mut self, op: &TraceOp, phase: Phase, step: usize) -> Result<(), WorkloadError> {
        // Every trace op drives exactly one command; verify checkpoints
        // and the final snapshot are tallied at their own call sites.
        self.recorder.add(Metric::WorkloadCommands, 1);
        match op {
            TraceOp::AddClients(batch) => {
                let response = self.driver.execute(Command::AddClients(batch.clone()))?;
                let Response::Added(ids) = response else {
                    return Err(unexpected_reply("AddClients", &response));
                };
                if !ids.is_empty() {
                    self.dirty = true;
                }
                for (id, params) in ids.iter().zip(batch) {
                    debug_assert_eq!(id.0, self.next_id, "generator id mirror out of sync");
                    self.next_id = id.0 + 1;
                    self.mirror.push((*id, *params));
                }
            }
            TraceOp::RemoveClients(ids) => {
                let response = self.driver.execute(Command::RemoveClients(ids.clone()))?;
                let Response::Removed(removed) = response else {
                    return Err(unexpected_reply("RemoveClients", &response));
                };
                if removed > 0 {
                    self.dirty = true;
                }
                let gone: std::collections::HashSet<ClientId> = ids.iter().copied().collect();
                self.mirror.retain(|(id, _)| !gone.contains(id));
            }
            TraceOp::UpdateAvailability(patterns) => {
                // The service dirties itself only if some client's pattern
                // actually changed; predict that from the mirror before
                // updating it.
                let changed = self
                    .mirror
                    .iter()
                    .zip(patterns)
                    .any(|((_, params), pattern)| params.availability != *pattern);
                let model = AvailabilityModel::new(patterns.clone()).map_err(|e| {
                    WorkloadError::InvalidSpec {
                        field: "availability",
                        reason: e.to_string(),
                    }
                })?;
                self.driver.execute(Command::UpdateAvailability(model))?;
                if changed {
                    self.dirty = true;
                }
                debug_assert_eq!(patterns.len(), self.mirror.len());
                for ((_, params), pattern) in self.mirror.iter_mut().zip(patterns) {
                    params.availability = *pattern;
                }
            }
            TraceOp::UpdateBudgetFactor(factor) => {
                let next = self.base_budget * factor;
                self.driver.execute(Command::UpdateBudget(next))?;
                if next != self.current_budget {
                    self.dirty = true;
                }
                self.current_budget = next;
            }
            TraceOp::GetPrices(ids) => {
                self.timed_read(Command::GetPrices(ids.clone()), phase, step)?;
            }
            TraceOp::Snapshot => {
                self.timed_read(Command::Snapshot, phase, step)?;
            }
        }
        Ok(())
    }

    /// Execute a read under the clock, classifying it as a clean read or
    /// an absorbed re-solve by the client-side dirty prediction.
    fn timed_read(
        &mut self,
        command: Command,
        phase: Phase,
        step: usize,
    ) -> Result<(), WorkloadError> {
        let dirty = self.dirty;
        if let Some(observed) = self.driver.observed_dirty() {
            debug_assert_eq!(
                observed, dirty,
                "step {step}: dirty prediction diverged from the service"
            );
        }
        let watch = Stopwatch::start();
        self.driver.execute(command)?;
        let nanos = watch.elapsed_ns();
        let millis = nanos as f64 / 1e6;
        self.dirty = false;
        if dirty {
            let metric = match phase {
                Phase::Steady => Metric::WorkloadResolveSteadyNs,
                Phase::Flash => Metric::WorkloadResolveFlashNs,
            };
            self.recorder.observe(metric, nanos);
            match phase {
                Phase::Steady => self.latency.resolve_steady.record(nanos),
                Phase::Flash => self.latency.resolve_flash.record(nanos),
            }
            let report = self
                .driver
                .solve_report()?
                .ok_or(WorkloadError::MissingSolveReport { step })?;
            self.solves.push(solve_sample(&report, phase, millis));
        } else {
            let metric = match phase {
                Phase::Steady => Metric::WorkloadReadSteadyNs,
                Phase::Flash => Metric::WorkloadReadFlashNs,
            };
            self.recorder.observe(metric, nanos);
            match phase {
                Phase::Steady => self.latency.read_steady.record(nanos),
                Phase::Flash => self.latency.read_flash.record(nanos),
            }
            self.reads.push(ReadSample { phase, millis });
        }
        Ok(())
    }

    /// Certify the served equilibrium bit-identical to a from-scratch
    /// solve over the mirrored population.
    fn verify_step(&mut self, config: &ServiceConfig, step: usize) -> Result<(), WorkloadError> {
        self.recorder.add(Metric::WorkloadCommands, 1);
        let snapshot = match self.driver.execute(Command::Snapshot)? {
            Response::Snapshot(snapshot) => snapshot,
            other => return Err(unexpected_reply("Snapshot", &other)),
        };
        // The (untimed) snapshot cleaned any pending deltas.
        self.dirty = false;
        if snapshot.ids.len() != self.mirror.len() {
            return Err(WorkloadError::VerificationFailed {
                step,
                detail: format!(
                    "population mismatch: service holds {}, mirror holds {}",
                    snapshot.ids.len(),
                    self.mirror.len()
                ),
            });
        }
        // The trace's `UpdateBudgetFactor` ops move the service off its
        // deployment budget; the from-scratch reference must solve under
        // the budget the service is actually serving right now.
        let mut live = *config;
        live.budget = self.current_budget;
        let (ref_prices, ref_q) = reference(&self.mirror, &live)?;
        for (i, (id, _)) in self.mirror.iter().enumerate() {
            if snapshot.ids[i] != *id {
                return Err(WorkloadError::VerificationFailed {
                    step,
                    detail: format!(
                        "insertion order diverged at index {i}: service {}, mirror {}",
                        snapshot.ids[i], id
                    ),
                });
            }
            // The exact solver is bit-reproducible, so bit-identity is the
            // contract when it served the prices. A certified fast solve is
            // only near-exact (its probes run over the series-truncated
            // spend model), so under `fast_path` the checkpoint instead
            // holds the served bits to the certification tolerance.
            let matches = if config.fast_path {
                let close = |served: f64, reference: f64| {
                    (served - reference).abs() <= FAST_VERIFY_TOLERANCE * reference.abs().max(1.0)
                };
                close(snapshot.prices[i], ref_prices[i]) && close(snapshot.q_eff[i], ref_q[i])
            } else {
                snapshot.prices[i].to_bits() == ref_prices[i].to_bits()
                    && snapshot.q_eff[i].to_bits() == ref_q[i].to_bits()
            };
            if !matches {
                return Err(WorkloadError::VerificationFailed {
                    step,
                    detail: format!(
                        "client {id}: served (price {:?}, q {:?}) vs reference ({:?}, {:?})",
                        snapshot.prices[i], snapshot.q_eff[i], ref_prices[i], ref_q[i]
                    ),
                });
            }
        }
        Ok(())
    }
}

fn unexpected_reply(command: &str, response: &Response) -> WorkloadError {
    WorkloadError::Transport {
        detail: format!("unexpected reply to {command}: {response:?}"),
    }
}

fn solve_sample(report: &RepriceReport, phase: Phase, millis: f64) -> SolveSample {
    SolveSample {
        phase,
        millis,
        warm: report.warm_started,
        iterations: report.bisect_iterations,
        dirty_shards: report.dirty_shards,
        shard_count: report.shard_count,
        rebuilt_columns: report.rebuilt_columns,
        clients: report.clients,
        mode: report.solver_mode,
        probe_evaluations: report.probe_evaluations,
        index_rebuild_ns: report.index_rebuild_ns,
        index_segments_rebuilt: report.index_segments_rebuilt,
        index_segments_repaired: report.index_segments_repaired,
        index_segments_reused: report.index_segments_reused,
    }
}

/// FNV-1a over the snapshot's structural bits.
fn checksum(snapshot: &ServiceSnapshot) -> u64 {
    let mut bytes = Vec::with_capacity(snapshot.ids.len() * 24);
    for ((id, price), q) in snapshot
        .ids
        .iter()
        .zip(&snapshot.prices)
        .zip(&snapshot.q_eff)
    {
        bytes.extend_from_slice(&id.0.to_le_bytes());
        bytes.extend_from_slice(&price.to_bits().to_le_bytes());
        bytes.extend_from_slice(&q.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// From-scratch cold solve over the mirror population, scattered back to
/// the full client list (excluded clients price at `0.0`).
fn reference(
    mirror: &[(ClientId, ClientParams)],
    config: &ServiceConfig,
) -> Result<(Vec<f64>, Vec<f64>), WorkloadError> {
    let rates: Vec<f64> = mirror
        .iter()
        .map(|(_, p)| {
            if config.availability_aware {
                p.availability.availability_rate()
            } else {
                1.0
            }
        })
        .collect();
    let included: Vec<bool> = mirror
        .iter()
        .zip(&rates)
        .map(|((_, p), &r)| r > 0.0 && p.q_max * r > config.solver.q_min)
        .collect();
    let profiles: Vec<ClientProfile> = mirror
        .iter()
        .zip(&included)
        .filter(|(_, &inc)| inc)
        .map(|((_, p), _)| p.raw_profile())
        .collect();
    let population = Population::from_raw(profiles).map_err(|e| WorkloadError::InvalidSpec {
        field: "reference population",
        reason: e.to_string(),
    })?;
    let cols = population.columns();
    let included_rates: Vec<f64> = rates
        .iter()
        .zip(&included)
        .filter(|(_, &inc)| inc)
        .map(|(&r, _)| r)
        .collect();
    let eff = cols
        .effective(&included_rates)
        .map_err(|e| WorkloadError::InvalidSpec {
            field: "effective columns",
            reason: e.to_string(),
        })?;
    let (solution, _diag) =
        solve_kkt_columns_hinted(&eff, &config.bound, config.budget, &config.solver, None)
            .map_err(|e| WorkloadError::InvalidSpec {
                field: "reference solve",
                reason: e.to_string(),
            })?;
    let n = mirror.len();
    let mut prices = vec![0.0f64; n];
    let mut q_eff = vec![0.0f64; n];
    let mut j = 0;
    for i in 0..n {
        if included[i] {
            prices[i] = solution.prices[j];
            q_eff[i] = solution.q[j];
            j += 1;
        }
    }
    Ok((prices, q_eff))
}

/// The Theorem-1 bound constants shared by every workload run (matching
/// the service bench).
pub fn bound() -> fedfl_core::bound::BoundParams {
    fedfl_core::bound::BoundParams::new(4_000.0, 100.0, 1_000).expect("bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    fn tiny_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::reference_10k();
        spec.clients = 48;
        spec.steps = 6;
        spec.cohorts = 3;
        spec.arrivals_per_step = 4;
        spec.departures_per_step = 4;
        spec.surge_every = 3;
        spec.surge_size = 12;
        spec.surge_hold = 2;
        spec.budget_every = 2;
        spec.reads_per_step = 2;
        spec.read_batch = 6;
        spec.snapshot_every = 3;
        spec.verify_every = 2;
        spec.min_population = 8;
        spec.shards = 4;
        spec.threads = 1;
        spec
    }

    #[test]
    fn tiny_replay_verifies_bit_identity_every_other_step() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let outcome = replay(&spec, &trace).expect("replay");
        assert_eq!(outcome.verified_steps, 3);
        assert!(outcome.solves.iter().any(|s| s.warm));
        assert!(!outcome.reads.is_empty());
        assert!(outcome.final_clients >= spec.min_population);
    }

    #[test]
    fn replay_is_deterministic_across_shard_counts() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let a = replay(&spec, &trace).expect("replay");
        let mut sharded = spec.clone();
        sharded.shards = 1;
        let b = replay(&sharded, &trace).expect("replay");
        assert_eq!(a.price_checksum, b.price_checksum);
        assert_eq!(a.final_clients, b.final_clients);
        assert_eq!(a.base_budget.to_bits(), b.base_budget.to_bits());
        let iters_a: Vec<usize> = a.solves.iter().map(|s| s.iterations).collect();
        let iters_b: Vec<usize> = b.solves.iter().map(|s| s.iterations).collect();
        assert_eq!(iters_a, iters_b);
    }

    #[test]
    fn fast_path_replay_verifies_within_tolerance_and_reuses_the_index() {
        let mut spec = tiny_spec();
        spec.fast_path = true;
        let trace = generate(&spec).expect("generate");
        let outcome = replay(&spec, &trace).expect("fast-path replay");
        assert_eq!(outcome.verified_steps, 3);
        // Every solve went through the fast entry point (certified or
        // fallback — never silently the plain exact path).
        assert!(outcome.solves.iter().all(|s| s.mode != SolverMode::Exact));
        // Every step of this trace churns availability, so each solve
        // builds or patches the index (reuse under budget-only churn is
        // pinned at the service level in `fedfl-service`'s sharding
        // tests).
        assert!(outcome.solves.iter().all(|s| s.index_rebuild_ns > 0));
        // The first solve builds every segment cold; every later solve is
        // an incremental patch whose per-segment accounting still covers
        // the whole index.
        let segment_total = outcome.solves[0].index_segments_rebuilt;
        assert!(segment_total > 0, "cold build reported no segments");
        assert_eq!(outcome.solves[0].index_segments_reused, 0);
        for solve in &outcome.solves[1..] {
            assert_eq!(
                solve.index_segments_rebuilt
                    + solve.index_segments_repaired
                    + solve.index_segments_reused,
                segment_total,
                "patch accounting does not cover every segment"
            );
        }
        // The trace itself is fast-path independent.
        let exact_trace = generate(&tiny_spec()).expect("generate");
        assert_eq!(trace.fingerprint, exact_trace.fingerprint);
    }

    /// A driver with no observable dirty flag and no solve history —
    /// the shape of a remote front-end that cannot report its last solve.
    struct ReportlessDriver {
        service: PricingService,
    }

    impl CommandDriver for ReportlessDriver {
        fn execute(&mut self, command: Command) -> Result<Response, WorkloadError> {
            Ok(self.service.execute(command)?)
        }

        fn observed_dirty(&self) -> Option<bool> {
            None
        }

        fn solve_report(&mut self) -> Result<Option<RepriceReport>, WorkloadError> {
            Ok(None)
        }
    }

    #[test]
    fn read_without_a_solve_report_is_a_typed_error_not_a_panic() {
        // A hand-built trace that leads with a read: the first timed read
        // absorbs the initial solve, and a driver without solve history
        // must surface MissingSolveReport instead of panicking.
        let spec = tiny_spec();
        let generated = generate(&spec).expect("generate");
        let seed_batch = seeding_batch(&generated).expect("seed batch");
        let first_id = ClientId(0);
        let trace = Trace {
            setup: vec![
                TraceOp::AddClients(seed_batch),
                TraceOp::GetPrices(vec![first_id]),
            ],
            steps: Vec::new(),
            fingerprint: 0,
        };
        let config = replay_config(&spec, &trace).expect("config");
        let service = PricingService::new(config).expect("service");
        let mut driver = ReportlessDriver { service };
        let err = replay_with(&spec, &trace, &mut driver).unwrap_err();
        assert_eq!(err, WorkloadError::MissingSolveReport { step: 0 });
    }

    #[test]
    fn driver_generalisation_preserves_the_in_process_outcome() {
        // replay() is replay_with() over InProcessDriver; pin that the
        // classification prediction matches the service's real dirty flag
        // (the debug_assert in timed_read fires otherwise) and that both
        // entry points agree bit-for-bit.
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let via_replay = replay(&spec, &trace).expect("replay");
        let config = replay_config(&spec, &trace).expect("config");
        let mut driver = InProcessDriver::new(config).expect("driver");
        let via_driver = replay_with(&spec, &trace, &mut driver).expect("replay_with");
        assert_eq!(via_replay.price_checksum, via_driver.price_checksum);
        assert_eq!(via_replay.final_clients, via_driver.final_clients);
        assert_eq!(via_replay.solves.len(), via_driver.solves.len());
        assert_eq!(via_replay.reads.len(), via_driver.reads.len());
        let warm_a: Vec<bool> = via_replay.solves.iter().map(|s| s.warm).collect();
        let warm_b: Vec<bool> = via_driver.solves.iter().map(|s| s.warm).collect();
        assert_eq!(warm_a, warm_b);
    }
}
