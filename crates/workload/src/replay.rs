//! Replay a generated trace through a live [`PricingService`], timing
//! every read and re-solve and (optionally) certifying served prices
//! bit-identical to from-scratch solves.

use crate::error::WorkloadError;
use crate::generator::{fnv1a, Phase, Trace, TraceOp};
use crate::spec::WorkloadSpec;
use fedfl_core::population::{ClientProfile, Population};
use fedfl_core::server::{path_budget, solve_kkt_columns_hinted, SolverOptions};
use fedfl_service::{
    AvailabilityModel, ClientId, ClientParams, Command, PricingService, Response, ServiceConfig,
    ServiceSnapshot,
};
use std::time::Instant;

/// Timing and warm-start diagnostics of one triggered re-solve.
#[derive(Debug, Clone, Copy)]
pub struct SolveSample {
    /// Traffic regime of the step that triggered the solve.
    pub phase: Phase,
    /// Wall-clock of the command that absorbed the solve, in ms.
    pub millis: f64,
    /// Whether the λ-bisection started from a warm hint.
    pub warm: bool,
    /// Midpoint iterations the bisection ran.
    pub iterations: usize,
    /// Shards whose column caches were rebuilt.
    pub dirty_shards: usize,
    /// Total store shards.
    pub shard_count: usize,
    /// Columns recomputed for this solve.
    pub rebuilt_columns: usize,
    /// Clients registered at solve time.
    pub clients: usize,
}

/// Timing of one clean (already-priced) read.
#[derive(Debug, Clone, Copy)]
pub struct ReadSample {
    /// Traffic regime of the step issuing the read.
    pub phase: Phase,
    /// Wall-clock of the read, in ms.
    pub millis: f64,
}

/// Everything a replay run observed.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Budget at `budget_frac` of the initial population's saturation
    /// path (the base the heavy-tail factors multiply).
    pub base_budget: f64,
    /// Clients registered when the trace ended.
    pub final_clients: usize,
    /// One sample per triggered re-solve, in trace order.
    pub solves: Vec<SolveSample>,
    /// One sample per clean read, in trace order.
    pub reads: Vec<ReadSample>,
    /// Steps whose served prices were certified bit-identical to a
    /// from-scratch solve.
    pub verified_steps: usize,
    /// FNV-1a over the final snapshot's `(id, price, q_eff)` bits — equal
    /// checksums mean bit-identical served equilibria.
    pub price_checksum: u64,
    /// Total replay wall-clock, in seconds.
    pub total_wall_seconds: f64,
}

/// Replay `trace` (generated from `spec`) through a fresh service.
///
/// # Errors
///
/// Returns [`WorkloadError::Service`] if the service rejects a command
/// and [`WorkloadError::VerificationFailed`] if a `verify_every`
/// checkpoint finds served prices diverging from a from-scratch solve.
pub fn replay(spec: &WorkloadSpec, trace: &Trace) -> Result<ReplayOutcome, WorkloadError> {
    spec.validate()?;
    let started = Instant::now();

    // The base budget comes from the initial batch's always-on saturation
    // path, mirroring the service bench so records are comparable.
    let initial: Vec<ClientParams> = trace
        .setup
        .iter()
        .find_map(|op| match op {
            TraceOp::AddClients(batch) => Some(batch.clone()),
            _ => None,
        })
        .ok_or_else(|| WorkloadError::InvalidSpec {
            field: "trace",
            reason: "setup has no AddClients seeding batch".to_string(),
        })?;
    let mut config = ServiceConfig::new(bound(), 0.0);
    config.solver = SolverOptions::with_threads(spec.threads);
    config.availability_aware = true;
    config.shards = spec.shards;
    let initial_population = Population::from_raw(
        initial.iter().map(ClientParams::raw_profile).collect(),
    )
    .map_err(|e| WorkloadError::InvalidSpec {
        field: "clients",
        reason: e.to_string(),
    })?;
    let base_budget = path_budget(
        &initial_population,
        &bound(),
        &config.solver,
        spec.budget_frac,
    );
    config.budget = base_budget;

    let mut service = PricingService::new(config)?;
    let mut mirror: Vec<(ClientId, ClientParams)> = Vec::new();
    let mut next_id = 0u64;
    let mut solves = Vec::new();
    let mut reads = Vec::new();
    let mut verified_steps = 0usize;

    let mut run_op = |service: &mut PricingService,
                      mirror: &mut Vec<(ClientId, ClientParams)>,
                      op: &TraceOp,
                      phase: Phase|
     -> Result<(), WorkloadError> {
        match op {
            TraceOp::AddClients(batch) => {
                let response = service.execute(Command::AddClients(batch.clone()))?;
                let Response::Added(ids) = response else {
                    unreachable!("AddClients replies Added");
                };
                for (id, params) in ids.iter().zip(batch) {
                    debug_assert_eq!(id.0, next_id, "generator id mirror out of sync");
                    next_id = id.0 + 1;
                    mirror.push((*id, *params));
                }
            }
            TraceOp::RemoveClients(ids) => {
                service.execute(Command::RemoveClients(ids.clone()))?;
                let gone: std::collections::HashSet<ClientId> = ids.iter().copied().collect();
                mirror.retain(|(id, _)| !gone.contains(id));
            }
            TraceOp::UpdateAvailability(patterns) => {
                let model = AvailabilityModel::new(patterns.clone()).map_err(|e| {
                    WorkloadError::InvalidSpec {
                        field: "availability",
                        reason: e.to_string(),
                    }
                })?;
                service.execute(Command::UpdateAvailability(model))?;
                debug_assert_eq!(patterns.len(), mirror.len());
                for ((_, params), pattern) in mirror.iter_mut().zip(patterns) {
                    params.availability = *pattern;
                }
            }
            TraceOp::UpdateBudgetFactor(factor) => {
                service.execute(Command::UpdateBudget(base_budget * factor))?;
            }
            TraceOp::GetPrices(ids) => {
                let dirty = service.is_dirty();
                let start = Instant::now();
                service.execute(Command::GetPrices(ids.clone()))?;
                let millis = start.elapsed().as_secs_f64() * 1e3;
                if dirty {
                    solves.push(solve_sample(service, phase, millis));
                } else {
                    reads.push(ReadSample { phase, millis });
                }
            }
            TraceOp::Snapshot => {
                let dirty = service.is_dirty();
                let start = Instant::now();
                service.execute(Command::Snapshot)?;
                let millis = start.elapsed().as_secs_f64() * 1e3;
                if dirty {
                    solves.push(solve_sample(service, phase, millis));
                } else {
                    reads.push(ReadSample { phase, millis });
                }
            }
        }
        Ok(())
    };

    for op in &trace.setup {
        run_op(&mut service, &mut mirror, op, Phase::Steady)?;
    }
    for step in &trace.steps {
        for op in &step.ops {
            run_op(&mut service, &mut mirror, op, step.phase)?;
        }
        if spec.verify_every > 0 && step.step.is_multiple_of(spec.verify_every) {
            verify_step(&mut service, &mirror, step.step)?;
            verified_steps += 1;
        }
    }

    // Final untimed snapshot: the deterministic equilibrium checksum.
    let snapshot = match service.execute(Command::Snapshot)? {
        Response::Snapshot(snapshot) => snapshot,
        _ => unreachable!("Snapshot replies Snapshot"),
    };
    let price_checksum = checksum(&snapshot);

    Ok(ReplayOutcome {
        base_budget,
        final_clients: service.len(),
        solves,
        reads,
        verified_steps,
        price_checksum,
        total_wall_seconds: started.elapsed().as_secs_f64(),
    })
}

fn solve_sample(service: &PricingService, phase: Phase, millis: f64) -> SolveSample {
    let report = service.last_report().expect("read implies a solve");
    SolveSample {
        phase,
        millis,
        warm: report.warm_started,
        iterations: report.bisect_iterations,
        dirty_shards: report.dirty_shards,
        shard_count: report.shard_count,
        rebuilt_columns: report.rebuilt_columns,
        clients: report.clients,
    }
}

/// FNV-1a over the snapshot's structural bits.
fn checksum(snapshot: &ServiceSnapshot) -> u64 {
    let mut bytes = Vec::with_capacity(snapshot.ids.len() * 24);
    for ((id, price), q) in snapshot
        .ids
        .iter()
        .zip(&snapshot.prices)
        .zip(&snapshot.q_eff)
    {
        bytes.extend_from_slice(&id.0.to_le_bytes());
        bytes.extend_from_slice(&price.to_bits().to_le_bytes());
        bytes.extend_from_slice(&q.to_bits().to_le_bytes());
    }
    fnv1a(&bytes)
}

/// Certify the served equilibrium bit-identical to a from-scratch solve
/// over the mirrored population.
fn verify_step(
    service: &mut PricingService,
    mirror: &[(ClientId, ClientParams)],
    step: usize,
) -> Result<(), WorkloadError> {
    let snapshot = match service.execute(Command::Snapshot)? {
        Response::Snapshot(snapshot) => snapshot,
        _ => unreachable!("Snapshot replies Snapshot"),
    };
    if snapshot.ids.len() != mirror.len() {
        return Err(WorkloadError::VerificationFailed {
            step,
            detail: format!(
                "population mismatch: service holds {}, mirror holds {}",
                snapshot.ids.len(),
                mirror.len()
            ),
        });
    }
    let (ref_prices, ref_q) = reference(mirror, service.config())?;
    for (i, (id, _)) in mirror.iter().enumerate() {
        if snapshot.ids[i] != *id {
            return Err(WorkloadError::VerificationFailed {
                step,
                detail: format!(
                    "insertion order diverged at index {i}: service {}, mirror {}",
                    snapshot.ids[i], id
                ),
            });
        }
        if snapshot.prices[i].to_bits() != ref_prices[i].to_bits()
            || snapshot.q_eff[i].to_bits() != ref_q[i].to_bits()
        {
            return Err(WorkloadError::VerificationFailed {
                step,
                detail: format!(
                    "client {id}: served (price {:?}, q {:?}) vs reference ({:?}, {:?})",
                    snapshot.prices[i], snapshot.q_eff[i], ref_prices[i], ref_q[i]
                ),
            });
        }
    }
    Ok(())
}

/// From-scratch cold solve over the mirror population, scattered back to
/// the full client list (excluded clients price at `0.0`).
fn reference(
    mirror: &[(ClientId, ClientParams)],
    config: &ServiceConfig,
) -> Result<(Vec<f64>, Vec<f64>), WorkloadError> {
    let rates: Vec<f64> = mirror
        .iter()
        .map(|(_, p)| {
            if config.availability_aware {
                p.availability.availability_rate()
            } else {
                1.0
            }
        })
        .collect();
    let included: Vec<bool> = mirror
        .iter()
        .zip(&rates)
        .map(|((_, p), &r)| r > 0.0 && p.q_max * r > config.solver.q_min)
        .collect();
    let profiles: Vec<ClientProfile> = mirror
        .iter()
        .zip(&included)
        .filter(|(_, &inc)| inc)
        .map(|((_, p), _)| p.raw_profile())
        .collect();
    let population = Population::from_raw(profiles).map_err(|e| WorkloadError::InvalidSpec {
        field: "reference population",
        reason: e.to_string(),
    })?;
    let cols = population.columns();
    let included_rates: Vec<f64> = rates
        .iter()
        .zip(&included)
        .filter(|(_, &inc)| inc)
        .map(|(&r, _)| r)
        .collect();
    let eff = cols
        .effective(&included_rates)
        .map_err(|e| WorkloadError::InvalidSpec {
            field: "effective columns",
            reason: e.to_string(),
        })?;
    let (solution, _diag) =
        solve_kkt_columns_hinted(&eff, &config.bound, config.budget, &config.solver, None)
            .map_err(|e| WorkloadError::InvalidSpec {
                field: "reference solve",
                reason: e.to_string(),
            })?;
    let n = mirror.len();
    let mut prices = vec![0.0f64; n];
    let mut q_eff = vec![0.0f64; n];
    let mut j = 0;
    for i in 0..n {
        if included[i] {
            prices[i] = solution.prices[j];
            q_eff[i] = solution.q[j];
            j += 1;
        }
    }
    Ok((prices, q_eff))
}

/// The Theorem-1 bound constants shared by every workload run (matching
/// the service bench).
pub fn bound() -> fedfl_core::bound::BoundParams {
    fedfl_core::bound::BoundParams::new(4_000.0, 100.0, 1_000).expect("bound")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::generate;

    fn tiny_spec() -> WorkloadSpec {
        let mut spec = WorkloadSpec::reference_10k();
        spec.clients = 48;
        spec.steps = 6;
        spec.cohorts = 3;
        spec.arrivals_per_step = 4;
        spec.departures_per_step = 4;
        spec.surge_every = 3;
        spec.surge_size = 12;
        spec.surge_hold = 2;
        spec.budget_every = 2;
        spec.reads_per_step = 2;
        spec.read_batch = 6;
        spec.snapshot_every = 3;
        spec.verify_every = 2;
        spec.min_population = 8;
        spec.shards = 4;
        spec.threads = 1;
        spec
    }

    #[test]
    fn tiny_replay_verifies_bit_identity_every_other_step() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let outcome = replay(&spec, &trace).expect("replay");
        assert_eq!(outcome.verified_steps, 3);
        assert!(outcome.solves.iter().any(|s| s.warm));
        assert!(!outcome.reads.is_empty());
        assert!(outcome.final_clients >= spec.min_population);
    }

    #[test]
    fn replay_is_deterministic_across_shard_counts() {
        let spec = tiny_spec();
        let trace = generate(&spec).expect("generate");
        let a = replay(&spec, &trace).expect("replay");
        let mut sharded = spec.clone();
        sharded.shards = 1;
        let b = replay(&sharded, &trace).expect("replay");
        assert_eq!(a.price_checksum, b.price_checksum);
        assert_eq!(a.final_clients, b.final_clients);
        assert_eq!(a.base_budget.to_bits(), b.base_budget.to_bits());
        let iters_a: Vec<usize> = a.solves.iter().map(|s| s.iterations).collect();
        let iters_b: Vec<usize> = b.solves.iter().map(|s| s.iterations).collect();
        assert_eq!(iters_a, iters_b);
    }
}
