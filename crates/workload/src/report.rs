//! The machine-readable workload record appended to `BENCH_scale.json`.

use crate::generator::{Phase, Trace};
use crate::replay::ReplayOutcome;
use crate::spec::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Latency stats for one traffic phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase name (`steady` or `flash`).
    pub phase: String,
    /// Re-solves triggered in this phase.
    pub resolves: usize,
    /// Median re-solve latency, ms.
    pub resolve_p50_ms: f64,
    /// 99th-percentile re-solve latency, ms.
    pub resolve_p99_ms: f64,
    /// Clean reads in this phase.
    pub reads: usize,
    /// Median clean-read latency, ms.
    pub read_p50_ms: f64,
    /// 99th-percentile clean-read latency, ms.
    pub read_p99_ms: f64,
}

/// One JSONL record of a workload run.
///
/// Latency fields are wall-clock and vary run to run; every other field
/// is deterministic for a given spec — [`WorkloadRecord::deterministic_key`]
/// collects the subset that must match across runs and across
/// `--shards`/thread settings.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadRecord {
    /// Record discriminator, always `"workload"`.
    pub bench: String,
    /// Transport the commands travelled over: `"inproc"` (direct calls)
    /// or `"tcp"` (framed JSON over loopback). Excluded from
    /// [`WorkloadRecord::deterministic_key`] — the key is the contract
    /// that the served bits do not depend on the transport.
    pub transport: String,
    /// Initial population size.
    pub clients: usize,
    /// Traffic steps replayed.
    pub steps: usize,
    /// Store shards.
    pub shards: usize,
    /// Solver threads (`0` = auto).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Timezone cohorts.
    pub cohorts: usize,
    /// Diurnal period, steps.
    pub period: usize,
    /// Clients registered at the end of the trace.
    pub final_clients: usize,
    /// Commands in the trace (setup + steps).
    pub commands: usize,
    /// Base budget the heavy-tail factors multiplied.
    pub base_budget: f64,
    /// FNV-1a fingerprint of the canonical trace encoding (hex).
    pub trace_fingerprint: String,
    /// FNV-1a checksum of the final `(id, price, q_eff)` bits (hex).
    pub price_checksum: String,
    /// Re-solves that started from a warm hint.
    pub warm_solves: usize,
    /// Re-solves that started cold.
    pub cold_solves: usize,
    /// Mean bisection iterations over warm solves.
    pub mean_warm_iterations: f64,
    /// Mean bisection iterations over cold solves.
    pub mean_cold_iterations: f64,
    /// Mean fraction of shards rebuilt per solve.
    pub mean_dirty_shard_fraction: f64,
    /// Worst-case fraction of shards rebuilt in one solve.
    pub max_dirty_shard_fraction: f64,
    /// Mean fraction of client columns recomputed per solve.
    pub mean_rebuilt_column_fraction: f64,
    /// Steps certified against a from-scratch solve (bit-identical under
    /// the exact solver, within the certification tolerance under the
    /// fast path).
    pub verified_steps: usize,
    /// The solver path that served the run: `"exact"` when every solve
    /// ran the exact solver, `"threshold_index"` when every fast solve
    /// certified, `"threshold_index_fallback"` if any fast solve was
    /// demoted to the exact path.
    pub solver_mode: String,
    /// Fast-path solves that built the threshold index from scratch
    /// (zero on exact runs). Excluded from
    /// [`WorkloadRecord::deterministic_key`] together with the other
    /// segment fields — they legitimately depend on the shard layout.
    pub index_cold_builds: usize,
    /// Fast-path solves that incrementally patched the cached index.
    pub index_patches: usize,
    /// Index segments re-sorted across all solves (cold builds count
    /// every segment).
    pub index_segments_rebuilt: u64,
    /// Clean segments re-sorted by patches because scale drift reordered
    /// their thresholds.
    pub index_segments_repaired: u64,
    /// Segments patches reused verbatim.
    pub index_segments_reused: u64,
    /// Mean wall-clock of cold index builds, ms (`0.0` when none ran).
    pub mean_index_build_ms: f64,
    /// Mean wall-clock of incremental index patches, ms (`0.0` when none
    /// ran).
    pub mean_index_patch_ms: f64,
    /// Total replay wall-clock, seconds.
    pub total_wall_seconds: f64,
    /// Per-phase latency buckets (`steady`, then `flash` when surges ran).
    pub phases: Vec<PhaseStats>,
}

impl WorkloadRecord {
    /// Assemble the record from a finished replay.
    pub fn new(spec: &WorkloadSpec, trace: &Trace, outcome: &ReplayOutcome) -> Self {
        let warm: Vec<usize> = outcome
            .solves
            .iter()
            .filter(|s| s.warm)
            .map(|s| s.iterations)
            .collect();
        let cold: Vec<usize> = outcome
            .solves
            .iter()
            .filter(|s| !s.warm)
            .map(|s| s.iterations)
            .collect();
        let dirty_fractions: Vec<f64> = outcome
            .solves
            .iter()
            .map(|s| s.dirty_shards as f64 / s.shard_count.max(1) as f64)
            .collect();
        let rebuilt_fractions: Vec<f64> = outcome
            .solves
            .iter()
            .map(|s| s.rebuilt_columns as f64 / s.clients.max(1) as f64)
            .collect();
        // A solve that touched the index either built it cold (no segment
        // survived) or patched it (repaired/reused segments account for
        // the rest); solves with zero index time reused it outright.
        let mut build_ms = Vec::new();
        let mut patch_ms = Vec::new();
        for s in &outcome.solves {
            if s.index_rebuild_ns == 0 {
                continue;
            }
            let ms = s.index_rebuild_ns as f64 / 1e6;
            if s.index_segments_repaired + s.index_segments_reused > 0 {
                patch_ms.push(ms);
            } else {
                build_ms.push(ms);
            }
        }

        let mut phases = Vec::new();
        for phase in [Phase::Steady, Phase::Flash] {
            // Counts and quantiles come from the replay's nanosecond
            // histograms — the same clock reads as the sample vectors,
            // bucketed with ≤ 1/32 relative error (exact under 64 ns).
            let resolves = outcome.latency.resolve(phase);
            let reads = outcome.latency.read(phase);
            if resolves.is_empty() && reads.is_empty() {
                continue;
            }
            phases.push(PhaseStats {
                phase: phase.name().to_string(),
                resolves: resolves.count as usize,
                resolve_p50_ms: hist_ms(resolves, 0.50),
                resolve_p99_ms: hist_ms(resolves, 0.99),
                reads: reads.count as usize,
                read_p50_ms: hist_ms(reads, 0.50),
                read_p99_ms: hist_ms(reads, 0.99),
            });
        }

        WorkloadRecord {
            bench: "workload".to_string(),
            transport: "inproc".to_string(),
            clients: spec.clients,
            steps: spec.steps,
            shards: spec.shards,
            threads: spec.threads,
            seed: spec.seed,
            cohorts: spec.cohorts,
            period: spec.diurnal.period,
            final_clients: outcome.final_clients,
            commands: trace.commands(),
            base_budget: outcome.base_budget,
            trace_fingerprint: format!("{:016x}", trace.fingerprint),
            price_checksum: format!("{:016x}", outcome.price_checksum),
            warm_solves: warm.len(),
            cold_solves: cold.len(),
            mean_warm_iterations: mean_usize(&warm),
            mean_cold_iterations: mean_usize(&cold),
            mean_dirty_shard_fraction: mean(&dirty_fractions),
            max_dirty_shard_fraction: dirty_fractions.iter().copied().fold(0.0, f64::max),
            mean_rebuilt_column_fraction: mean(&rebuilt_fractions),
            verified_steps: outcome.verified_steps,
            solver_mode: run_solver_mode(outcome),
            index_cold_builds: build_ms.len(),
            index_patches: patch_ms.len(),
            index_segments_rebuilt: outcome
                .solves
                .iter()
                .map(|s| s.index_segments_rebuilt)
                .sum(),
            index_segments_repaired: outcome
                .solves
                .iter()
                .map(|s| s.index_segments_repaired)
                .sum(),
            index_segments_reused: outcome.solves.iter().map(|s| s.index_segments_reused).sum(),
            mean_index_build_ms: mean(&build_ms),
            mean_index_patch_ms: mean(&patch_ms),
            total_wall_seconds: outcome.total_wall_seconds,
            phases,
        }
    }

    /// The fields that must be identical across runs of the same spec and
    /// across `--shards`/thread settings: the trace identity, the served
    /// equilibrium bits, and the solver's iteration trajectory. Latency
    /// and shard-layout fields (dirty fractions) are excluded — the
    /// former are wall-clock, the latter legitimately depend on `shards`.
    pub fn deterministic_key(&self) -> String {
        format!(
            "trace={} prices={} clients={} final={} commands={} budget={:016x} \
             warm={} cold={} warm_iters={:016x} cold_iters={:016x} verified={}",
            self.trace_fingerprint,
            self.price_checksum,
            self.clients,
            self.final_clients,
            self.commands,
            self.base_budget.to_bits(),
            self.warm_solves,
            self.cold_solves,
            self.mean_warm_iterations.to_bits(),
            self.mean_cold_iterations.to_bits(),
            self.verified_steps,
        )
    }

    /// Mean re-solve latency across all phases, ms (the CI tripwire
    /// metric).
    pub fn mean_resolve_ms(&self, outcome: &ReplayOutcome) -> f64 {
        mean(&outcome.solves.iter().map(|s| s.millis).collect::<Vec<_>>())
    }
}

/// The run-level solver mode: the worst mode any solve reported, so a
/// single certification fallback is visible in the record.
fn run_solver_mode(outcome: &ReplayOutcome) -> String {
    use fedfl_core::server::SolverMode;
    let mut mode = SolverMode::Exact;
    for solve in &outcome.solves {
        match solve.mode {
            SolverMode::ThresholdIndexFallback => {
                mode = SolverMode::ThresholdIndexFallback;
                break;
            }
            SolverMode::ThresholdIndex => mode = SolverMode::ThresholdIndex,
            SolverMode::Exact => {}
        }
    }
    mode.as_str().to_string()
}

/// A histogram's nearest-rank quantile, converted from nanoseconds to
/// milliseconds (`0.0` for an empty histogram).
fn hist_ms(hist: &fedfl_obs::HistogramSnapshot, p: f64) -> f64 {
    hist.quantile(p) as f64 / 1e6
}

/// Nearest-rank percentile of an unsorted sample (`0.0` for empty input).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn mean_usize(xs: &[usize]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<usize>() as f64 / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&xs, 0.50), 3.0);
        assert_eq!(percentile(&xs, 0.99), 5.0);
        assert_eq!(percentile(&xs, 0.01), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn phase_stats_quantiles_match_the_sample_vectors() {
        use crate::generator::generate;
        use crate::replay::replay;
        use crate::spec::WorkloadSpec;

        let mut spec = WorkloadSpec::reference_10k();
        spec.clients = 48;
        spec.steps = 6;
        spec.cohorts = 3;
        spec.arrivals_per_step = 4;
        spec.departures_per_step = 4;
        spec.surge_every = 3;
        spec.surge_size = 12;
        spec.surge_hold = 2;
        spec.budget_every = 2;
        spec.reads_per_step = 2;
        spec.read_batch = 6;
        spec.snapshot_every = 3;
        spec.verify_every = 2;
        spec.min_population = 8;
        spec.shards = 4;
        spec.threads = 1;
        let trace = generate(&spec).expect("generate");
        let outcome = replay(&spec, &trace).expect("replay");
        let record = WorkloadRecord::new(&spec, &trace, &outcome);

        // The histograms and the sample vectors are fed by the same clock
        // reads, so the report's histogram-derived p50/p99 must agree with
        // the old vector-derived percentiles to within one log2-32 bucket:
        // never below the exact value, never more than 1/32 above it.
        for stats in &record.phases {
            let phase = match stats.phase.as_str() {
                "steady" => Phase::Steady,
                _ => Phase::Flash,
            };
            let resolve_ms: Vec<f64> = outcome
                .solves
                .iter()
                .filter(|s| s.phase == phase)
                .map(|s| s.millis)
                .collect();
            let read_ms: Vec<f64> = outcome
                .reads
                .iter()
                .filter(|r| r.phase == phase)
                .map(|r| r.millis)
                .collect();
            assert_eq!(stats.resolves, resolve_ms.len());
            assert_eq!(stats.reads, read_ms.len());
            let checks = [
                (stats.resolve_p50_ms, percentile(&resolve_ms, 0.50)),
                (stats.resolve_p99_ms, percentile(&resolve_ms, 0.99)),
                (stats.read_p50_ms, percentile(&read_ms, 0.50)),
                (stats.read_p99_ms, percentile(&read_ms, 0.99)),
            ];
            for (hist, exact) in checks {
                assert!(
                    hist >= exact && hist <= exact * (1.0 + 1.0 / 32.0) + 1e-9,
                    "phase {}: histogram quantile {hist} ms vs exact {exact} ms",
                    stats.phase
                );
            }
        }
    }

    #[test]
    fn record_roundtrips_through_json() {
        let record = WorkloadRecord {
            bench: "workload".into(),
            transport: "tcp".into(),
            clients: 100,
            steps: 4,
            shards: 2,
            threads: 1,
            seed: 7,
            cohorts: 2,
            period: 4,
            final_clients: 90,
            commands: 42,
            base_budget: 1234.5,
            trace_fingerprint: "00ff".into(),
            price_checksum: "ff00".into(),
            warm_solves: 3,
            cold_solves: 1,
            mean_warm_iterations: 12.5,
            mean_cold_iterations: 40.0,
            mean_dirty_shard_fraction: 0.5,
            max_dirty_shard_fraction: 1.0,
            mean_rebuilt_column_fraction: 0.25,
            verified_steps: 2,
            solver_mode: "exact".into(),
            index_cold_builds: 1,
            index_patches: 3,
            index_segments_rebuilt: 280,
            index_segments_repaired: 0,
            index_segments_reused: 744,
            mean_index_build_ms: 0.8,
            mean_index_patch_ms: 0.05,
            total_wall_seconds: 0.5,
            phases: vec![PhaseStats {
                phase: "steady".into(),
                resolves: 4,
                resolve_p50_ms: 1.0,
                resolve_p99_ms: 2.0,
                reads: 8,
                read_p50_ms: 0.1,
                read_p99_ms: 0.2,
            }],
        };
        let json = serde_json::to_string(&record).expect("serialize");
        let back: WorkloadRecord = serde_json::from_str(&json).expect("parse");
        assert_eq!(record, back);
    }
}
