//! Closed-loop workload harness for the pricing service.
//!
//! The paper's Stage-I pricing game is stationary: draw a population,
//! solve one equilibrium. A deployed pricing service sees nothing of the
//! sort — clients cycle with their timezones, flash crowds join and
//! leave in blocks, budgets are re-negotiated, and read traffic never
//! stops. This crate generates that traffic deterministically and
//! replays it through [`fedfl_service::PricingService`]:
//!
//! * [`spec::WorkloadSpec`] — every knob of the traffic model, validated
//!   so degenerate inputs (zero-length diurnal period, all-clients-removed
//!   floors, non-distribution budget tails) error cleanly;
//! * [`generator::generate`] — spec → [`generator::Trace`], a byte-stable
//!   command stream (diurnal `UpdateAvailability`, heavy-tail churn,
//!   flash crowds, interleaved reads) fingerprinted with FNV-1a;
//! * [`replay::replay`] — trace → [`replay::ReplayOutcome`], timing every
//!   read and re-solve against a live service and certifying served
//!   prices bit-identical to from-scratch solves at `verify_every`
//!   checkpoints;
//! * [`report::WorkloadRecord`] — the JSONL record `BENCH_scale.json`
//!   accumulates across PRs.
//!
//! The same spec produces the same trace, the same served price bits,
//! and the same solver iteration counts regardless of `shards` or thread
//! settings — the property tests in `tests/determinism.rs` pin this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod generator;
pub mod replay;
pub mod report;
pub mod spec;

pub use error::WorkloadError;
pub use generator::{generate, Phase, Trace, TraceOp, TraceStep};
pub use replay::{
    replay, replay_config, replay_observed, replay_with, replay_with_recorder, CommandDriver,
    InProcessDriver, LatencyHistograms, ReplayOutcome,
};
pub use report::WorkloadRecord;
pub use spec::WorkloadSpec;
