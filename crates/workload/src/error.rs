//! Error type for the workload harness.

use fedfl_service::ServiceError;
use fedfl_sim::SimError;
use std::fmt;

/// Everything that can go wrong generating or replaying a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// A [`crate::spec::WorkloadSpec`] field is out of range or degenerate
    /// (zero-length diurnal period, all-clients-removed floor, …).
    InvalidSpec {
        /// Which field is invalid.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// The pricing service rejected a replayed command.
    Service(ServiceError),
    /// A `verify_every` checkpoint found served prices that are not
    /// bit-identical to a from-scratch solve over the same clients.
    VerificationFailed {
        /// The trace step at which the divergence was detected.
        step: usize,
        /// What diverged (client id, served vs. reference bits).
        detail: String,
    },
    /// A timed read absorbed a re-solve, but the driver could not produce
    /// the solve's report — a hand-built or wire-received trace that leads
    /// with a read against a driver with no solve history.
    MissingSolveReport {
        /// The trace step whose read had no report behind it.
        step: usize,
    },
    /// The transport carrying the command stream failed (connection lost,
    /// malformed frame, codec rejection).
    Transport {
        /// What the transport reported.
        detail: String,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::InvalidSpec { field, reason } => {
                write!(f, "invalid workload spec: {field}: {reason}")
            }
            WorkloadError::Service(err) => write!(f, "pricing service error: {err}"),
            WorkloadError::VerificationFailed { step, detail } => {
                write!(
                    f,
                    "bit-identity verification failed at step {step}: {detail}"
                )
            }
            WorkloadError::MissingSolveReport { step } => {
                write!(
                    f,
                    "step {step}: a read absorbed a re-solve but no solve report is available"
                )
            }
            WorkloadError::Transport { detail } => {
                write!(f, "transport error: {detail}")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}

impl From<ServiceError> for WorkloadError {
    fn from(err: ServiceError) -> Self {
        WorkloadError::Service(err)
    }
}

impl From<SimError> for WorkloadError {
    fn from(err: SimError) -> Self {
        WorkloadError::InvalidSpec {
            field: "diurnal",
            reason: err.to_string(),
        }
    }
}
