//! The workload harness's determinism contracts, property-tested:
//!
//! 1. **Trace stability** — the same spec (same seed) generates a
//!    byte-identical command trace on every run: equal canonical
//!    encodings, equal FNV fingerprints.
//! 2. **Execution invariance** — replaying one trace through services
//!    configured with different `shards` and thread counts produces the
//!    same BENCH payload on every deterministic field: trace fingerprint,
//!    served-price checksum, population counts, base budget bits, and
//!    the warm/cold bisection iteration trajectory. Only wall-clock
//!    latencies and shard-layout fields may differ.
//! 3. **Bit-identity under churn** — with `verify_every = 1` every step's
//!    served prices match a from-scratch solve bit for bit.

use fedfl_workload::report::WorkloadRecord;
use fedfl_workload::{generate, replay, WorkloadSpec};
use proptest::prelude::*;

/// A small randomized spec that still exercises every traffic feature:
/// diurnal rotation, steady churn, a flash crowd, budget churn, reads.
fn small_spec(seed: u64, clients: usize, steps: usize, cohorts: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::reference_10k();
    spec.seed = seed;
    spec.clients = clients;
    spec.steps = steps;
    spec.cohorts = cohorts;
    spec.diurnal.period = 6;
    spec.arrivals_per_step = 5;
    spec.departures_per_step = 5;
    spec.surge_every = 3;
    spec.surge_size = 12;
    spec.surge_hold = 2;
    spec.budget_every = 2;
    spec.reads_per_step = 2;
    spec.read_batch = 8;
    spec.snapshot_every = 4;
    spec.verify_every = 0;
    spec.min_population = clients / 2;
    spec.shards = 4;
    spec.threads = 1;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn same_seed_generates_byte_identical_traces(
        seed in 0u64..1_000_000,
        clients in 20usize..60,
        steps in 4usize..8,
        cohorts in 1usize..5,
    ) {
        let spec = small_spec(seed, clients, steps, cohorts);
        let a = generate(&spec).expect("generate");
        let b = generate(&spec).expect("generate");
        prop_assert_eq!(a.fingerprint, b.fingerprint);
        prop_assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn bench_payload_is_identical_across_shard_and_thread_settings(
        seed in 0u64..1_000_000,
        clients in 24usize..56,
        steps in 4usize..7,
    ) {
        let base = small_spec(seed, clients, steps, 3);
        let trace = generate(&base).expect("generate");
        let mut keys = Vec::new();
        for (shards, threads) in [(1usize, 1usize), (4, 1), (7, 2)] {
            let mut spec = base.clone();
            spec.shards = shards;
            spec.threads = threads;
            let outcome = replay(&spec, &trace).expect("replay");
            keys.push(WorkloadRecord::new(&spec, &trace, &outcome).deterministic_key());
        }
        prop_assert_eq!(&keys[0], &keys[1]);
        prop_assert_eq!(&keys[1], &keys[2]);
    }

    #[test]
    fn every_step_is_bit_identical_under_full_verification(
        seed in 0u64..1_000_000,
        clients in 20usize..48,
        steps in 3usize..6,
    ) {
        let mut spec = small_spec(seed, clients, steps, 2);
        spec.verify_every = 1;
        let trace = generate(&spec).expect("generate");
        let outcome = replay(&spec, &trace).expect("verified replay");
        prop_assert_eq!(outcome.verified_steps, steps);
    }
}
