//! Instrumentation guard: full observability must not change a single
//! served price bit, and must stay within a small latency overhead.
//!
//! The cheap test runs everywhere. The `#[ignore]`d test replays the
//! full 10k-client reference workload twice (uninstrumented, then fully
//! instrumented) and is run in release mode by CI:
//!
//! ```sh
//! cargo test --release -p fedfl-workload --test obs_guard -- --ignored
//! ```

use fedfl_obs::{Metric, Registry};
use fedfl_workload::{generate, replay, replay_observed, ReplayOutcome, WorkloadSpec};
use std::sync::Arc;

/// The pinned checksum of the 10k reference workload's final
/// equilibrium — the same constant the CI workload job asserts.
const REFERENCE_10K_CHECKSUM: u64 = 0xe3ac_8f3c_4683_fe7c;

fn tiny_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::reference_10k();
    spec.clients = 48;
    spec.steps = 6;
    spec.cohorts = 3;
    spec.arrivals_per_step = 4;
    spec.departures_per_step = 4;
    spec.surge_every = 3;
    spec.surge_size = 12;
    spec.surge_hold = 2;
    spec.budget_every = 2;
    spec.reads_per_step = 2;
    spec.read_batch = 6;
    spec.snapshot_every = 3;
    spec.verify_every = 2;
    spec.min_population = 8;
    spec.shards = 4;
    spec.threads = 1;
    spec
}

fn mean_resolve_ms(outcome: &ReplayOutcome) -> f64 {
    if outcome.solves.is_empty() {
        return 0.0;
    }
    outcome.solves.iter().map(|s| s.millis).sum::<f64>() / outcome.solves.len() as f64
}

#[test]
fn instrumented_replay_is_bit_identical_and_fully_counted() {
    let spec = tiny_spec();
    let trace = generate(&spec).expect("generate");
    let plain = replay(&spec, &trace).expect("replay");
    let registry = Arc::new(Registry::new());
    let observed = replay_observed(&spec, &trace, Arc::clone(&registry)).expect("observed");

    // Bit-identity: recording never touches solver arithmetic.
    assert_eq!(plain.price_checksum, observed.price_checksum);
    assert_eq!(plain.final_clients, observed.final_clients);
    assert_eq!(plain.solves.len(), observed.solves.len());
    assert_eq!(plain.reads.len(), observed.reads.len());

    // The registry saw every layer of the replay.
    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("fedfl_solver_solves_total"),
        Some(observed.solves.len() as u64)
    );
    assert_eq!(
        snap.counter("fedfl_service_reprices_total"),
        Some(observed.solves.len() as u64)
    );
    assert_eq!(
        snap.counter("fedfl_workload_verified_steps_total"),
        Some(observed.verified_steps as u64)
    );
    // Trace ops + verify snapshots + the final checksum snapshot.
    assert_eq!(
        snap.counter("fedfl_workload_commands_total"),
        Some((trace.commands() + observed.verified_steps + 1) as u64)
    );
    // The workload latency histograms mirror the sample vectors.
    let resolves = snap
        .histogram("fedfl_workload_resolve_steady_ns")
        .map_or(0, |h| h.count)
        + snap
            .histogram("fedfl_workload_resolve_flash_ns")
            .map_or(0, |h| h.count);
    assert_eq!(resolves, observed.solves.len() as u64);
    let reads = snap
        .histogram("fedfl_workload_read_steady_ns")
        .map_or(0, |h| h.count)
        + snap
            .histogram("fedfl_workload_read_flash_ns")
            .map_or(0, |h| h.count);
    assert_eq!(reads, observed.reads.len() as u64);
    // No fallbacks on the exact path, and every solve is accounted for.
    assert_eq!(
        snap.counter(Metric::SolverExactSolves.name()),
        Some(observed.solves.len() as u64)
    );
}

#[test]
#[ignore = "release-mode overhead guard; CI runs it with --ignored"]
fn reference_10k_instrumented_replay_keeps_the_checksum_and_latency() {
    let spec = WorkloadSpec::reference_10k();
    let trace = generate(&spec).expect("generate");

    let plain = replay(&spec, &trace).expect("uninstrumented replay");
    assert_eq!(
        plain.price_checksum, REFERENCE_10K_CHECKSUM,
        "uninstrumented checksum drifted"
    );

    let registry = Arc::new(Registry::new());
    let observed =
        replay_observed(&spec, &trace, Arc::clone(&registry)).expect("instrumented replay");
    assert_eq!(
        observed.price_checksum, REFERENCE_10K_CHECKSUM,
        "instrumentation changed served price bits"
    );

    let snap = registry.snapshot();
    assert_eq!(
        snap.counter("fedfl_solver_solves_total"),
        Some(observed.solves.len() as u64)
    );
    assert!(snap.counter("fedfl_workload_commands_total").unwrap() > 0);

    // Overhead: instrumented mean re-solve latency within 5% of the
    // uninstrumented baseline, plus a small absolute epsilon so the
    // guard is not noise-bound at sub-millisecond solve times.
    let base = mean_resolve_ms(&plain);
    let instrumented = mean_resolve_ms(&observed);
    assert!(
        instrumented <= base * 1.05 + 0.5,
        "instrumented mean re-solve {instrumented:.3} ms vs baseline {base:.3} ms exceeds 5%"
    );
}
