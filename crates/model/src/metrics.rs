//! Evaluation metrics: global loss and test accuracy.
//!
//! The paper's Figure 4 reports global training loss (equation (2)) and test
//! accuracy over time; these helpers compute both from a parameter vector.

use crate::logistic::LogisticModel;
use crate::params::ModelParams;
use fedfl_data::{FederatedDataset, Sample};

/// Classification accuracy of `params` on `samples` (0 for an empty set).
pub fn accuracy(model: &LogisticModel, params: &ModelParams, samples: &[Sample]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let correct = samples
        .iter()
        .filter(|s| model.predict(params, &s.features) == s.label)
        .count();
    correct as f64 / samples.len() as f64
}

/// Global training loss `F(w) = Σ_n a_n F_n(w)` (equation (2) of the paper).
pub fn global_loss(model: &LogisticModel, params: &ModelParams, dataset: &FederatedDataset) -> f64 {
    let weights = dataset.weights();
    dataset
        .clients()
        .iter()
        .zip(&weights)
        .map(|(c, &a)| a * model.loss(params, c.samples()))
        .sum()
}

/// Test accuracy on the dataset's held-out test set.
pub fn test_accuracy(
    model: &LogisticModel,
    params: &ModelParams,
    dataset: &FederatedDataset,
) -> f64 {
    accuracy(model, params, dataset.test_set().samples())
}

/// Per-client local losses `F_n(w)` in client order.
pub fn local_losses(
    model: &LogisticModel,
    params: &ModelParams,
    dataset: &FederatedDataset,
) -> Vec<f64> {
    dataset
        .clients()
        .iter()
        .map(|c| model.loss(params, c.samples()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_data::synthetic::SyntheticConfig;

    #[test]
    fn accuracy_bounds_and_empty_set() {
        let model = LogisticModel::new(2, 2, 0.0).unwrap();
        let params = model.zero_params();
        assert_eq!(accuracy(&model, &params, &[]), 0.0);
        let samples = vec![Sample::new(vec![1.0, 1.0], 0)];
        let a = accuracy(&model, &params, &samples);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn global_loss_is_weighted_mixture_of_local_losses() {
        let ds = SyntheticConfig::small().generate(2).unwrap();
        let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-4).unwrap();
        let params = model.zero_params();
        let global = global_loss(&model, &params, &ds);
        let locals = local_losses(&model, &params, &ds);
        let manual: f64 = ds.weights().iter().zip(&locals).map(|(&a, &l)| a * l).sum();
        assert!((global - manual).abs() < 1e-12);
    }

    #[test]
    fn zero_params_loss_is_log_n_classes() {
        let ds = SyntheticConfig::small().generate(2).unwrap();
        let model = LogisticModel::new(ds.dim(), ds.n_classes(), 0.0).unwrap();
        let params = model.zero_params();
        let loss = global_loss(&model, &params, &ds);
        assert!((loss - (ds.n_classes() as f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn trained_model_beats_random_guessing() {
        let ds = SyntheticConfig::small().generate(4).unwrap();
        let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-4).unwrap();
        let mut params = model.zero_params();
        // A few full-gradient steps on the pooled data.
        let pooled: Vec<Sample> = ds
            .clients()
            .iter()
            .flat_map(|c| c.samples().to_vec())
            .collect();
        for _ in 0..60 {
            let g = model.gradient(&params, &pooled);
            params.add_scaled(-0.5, &g);
        }
        let acc = test_accuracy(&model, &params, &ds);
        let chance = 1.0 / ds.n_classes() as f64;
        assert!(acc > 1.5 * chance, "accuracy {acc} vs chance {chance}");
    }
}
