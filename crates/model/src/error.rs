//! Error type for the model substrate.

use std::fmt;

/// Error returned by model construction and training routines.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A configuration field was invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Parameter/model shape mismatch.
    ShapeMismatch {
        /// Expected `(dim, n_classes)`.
        expected: (usize, usize),
        /// Found `(dim, n_classes)`.
        found: (usize, usize),
    },
    /// Training was asked to run on an empty dataset.
    EmptyDataset,
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            ModelError::ShapeMismatch { expected, found } => write!(
                f,
                "shape mismatch: expected (dim={}, classes={}), found (dim={}, classes={})",
                expected.0, expected.1, found.0, found.1
            ),
            ModelError::EmptyDataset => write!(f, "dataset must contain at least one sample"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let e = ModelError::InvalidConfig {
            field: "l2_reg",
            reason: "must be non-negative".into(),
        };
        assert!(e.to_string().contains("l2_reg"));
        assert!(ModelError::EmptyDataset.to_string().contains("sample"));
        let s = ModelError::ShapeMismatch {
            expected: (3, 2),
            found: (2, 3),
        }
        .to_string();
        assert!(s.contains("dim=3") && s.contains("dim=2"));
    }
}
