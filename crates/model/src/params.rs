//! Model parameter vectors.
//!
//! A multinomial logistic-regression model over `dim` features and
//! `n_classes` classes is parameterised by a `n_classes × (dim + 1)` weight
//! matrix (the last column is the per-class bias), stored flat. The
//! aggregation rules of the FL simulator treat parameters as plain vectors,
//! so [`ModelParams`] exposes the axpy-style operations they need.

use fedfl_num::linalg;
use serde::{Deserialize, Serialize};

/// Flat parameter vector of a multinomial logistic-regression model.
///
/// # Example
///
/// ```
/// use fedfl_model::params::ModelParams;
///
/// let mut w = ModelParams::zeros(3, 2);
/// assert_eq!(w.len(), 2 * 4); // two classes × (3 features + bias)
/// w.as_mut_slice()[0] = 1.0;
/// assert_eq!(w.class_weights(0)[0], 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    dim: usize,
    n_classes: usize,
    data: Vec<f64>,
}

impl ModelParams {
    /// All-zero parameters (the paper's `w⁰ = 0` initialisation).
    pub fn zeros(dim: usize, n_classes: usize) -> Self {
        Self {
            dim,
            n_classes,
            data: vec![0.0; n_classes * (dim + 1)],
        }
    }

    /// Feature dimension (excluding bias).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Total number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the model has zero parameters (never true for valid shapes).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow the flat parameter slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the flat parameter slice.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row of weights for class `c`: `dim` feature weights followed by the
    /// bias.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_classes`.
    pub fn class_weights(&self, c: usize) -> &[f64] {
        let stride = self.dim + 1;
        &self.data[c * stride..(c + 1) * stride]
    }

    /// Mutable row of weights for class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_classes`.
    pub fn class_weights_mut(&mut self, c: usize) -> &mut [f64] {
        let stride = self.dim + 1;
        &mut self.data[c * stride..(c + 1) * stride]
    }

    /// Whether `other` has the same `(dim, n_classes)` shape.
    pub fn same_shape(&self, other: &Self) -> bool {
        self.dim == other.dim && self.n_classes == other.n_classes
    }

    /// `self += alpha · other` (used by the aggregation rules).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn add_scaled(&mut self, alpha: f64, other: &Self) {
        debug_assert!(self.same_shape(other), "add_scaled: shape mismatch");
        linalg::axpy(alpha, &other.data, &mut self.data);
    }

    /// `self *= alpha`.
    pub fn scale(&mut self, alpha: f64) {
        linalg::scale(alpha, &mut self.data);
    }

    /// Difference `self − other` as a new vector (a model *update*).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn delta(&self, other: &Self) -> Self {
        debug_assert!(self.same_shape(other), "delta: shape mismatch");
        let mut out = vec![0.0; self.data.len()];
        linalg::sub(&self.data, &other.data, &mut out);
        Self {
            dim: self.dim,
            n_classes: self.n_classes,
            data: out,
        }
    }

    /// Euclidean norm of the parameter vector.
    pub fn norm(&self) -> f64 {
        linalg::norm2(&self.data)
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn dist_squared(&self, other: &Self) -> f64 {
        debug_assert!(self.same_shape(other), "dist_squared: shape mismatch");
        linalg::dist2_squared(&self.data, &other.data)
    }

    /// Logits `W·[x; 1]` for one input.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x.len() != dim`.
    pub fn logits(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.dim, "logits: feature length mismatch");
        (0..self.n_classes)
            .map(|c| {
                let row = self.class_weights(c);
                linalg::dot(&row[..self.dim], x) + row[self.dim]
            })
            .collect()
    }

    /// Weighted average of parameter vectors: `Σ w_i · params_i`.
    ///
    /// # Panics
    ///
    /// Panics if the slices are empty or shapes differ.
    pub fn weighted_sum(items: &[(f64, &Self)]) -> Self {
        assert!(!items.is_empty(), "weighted_sum needs at least one item");
        let mut acc = Self::zeros(items[0].1.dim, items[0].1.n_classes);
        for &(w, p) in items {
            assert!(acc.same_shape(p), "weighted_sum: shape mismatch");
            acc.add_scaled(w, p);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_rows() {
        let mut w = ModelParams::zeros(4, 3);
        assert_eq!(w.len(), 15);
        assert_eq!((w.dim(), w.n_classes()), (4, 3));
        assert!(!w.is_empty());
        w.class_weights_mut(2)[4] = 9.0; // class-2 bias
        assert_eq!(w.class_weights(2), &[0.0, 0.0, 0.0, 0.0, 9.0]);
    }

    #[test]
    fn logits_include_bias() {
        let mut w = ModelParams::zeros(2, 2);
        w.class_weights_mut(0).copy_from_slice(&[1.0, -1.0, 0.5]);
        w.class_weights_mut(1).copy_from_slice(&[0.0, 2.0, -0.5]);
        let z = w.logits(&[3.0, 1.0]);
        assert_eq!(z, vec![3.0 - 1.0 + 0.5, 2.0 - 0.5]);
    }

    #[test]
    fn arithmetic_operations() {
        let mut a = ModelParams::zeros(1, 1);
        let mut b = ModelParams::zeros(1, 1);
        a.as_mut_slice().copy_from_slice(&[1.0, 2.0]);
        b.as_mut_slice().copy_from_slice(&[3.0, 4.0]);
        a.add_scaled(2.0, &b);
        assert_eq!(a.as_slice(), &[7.0, 10.0]);
        a.scale(0.5);
        assert_eq!(a.as_slice(), &[3.5, 5.0]);
        let d = a.delta(&b);
        assert_eq!(d.as_slice(), &[0.5, 1.0]);
        assert!((a.dist_squared(&b) - (0.25 + 1.0)).abs() < 1e-12);
        assert!((d.norm() - (0.25f64 + 1.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn weighted_sum_recovers_average() {
        let mut a = ModelParams::zeros(1, 1);
        let mut b = ModelParams::zeros(1, 1);
        a.as_mut_slice().copy_from_slice(&[2.0, 0.0]);
        b.as_mut_slice().copy_from_slice(&[0.0, 4.0]);
        let avg = ModelParams::weighted_sum(&[(0.5, &a), (0.5, &b)]);
        assert_eq!(avg.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn weighted_sum_rejects_empty() {
        ModelParams::weighted_sum(&[]);
    }

    #[test]
    fn same_shape_detects_mismatch() {
        let a = ModelParams::zeros(2, 2);
        let b = ModelParams::zeros(3, 2);
        assert!(!a.same_shape(&b));
        assert!(a.same_shape(&a.clone()));
    }
}
