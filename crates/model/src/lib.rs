//! # fedfl-model — convex ML substrate
//!
//! The paper trains a convex multinomial logistic-regression model with
//! mini-batch local SGD (Section VI-A.2: batch size 24, `E = 100` local
//! iterations, initial learning rate 0.1 with decay 0.996). This crate
//! implements that model and everything the mechanism needs from it:
//!
//! * [`params`] — flat parameter vectors with the linear-algebra operations
//!   the aggregation rules use.
//! * [`logistic`] — softmax cross-entropy loss with ℓ2 regularisation, full
//!   and mini-batch gradients. The ℓ2 term makes the objective µ-strongly
//!   convex (Assumption 1).
//! * [`sgd`] — local SGD with the paper's learning-rate schedules, tracking
//!   the squared stochastic-gradient norms that estimate `G_n`
//!   (Assumption 3).
//! * [`metrics`] — training loss and test accuracy.
//! * [`estimate`] — empirical estimators for `G_n`, the smoothness constant
//!   `L` and the gradient variance `σ_n²`, used to instantiate the
//!   convergence bound of Theorem 1.
//!
//! # Example
//!
//! ```
//! use fedfl_data::synthetic::SyntheticConfig;
//! use fedfl_model::logistic::LogisticModel;
//! use fedfl_model::params::ModelParams;
//!
//! let ds = SyntheticConfig::small().generate(1)?;
//! let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-4)?;
//! let params = ModelParams::zeros(ds.dim(), ds.n_classes());
//! let loss = model.loss(&params, ds.client(0).samples());
//! assert!(loss > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod estimate;
pub mod logistic;
pub mod metrics;
pub mod params;
pub mod sgd;

pub use error::ModelError;
pub use logistic::LogisticModel;
pub use params::ModelParams;
