//! Estimators for the constants of the convergence bound (Theorem 1).
//!
//! The paper instantiates its bound with task-dependent constants: the
//! per-client gradient-norm bounds `G_n` (Assumption 3, "we can estimate
//! `G_n` by letting the participated clients send back their actual local
//! stochastic gradient norms computed along the trajectory of the model
//! updates"), the gradient variances `σ_n²` (Assumption 2), the smoothness
//! constant `L` and strong-convexity modulus `µ` (Assumption 1), and the
//! intrinsic-value reference losses `F(w*_n)` (equation (7)). This module
//! estimates all of them from short warm-up runs.

use crate::error::ModelError;
use crate::logistic::LogisticModel;
use crate::metrics::global_loss;
use crate::sgd::{run_local_sgd, LocalSgdConfig};
use fedfl_data::FederatedDataset;
use fedfl_num::rng::substream;
use serde::{Deserialize, Serialize};

/// Estimated problem constants used to instantiate Theorem 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneityEstimate {
    /// Per-client squared gradient-norm bounds `G_n²`.
    pub g_squared: Vec<f64>,
    /// Per-client stochastic-gradient variances `σ_n²`.
    pub sigma_squared: Vec<f64>,
    /// Upper bound on the smoothness constant `L`.
    pub l_bound: f64,
    /// Strong-convexity modulus `µ` (the model's ℓ2 coefficient).
    pub mu: f64,
    /// Estimate of `‖w⁰ − w*‖²`.
    pub w0_dist_squared: f64,
}

impl HeterogeneityEstimate {
    /// Per-client `a_n² G_n²` products for the given weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the number of clients.
    pub fn weighted_g_squared(&self, weights: &[f64]) -> Vec<f64> {
        assert_eq!(weights.len(), self.g_squared.len(), "weight count mismatch");
        weights
            .iter()
            .zip(&self.g_squared)
            .map(|(&a, &g2)| a * a * g2)
            .collect()
    }
}

/// Estimate `G_n²`, `σ_n²`, `L` and `‖w⁰ − w*‖²` from `warmup_rounds` of
/// full-participation training.
///
/// The warm-up mirrors the measurement the paper describes: clients run
/// their normal local SGD and report the squared norms of the stochastic
/// gradients they actually computed; the server tracks the running maximum
/// per client.
///
/// # Errors
///
/// Returns [`ModelError`] if the configuration is invalid or a client shard
/// is empty.
pub fn estimate_heterogeneity(
    seed: u64,
    model: &LogisticModel,
    dataset: &FederatedDataset,
    sgd: &LocalSgdConfig,
    warmup_rounds: usize,
) -> Result<HeterogeneityEstimate, ModelError> {
    sgd.validate()?;
    let n = dataset.n_clients();
    let weights = dataset.weights();
    let mut params = model.zero_params();
    let w0 = params.clone();
    let mut g_squared = vec![0.0f64; n];
    let mut rng = substream(seed, 0x47);

    for round in 0..warmup_rounds.max(1) {
        let mut next = model.zero_params();
        for (idx, client) in dataset.clients().iter().enumerate() {
            let update = run_local_sgd(&mut rng, model, &params, client.samples(), sgd, round)?;
            g_squared[idx] = g_squared[idx].max(update.max_grad_norm_squared());
            next.add_scaled(weights[idx], &update.params);
        }
        params = next;
    }

    // σ_n²: variance of mini-batch gradients around the full local gradient
    // at the warmed-up iterate.
    let mut sigma_squared = vec![0.0f64; n];
    let trials = 8;
    for (idx, client) in dataset.clients().iter().enumerate() {
        let full = model.gradient(&params, client.samples());
        let mut acc = 0.0;
        for _ in 0..trials {
            let update = run_local_sgd(
                &mut rng,
                model,
                &params,
                client.samples(),
                &LocalSgdConfig {
                    local_steps: 1,
                    ..*sgd
                },
                warmup_rounds,
            )?;
            // Recover the stochastic gradient from the single step:
            // w' = w − η g  =>  g = (w − w') / η.
            let eta = sgd.schedule.rate(warmup_rounds);
            let mut g = params.delta(&update.params);
            g.scale(1.0 / eta);
            acc += g.dist_squared(&full);
        }
        sigma_squared[idx] = acc / trials as f64;
    }

    // Smoothness bound from the pooled data (L is a property of F).
    let l_bound = dataset
        .clients()
        .iter()
        .map(|c| model.smoothness_upper_bound(c.samples()))
        .fold(0.0f64, f64::max);

    // ‖w⁰ − w*‖² proxy: distance from w⁰ to the warmed-up iterate; a lower
    // bound that keeps the β constant in a realistic range.
    let w0_dist_squared = params.dist_squared(&w0);

    Ok(HeterogeneityEstimate {
        g_squared,
        sigma_squared,
        l_bound,
        mu: model.mu(),
        w0_dist_squared,
    })
}

/// For every client, train a local-only model to near-optimality and report
/// the *global* loss `F(w*_n)` of that local optimum — the reference level
/// of the intrinsic-value model (equation (7) of the paper).
///
/// # Errors
///
/// Returns [`ModelError::EmptyDataset`] if a client shard is empty.
pub fn local_optimum_global_losses(
    model: &LogisticModel,
    dataset: &FederatedDataset,
    gd_steps: usize,
    step_size: f64,
) -> Result<Vec<f64>, ModelError> {
    let mut out = Vec::with_capacity(dataset.n_clients());
    for client in dataset.clients() {
        if client.is_empty() {
            return Err(ModelError::EmptyDataset);
        }
        let mut params = model.zero_params();
        for _ in 0..gd_steps {
            let g = model.gradient(&params, client.samples());
            params.add_scaled(-step_size, &g);
        }
        out.push(global_loss(model, &params, dataset));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_data::synthetic::SyntheticConfig;

    fn setup() -> (FederatedDataset, LogisticModel) {
        let ds = SyntheticConfig::small().generate(21).unwrap();
        let model = LogisticModel::new(ds.dim(), ds.n_classes(), 1e-3).unwrap();
        (ds, model)
    }

    #[test]
    fn estimates_are_positive_and_shaped() {
        let (ds, model) = setup();
        let est = estimate_heterogeneity(7, &model, &ds, &LocalSgdConfig::fast(), 3).unwrap();
        assert_eq!(est.g_squared.len(), ds.n_clients());
        assert_eq!(est.sigma_squared.len(), ds.n_clients());
        assert!(est.g_squared.iter().all(|&g| g > 0.0));
        assert!(est.sigma_squared.iter().all(|&s| s >= 0.0));
        assert!(est.l_bound > 0.0);
        assert_eq!(est.mu, model.mu());
        assert!(est.w0_dist_squared > 0.0);
    }

    #[test]
    fn estimation_is_deterministic_per_seed() {
        let (ds, model) = setup();
        let a = estimate_heterogeneity(3, &model, &ds, &LocalSgdConfig::fast(), 2).unwrap();
        let b = estimate_heterogeneity(3, &model, &ds, &LocalSgdConfig::fast(), 2).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn g_estimates_reflect_client_heterogeneity() {
        let (ds, model) = setup();
        let est = estimate_heterogeneity(11, &model, &ds, &LocalSgdConfig::fast(), 3).unwrap();
        // Non-i.i.d. shards: the spread of G_n across clients is material.
        let max = est.g_squared.iter().cloned().fold(f64::MIN, f64::max);
        let min = est.g_squared.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.05, "G_n spread too small: {min}..{max}");
    }

    #[test]
    fn weighted_g_squared_applies_weights() {
        let est = HeterogeneityEstimate {
            g_squared: vec![4.0, 9.0],
            sigma_squared: vec![0.0, 0.0],
            l_bound: 1.0,
            mu: 0.1,
            w0_dist_squared: 1.0,
        };
        assert_eq!(est.weighted_g_squared(&[0.5, 2.0]), vec![1.0, 36.0]);
    }

    #[test]
    fn local_optima_beat_or_match_zero_model_locally() {
        let (ds, model) = setup();
        let losses = local_optimum_global_losses(&model, &ds, 40, 0.3).unwrap();
        assert_eq!(losses.len(), ds.n_clients());
        // Each F(w*_n) is a valid finite loss; skewed local shards give
        // global losses above the all-data optimum.
        assert!(losses.iter().all(|&l| l.is_finite() && l > 0.0));
    }
}
