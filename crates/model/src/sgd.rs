//! Local SGD — the client-side optimiser of FedAvg.
//!
//! Each participating client runs `E` mini-batch SGD steps on its local loss
//! (equation (1) of the paper) starting from the current global model. The
//! paper's experiments use batch size 24, `E = 100`, initial learning rate
//! 0.1 with multiplicative decay 0.996 per round; its theory uses the
//! `η_r = 2 / (µ(r + γ))` schedule of Theorem 1. Both schedules are
//! provided.

use crate::error::ModelError;
use crate::logistic::LogisticModel;
use crate::params::ModelParams;
use fedfl_data::Sample;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Learning-rate schedule across communication rounds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f64),
    /// `η_r = initial · decay^r` — the experimental schedule of the paper
    /// (initial 0.1, decay 0.996).
    ExponentialDecay {
        /// Learning rate at round 0.
        initial: f64,
        /// Multiplicative decay per round.
        decay: f64,
    },
    /// `η_r = 2 / (µ (γ + r))` with `γ = max(8L, µE)/µ` — the theoretical
    /// schedule of Theorem 1.
    Theoretical {
        /// Strong-convexity modulus µ.
        mu: f64,
        /// Smoothness constant L.
        l: f64,
        /// Local iterations per round E.
        local_steps: usize,
    },
}

impl LrSchedule {
    /// The paper's experimental schedule: initial 0.1, decay 0.996.
    pub fn paper_default() -> Self {
        LrSchedule::ExponentialDecay {
            initial: 0.1,
            decay: 0.996,
        }
    }

    /// Learning rate for communication round `r` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if the schedule parameters are non-positive.
    pub fn rate(&self, round: usize) -> f64 {
        match *self {
            LrSchedule::Constant(eta) => {
                assert!(eta > 0.0, "learning rate must be positive");
                eta
            }
            LrSchedule::ExponentialDecay { initial, decay } => {
                assert!(initial > 0.0 && decay > 0.0, "invalid decay schedule");
                initial * decay.powi(round as i32)
            }
            LrSchedule::Theoretical { mu, l, local_steps } => {
                assert!(mu > 0.0 && l > 0.0 && local_steps > 0, "invalid schedule");
                let gamma = (8.0 * l).max(mu * local_steps as f64) / mu;
                2.0 / (mu * (gamma + round as f64))
            }
        }
    }
}

/// Configuration of the client-side optimiser.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalSgdConfig {
    /// Local iterations per round `E`.
    pub local_steps: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
}

impl LocalSgdConfig {
    /// The paper's experimental configuration: `E = 100`, batch 24,
    /// exponential-decay schedule.
    pub fn paper_default() -> Self {
        Self {
            local_steps: 100,
            batch_size: 24,
            schedule: LrSchedule::paper_default(),
        }
    }

    /// A fast configuration for tests and examples.
    pub fn fast() -> Self {
        Self {
            local_steps: 5,
            batch_size: 16,
            schedule: LrSchedule::paper_default(),
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] for zero steps or batch size.
    pub fn validate(&self) -> Result<(), ModelError> {
        if self.local_steps == 0 {
            return Err(ModelError::InvalidConfig {
                field: "local_steps",
                reason: "must be positive".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(ModelError::InvalidConfig {
                field: "batch_size",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }
}

/// Outcome of one client's local training in one round.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalUpdate {
    /// Locally-updated parameters `w_n^{r+1}`.
    pub params: ModelParams,
    /// Squared norms `‖∇̃F_n‖²` of every stochastic gradient evaluated,
    /// used to estimate `G_n²` (Assumption 3).
    pub grad_norms_squared: Vec<f64>,
}

impl LocalUpdate {
    /// Maximum squared stochastic-gradient norm seen this round.
    pub fn max_grad_norm_squared(&self) -> f64 {
        self.grad_norms_squared.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean squared stochastic-gradient norm seen this round.
    pub fn mean_grad_norm_squared(&self) -> f64 {
        if self.grad_norms_squared.is_empty() {
            0.0
        } else {
            self.grad_norms_squared.iter().sum::<f64>() / self.grad_norms_squared.len() as f64
        }
    }
}

/// Run `E` local SGD steps from `start` on `samples`.
///
/// Mini-batches are drawn with replacement, which matches the unbiasedness
/// requirement of Assumption 2 (each stochastic gradient is an unbiased
/// estimate of the local full gradient).
///
/// # Errors
///
/// Returns [`ModelError::EmptyDataset`] when `samples` is empty and
/// [`ModelError::InvalidConfig`]/[`ModelError::ShapeMismatch`] for invalid
/// configuration or parameter shape.
pub fn run_local_sgd<R: Rng + ?Sized>(
    rng: &mut R,
    model: &LogisticModel,
    start: &ModelParams,
    samples: &[Sample],
    config: &LocalSgdConfig,
    round: usize,
) -> Result<LocalUpdate, ModelError> {
    config.validate()?;
    model.check_shape(start)?;
    if samples.is_empty() {
        return Err(ModelError::EmptyDataset);
    }
    let eta = config.schedule.rate(round);
    let batch = config.batch_size.min(samples.len());
    let mut params = start.clone();
    let mut grad_norms_squared = Vec::with_capacity(config.local_steps);
    let mut batch_indices = vec![0usize; batch];
    for _ in 0..config.local_steps {
        for slot in batch_indices.iter_mut() {
            *slot = rng.random_range(0..samples.len());
        }
        let grad = model.gradient_of(&params, batch_indices.iter().map(|&i| &samples[i]));
        grad_norms_squared.push(grad.norm().powi(2));
        params.add_scaled(-eta, &grad);
    }
    Ok(LocalUpdate {
        params,
        grad_norms_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::rng::seeded;

    fn toy_samples() -> Vec<Sample> {
        (0..64)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                Sample::new(vec![sign * 2.0, -sign], usize::from(i % 2 == 1))
            })
            .collect()
    }

    #[test]
    fn schedules_decay_correctly() {
        let exp = LrSchedule::ExponentialDecay {
            initial: 0.1,
            decay: 0.996,
        };
        assert!((exp.rate(0) - 0.1).abs() < 1e-15);
        assert!((exp.rate(1) - 0.0996).abs() < 1e-12);
        assert!(exp.rate(100) < exp.rate(50));

        let theory = LrSchedule::Theoretical {
            mu: 0.1,
            l: 1.0,
            local_steps: 10,
        };
        // γ = max(8, 1)/0.1 = 80, η_0 = 2/(0.1·80) = 0.25.
        assert!((theory.rate(0) - 0.25).abs() < 1e-12);
        assert!(theory.rate(10) < theory.rate(0));

        assert_eq!(LrSchedule::Constant(0.05).rate(7), 0.05);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn constant_schedule_rejects_zero() {
        LrSchedule::Constant(0.0).rate(0);
    }

    #[test]
    fn config_validation() {
        assert!(LocalSgdConfig::paper_default().validate().is_ok());
        let mut bad = LocalSgdConfig::fast();
        bad.local_steps = 0;
        assert!(bad.validate().is_err());
        let mut bad = LocalSgdConfig::fast();
        bad.batch_size = 0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn sgd_reduces_local_loss() {
        let model = LogisticModel::new(2, 2, 1e-3).unwrap();
        let samples = toy_samples();
        let start = model.zero_params();
        let mut rng = seeded(3);
        let config = LocalSgdConfig {
            local_steps: 50,
            batch_size: 16,
            schedule: LrSchedule::Constant(0.2),
        };
        let update = run_local_sgd(&mut rng, &model, &start, &samples, &config, 0).unwrap();
        assert!(model.loss(&update.params, &samples) < model.loss(&start, &samples));
        assert_eq!(update.grad_norms_squared.len(), 50);
        assert!(update.max_grad_norm_squared() >= update.mean_grad_norm_squared());
    }

    #[test]
    fn sgd_is_deterministic_per_seed() {
        let model = LogisticModel::new(2, 2, 1e-3).unwrap();
        let samples = toy_samples();
        let start = model.zero_params();
        let config = LocalSgdConfig::fast();
        let a = run_local_sgd(&mut seeded(9), &model, &start, &samples, &config, 0).unwrap();
        let b = run_local_sgd(&mut seeded(9), &model, &start, &samples, &config, 0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sgd_rejects_empty_dataset_and_bad_shape() {
        let model = LogisticModel::new(2, 2, 0.0).unwrap();
        let config = LocalSgdConfig::fast();
        let start = model.zero_params();
        assert_eq!(
            run_local_sgd(&mut seeded(1), &model, &start, &[], &config, 0),
            Err(ModelError::EmptyDataset)
        );
        let wrong = ModelParams::zeros(3, 2);
        assert!(matches!(
            run_local_sgd(&mut seeded(1), &model, &wrong, &toy_samples(), &config, 0),
            Err(ModelError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn later_rounds_take_smaller_steps() {
        let model = LogisticModel::new(2, 2, 1e-3).unwrap();
        let samples = toy_samples();
        let start = model.zero_params();
        let config = LocalSgdConfig {
            local_steps: 10,
            batch_size: 8,
            schedule: LrSchedule::ExponentialDecay {
                initial: 0.1,
                decay: 0.5,
            },
        };
        let early = run_local_sgd(&mut seeded(4), &model, &start, &samples, &config, 0).unwrap();
        let late = run_local_sgd(&mut seeded(4), &model, &start, &samples, &config, 10).unwrap();
        let early_move = early.params.dist_squared(&start);
        let late_move = late.params.dist_squared(&start);
        assert!(
            late_move < early_move,
            "late {late_move} vs early {early_move}"
        );
    }

    #[test]
    fn batch_larger_than_dataset_is_clamped() {
        let model = LogisticModel::new(2, 2, 0.0).unwrap();
        let samples = toy_samples()[..4].to_vec();
        let config = LocalSgdConfig {
            local_steps: 3,
            batch_size: 1000,
            schedule: LrSchedule::Constant(0.1),
        };
        let start = model.zero_params();
        let update = run_local_sgd(&mut seeded(5), &model, &start, &samples, &config, 0).unwrap();
        assert_eq!(update.grad_norms_squared.len(), 3);
    }
}
