//! Multinomial (softmax) logistic regression with ℓ2 regularisation.
//!
//! The objective on a sample set `S` is
//!
//! ```text
//! F(w) = (1/|S|) Σ_{(x,y) ∈ S} −log softmax(W·[x;1])_y + (µ/2)‖w‖²
//! ```
//!
//! which is µ-strongly convex and L-smooth (Assumption 1 of the paper);
//! multinomial logistic regression is exactly the model used in the paper's
//! experiments (Section VI-A.2).

use crate::error::ModelError;
use crate::params::ModelParams;
use fedfl_data::Sample;
use serde::{Deserialize, Serialize};

/// A multinomial logistic-regression problem definition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticModel {
    dim: usize,
    n_classes: usize,
    l2_reg: f64,
}

impl LogisticModel {
    /// Define a model over `dim` features and `n_classes` classes with ℓ2
    /// regularisation strength `l2_reg` (the strong-convexity modulus µ).
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] if `dim == 0`, `n_classes < 2`,
    /// or `l2_reg` is negative/non-finite.
    pub fn new(dim: usize, n_classes: usize, l2_reg: f64) -> Result<Self, ModelError> {
        if dim == 0 {
            return Err(ModelError::InvalidConfig {
                field: "dim",
                reason: "must be positive".into(),
            });
        }
        if n_classes < 2 {
            return Err(ModelError::InvalidConfig {
                field: "n_classes",
                reason: "need at least two classes".into(),
            });
        }
        if !l2_reg.is_finite() || l2_reg < 0.0 {
            return Err(ModelError::InvalidConfig {
                field: "l2_reg",
                reason: format!("must be finite and non-negative, got {l2_reg}"),
            });
        }
        Ok(Self {
            dim,
            n_classes,
            l2_reg,
        })
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Strong-convexity modulus µ (the ℓ2 coefficient).
    pub fn mu(&self) -> f64 {
        self.l2_reg
    }

    /// Fresh zero parameters of the right shape.
    pub fn zero_params(&self) -> ModelParams {
        ModelParams::zeros(self.dim, self.n_classes)
    }

    /// Check that `params` matches this model's shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] on mismatch.
    pub fn check_shape(&self, params: &ModelParams) -> Result<(), ModelError> {
        if params.dim() != self.dim || params.n_classes() != self.n_classes {
            return Err(ModelError::ShapeMismatch {
                expected: (self.dim, self.n_classes),
                found: (params.dim(), params.n_classes()),
            });
        }
        Ok(())
    }

    /// Numerically-stable softmax probabilities from logits (in place).
    pub fn softmax(logits: &mut [f64]) {
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for z in logits.iter_mut() {
            *z = (*z - max).exp();
            total += *z;
        }
        for z in logits.iter_mut() {
            *z /= total;
        }
    }

    /// Average cross-entropy loss plus ℓ2 penalty on `samples`.
    ///
    /// Returns only the ℓ2 penalty when `samples` is empty (an empty shard
    /// contributes no data term).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn loss(&self, params: &ModelParams, samples: &[Sample]) -> f64 {
        debug_assert!(self.check_shape(params).is_ok());
        let reg = 0.5 * self.l2_reg * params.norm().powi(2);
        if samples.is_empty() {
            return reg;
        }
        let mut total = 0.0;
        for s in samples {
            let logits = params.logits(&s.features);
            let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let log_sum: f64 = logits.iter().map(|&z| (z - max).exp()).sum::<f64>().ln() + max;
            total += log_sum - logits[s.label];
        }
        total / samples.len() as f64 + reg
    }

    /// Full-batch gradient of [`LogisticModel::loss`] at `params`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn gradient(&self, params: &ModelParams, samples: &[Sample]) -> ModelParams {
        self.gradient_of(params, samples.iter())
    }

    /// Gradient over an arbitrary iterator of samples (used for mini-batches
    /// without materialising them).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn gradient_of<'a, I>(&self, params: &ModelParams, samples: I) -> ModelParams
    where
        I: Iterator<Item = &'a Sample>,
    {
        debug_assert!(self.check_shape(params).is_ok());
        let mut grad = self.zero_params();
        let mut count = 0usize;
        for s in samples {
            count += 1;
            let mut probs = params.logits(&s.features);
            Self::softmax(&mut probs);
            for (c, &prob) in probs.iter().enumerate() {
                let coef = prob - if c == s.label { 1.0 } else { 0.0 };
                let row = grad.class_weights_mut(c);
                for (j, &xj) in s.features.iter().enumerate() {
                    row[j] += coef * xj;
                }
                row[self.dim] += coef; // bias input is 1
            }
        }
        if count > 0 {
            grad.scale(1.0 / count as f64);
        }
        // ℓ2 term: ∇(µ/2 ‖w‖²) = µ w.
        grad.add_scaled(self.l2_reg, params);
        grad
    }

    /// Predicted class (argmax of logits).
    ///
    /// # Panics
    ///
    /// Panics in debug builds on shape mismatch.
    pub fn predict(&self, params: &ModelParams, features: &[f64]) -> usize {
        let logits = params.logits(features);
        let mut best = 0;
        for (i, &z) in logits.iter().enumerate() {
            if z > logits[best] {
                best = i;
            }
        }
        best
    }

    /// An upper bound on the smoothness constant `L` of the loss on a sample
    /// set: `L ≤ (1/2)·max‖[x;1]‖² + µ` for softmax cross-entropy (the
    /// softmax Hessian has spectral norm at most 1/2).
    pub fn smoothness_upper_bound(&self, samples: &[Sample]) -> f64 {
        let max_x2 = samples
            .iter()
            .map(|s| fedfl_num::linalg::norm2_squared(&s.features) + 1.0)
            .fold(0.0f64, f64::max);
        0.5 * max_x2 + self.l2_reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_like_samples() -> Vec<Sample> {
        vec![
            Sample::new(vec![2.0, 0.1], 0),
            Sample::new(vec![1.8, -0.2], 0),
            Sample::new(vec![-2.0, 0.3], 1),
            Sample::new(vec![-2.2, 0.0], 1),
        ]
    }

    #[test]
    fn constructor_validates() {
        assert!(LogisticModel::new(0, 2, 0.0).is_err());
        assert!(LogisticModel::new(2, 1, 0.0).is_err());
        assert!(LogisticModel::new(2, 2, -1.0).is_err());
        assert!(LogisticModel::new(2, 2, f64::NAN).is_err());
        assert!(LogisticModel::new(2, 2, 0.1).is_ok());
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let mut z = vec![1000.0, 1001.0, 999.0];
        LogisticModel::softmax(&mut z);
        assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(z.iter().all(|&p| p.is_finite() && p >= 0.0));
        assert!(z[1] > z[0] && z[0] > z[2]);
    }

    #[test]
    fn zero_params_loss_is_log_classes() {
        let model = LogisticModel::new(2, 4, 0.0).unwrap();
        let params = model.zero_params();
        let samples = vec![Sample::new(vec![1.0, -1.0], 2)];
        let loss = model.loss(&params, &samples);
        assert!((loss - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_set_gives_pure_regulariser() {
        let model = LogisticModel::new(2, 2, 2.0).unwrap();
        let mut params = model.zero_params();
        params.as_mut_slice()[0] = 3.0;
        assert!((model.loss(&params, &[]) - 0.5 * 2.0 * 9.0).abs() < 1e-12);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let model = LogisticModel::new(2, 3, 0.05).unwrap();
        let mut params = model.zero_params();
        for (i, v) in params.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.37).sin() * 0.5;
        }
        let samples = vec![
            Sample::new(vec![0.5, -1.0], 0),
            Sample::new(vec![-0.3, 0.8], 2),
            Sample::new(vec![1.5, 0.2], 1),
        ];
        let grad = model.gradient(&params, &samples);
        let eps = 1e-6;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = params.clone();
            minus.as_mut_slice()[i] -= eps;
            let fd = (model.loss(&plus, &samples) - model.loss(&minus, &samples)) / (2.0 * eps);
            assert!(
                (grad.as_slice()[i] - fd).abs() < 1e-5,
                "component {i}: analytic {} vs fd {fd}",
                grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn gradient_descent_reduces_loss_and_learns() {
        let model = LogisticModel::new(2, 2, 1e-3).unwrap();
        let samples = xor_like_samples();
        let mut params = model.zero_params();
        let mut prev = model.loss(&params, &samples);
        for _ in 0..200 {
            let g = model.gradient(&params, &samples);
            params.add_scaled(-0.5, &g);
            let now = model.loss(&params, &samples);
            assert!(now <= prev + 1e-9, "loss increased: {prev} -> {now}");
            prev = now;
        }
        for s in &samples {
            assert_eq!(model.predict(&params, &s.features), s.label);
        }
    }

    #[test]
    fn strong_convexity_via_gradient_monotonicity() {
        // <∇F(w1) − ∇F(w2), w1 − w2> >= µ ‖w1 − w2‖² for µ-strongly convex F.
        let mu = 0.7;
        let model = LogisticModel::new(2, 3, mu).unwrap();
        let samples = xor_like_samples()
            .into_iter()
            .map(|mut s| {
                s.label %= 3;
                s
            })
            .collect::<Vec<_>>();
        let mut w1 = model.zero_params();
        let mut w2 = model.zero_params();
        for (i, v) in w1.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64).cos();
        }
        for (i, v) in w2.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 2.0).sin() - 0.3;
        }
        let g1 = model.gradient(&w1, &samples);
        let g2 = model.gradient(&w2, &samples);
        let gdiff = g1.delta(&g2);
        let wdiff = w1.delta(&w2);
        let inner = fedfl_num::linalg::dot(gdiff.as_slice(), wdiff.as_slice());
        let d2 = wdiff.norm().powi(2);
        assert!(
            inner >= mu * d2 - 1e-9,
            "inner {inner} vs mu*d2 {}",
            mu * d2
        );
    }

    #[test]
    fn smoothness_bound_dominates_gradient_lipschitz_ratio() {
        let model = LogisticModel::new(2, 2, 0.1).unwrap();
        let samples = xor_like_samples();
        let l_bound = model.smoothness_upper_bound(&samples);
        // Empirical Lipschitz ratio along random directions must not exceed it.
        let mut w1 = model.zero_params();
        for (i, v) in w1.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f64 * 0.13).sin();
        }
        let mut w2 = w1.clone();
        for v in w2.as_mut_slice().iter_mut() {
            *v += 0.01;
        }
        let g1 = model.gradient(&w1, &samples);
        let g2 = model.gradient(&w2, &samples);
        let ratio = g1.delta(&g2).norm() / w1.delta(&w2).norm();
        assert!(ratio <= l_bound, "ratio {ratio} vs bound {l_bound}");
    }

    #[test]
    fn check_shape_errors() {
        let model = LogisticModel::new(3, 2, 0.0).unwrap();
        assert!(model.check_shape(&ModelParams::zeros(3, 2)).is_ok());
        assert!(model.check_shape(&ModelParams::zeros(2, 2)).is_err());
        assert!(model.check_shape(&ModelParams::zeros(3, 4)).is_err());
    }
}
