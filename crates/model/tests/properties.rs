//! Property-based tests for the convex ML substrate: analytic gradients,
//! convexity structure, and optimiser invariants on random instances.

use fedfl_data::Sample;
use fedfl_model::logistic::LogisticModel;
use fedfl_model::params::ModelParams;
use fedfl_model::sgd::{run_local_sgd, LocalSgdConfig, LrSchedule};
use fedfl_num::linalg::dot;
use fedfl_num::rng::seeded;
use proptest::prelude::*;

fn random_samples(dim: usize, n_classes: usize, count: usize, seed: u64) -> Vec<Sample> {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..count)
        .map(|_| {
            let features: Vec<f64> = (0..dim).map(|_| next() * 4.0 - 2.0).collect();
            let label = (next() * n_classes as f64) as usize % n_classes;
            Sample::new(features, label)
        })
        .collect()
}

fn random_params(dim: usize, n_classes: usize, scale: f64, seed: u64) -> ModelParams {
    let mut p = ModelParams::zeros(dim, n_classes);
    for (i, v) in p.as_mut_slice().iter_mut().enumerate() {
        *v = ((i as f64 + seed as f64 % 97.0) * 0.61803).sin() * scale;
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gradient_matches_finite_differences(
        dim in 2usize..5,
        n_classes in 2usize..4,
        mu in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let model = LogisticModel::new(dim, n_classes, mu).unwrap();
        let samples = random_samples(dim, n_classes, 6, seed);
        let params = random_params(dim, n_classes, 0.5, seed);
        let grad = model.gradient(&params, &samples);
        let eps = 1e-6;
        for i in 0..params.len() {
            let mut plus = params.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = params.clone();
            minus.as_mut_slice()[i] -= eps;
            let fd = (model.loss(&plus, &samples) - model.loss(&minus, &samples)) / (2.0 * eps);
            prop_assert!(
                (grad.as_slice()[i] - fd).abs() < 1e-4,
                "component {i}: {} vs {fd}", grad.as_slice()[i]
            );
        }
    }

    #[test]
    fn loss_is_convex_along_segments(
        dim in 2usize..5,
        n_classes in 2usize..4,
        t in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = LogisticModel::new(dim, n_classes, 0.01).unwrap();
        let samples = random_samples(dim, n_classes, 8, seed);
        let w1 = random_params(dim, n_classes, 0.8, seed);
        let w2 = random_params(dim, n_classes, 0.8, seed.wrapping_add(1));
        // w_t = (1-t) w1 + t w2.
        let mut wt = w1.clone();
        wt.scale(1.0 - t);
        wt.add_scaled(t, &w2);
        let lhs = model.loss(&wt, &samples);
        let rhs = (1.0 - t) * model.loss(&w1, &samples) + t * model.loss(&w2, &samples);
        prop_assert!(lhs <= rhs + 1e-9, "convexity violated: {lhs} > {rhs}");
    }

    #[test]
    fn gradient_monotonicity_certifies_strong_convexity(
        dim in 2usize..5,
        mu in 0.01f64..1.0,
        seed in any::<u64>(),
    ) {
        let model = LogisticModel::new(dim, 3, mu).unwrap();
        let samples = random_samples(dim, 3, 8, seed);
        let w1 = random_params(dim, 3, 1.0, seed);
        let w2 = random_params(dim, 3, 1.0, seed.wrapping_add(7));
        let g1 = model.gradient(&w1, &samples);
        let g2 = model.gradient(&w2, &samples);
        let gdiff = g1.delta(&g2);
        let wdiff = w1.delta(&w2);
        let inner = dot(gdiff.as_slice(), wdiff.as_slice());
        let d2 = wdiff.norm().powi(2);
        prop_assert!(inner >= mu * d2 - 1e-9, "{inner} < {}", mu * d2);
    }

    #[test]
    fn full_batch_gd_never_increases_loss(
        dim in 2usize..5,
        seed in any::<u64>(),
    ) {
        let model = LogisticModel::new(dim, 3, 1e-3).unwrap();
        let samples = random_samples(dim, 3, 12, seed);
        let l = model.smoothness_upper_bound(&samples);
        let step = 1.0 / l; // guaranteed-descent step for L-smooth f
        let mut params = model.zero_params();
        let mut prev = model.loss(&params, &samples);
        for _ in 0..15 {
            let g = model.gradient(&params, &samples);
            params.add_scaled(-step, &g);
            let now = model.loss(&params, &samples);
            prop_assert!(now <= prev + 1e-10, "ascent: {prev} -> {now}");
            prev = now;
        }
    }

    #[test]
    fn sgd_grad_norm_history_has_expected_length(
        steps in 1usize..30,
        batch in 1usize..40,
        seed in any::<u64>(),
    ) {
        let model = LogisticModel::new(3, 2, 1e-3).unwrap();
        let samples = random_samples(3, 2, 20, seed);
        let config = LocalSgdConfig {
            local_steps: steps,
            batch_size: batch,
            schedule: LrSchedule::Constant(0.05),
        };
        let update = run_local_sgd(
            &mut seeded(seed),
            &model,
            &model.zero_params(),
            &samples,
            &config,
            0,
        )
        .unwrap();
        prop_assert_eq!(update.grad_norms_squared.len(), steps);
        prop_assert!(update.grad_norms_squared.iter().all(|&g| g.is_finite() && g >= 0.0));
    }

    #[test]
    fn softmax_probabilities_are_a_distribution(
        logits in prop::collection::vec(-50.0f64..50.0, 2..8),
    ) {
        let mut z = logits;
        LogisticModel::softmax(&mut z);
        prop_assert!((z.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(z.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn predictions_are_shift_invariant(
        dim in 2usize..5,
        shift in -100.0f64..100.0,
        seed in any::<u64>(),
    ) {
        // Adding the same constant to every class row's bias shifts all
        // logits equally and cannot change the argmax.
        let model = LogisticModel::new(dim, 3, 0.0).unwrap();
        let params = random_params(dim, 3, 1.0, seed);
        let mut shifted = params.clone();
        for c in 0..3 {
            shifted.class_weights_mut(c)[dim] += shift;
        }
        let x: Vec<f64> = (0..dim).map(|i| (i as f64).cos()).collect();
        prop_assert_eq!(model.predict(&params, &x), model.predict(&shifted, &x));
    }
}
