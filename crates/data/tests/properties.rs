//! Property-based tests for the dataset substrate: conservation laws of the
//! partitions and generator invariants across random configurations.

use fedfl_data::mnistlike::MnistLikeConfig;
use fedfl_data::partition::{class_assignment, draw_labels, power_law_sizes};
use fedfl_data::synthetic::SyntheticConfig;
use fedfl_num::rng::seeded;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn power_law_conserves_total_and_minimum(
        seed in any::<u64>(),
        n_clients in 1usize..60,
        per_client in 1usize..50,
        extra in 0usize..2_000,
        shape in 0.2f64..4.0,
    ) {
        let total = n_clients * per_client + extra;
        let mut rng = seeded(seed);
        let sizes = power_law_sizes(&mut rng, total, n_clients, shape, per_client).unwrap();
        prop_assert_eq!(sizes.len(), n_clients);
        prop_assert_eq!(sizes.iter().sum::<usize>(), total);
        prop_assert!(sizes.iter().all(|&s| s >= per_client));
    }

    #[test]
    fn class_assignment_covers_every_class(
        seed in any::<u64>(),
        n_clients in 1usize..40,
        n_classes in 2usize..20,
    ) {
        let max_classes = (n_classes / 2).max(1);
        let mut rng = seeded(seed);
        let assignment = class_assignment(&mut rng, n_clients, n_classes, 1, max_classes).unwrap();
        let mut covered = vec![false; n_classes];
        for classes in &assignment {
            prop_assert!(!classes.is_empty());
            for &c in classes {
                prop_assert!(c < n_classes);
                covered[c] = true;
            }
        }
        prop_assert!(covered.iter().all(|&b| b), "class not covered");
    }

    #[test]
    fn labels_stay_within_assignments(
        seed in any::<u64>(),
        counts in prop::collection::vec(1usize..50, 1..10),
    ) {
        let mut rng = seeded(seed);
        let n = counts.len();
        let assignment = class_assignment(&mut rng, n, 6, 1, 3).unwrap();
        let labels = draw_labels(&mut rng, &counts, &assignment);
        for (client, ls) in labels.iter().enumerate() {
            prop_assert_eq!(ls.len(), counts[client]);
            for l in ls {
                prop_assert!(assignment[client].contains(l));
            }
        }
    }

    #[test]
    fn synthetic_generator_conserves_configuration(
        seed in any::<u64>(),
        n_clients in 2usize..12,
        dim in 4usize..24,
        n_classes in 2usize..6,
    ) {
        let cfg = SyntheticConfig {
            n_clients,
            total_samples: n_clients * 40,
            dim,
            n_classes,
            alpha: 1.0,
            beta: 1.0,
            power_law_shape: 1.2,
            min_per_client: 10,
            test_samples: 50,
        };
        let ds = cfg.generate(seed).unwrap();
        prop_assert_eq!(ds.n_clients(), n_clients);
        prop_assert_eq!(ds.total_samples(), n_clients * 40);
        prop_assert_eq!(ds.dim(), dim);
        let w = ds.weights();
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        for c in ds.clients() {
            for s in c.iter() {
                prop_assert_eq!(s.features.len(), dim);
                prop_assert!(s.label < n_classes);
                prop_assert!(s.features.iter().all(|f| f.is_finite()));
            }
        }
    }

    #[test]
    fn mnistlike_generator_is_seed_deterministic(seed in any::<u64>()) {
        let mut cfg = MnistLikeConfig::small();
        cfg.n_clients = 6;
        cfg.total_samples = 300;
        cfg.dim = 12;
        cfg.min_per_client = 5;
        cfg.test_samples = 60;
        let a = cfg.generate(seed).unwrap();
        let b = cfg.generate(seed).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn label_skew_is_a_valid_tv_distance(seed in any::<u64>()) {
        let mut cfg = MnistLikeConfig::small();
        cfg.n_clients = 8;
        cfg.total_samples = 400;
        cfg.dim = 8;
        cfg.min_per_client = 5;
        cfg.test_samples = 40;
        let ds = cfg.generate(seed).unwrap();
        let skew = ds.label_skew();
        prop_assert!((0.0..=1.0).contains(&skew), "skew {skew} outside [0,1]");
        prop_assert!(ds.imbalance_ratio() >= 1.0);
    }
}
