//! Class-conditional Gaussian sample generator.
//!
//! This is the shared engine behind the MNIST-like and EMNIST-like datasets
//! (DESIGN.md §3): each class `c` owns a template mean vector `m_c` drawn
//! once from a seeded generator, and samples are `x = m_c + σ·ε` with
//! `ε ~ N(0, I)`. For a convex multinomial logistic-regression task this
//! produces the same structure that drives the paper's mechanism — distinct
//! per-class feature clusters whose per-client mixture (via the label
//! partition) controls the gradient-norm heterogeneity `G_n`.

use crate::error::DataError;
use crate::Sample;
use fedfl_num::dist::Normal;
use fedfl_num::linalg::Matrix;
use rand::Rng;

/// A family of `n_classes` Gaussian clusters in `dim` dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassGaussian {
    means: Matrix,
    noise_std: f64,
}

impl ClassGaussian {
    /// Draw class templates: `m_c = class_sep · g_c / √dim` with
    /// `g_c ~ N(0, I)`, so the expected inter-class distance scales with
    /// `class_sep` independently of the dimension.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if `dim` or `n_classes` is zero,
    /// or `class_sep`/`noise_std` is not positive and finite.
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        dim: usize,
        n_classes: usize,
        class_sep: f64,
        noise_std: f64,
    ) -> Result<Self, DataError> {
        if dim == 0 || n_classes == 0 {
            return Err(DataError::InvalidConfig {
                field: "dim/n_classes",
                reason: "must both be positive".into(),
            });
        }
        if !(class_sep.is_finite() && class_sep > 0.0) {
            return Err(DataError::InvalidConfig {
                field: "class_sep",
                reason: format!("must be finite and positive, got {class_sep}"),
            });
        }
        if !(noise_std.is_finite() && noise_std > 0.0) {
            return Err(DataError::InvalidConfig {
                field: "noise_std",
                reason: format!("must be finite and positive, got {noise_std}"),
            });
        }
        let std_normal = Normal::standard();
        let scale = class_sep / (dim as f64).sqrt();
        let mut means = Matrix::zeros(n_classes, dim);
        for c in 0..n_classes {
            for j in 0..dim {
                means.set(c, j, scale * std_normal.sample(rng));
            }
        }
        Ok(Self { means, noise_std })
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.means.rows()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.means.cols()
    }

    /// Template mean of class `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= n_classes()`.
    pub fn class_mean(&self, c: usize) -> &[f64] {
        self.means.row(c)
    }

    /// Draw one sample of class `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= n_classes()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, label: usize) -> Sample {
        let std_normal = Normal::standard();
        let features = self
            .class_mean(label)
            .iter()
            .map(|&m| m + self.noise_std * std_normal.sample(rng))
            .collect();
        Sample::new(features, label)
    }

    /// Draw `count` samples with the given labels.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, labels: &[usize]) -> Vec<Sample> {
        labels.iter().map(|&l| self.sample(rng, l)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::linalg::dist2_squared;
    use fedfl_num::rng::seeded;

    #[test]
    fn templates_are_deterministic_per_seed() {
        let g1 = ClassGaussian::new(&mut seeded(5), 16, 4, 3.0, 0.5).unwrap();
        let g2 = ClassGaussian::new(&mut seeded(5), 16, 4, 3.0, 0.5).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn samples_cluster_around_their_class_mean() {
        let mut rng = seeded(6);
        let g = ClassGaussian::new(&mut rng, 32, 3, 8.0, 0.3).unwrap();
        for c in 0..3 {
            // Mean of many samples approaches the template.
            let n = 400;
            let mut acc = vec![0.0; 32];
            for _ in 0..n {
                let s = g.sample(&mut rng, c);
                for (a, &f) in acc.iter_mut().zip(&s.features) {
                    *a += f / n as f64;
                }
            }
            let d2 = dist2_squared(&acc, g.class_mean(c));
            assert!(d2 < 0.05, "class {c} empirical mean off by {d2}");
        }
    }

    #[test]
    fn different_classes_are_separated() {
        let mut rng = seeded(7);
        let g = ClassGaussian::new(&mut rng, 64, 5, 10.0, 0.5).unwrap();
        for a in 0..5 {
            for b in (a + 1)..5 {
                let d2 = dist2_squared(g.class_mean(a), g.class_mean(b));
                assert!(d2 > 1.0, "classes {a},{b} too close: {d2}");
            }
        }
    }

    #[test]
    fn sample_many_respects_labels() {
        let mut rng = seeded(8);
        let g = ClassGaussian::new(&mut rng, 8, 2, 4.0, 1.0).unwrap();
        let labels = vec![0, 1, 1, 0];
        let samples = g.sample_many(&mut rng, &labels);
        assert_eq!(samples.iter().map(|s| s.label).collect::<Vec<_>>(), labels);
        assert!(samples.iter().all(|s| s.features.len() == 8));
    }

    #[test]
    fn rejects_bad_configs() {
        let mut rng = seeded(9);
        assert!(ClassGaussian::new(&mut rng, 0, 2, 1.0, 1.0).is_err());
        assert!(ClassGaussian::new(&mut rng, 2, 0, 1.0, 1.0).is_err());
        assert!(ClassGaussian::new(&mut rng, 2, 2, 0.0, 1.0).is_err());
        assert!(ClassGaussian::new(&mut rng, 2, 2, 1.0, -1.0).is_err());
    }
}
