//! EMNIST-like dataset (Setup 3 of the paper).
//!
//! The paper subsamples 35 155 lower-case EMNIST characters (26 classes),
//! splits them among the devices by a power law, and restricts each device
//! to a random number of classes between 1 and 10. We substitute the same
//! class-conditional Gaussian construction as the MNIST-like dataset, with
//! 26 classes (see DESIGN.md §3).

use crate::dataset::FederatedDataset;
use crate::error::DataError;
use crate::mnistlike::MnistLikeConfig;
use serde::{Deserialize, Serialize};

/// Configuration for the EMNIST-like dataset.
///
/// A thin wrapper over [`MnistLikeConfig`] with EMNIST's class structure;
/// kept as its own type so experiment configs name the setup they intend.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EmnistLikeConfig(MnistLikeConfig);

impl EmnistLikeConfig {
    /// The paper's Setup 3: 35 155 samples, 40 clients, 26 classes,
    /// 1–10 classes per device, 784 dimensions.
    pub fn paper_setup3() -> Self {
        Self(MnistLikeConfig {
            n_clients: 40,
            total_samples: 35_155,
            dim: 784,
            n_classes: 26,
            min_classes: 1,
            max_classes: 10,
            power_law_shape: 1.2,
            min_per_client: 20,
            class_sep: 2.2,
            noise_std: 1.0,
            test_samples: 2_600,
        })
    }

    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        Self(MnistLikeConfig {
            n_clients: 10,
            total_samples: 2_000,
            dim: 32,
            n_classes: 26,
            min_classes: 1,
            max_classes: 10,
            power_law_shape: 1.2,
            min_per_client: 10,
            class_sep: 2.2,
            noise_std: 1.0,
            test_samples: 520,
        })
    }

    /// Create from an explicit inner configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if the inner configuration is
    /// invalid.
    pub fn from_config(inner: MnistLikeConfig) -> Result<Self, DataError> {
        inner.validate()?;
        Ok(Self(inner))
    }

    /// Borrow the inner generator configuration.
    pub fn inner(&self) -> &MnistLikeConfig {
        &self.0
    }

    /// Mutably borrow the inner generator configuration.
    pub fn inner_mut(&mut self) -> &mut MnistLikeConfig {
        &mut self.0
    }

    /// Generate the federated dataset from an experiment seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] on invalid configuration or partition failure.
    pub fn generate(&self, seed: u64) -> Result<FederatedDataset, DataError> {
        self.0.generate(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_has_26_classes() {
        let ds = EmnistLikeConfig::small().generate(42).unwrap();
        assert_eq!(ds.n_classes(), 26);
        assert_eq!(ds.n_clients(), 10);
        // Every class covered across the federation.
        let mut covered = [false; 26];
        for c in ds.clients() {
            for (k, cnt) in c.label_histogram(26).into_iter().enumerate() {
                if cnt > 0 {
                    covered[k] = true;
                }
            }
        }
        assert!(covered.iter().all(|&b| b));
    }

    #[test]
    fn paper_setup3_shape() {
        let cfg = EmnistLikeConfig::paper_setup3();
        assert_eq!(cfg.inner().total_samples, 35_155);
        assert_eq!(cfg.inner().n_classes, 26);
        assert_eq!(cfg.inner().max_classes, 10);
    }

    #[test]
    fn from_config_validates() {
        let mut inner = MnistLikeConfig::small();
        inner.n_classes = 26;
        assert!(EmnistLikeConfig::from_config(inner.clone()).is_ok());
        inner.min_classes = 0;
        assert!(EmnistLikeConfig::from_config(inner).is_err());
    }

    #[test]
    fn inner_mut_allows_tuning() {
        let mut cfg = EmnistLikeConfig::small();
        cfg.inner_mut().total_samples = 1_000;
        let ds = cfg.generate(3).unwrap();
        assert_eq!(ds.total_samples(), 1_000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = EmnistLikeConfig::small();
        assert_eq!(cfg.generate(1).unwrap(), cfg.generate(1).unwrap());
    }
}
