//! Federated dataset containers and heterogeneity statistics.
//!
//! The incentive mechanism interacts with a dataset only through the
//! per-client weights `a_n = d_n / Σ d_m` (equation (2) of the paper) and
//! the statistical heterogeneity that drives the per-client gradient-norm
//! bounds `G_n` (Assumption 3); this module exposes both, together with
//! label-distribution diagnostics used by tests and the experiment harness.

use crate::error::DataError;
use serde::{Deserialize, Serialize};

/// One labelled training sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Feature vector `x` (dense, fixed dimension within a dataset).
    pub features: Vec<f64>,
    /// Class label `y` in `0..n_classes`.
    pub label: usize,
}

impl Sample {
    /// Create a sample.
    pub fn new(features: Vec<f64>, label: usize) -> Self {
        Self { features, label }
    }
}

/// The local dataset of a single client.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ClientDataset {
    samples: Vec<Sample>,
}

impl ClientDataset {
    /// Create a client dataset from samples.
    pub fn new(samples: Vec<Sample>) -> Self {
        Self { samples }
    }

    /// Number of local samples `d_n`.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the client holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Borrow the samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterate over the samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }

    /// Histogram of labels over `n_classes` classes.
    pub fn label_histogram(&self, n_classes: usize) -> Vec<usize> {
        let mut hist = vec![0usize; n_classes];
        for s in &self.samples {
            if s.label < n_classes {
                hist[s.label] += 1;
            }
        }
        hist
    }

    /// Number of distinct labels present.
    pub fn distinct_labels(&self) -> usize {
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.samples {
            seen.insert(s.label);
        }
        seen.len()
    }
}

impl<'a> IntoIterator for &'a ClientDataset {
    type Item = &'a Sample;
    type IntoIter = std::slice::Iter<'a, Sample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

impl FromIterator<Sample> for ClientDataset {
    fn from_iter<T: IntoIterator<Item = Sample>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl Extend<Sample> for ClientDataset {
    fn extend<T: IntoIterator<Item = Sample>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

/// A complete federated dataset: `N` client shards plus a held-out test set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FederatedDataset {
    clients: Vec<ClientDataset>,
    test_set: ClientDataset,
    dim: usize,
    n_classes: usize,
}

impl FederatedDataset {
    /// Assemble a federated dataset.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] if there are no clients, every
    /// client is empty, a sample has the wrong dimension, or a label is out
    /// of range.
    pub fn new(
        clients: Vec<ClientDataset>,
        test_set: ClientDataset,
        dim: usize,
        n_classes: usize,
    ) -> Result<Self, DataError> {
        if clients.is_empty() {
            return Err(DataError::InvalidConfig {
                field: "clients",
                reason: "need at least one client".into(),
            });
        }
        let total: usize = clients.iter().map(ClientDataset::len).sum();
        if total == 0 {
            return Err(DataError::InvalidConfig {
                field: "clients",
                reason: "all clients are empty".into(),
            });
        }
        for (n, client) in clients.iter().enumerate() {
            for s in client.iter() {
                if s.features.len() != dim {
                    return Err(DataError::InvalidConfig {
                        field: "dim",
                        reason: format!(
                            "client {n} has a sample of dimension {} (expected {dim})",
                            s.features.len()
                        ),
                    });
                }
                if s.label >= n_classes {
                    return Err(DataError::InvalidConfig {
                        field: "n_classes",
                        reason: format!("client {n} has label {} >= {n_classes}", s.label),
                    });
                }
            }
        }
        for s in test_set.iter() {
            if s.features.len() != dim || s.label >= n_classes {
                return Err(DataError::InvalidConfig {
                    field: "test_set",
                    reason: "test sample has wrong dimension or label out of range".into(),
                });
            }
        }
        Ok(Self {
            clients,
            test_set,
            dim,
            n_classes,
        })
    }

    /// Number of clients `N`.
    pub fn n_clients(&self) -> usize {
        self.clients.len()
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Borrow client `n`'s shard.
    ///
    /// # Panics
    ///
    /// Panics if `n >= n_clients()`.
    pub fn client(&self, n: usize) -> &ClientDataset {
        &self.clients[n]
    }

    /// Borrow all client shards.
    pub fn clients(&self) -> &[ClientDataset] {
        &self.clients
    }

    /// Borrow the held-out test set.
    pub fn test_set(&self) -> &ClientDataset {
        &self.test_set
    }

    /// Per-client sample counts `d_n`.
    pub fn sizes(&self) -> Vec<usize> {
        self.clients.iter().map(ClientDataset::len).collect()
    }

    /// Total number of training samples `Σ d_n`.
    pub fn total_samples(&self) -> usize {
        self.clients.iter().map(ClientDataset::len).sum()
    }

    /// Aggregation weights `a_n = d_n / Σ d_m` (they sum to 1).
    pub fn weights(&self) -> Vec<f64> {
        let total = self.total_samples() as f64;
        self.clients
            .iter()
            .map(|c| c.len() as f64 / total)
            .collect()
    }

    /// Per-client label histograms.
    pub fn label_histograms(&self) -> Vec<Vec<usize>> {
        self.clients
            .iter()
            .map(|c| c.label_histogram(self.n_classes))
            .collect()
    }

    /// Mean total-variation distance between each client's label
    /// distribution and the global label distribution — a scalar measure of
    /// statistical heterogeneity (0 = i.i.d. shards).
    pub fn label_skew(&self) -> f64 {
        let total = self.total_samples() as f64;
        let mut global = vec![0.0f64; self.n_classes];
        for c in &self.clients {
            for (k, cnt) in c.label_histogram(self.n_classes).into_iter().enumerate() {
                global[k] += cnt as f64;
            }
        }
        for g in global.iter_mut() {
            *g /= total;
        }
        let mut acc = 0.0;
        let mut n_nonempty = 0usize;
        for c in &self.clients {
            if c.is_empty() {
                continue;
            }
            n_nonempty += 1;
            let d = c.len() as f64;
            let tv: f64 = c
                .label_histogram(self.n_classes)
                .into_iter()
                .enumerate()
                .map(|(k, cnt)| (cnt as f64 / d - global[k]).abs())
                .sum::<f64>()
                / 2.0;
            acc += tv;
        }
        if n_nonempty == 0 {
            0.0
        } else {
            acc / n_nonempty as f64
        }
    }

    /// Imbalance ratio `max d_n / min d_n` over non-empty clients.
    pub fn imbalance_ratio(&self) -> f64 {
        let sizes: Vec<usize> = self.sizes().into_iter().filter(|&s| s > 0).collect();
        let max = *sizes.iter().max().expect("validated non-empty") as f64;
        let min = *sizes.iter().min().expect("validated non-empty") as f64;
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(dim: usize, label: usize) -> Sample {
        Sample::new(vec![0.5; dim], label)
    }

    fn two_client_dataset() -> FederatedDataset {
        let c0 = ClientDataset::new(vec![sample(3, 0), sample(3, 0), sample(3, 1)]);
        let c1 = ClientDataset::new(vec![sample(3, 1)]);
        let test = ClientDataset::new(vec![sample(3, 0), sample(3, 1)]);
        FederatedDataset::new(vec![c0, c1], test, 3, 2).unwrap()
    }

    #[test]
    fn weights_sum_to_one_and_match_sizes() {
        let ds = two_client_dataset();
        let w = ds.weights();
        assert_eq!(ds.sizes(), vec![3, 1]);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((w[0] - 0.75).abs() < 1e-12);
        assert_eq!(ds.total_samples(), 4);
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let ok = ClientDataset::new(vec![sample(3, 0)]);
        let bad_dim = ClientDataset::new(vec![sample(2, 0)]);
        let bad_label = ClientDataset::new(vec![sample(3, 9)]);
        assert!(FederatedDataset::new(vec![], ClientDataset::default(), 3, 2).is_err());
        assert!(FederatedDataset::new(
            vec![ClientDataset::default()],
            ClientDataset::default(),
            3,
            2
        )
        .is_err());
        assert!(
            FederatedDataset::new(vec![ok.clone(), bad_dim], ClientDataset::default(), 3, 2)
                .is_err()
        );
        assert!(
            FederatedDataset::new(vec![ok.clone(), bad_label], ClientDataset::default(), 3, 2)
                .is_err()
        );
        assert!(
            FederatedDataset::new(vec![ok], ClientDataset::new(vec![sample(1, 0)]), 3, 2).is_err()
        );
    }

    #[test]
    fn label_histograms_and_skew() {
        let ds = two_client_dataset();
        assert_eq!(ds.label_histograms(), vec![vec![2, 1], vec![0, 1]]);
        // Global: (0.5, 0.5); client0: (2/3, 1/3) tv=1/6; client1: (0,1) tv=1/2.
        let skew = ds.label_skew();
        assert!(
            (skew - (1.0 / 6.0 + 0.5) / 2.0).abs() < 1e-12,
            "skew {skew}"
        );
    }

    #[test]
    fn iid_shards_have_zero_skew() {
        let c0 = ClientDataset::new(vec![sample(2, 0), sample(2, 1)]);
        let c1 = ClientDataset::new(vec![sample(2, 0), sample(2, 1)]);
        let ds = FederatedDataset::new(vec![c0, c1], ClientDataset::default(), 2, 2).unwrap();
        assert_eq!(ds.label_skew(), 0.0);
    }

    #[test]
    fn imbalance_ratio_ignores_empty() {
        let ds = two_client_dataset();
        assert_eq!(ds.imbalance_ratio(), 3.0);
    }

    #[test]
    fn client_dataset_collections_traits() {
        let mut c: ClientDataset = vec![sample(1, 0)].into_iter().collect();
        c.extend(vec![sample(1, 0)]);
        assert_eq!(c.len(), 2);
        assert_eq!((&c).into_iter().count(), 2);
        assert_eq!(c.distinct_labels(), 1);
        assert!(!c.is_empty());
    }
}
