//! The Synthetic(α, β) federated dataset (Setup 1 of the paper).
//!
//! Reimplements the generator of Li et al., *Federated Optimization in
//! Heterogeneous Networks* (MLSys 2020), which the paper cites for its
//! Setup 1: for each client `k`,
//!
//! * a model-heterogeneity factor `u_k ~ N(0, α)` shifts the client's local
//!   labelling model: `W_k[i][j] ~ N(u_k, 1)`, `b_k[i] ~ N(u_k, 1)`;
//! * a feature-heterogeneity factor `B_k ~ N(0, β)` shifts the client's
//!   input distribution: the feature mean `v_k[j] ~ N(B_k, 1)` and inputs
//!   are `x ~ N(v_k, Σ)` with `Σ = diag(j^{-1.2})`;
//! * labels are `y = argmax(softmax(W_k x + b_k))`.
//!
//! Setup 1 uses α = β = 1, 60-dimensional inputs, 10 classes, and 22 377
//! samples distributed among 40 devices by a power law.

use crate::dataset::{ClientDataset, FederatedDataset, Sample};
use crate::error::DataError;
use crate::partition::power_law_sizes;
use fedfl_num::dist::Normal;
use fedfl_num::linalg::Matrix;
use fedfl_num::rng::substream;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the Synthetic(α, β) generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Number of clients `N`.
    pub n_clients: usize,
    /// Total number of training samples across all clients.
    pub total_samples: usize,
    /// Feature dimension.
    pub dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Model-heterogeneity level α (`u_k ~ N(0, α)`).
    pub alpha: f64,
    /// Feature-heterogeneity level β (`B_k ~ N(0, β)`).
    pub beta: f64,
    /// Power-law shape of the quantity partition.
    pub power_law_shape: f64,
    /// Minimum samples per client.
    pub min_per_client: usize,
    /// Held-out test samples (drawn from the clients' mixture).
    pub test_samples: usize,
}

impl SyntheticConfig {
    /// The paper's Setup 1: Synthetic(1, 1), 40 clients, 22 377 samples,
    /// 60 dimensions, 10 classes.
    pub fn paper_setup1() -> Self {
        Self {
            n_clients: 40,
            total_samples: 22_377,
            dim: 60,
            n_classes: 10,
            alpha: 1.0,
            beta: 1.0,
            power_law_shape: 1.2,
            min_per_client: 20,
            test_samples: 2_000,
        }
    }

    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        Self {
            n_clients: 10,
            total_samples: 1_200,
            dim: 20,
            n_classes: 5,
            alpha: 1.0,
            beta: 1.0,
            power_law_shape: 1.2,
            min_per_client: 10,
            test_samples: 300,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.n_clients == 0 {
            return Err(DataError::InvalidConfig {
                field: "n_clients",
                reason: "must be positive".into(),
            });
        }
        if self.dim == 0 || self.n_classes < 2 {
            return Err(DataError::InvalidConfig {
                field: "dim/n_classes",
                reason: "need dim >= 1 and n_classes >= 2".into(),
            });
        }
        if !(self.alpha.is_finite()
            && self.alpha >= 0.0
            && self.beta.is_finite()
            && self.beta >= 0.0)
        {
            return Err(DataError::InvalidConfig {
                field: "alpha/beta",
                reason: "must be finite and non-negative".into(),
            });
        }
        if self.test_samples == 0 {
            return Err(DataError::InvalidConfig {
                field: "test_samples",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }

    /// Generate the federated dataset from an experiment seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] on invalid configuration or partition failure.
    pub fn generate(&self, seed: u64) -> Result<FederatedDataset, DataError> {
        self.validate()?;
        let mut part_rng = substream(seed, 0);
        let sizes = power_law_sizes(
            &mut part_rng,
            self.total_samples,
            self.n_clients,
            self.power_law_shape,
            self.min_per_client,
        )?;

        let mut model_rng = substream(seed, 1);
        let unit = Normal::standard();
        // Per-client local labelling model and feature distribution.
        let mut client_models = Vec::with_capacity(self.n_clients);
        for _ in 0..self.n_clients {
            let u_k = unit.sample(&mut model_rng) * self.alpha.sqrt();
            let b_cap_k = unit.sample(&mut model_rng) * self.beta.sqrt();
            let around_u = Normal::new(u_k, 1.0)?;
            let mut w_k = Matrix::zeros(self.n_classes, self.dim);
            for i in 0..self.n_classes {
                for j in 0..self.dim {
                    w_k.set(i, j, around_u.sample(&mut model_rng));
                }
            }
            let b_k: Vec<f64> = (0..self.n_classes)
                .map(|_| around_u.sample(&mut model_rng))
                .collect();
            let around_b = Normal::new(b_cap_k, 1.0)?;
            let v_k: Vec<f64> = (0..self.dim)
                .map(|_| around_b.sample(&mut model_rng))
                .collect();
            client_models.push((w_k, b_k, v_k));
        }
        // Diagonal covariance Σ_jj = j^{-1.2} (1-based as in the original).
        let sigma_diag: Vec<f64> = (1..=self.dim)
            .map(|j| (j as f64).powf(-1.2).sqrt())
            .collect();

        let mut sample_rng = substream(seed, 2);
        let clients: Vec<ClientDataset> = sizes
            .iter()
            .enumerate()
            .map(|(k, &d)| {
                let (w_k, b_k, v_k) = &client_models[k];
                let samples = (0..d)
                    .map(|_| draw_sample(&mut sample_rng, w_k, b_k, v_k, &sigma_diag))
                    .collect();
                ClientDataset::new(samples)
            })
            .collect();

        // Test set: mixture over clients proportional to their data volume,
        // freshly drawn from the same client distributions.
        let mut test_rng = substream(seed, 3);
        let mut test = Vec::with_capacity(self.test_samples);
        let total = self.total_samples as f64;
        for t in 0..self.test_samples {
            // Deterministic proportional allocation over clients.
            let pos = (t as f64 + 0.5) / self.test_samples as f64 * total;
            let mut acc = 0.0;
            let mut k = 0;
            for (i, &d) in sizes.iter().enumerate() {
                acc += d as f64;
                if pos <= acc {
                    k = i;
                    break;
                }
            }
            let (w_k, b_k, v_k) = &client_models[k];
            test.push(draw_sample(&mut test_rng, w_k, b_k, v_k, &sigma_diag));
        }

        FederatedDataset::new(clients, ClientDataset::new(test), self.dim, self.n_classes)
    }
}

fn draw_sample<R: Rng + ?Sized>(
    rng: &mut R,
    w_k: &Matrix,
    b_k: &[f64],
    v_k: &[f64],
    sigma_diag: &[f64],
) -> Sample {
    let unit = Normal::standard();
    let x: Vec<f64> = v_k
        .iter()
        .zip(sigma_diag)
        .map(|(&m, &s)| m + s * unit.sample(rng))
        .collect();
    let mut logits = w_k.matvec(&x);
    for (l, &b) in logits.iter_mut().zip(b_k) {
        *l += b;
    }
    let label = argmax(&logits);
    Sample::new(x, label)
}

fn argmax(xs: &[f64]) -> usize {
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate() {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_generates_valid_dataset() {
        let cfg = SyntheticConfig::small();
        let ds = cfg.generate(42).unwrap();
        assert_eq!(ds.n_clients(), cfg.n_clients);
        assert_eq!(ds.total_samples(), cfg.total_samples);
        assert_eq!(ds.dim(), cfg.dim);
        assert_eq!(ds.n_classes(), cfg.n_classes);
        assert_eq!(ds.test_set().len(), cfg.test_samples);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = SyntheticConfig::small();
        assert_eq!(cfg.generate(7).unwrap(), cfg.generate(7).unwrap());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SyntheticConfig::small();
        assert_ne!(cfg.generate(7).unwrap(), cfg.generate(8).unwrap());
    }

    #[test]
    fn dataset_is_noniid_and_unbalanced() {
        let ds = SyntheticConfig::small().generate(1).unwrap();
        assert!(ds.label_skew() > 0.1, "skew {}", ds.label_skew());
        assert!(ds.imbalance_ratio() > 1.5, "ratio {}", ds.imbalance_ratio());
    }

    #[test]
    fn beta_controls_feature_heterogeneity() {
        // β scales the spread of per-client feature means B_k: clients of
        // Synthetic(·, 9) sit much further apart in feature space than
        // clients of Synthetic(·, 0).
        let spread = |beta: f64| -> f64 {
            let mut cfg = SyntheticConfig::small();
            cfg.beta = beta;
            let ds = cfg.generate(3).unwrap();
            // Across-client variance of the per-client mean, averaged over
            // all features to cut estimator noise.
            let dim = ds.dim();
            (0..dim)
                .map(|j| {
                    let means: Vec<f64> = ds
                        .clients()
                        .iter()
                        .map(|c| c.iter().map(|s| s.features[j]).sum::<f64>() / c.len() as f64)
                        .collect();
                    fedfl_num::stats::variance(&means).unwrap()
                })
                .sum::<f64>()
                / dim as f64
        };
        let low = spread(0.0);
        let high = spread(9.0);
        assert!(
            high > 3.0 * low,
            "feature spread did not grow: low={low} high={high}"
        );
    }

    #[test]
    fn paper_setup1_shape() {
        let cfg = SyntheticConfig::paper_setup1();
        assert_eq!(cfg.n_clients, 40);
        assert_eq!(cfg.total_samples, 22_377);
        assert_eq!(cfg.dim, 60);
        assert_eq!(cfg.n_classes, 10);
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = SyntheticConfig::small();
        cfg.n_clients = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = SyntheticConfig::small();
        cfg.n_classes = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = SyntheticConfig::small();
        cfg.alpha = f64::NAN;
        assert!(cfg.validate().is_err());
        let mut cfg = SyntheticConfig::small();
        cfg.test_samples = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn all_labels_within_range() {
        let ds = SyntheticConfig::small().generate(11).unwrap();
        for c in ds.clients() {
            for s in c.iter() {
                assert!(s.label < ds.n_classes());
            }
        }
    }
}
