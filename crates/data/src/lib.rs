//! # fedfl-data — federated dataset substrate
//!
//! Generators for the three experimental setups of the paper
//! (Section VI-A.1), all fully synthetic and seed-reproducible:
//!
//! * [`synthetic`] — the Synthetic(α, β) dataset of Li et al. used by
//!   Setup 1: 60-dimensional inputs, 10 classes, 22 377 samples distributed
//!   among clients by a power law.
//! * [`mnistlike`] — Setup 2 substitute for MNIST: 10-class, 784-dimensional
//!   class-conditional Gaussian images, 14 463 samples, each client holding
//!   1–6 classes (see DESIGN.md §3 for the substitution argument).
//! * [`emnistlike`] — Setup 3 substitute for EMNIST lower-case letters:
//!   26 classes, 1–10 classes per client, 35 155 samples.
//! * [`partition`] — the unbalanced power-law quantity partition and the
//!   k-classes-per-client non-i.i.d. label partition shared by all setups.
//! * [`dataset`] — the `FederatedDataset` container and heterogeneity
//!   statistics.
//!
//! # Example
//!
//! ```
//! use fedfl_data::synthetic::SyntheticConfig;
//!
//! let dataset = SyntheticConfig::small().generate(42)?;
//! assert_eq!(dataset.n_clients(), dataset.weights().len());
//! let total: f64 = dataset.weights().iter().sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! # Ok::<(), fedfl_data::DataError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod emnistlike;
pub mod error;
pub mod gaussian;
pub mod mnistlike;
pub mod partition;
pub mod synthetic;

pub use dataset::{ClientDataset, FederatedDataset, Sample};
pub use error::DataError;
