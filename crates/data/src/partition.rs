//! Partition primitives shared by all dataset generators.
//!
//! The paper distributes samples "among the devices in an unbalanced
//! power-law distribution" and assigns each device a restricted label set
//! ("each device has 1–6 classes" for MNIST, "a randomly chosen number of
//! classes, ranging from 1 to 10" for EMNIST). [`power_law_sizes`] and
//! [`class_assignment`] implement exactly those two partitions.

use crate::error::DataError;
use fedfl_num::dist::BoundedPareto;
use rand::seq::SliceRandom;
use rand::Rng;

/// Split `total` samples among `n_clients` following a bounded-Pareto power
/// law with shape `shape`, guaranteeing every client at least `min_per_client`
/// samples and that the sizes sum exactly to `total`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] if `n_clients == 0`, `total` cannot
/// accommodate the per-client minimum, or `shape <= 0`.
pub fn power_law_sizes<R: Rng + ?Sized>(
    rng: &mut R,
    total: usize,
    n_clients: usize,
    shape: f64,
    min_per_client: usize,
) -> Result<Vec<usize>, DataError> {
    if n_clients == 0 {
        return Err(DataError::InvalidConfig {
            field: "n_clients",
            reason: "must be positive".into(),
        });
    }
    if min_per_client == 0 {
        return Err(DataError::InvalidConfig {
            field: "min_per_client",
            reason: "must be at least 1 so every client is non-empty".into(),
        });
    }
    if total < n_clients * min_per_client {
        return Err(DataError::InvalidConfig {
            field: "total",
            reason: format!(
                "{total} samples cannot give {n_clients} clients at least {min_per_client} each"
            ),
        });
    }
    if !(shape.is_finite() && shape > 0.0) {
        return Err(DataError::InvalidConfig {
            field: "shape",
            reason: format!("must be finite and positive, got {shape}"),
        });
    }
    // Draw raw power-law weights on [1, 1000] and renormalise the remainder
    // after the per-client minimum is set aside.
    let pareto = BoundedPareto::new(1.0, 1000.0, shape)?;
    let raw: Vec<f64> = pareto.sample_vec(rng, n_clients);
    let raw_sum: f64 = raw.iter().sum();
    let distributable = total - n_clients * min_per_client;
    let mut sizes: Vec<usize> = raw
        .iter()
        .map(|&w| min_per_client + (w / raw_sum * distributable as f64).floor() as usize)
        .collect();
    // Hand out the rounding remainder one by one to the largest shards so the
    // sum is exact and the power-law shape is preserved.
    let mut assigned: usize = sizes.iter().sum();
    let mut order: Vec<usize> = (0..n_clients).collect();
    order.sort_by(|&i, &j| raw[j].partial_cmp(&raw[i]).expect("finite weights"));
    let mut cursor = 0;
    while assigned < total {
        sizes[order[cursor % n_clients]] += 1;
        assigned += 1;
        cursor += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), total);
    Ok(sizes)
}

/// Assign each client a random subset of classes, with per-client class
/// counts drawn uniformly from `min_classes..=max_classes`.
///
/// Every class is guaranteed to be owned by at least one client (otherwise
/// part of the label space would be unlearnable by any coalition), which
/// mirrors how the benchmark partitions of the FL literature are built.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for impossible ranges.
pub fn class_assignment<R: Rng + ?Sized>(
    rng: &mut R,
    n_clients: usize,
    n_classes: usize,
    min_classes: usize,
    max_classes: usize,
) -> Result<Vec<Vec<usize>>, DataError> {
    if n_clients == 0 || n_classes == 0 {
        return Err(DataError::InvalidConfig {
            field: "n_clients/n_classes",
            reason: "must both be positive".into(),
        });
    }
    if min_classes == 0 || min_classes > max_classes || max_classes > n_classes {
        return Err(DataError::InvalidConfig {
            field: "class range",
            reason: format!(
                "need 1 <= min <= max <= n_classes, got [{min_classes}, {max_classes}] with {n_classes} classes"
            ),
        });
    }
    let mut assignment: Vec<Vec<usize>> = Vec::with_capacity(n_clients);
    let mut all_classes: Vec<usize> = (0..n_classes).collect();
    for _ in 0..n_clients {
        let k = rng.random_range(min_classes..=max_classes);
        all_classes.shuffle(rng);
        let mut mine: Vec<usize> = all_classes[..k].to_vec();
        mine.sort_unstable();
        assignment.push(mine);
    }
    // Coverage repair: give unowned classes to random clients that still have
    // room (or force-add to a random client otherwise).
    let mut owned = vec![false; n_classes];
    for classes in &assignment {
        for &c in classes {
            owned[c] = true;
        }
    }
    for (class, &is_owned) in owned.iter().enumerate() {
        if is_owned {
            continue;
        }
        // Prefer clients that can take one more class within max_classes.
        let candidates: Vec<usize> = (0..n_clients)
            .filter(|&n| assignment[n].len() < max_classes)
            .collect();
        let target = if candidates.is_empty() {
            rng.random_range(0..n_clients)
        } else {
            candidates[rng.random_range(0..candidates.len())]
        };
        // Swap out a class that is owned elsewhere if the client is full.
        if assignment[target].len() >= max_classes {
            let victim_pos = rng.random_range(0..assignment[target].len());
            let victim = assignment[target][victim_pos];
            let owned_elsewhere = assignment
                .iter()
                .enumerate()
                .any(|(m, cs)| m != target && cs.contains(&victim));
            if owned_elsewhere {
                assignment[target].remove(victim_pos);
            }
        }
        assignment[target].push(class);
        assignment[target].sort_unstable();
        assignment[target].dedup();
    }
    Ok(assignment)
}

/// Deal `counts[n]` label draws to each client restricted to its assigned
/// classes, returning per-client label sequences.
///
/// Labels within a client are drawn uniformly over the client's class set,
/// which concentrates each class in a few clients — the paper's non-i.i.d.
/// regime.
pub fn draw_labels<R: Rng + ?Sized>(
    rng: &mut R,
    counts: &[usize],
    assignment: &[Vec<usize>],
) -> Vec<Vec<usize>> {
    counts
        .iter()
        .zip(assignment)
        .map(|(&d, classes)| {
            (0..d)
                .map(|_| classes[rng.random_range(0..classes.len())])
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_num::rng::seeded;

    #[test]
    fn power_law_sums_exactly_and_respects_minimum() {
        let mut rng = seeded(7);
        for &(total, n, min) in &[(22_377usize, 40usize, 10usize), (100, 10, 5), (40, 40, 1)] {
            let sizes = power_law_sizes(&mut rng, total, n, 1.2, min).unwrap();
            assert_eq!(sizes.len(), n);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&s| s >= min));
        }
    }

    #[test]
    fn power_law_is_unbalanced() {
        let mut rng = seeded(8);
        let sizes = power_law_sizes(&mut rng, 22_377, 40, 1.2, 10).unwrap();
        let max = *sizes.iter().max().unwrap() as f64;
        let min = *sizes.iter().min().unwrap() as f64;
        assert!(max / min > 3.0, "imbalance too small: {max}/{min}");
    }

    #[test]
    fn power_law_rejects_bad_configs() {
        let mut rng = seeded(9);
        assert!(power_law_sizes(&mut rng, 100, 0, 1.2, 1).is_err());
        assert!(power_law_sizes(&mut rng, 5, 10, 1.2, 1).is_err());
        assert!(power_law_sizes(&mut rng, 100, 10, 0.0, 1).is_err());
        assert!(power_law_sizes(&mut rng, 100, 10, 1.2, 0).is_err());
    }

    #[test]
    fn class_assignment_counts_in_range_and_full_coverage() {
        let mut rng = seeded(10);
        for _ in 0..20 {
            let a = class_assignment(&mut rng, 40, 10, 1, 6).unwrap();
            assert_eq!(a.len(), 40);
            let mut covered = [false; 10];
            for classes in &a {
                assert!(!classes.is_empty() && classes.len() <= 7);
                for &c in classes {
                    assert!(c < 10);
                    covered[c] = true;
                }
                let mut sorted = classes.clone();
                sorted.dedup();
                assert_eq!(&sorted, classes, "classes must be sorted and unique");
            }
            assert!(covered.iter().all(|&b| b), "class not covered");
        }
    }

    #[test]
    fn class_assignment_single_client_gets_everything_needed() {
        let mut rng = seeded(11);
        let a = class_assignment(&mut rng, 1, 5, 1, 2).unwrap();
        // Coverage repair must give the lone client all 5 classes.
        assert_eq!(a[0], vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn class_assignment_rejects_bad_ranges() {
        let mut rng = seeded(12);
        assert!(class_assignment(&mut rng, 0, 10, 1, 6).is_err());
        assert!(class_assignment(&mut rng, 10, 0, 1, 6).is_err());
        assert!(class_assignment(&mut rng, 10, 10, 0, 6).is_err());
        assert!(class_assignment(&mut rng, 10, 10, 7, 6).is_err());
        assert!(class_assignment(&mut rng, 10, 10, 1, 11).is_err());
    }

    #[test]
    fn draw_labels_respects_assignment() {
        let mut rng = seeded(13);
        let assignment = vec![vec![0, 3], vec![1]];
        let labels = draw_labels(&mut rng, &[100, 50], &assignment);
        assert_eq!(labels[0].len(), 100);
        assert_eq!(labels[1].len(), 50);
        assert!(labels[0].iter().all(|&l| l == 0 || l == 3));
        assert!(labels[1].iter().all(|&l| l == 1));
    }
}
