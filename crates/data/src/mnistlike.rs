//! MNIST-like dataset (Setup 2 of the paper).
//!
//! The paper subsamples 14 463 MNIST digits, splits them among 40 devices by
//! a power law, and restricts each device to 1–6 of the 10 classes. Real
//! MNIST is not available in this environment, so we substitute 784-dim
//! class-conditional Gaussian "digit" images (see DESIGN.md §3): the
//! mechanism only interacts with the dataset through the induced `a_n` and
//! `G_n` heterogeneity, which this construction reproduces.

use crate::dataset::{ClientDataset, FederatedDataset};
use crate::error::DataError;
use crate::gaussian::ClassGaussian;
use crate::partition::{class_assignment, draw_labels, power_law_sizes};
use fedfl_num::rng::substream;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Configuration for the class-partitioned Gaussian image dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MnistLikeConfig {
    /// Number of clients `N`.
    pub n_clients: usize,
    /// Total number of training samples.
    pub total_samples: usize,
    /// Feature dimension (784 for 28×28 images).
    pub dim: usize,
    /// Number of classes.
    pub n_classes: usize,
    /// Minimum classes per client.
    pub min_classes: usize,
    /// Maximum classes per client.
    pub max_classes: usize,
    /// Power-law shape of the quantity partition.
    pub power_law_shape: f64,
    /// Minimum samples per client.
    pub min_per_client: usize,
    /// Inter-class separation of the Gaussian templates.
    pub class_sep: f64,
    /// Within-class noise standard deviation.
    pub noise_std: f64,
    /// Held-out test samples (uniform over classes).
    pub test_samples: usize,
}

impl MnistLikeConfig {
    /// The paper's Setup 2: 14 463 samples, 40 clients, 10 classes,
    /// 1–6 classes per device, 784 dimensions.
    pub fn paper_setup2() -> Self {
        Self {
            n_clients: 40,
            total_samples: 14_463,
            dim: 784,
            n_classes: 10,
            min_classes: 1,
            max_classes: 6,
            power_law_shape: 1.2,
            min_per_client: 20,
            class_sep: 2.2,
            noise_std: 1.0,
            test_samples: 2_000,
        }
    }

    /// A scaled-down configuration for fast tests and examples.
    pub fn small() -> Self {
        Self {
            n_clients: 10,
            total_samples: 1_500,
            dim: 32,
            n_classes: 10,
            min_classes: 1,
            max_classes: 6,
            power_law_shape: 1.2,
            min_per_client: 10,
            class_sep: 2.2,
            noise_std: 1.0,
            test_samples: 400,
        }
    }

    /// Validate the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), DataError> {
        if self.n_clients == 0 {
            return Err(DataError::InvalidConfig {
                field: "n_clients",
                reason: "must be positive".into(),
            });
        }
        if self.dim == 0 || self.n_classes < 2 {
            return Err(DataError::InvalidConfig {
                field: "dim/n_classes",
                reason: "need dim >= 1 and n_classes >= 2".into(),
            });
        }
        if self.min_classes == 0
            || self.min_classes > self.max_classes
            || self.max_classes > self.n_classes
        {
            return Err(DataError::InvalidConfig {
                field: "min_classes/max_classes",
                reason: "need 1 <= min <= max <= n_classes".into(),
            });
        }
        if self.test_samples == 0 {
            return Err(DataError::InvalidConfig {
                field: "test_samples",
                reason: "must be positive".into(),
            });
        }
        Ok(())
    }

    /// Generate the federated dataset from an experiment seed.
    ///
    /// # Errors
    ///
    /// Returns [`DataError`] on invalid configuration or partition failure.
    pub fn generate(&self, seed: u64) -> Result<FederatedDataset, DataError> {
        self.validate()?;
        let mut template_rng = substream(seed, 0);
        let family = ClassGaussian::new(
            &mut template_rng,
            self.dim,
            self.n_classes,
            self.class_sep,
            self.noise_std,
        )?;

        let mut part_rng = substream(seed, 1);
        let sizes = power_law_sizes(
            &mut part_rng,
            self.total_samples,
            self.n_clients,
            self.power_law_shape,
            self.min_per_client,
        )?;
        let assignment = class_assignment(
            &mut part_rng,
            self.n_clients,
            self.n_classes,
            self.min_classes,
            self.max_classes,
        )?;
        let labels = draw_labels(&mut part_rng, &sizes, &assignment);

        let mut sample_rng = substream(seed, 2);
        let clients: Vec<ClientDataset> = labels
            .iter()
            .map(|ls| ClientDataset::new(family.sample_many(&mut sample_rng, ls)))
            .collect();

        let mut test_rng = substream(seed, 3);
        let test_labels: Vec<usize> = (0..self.test_samples)
            .map(|_| test_rng.random_range(0..self.n_classes))
            .collect();
        let test = ClientDataset::new(family.sample_many(&mut test_rng, &test_labels));

        FederatedDataset::new(clients, test, self.dim, self.n_classes)
    }
}

/// Generate with an explicit RNG stream label, used by multi-run harnesses
/// that need several independent datasets from one master seed.
pub fn generate_run(
    config: &MnistLikeConfig,
    seed: u64,
    run: u64,
) -> Result<FederatedDataset, DataError> {
    config.generate(fedfl_num::rng::split(seed, run))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_config_generates_valid_dataset() {
        let cfg = MnistLikeConfig::small();
        let ds = cfg.generate(42).unwrap();
        assert_eq!(ds.n_clients(), cfg.n_clients);
        assert_eq!(ds.total_samples(), cfg.total_samples);
        assert_eq!(ds.test_set().len(), cfg.test_samples);
    }

    #[test]
    fn clients_hold_restricted_class_sets() {
        let cfg = MnistLikeConfig::small();
        let ds = cfg.generate(5).unwrap();
        for c in ds.clients() {
            let k = c.distinct_labels();
            assert!(
                (1..=cfg.max_classes + 1).contains(&k),
                "client has {k} classes"
            );
        }
        // Strong non-i.i.d. structure.
        assert!(ds.label_skew() > 0.3, "skew {}", ds.label_skew());
    }

    #[test]
    fn test_set_covers_all_classes() {
        let ds = MnistLikeConfig::small().generate(9).unwrap();
        let hist = ds.test_set().label_histogram(10);
        assert!(hist.iter().all(|&h| h > 0), "{hist:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = MnistLikeConfig::small();
        assert_eq!(cfg.generate(3).unwrap(), cfg.generate(3).unwrap());
        assert_ne!(cfg.generate(3).unwrap(), cfg.generate(4).unwrap());
    }

    #[test]
    fn generate_run_produces_independent_datasets() {
        let cfg = MnistLikeConfig::small();
        let a = generate_run(&cfg, 1, 0).unwrap();
        let b = generate_run(&cfg, 1, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn paper_setup2_shape() {
        let cfg = MnistLikeConfig::paper_setup2();
        assert_eq!(cfg.total_samples, 14_463);
        assert_eq!(cfg.dim, 784);
        assert_eq!((cfg.min_classes, cfg.max_classes), (1, 6));
        cfg.validate().unwrap();
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut cfg = MnistLikeConfig::small();
        cfg.max_classes = 11;
        assert!(cfg.validate().is_err());
        let mut cfg = MnistLikeConfig::small();
        cfg.min_classes = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = MnistLikeConfig::small();
        cfg.n_clients = 0;
        assert!(cfg.validate().is_err());
    }
}
