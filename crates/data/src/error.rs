//! Error type for dataset generation.

use fedfl_num::NumError;
use std::fmt;

/// Error returned by dataset generators and partition routines.
#[derive(Debug, Clone, PartialEq)]
pub enum DataError {
    /// A configuration field was invalid.
    InvalidConfig {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// An underlying numeric routine failed.
    Numeric(NumError),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { field, reason } => {
                write!(f, "invalid configuration `{field}`: {reason}")
            }
            DataError::Numeric(e) => write!(f, "numeric error: {e}"),
        }
    }
}

impl std::error::Error for DataError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DataError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for DataError {
    fn from(e: NumError) -> Self {
        DataError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = DataError::InvalidConfig {
            field: "n_clients",
            reason: "must be positive".into(),
        };
        assert!(e.to_string().contains("n_clients"));
        let n: DataError = NumError::EmptyInput.into();
        assert!(std::error::Error::source(&n).is_some());
    }
}
