//! The sharded store's contracts, property-tested under random churn:
//!
//! 1. **Shard-count invariance** — replaying one churn history through
//!    services configured with 1, 2, 7 and 32 store shards (and 1 or 3
//!    worker threads) produces **bit-identical** snapshots at every step:
//!    sharding changes which columns are rebuilt, never the prices.
//! 2. **Dirty-shard accounting** — a delta rebuilds only the shards it
//!    touches; with enough shards a small churn batch rebuilds a strict
//!    subset of the columns.
//! 3. **Dynamic budget & bound updates** — `UpdateBudget`/`UpdateBound`
//!    re-solve (warm-started, Theorem-2-certified) to exactly the prices a
//!    fresh deployment at the new parameters would compute, and round-trip
//!    through serde.

use fedfl_core::bound::BoundParams;
use fedfl_core::population::Population;
use fedfl_core::server::{path_budget, SolverOptions};
use fedfl_num::rng::substream;
use fedfl_service::{
    AvailabilityPattern, ClientId, ClientParams, Command, PricingService, Response, ServiceConfig,
};
use proptest::prelude::*;
use rand::Rng;

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

fn draw_client<R: Rng>(rng: &mut R, availability_mode: u8) -> ClientParams {
    let u = |rng: &mut R, lo: f64, hi: f64| {
        lo + (hi - lo) * (rng.random::<u64>() as f64 / u64::MAX as f64)
    };
    let availability = match availability_mode {
        0 => AvailabilityPattern::AlwaysOn,
        _ => match rng.random::<u64>() % 4 {
            0 => AvailabilityPattern::AlwaysOn,
            1 => AvailabilityPattern::Random {
                probability: u(rng, 0.2, 1.0),
            },
            2 => AvailabilityPattern::Random { probability: 1e-9 },
            _ => AvailabilityPattern::DutyCycle {
                period: 1 + (rng.random::<u64>() % 8) as usize,
                on_rounds: 1,
                offset: (rng.random::<u64>() % 8) as usize,
            },
        },
    };
    ClientParams {
        data_size: u(rng, 0.1, 10.0),
        g_squared: u(rng, 1.0, 40.0),
        cost: u(rng, 5.0, 100.0),
        value: if rng.random::<u64>() % 4 == 0 {
            0.0
        } else {
            u(rng, 0.0, 20.0)
        },
        q_max: u(rng, 0.3, 1.0),
        availability,
    }
}

/// One deterministic churn history: the (add batch, remove positions)
/// sequence every service replica replays.
struct History {
    initial: Vec<ClientParams>,
    steps: Vec<(Vec<ClientParams>, Vec<usize>)>,
    budget: f64,
}

fn build_history(seed: u64, n0: usize, steps: usize, availability_mode: u8) -> History {
    let mut rng = substream(seed, 0x5AAD);
    let initial: Vec<ClientParams> = (0..n0)
        .map(|_| draw_client(&mut rng, availability_mode))
        .collect();
    let budget_pop =
        Population::from_raw(initial.iter().map(ClientParams::raw_profile).collect()).unwrap();
    // Tiny adversarial populations can realise a non-positive path spend
    // (floored clients, value-heavy negative prices); the service rejects
    // non-positive budgets, so clamp to an epsilon floored-regime budget.
    let budget = path_budget(&budget_pop, &bound(), &SolverOptions::default(), 0.45).max(1e-12);
    let mut population = n0;
    let steps = (0..steps)
        .map(|_| {
            let n_add = (rng.random::<u64>() % 5) as usize;
            let adds: Vec<ClientParams> = (0..n_add)
                .map(|_| draw_client(&mut rng, availability_mode))
                .collect();
            population += n_add;
            let n_rem = ((rng.random::<u64>() % 5) as usize).min(population.saturating_sub(1));
            let removes: Vec<usize> = (0..n_rem)
                .map(|_| {
                    population -= 1;
                    (rng.random::<u64>() % (population + 1) as u64) as usize
                })
                .collect();
            (adds, removes)
        })
        .collect();
    History {
        initial,
        steps,
        budget,
    }
}

/// Replay `history` through a service with the given shard/thread knobs,
/// returning the (ids, prices, q_eff, report-iteration) trace of every
/// solvable step.
#[allow(clippy::type_complexity)]
fn replay(
    history: &History,
    shards: usize,
    threads: usize,
    availability_mode: u8,
) -> Vec<(Vec<ClientId>, Vec<f64>, Vec<f64>, usize)> {
    let mut config = ServiceConfig::new(bound(), history.budget);
    config.solver = SolverOptions::with_threads(threads);
    config.availability_aware = availability_mode > 0;
    config.shards = shards;
    let (mut service, ids) =
        PricingService::with_clients(config, history.initial.clone()).expect("service");
    let mut live: Vec<ClientId> = ids;
    let mut trace = Vec::new();
    let mut record = |service: &mut PricingService, live: &[ClientId]| match service.snapshot() {
        Ok(s) => {
            assert_eq!(s.ids, live, "live-id order drifted");
            assert_eq!(s.report.shard_count, shards);
            trace.push((s.ids, s.prices, s.q_eff, s.report.bisect_iterations));
        }
        Err(fedfl_service::ServiceError::NoPriceableClients { .. }) => {
            trace.push((live.to_vec(), vec![], vec![], usize::MAX));
        }
        Err(e) => panic!("snapshot failed: {e}"),
    };
    record(&mut service, &live);
    for (adds, removes) in &history.steps {
        let new_ids = service.add_clients(adds.clone()).expect("add");
        live.extend(new_ids);
        let mut doomed = Vec::with_capacity(removes.len());
        for &pos in removes {
            doomed.push(live.remove(pos.min(live.len() - 1)));
        }
        service.remove_clients(&doomed).expect("remove");
        record(&mut service, &live);
    }
    trace
}

fn run_shard_invariance(seed: u64, n0: usize, steps: usize, availability_mode: u8) {
    let history = build_history(seed, n0, steps, availability_mode);
    let reference = replay(&history, 1, 1, availability_mode);
    for &shards in &[2usize, 7, 32] {
        for &threads in &[1usize, 3] {
            let got = replay(&history, shards, threads, availability_mode);
            assert_eq!(got.len(), reference.len());
            for (step, (r, g)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(r.0, g.0, "ids at step {step} (shards {shards})");
                assert_eq!(
                    r.1.len(),
                    g.1.len(),
                    "price count at step {step} (shards {shards})"
                );
                for (i, (a, b)) in r.1.iter().zip(&g.1).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "price[{i}] at step {step}: shards {shards} threads {threads}: {a} vs {b}"
                    );
                }
                for (i, (a, b)) in r.2.iter().zip(&g.2).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "q_eff[{i}] at step {step}: shards {shards} threads {threads}"
                    );
                }
                // Sharding must not change the solve itself: the bisection
                // runs the same iterations for any (shard, thread) pair.
                assert_eq!(r.3, g.3, "iterations at step {step} (shards {shards})");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn snapshots_are_bit_identical_across_shard_and_thread_counts(
        seed in 0u64..1_000_000,
        n0 in 1usize..32,
        steps in 1usize..7,
        mode in 0u8..2,
    ) {
        run_shard_invariance(seed, n0, steps, mode);
    }
}

#[test]
fn long_history_is_shard_count_invariant() {
    run_shard_invariance(2023, 48, 12, 1);
}

#[test]
fn dirty_shard_rebuilds_touch_a_strict_subset_of_columns() {
    // 32-client route blocks over 8 shards: a small churn batch must
    // rebuild well under half of a 1024-client population's columns.
    let mut rng = substream(7, 0xD1127);
    let clients: Vec<ClientParams> = (0..1024).map(|_| draw_client(&mut rng, 0)).collect();
    let budget_pop =
        Population::from_raw(clients.iter().map(ClientParams::raw_profile).collect()).unwrap();
    let mut config = ServiceConfig::new(bound(), 0.0);
    config.budget = path_budget(&budget_pop, &bound(), &config.solver, 0.4);
    config.shards = 8;
    let (mut service, ids) = PricingService::with_clients(config, clients).unwrap();
    let first = service.reprice().unwrap();
    assert_eq!(first.shard_count, 8);
    assert_eq!(first.dirty_shards, 8, "cold solve rebuilds everything");
    assert_eq!(first.rebuilt_columns, 1024);
    // A clean re-solve (budget change) rebuilds nothing.
    service
        .update_budget(service.config().budget * 1.1)
        .unwrap();
    let clean = service.reprice().unwrap();
    assert_eq!(clean.dirty_shards, 0);
    assert_eq!(clean.rebuilt_columns, 0);
    assert!(clean.warm_started);
    // One small churn batch rebuilds only the touched shards' columns.
    service
        .add_clients(vec![
            ClientParams::always_on(1.0, 4.0, 30.0, 2.0, 1.0),
            ClientParams::always_on(2.0, 9.0, 40.0, 0.0, 1.0),
        ])
        .unwrap();
    service.remove_clients(&[ids[17]]).unwrap();
    let churned = service.reprice().unwrap();
    assert!(churned.dirty_shards <= 3, "{} shards", churned.dirty_shards);
    assert!(
        churned.rebuilt_columns * 2 < churned.clients,
        "rebuilt {} of {} columns",
        churned.rebuilt_columns,
        churned.clients
    );
}

#[test]
fn update_budget_matches_a_fresh_deployment_bitwise() {
    let mut rng = substream(11, 0xB0D6E7);
    let clients: Vec<ClientParams> = (0..64).map(|_| draw_client(&mut rng, 0)).collect();
    let budget_pop =
        Population::from_raw(clients.iter().map(ClientParams::raw_profile).collect()).unwrap();
    let b0 = path_budget(&budget_pop, &bound(), &SolverOptions::default(), 0.3);
    let b1 = path_budget(&budget_pop, &bound(), &SolverOptions::default(), 0.6);

    let mut config = ServiceConfig::new(bound(), b0);
    config.shards = 4;
    let (mut service, _) = PricingService::with_clients(config, clients.clone()).unwrap();
    let before = service.snapshot().unwrap();
    assert_eq!(before.budget, b0);

    // Raise the budget through the command stream and re-read.
    match service.execute(Command::UpdateBudget(b1)).unwrap() {
        Response::BudgetUpdated => {}
        other => panic!("{other:?}"),
    }
    assert!(service.is_dirty());
    let after = service.snapshot().unwrap();
    assert_eq!(after.budget, b1);
    assert!(after.report.warm_started, "budget update keeps the hint");
    assert!(
        after.report.theorem2_residual.unwrap_or(0.0) < 1e-6,
        "re-solve stays certified"
    );

    // Bit-identical to a fresh deployment at the new budget.
    let mut fresh_config = ServiceConfig::new(bound(), b1);
    fresh_config.shards = 4;
    let (mut fresh, _) = PricingService::with_clients(fresh_config, clients).unwrap();
    let reference = fresh.snapshot().unwrap();
    assert_eq!(after.prices, reference.prices);
    assert_eq!(after.q_eff, reference.q_eff);
    // The warm start may not run more midpoint iterations than the cold
    // solve of the same instance.
    assert!(after.report.bisect_iterations <= reference.report.bisect_iterations);

    // Invalid budgets are rejected without mutating anything.
    assert!(service.update_budget(f64::NAN).is_err());
    assert_eq!(service.config().budget, b1);
    assert!(!service.is_dirty());
}

#[test]
fn update_bound_matches_a_fresh_deployment_bitwise() {
    let mut rng = substream(13, 0xB07D);
    let clients: Vec<ClientParams> = (0..64).map(|_| draw_client(&mut rng, 0)).collect();
    let budget_pop =
        Population::from_raw(clients.iter().map(ClientParams::raw_profile).collect()).unwrap();
    let budget = path_budget(&budget_pop, &bound(), &SolverOptions::default(), 0.4);
    let new_bound = BoundParams::new(6_000.0, 80.0, 1_500).unwrap();

    let mut config = ServiceConfig::new(bound(), budget);
    config.shards = 7;
    let (mut service, _) = PricingService::with_clients(config, clients.clone()).unwrap();
    service.reprice().unwrap();
    match service.execute(Command::UpdateBound(new_bound)).unwrap() {
        Response::BoundUpdated => {}
        other => panic!("{other:?}"),
    }
    let after = service.snapshot().unwrap();
    assert!(after.report.warm_started, "bound update keeps the hint");
    assert_eq!(
        after.report.dirty_shards, 0,
        "bound update dirties no shard"
    );
    assert!(after.report.theorem2_residual.unwrap_or(0.0) < 1e-6);

    let mut fresh_config = ServiceConfig::new(new_bound, budget);
    fresh_config.shards = 7;
    let (mut fresh, _) = PricingService::with_clients(fresh_config, clients).unwrap();
    let reference = fresh.snapshot().unwrap();
    assert_eq!(after.prices, reference.prices);
    assert_eq!(after.q_eff, reference.q_eff);
    assert!(after.report.bisect_iterations <= reference.report.bisect_iterations);

    // Invalid bounds (e.g. smuggled through deserialization) are rejected.
    let bad: BoundParams = serde_json::from_str(
        &serde_json::to_string(&new_bound)
            .unwrap()
            .replace("6000", "-1"),
    )
    .unwrap();
    assert!(service.update_bound(bad).is_err());
    assert_eq!(*service.config(), {
        let mut c = ServiceConfig::new(new_bound, budget);
        c.shards = 7;
        c
    });
}

#[test]
fn fast_path_service_stays_certified_under_churn_and_reuses_the_index() {
    use fedfl_core::server::SolverMode;

    // A certified fast solve is near-exact; a fallback is the exact
    // solver. Either way the fast service must track an exact twin
    // driven through the identical mutation history.
    let assert_agrees = |fast: &[f64], exact: &[f64], mode: SolverMode| {
        assert_ne!(mode, SolverMode::Exact, "fast service ran the plain path");
        for (i, (f, e)) in fast.iter().zip(exact).enumerate() {
            if mode == SolverMode::ThresholdIndex {
                let err = (f - e).abs() / e.abs().max(1.0);
                assert!(err <= 1e-6, "price[{i}] off by {err:e}");
            } else {
                assert_eq!(f.to_bits(), e.to_bits(), "fallback price[{i}] not exact");
            }
        }
    };

    let mut rng = substream(19, 0xFA57);
    let clients: Vec<ClientParams> = (0..512).map(|_| draw_client(&mut rng, 0)).collect();
    let budget_pop =
        Population::from_raw(clients.iter().map(ClientParams::raw_profile).collect()).unwrap();
    let budget = path_budget(&budget_pop, &bound(), &SolverOptions::default(), 0.4);
    let mut config = ServiceConfig::new(bound(), budget);
    config.shards = 8;
    config.fast_path = true;
    let mut exact_config = config;
    exact_config.fast_path = false;
    let (mut service, ids) = PricingService::with_clients(config, clients.clone()).unwrap();
    let (mut exact, _) = PricingService::with_clients(exact_config, clients).unwrap();

    let cold = service.reprice().unwrap();
    assert!(cold.index_rebuild_ns > 0, "cold solve builds the index");
    let segment_total = cold.index_segments_rebuilt;
    assert!(segment_total > 0, "cold build sorts every segment");
    assert_eq!(cold.index_segments_reused, 0);
    assert_agrees(
        &service.snapshot().unwrap().prices,
        &exact.snapshot().unwrap().prices,
        cold.solver_mode,
    );

    // Budget-only churn leaves the population untouched: the cached
    // index is reused verbatim and the report says so.
    service.update_budget(budget * 1.07).unwrap();
    exact.update_budget(budget * 1.07).unwrap();
    let budget_only = service.reprice().unwrap();
    assert_eq!(
        budget_only.index_rebuild_ns, 0,
        "budget update must reuse the cached threshold index"
    );
    assert_eq!(budget_only.dirty_shards, 0);
    assert_eq!(budget_only.index_segments_rebuilt, 0);
    assert_eq!(budget_only.index_segments_reused, 0);
    assert_agrees(
        &service.snapshot().unwrap().prices,
        &exact.snapshot().unwrap().prices,
        budget_only.solver_mode,
    );

    // Client churn changes the assembled population: rebuild.
    let adds = vec![
        ClientParams::always_on(1.0, 4.0, 30.0, 2.0, 1.0),
        ClientParams::always_on(2.0, 9.0, 40.0, 0.0, 1.0),
    ];
    service.add_clients(adds.clone()).unwrap();
    exact.add_clients(adds).unwrap();
    service.remove_clients(&[ids[17]]).unwrap();
    exact.remove_clients(&[ids[17]]).unwrap();
    let churned = service.reprice().unwrap();
    assert!(
        churned.index_rebuild_ns > 0,
        "churn must invalidate the cached index"
    );
    // Partial churn patches instead of rebuilding: only the segments
    // nested in the dirty shards re-sort, the rest are reused (or at
    // most repaired for threshold-order drift from the new weight
    // total) — and the sum accounts for every segment.
    let per_shard = segment_total / churned.shard_count as u64;
    assert!(churned.index_segments_rebuilt >= 1);
    assert!(churned.index_segments_rebuilt <= churned.dirty_shards as u64 * per_shard);
    assert!(churned.index_segments_reused > 0, "clean segments reused");
    assert_eq!(
        churned.index_segments_rebuilt
            + churned.index_segments_repaired
            + churned.index_segments_reused,
        segment_total
    );
    assert_agrees(
        &service.snapshot().unwrap().prices,
        &exact.snapshot().unwrap().prices,
        churned.solver_mode,
    );

    // A bound update that moves α/R moves every threshold, so the stamp
    // must invalidate the index even though no shard is dirty. (The
    // original bound has α/R = 4; this one has α/R = 6 — a same-ratio
    // update like (6000, 80, 1500) would legitimately keep the index.)
    let new_bound = BoundParams::new(6_000.0, 80.0, 1_000).unwrap();
    service.update_bound(new_bound).unwrap();
    exact.update_bound(new_bound).unwrap();
    let rebound = service.reprice().unwrap();
    assert_eq!(rebound.dirty_shards, 0, "bound update dirties no shard");
    assert!(
        rebound.index_rebuild_ns > 0,
        "α/R change must rebuild the threshold index"
    );
    assert_eq!(
        rebound.index_segments_rebuilt, segment_total,
        "a solver-knob change re-sorts every segment"
    );
    assert_eq!(rebound.index_segments_reused, 0);
    assert_agrees(
        &service.snapshot().unwrap().prices,
        &exact.snapshot().unwrap().prices,
        rebound.solver_mode,
    );
    if let Some(residual) = rebound.theorem2_residual {
        assert!(residual < 1e-6, "served equilibrium stays certified");
    }
}

#[test]
fn update_commands_round_trip_through_serde() {
    let commands = vec![
        Command::UpdateBudget(42.5),
        Command::UpdateBound(BoundParams::new(6_000.0, 80.0, 1_500).unwrap()),
    ];
    for command in commands {
        let json = serde_json::to_string(&command).expect("serialize command");
        let back: Command = serde_json::from_str(&json).expect("deserialize command");
        assert_eq!(back, command);
    }
    for response in [Response::BudgetUpdated, Response::BoundUpdated] {
        let json = serde_json::to_string(&response).expect("serialize response");
        let back: Response = serde_json::from_str(&json).expect("deserialize response");
        assert_eq!(back, response);
    }
    // A full round trip through the service: deserialized commands drive
    // the same state changes as typed calls.
    let (mut service, _) = PricingService::with_clients(
        ServiceConfig::new(bound(), 10.0),
        (1..=4)
            .map(|k| ClientParams::always_on(k as f64, 9.0, 30.0 * k as f64, 2.0, 1.0))
            .collect(),
    )
    .unwrap();
    let wire: Command =
        serde_json::from_str(&serde_json::to_string(&Command::UpdateBudget(12.0)).unwrap())
            .unwrap();
    service.execute(wire).unwrap();
    assert_eq!(service.config().budget, 12.0);
    assert_eq!(service.snapshot().unwrap().budget, 12.0);
}
