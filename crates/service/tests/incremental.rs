//! The service's two load-bearing contracts, property-tested under random
//! churn:
//!
//! 1. **Bit-identity** — after any sequence of add/remove/availability
//!    deltas, the incrementally re-solved prices equal a from-scratch
//!    `solve_kkt` over the same clients (same thread count) *bit for bit*.
//! 2. **Warm-start dominance** — the warm-started λ-bisection never runs
//!    more midpoint iterations than a cold solve of the same instance.

use fedfl_core::bound::BoundParams;
use fedfl_core::population::{ClientProfile, Population};
use fedfl_core::server::{path_budget, solve_kkt, solve_kkt_columns_hinted, SolverOptions};
use fedfl_num::rng::substream;
use fedfl_service::{AvailabilityPattern, ClientId, ClientParams, PricingService, ServiceConfig};
use proptest::prelude::*;
use rand::Rng;

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

/// Draw one client from the op stream's RNG.
fn draw_client<R: Rng>(rng: &mut R, availability_mode: u8) -> ClientParams {
    let u = |rng: &mut R, lo: f64, hi: f64| {
        lo + (hi - lo) * (rng.random::<u64>() as f64 / u64::MAX as f64)
    };
    let availability = match availability_mode {
        0 => AvailabilityPattern::AlwaysOn,
        1 => AvailabilityPattern::Random {
            probability: u(rng, 0.3, 1.0),
        },
        _ => match rng.random::<u64>() % 4 {
            0 => AvailabilityPattern::AlwaysOn,
            1 => AvailabilityPattern::Random {
                probability: u(rng, 0.2, 1.0),
            },
            // Effectively unreachable: exercises the exclusion path.
            2 => AvailabilityPattern::Random { probability: 1e-9 },
            _ => AvailabilityPattern::DutyCycle {
                period: 1 + (rng.random::<u64>() % 8) as usize,
                on_rounds: 1,
                offset: (rng.random::<u64>() % 8) as usize,
            },
        },
    };
    ClientParams {
        data_size: u(rng, 0.1, 10.0),
        g_squared: u(rng, 1.0, 40.0),
        cost: u(rng, 5.0, 100.0),
        value: if rng.random::<u64>() % 4 == 0 {
            0.0
        } else {
            u(rng, 0.0, 20.0)
        },
        q_max: u(rng, 0.3, 1.0),
        availability,
    }
}

/// The from-scratch reference: rebuild the included sub-population exactly
/// as a fresh deployment would and solve it cold, returning full-length
/// (price, q_eff) vectors plus the cold bisection iteration count.
fn reference_solve(
    mirror: &[(ClientId, ClientParams)],
    config: &ServiceConfig,
) -> (Vec<f64>, Vec<f64>, usize) {
    let rates: Vec<f64> = mirror
        .iter()
        .map(|(_, p)| {
            if config.availability_aware {
                p.availability.availability_rate()
            } else {
                1.0
            }
        })
        .collect();
    let included: Vec<bool> = mirror
        .iter()
        .zip(&rates)
        .map(|((_, p), &r)| r > 0.0 && p.q_max * r > config.solver.q_min)
        .collect();
    let profiles: Vec<ClientProfile> = mirror
        .iter()
        .zip(&included)
        .filter(|(_, &inc)| inc)
        .map(|((_, p), _)| p.raw_profile())
        .collect();
    let population = Population::from_raw(profiles).expect("reference population");
    let all_on = rates
        .iter()
        .zip(&included)
        .all(|(&r, &inc)| !inc || r == 1.0);
    let (solution, diag) = if all_on {
        // Exercise the *public* from-scratch path where it applies.
        let sol = solve_kkt(&population, &bound(), config.budget, &config.solver)
            .expect("from-scratch solve");
        let (check, diag) = solve_kkt_columns_hinted(
            &population.columns(),
            &bound(),
            config.budget,
            &config.solver,
            None,
        )
        .expect("cold columns solve");
        assert_eq!(sol, check, "columns path drifted from solve_kkt");
        (sol, diag)
    } else {
        let included_rates: Vec<f64> = rates
            .iter()
            .zip(&included)
            .filter(|(_, &inc)| inc)
            .map(|(&r, _)| r)
            .collect();
        let eff = population
            .columns()
            .effective(&included_rates)
            .expect("effective view");
        solve_kkt_columns_hinted(&eff, &bound(), config.budget, &config.solver, None)
            .expect("cold effective solve")
    };
    let n = mirror.len();
    let mut prices = vec![0.0f64; n];
    let mut q_eff = vec![0.0f64; n];
    let mut j = 0;
    for i in 0..n {
        if included[i] {
            prices[i] = solution.prices[j];
            q_eff[i] = solution.q[j];
            j += 1;
        }
    }
    (prices, q_eff, diag.bisect_iterations)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str, step: usize) {
    assert_eq!(a.len(), b.len(), "{what} length at step {step}");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}[{i}] diverged at step {step}: {x} vs {y}"
        );
    }
}

/// Drive one random churn history through the service, checking both
/// contracts after every re-solve.
fn run_churn(seed: u64, n0: usize, steps: usize, availability_mode: u8, threads: usize) {
    let mut rng = substream(seed, 0xC0FFEE);
    let mut config = ServiceConfig::new(bound(), 0.0);
    config.solver = SolverOptions::with_threads(threads);
    config.availability_aware = availability_mode > 0;
    let initial: Vec<ClientParams> = (0..n0)
        .map(|_| draw_client(&mut rng, availability_mode))
        .collect();
    // An interior-ish budget derived from the initial always-on population
    // (churn may still drive the solve to its saturated/floored corners —
    // those must stay bit-identical too).
    let budget_pop =
        Population::from_raw(initial.iter().map(ClientParams::raw_profile).collect()).unwrap();
    // A fully-floored tiny population can realise a zero path spend; the
    // service now rejects non-positive budgets, so keep the floored regime
    // with an epsilon budget instead (bit-identical: both floor everyone).
    config.budget = path_budget(&budget_pop, &bound(), &config.solver, 0.45).max(1e-12);

    let (mut service, ids) =
        PricingService::with_clients(config, initial.clone()).expect("service");
    let mut mirror: Vec<(ClientId, ClientParams)> = ids.into_iter().zip(initial).collect();
    let mut warm_total = 0usize;
    let mut cold_total = 0usize;

    for step in 0..=steps {
        if step > 0 {
            // Mutate: a batch of adds and a batch of removes.
            let n_add = (rng.random::<u64>() % 5) as usize;
            let batch: Vec<ClientParams> = (0..n_add)
                .map(|_| draw_client(&mut rng, availability_mode))
                .collect();
            let new_ids = service.add_clients(batch.clone()).expect("add");
            mirror.extend(new_ids.into_iter().zip(batch));
            let n_rem = ((rng.random::<u64>() % 5) as usize).min(mirror.len().saturating_sub(1));
            let mut doomed = Vec::new();
            for _ in 0..n_rem {
                let pos = (rng.random::<u64>() % mirror.len() as u64) as usize;
                doomed.push(mirror.remove(pos).0);
            }
            service.remove_clients(&doomed).expect("remove");
        }
        let snapshot = match service.snapshot() {
            Ok(s) => s,
            Err(fedfl_service::ServiceError::NoPriceableClients { .. }) => {
                // Everyone excluded: the reference has nothing to check.
                continue;
            }
            Err(e) => panic!("step {step}: {e}"),
        };
        let expected_ids: Vec<ClientId> = mirror.iter().map(|(id, _)| *id).collect();
        assert_eq!(snapshot.ids, expected_ids, "id order at step {step}");
        let (ref_prices, ref_q, cold_iters) = reference_solve(&mirror, service.config());
        assert_bits_eq(&snapshot.prices, &ref_prices, "price", step);
        assert_bits_eq(&snapshot.q_eff, &ref_q, "q_eff", step);
        // Warm-start dominance: never more iterations than the cold solve.
        assert!(
            snapshot.report.bisect_iterations <= cold_iters,
            "step {step}: warm {} > cold {cold_iters} iterations",
            snapshot.report.bisect_iterations
        );
        if step > 0 {
            warm_total += snapshot.report.bisect_iterations;
            cold_total += cold_iters;
        }
    }
    // Across a whole history the warm starts must actually save work
    // (equality every step would mean the hint never verified).
    if steps >= 6 && cold_total > 0 {
        assert!(
            warm_total < cold_total,
            "warm starts saved nothing over {steps} steps ({warm_total} vs {cold_total})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn incremental_reprice_is_bit_identical_under_churn(
        seed in 0u64..1_000_000,
        n0 in 1usize..40,
        steps in 1usize..10,
        mode in 0u8..3,
    ) {
        run_churn(seed, n0, steps, mode, 1);
    }

    #[test]
    fn incremental_reprice_is_bit_identical_with_threads(
        seed in 0u64..1_000_000,
        n0 in 2usize..30,
        steps in 1usize..6,
        mode in 0u8..3,
    ) {
        run_churn(seed, n0, steps, mode, 3);
    }
}

#[test]
fn long_always_on_history_accumulates_savings() {
    run_churn(2023, 64, 24, 0, 1);
}

#[test]
fn long_availability_aware_history_accumulates_savings() {
    run_churn(7, 64, 24, 2, 1);
}
