//! The pricing service: command processing and the incremental re-solve.

use crate::error::ServiceError;
use crate::store::{ShardedClientStore, INDEX_SEGMENTS};
use crate::{AvailabilityModel, ClientId, ClientParams};
use fedfl_core::active_set::{ActiveSetIndex, PatchStats};
use fedfl_core::bound::BoundParams;
use fedfl_core::server::{
    estimate_path_parameter_sharded, solve_kkt_sharded_fast_with_index_observed,
    solve_kkt_sharded_hinted_observed, theorem2_max_residual_sharded, SolverMode, SolverOptions,
};
use fedfl_obs::{Metric, MetricsReport, NoopRecorder, Recorder, Registry, Stopwatch};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Static configuration of a [`PricingService`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// The Theorem 1 bound constants `(α, β, R)` the mechanism prices
    /// against.
    pub bound: BoundParams,
    /// The server's per-deployment budget `B`.
    pub budget: f64,
    /// Stage-I solver options (floor, tolerance, worker threads).
    pub solver: SolverOptions,
    /// Price against effective participation `q_eff = q · rate`. When
    /// `false` (the default), availability patterns are ignored and the
    /// service reproduces the paper's always-on pricing bit-for-bit.
    pub availability_aware: bool,
    /// Number of store shards — the granularity of dirty tracking under
    /// churn (a delta rebuilds only the shards it touches) and of the
    /// solver's partial-spend merge. Prices are **bit-identical for any
    /// shard count**; the knob only trades rebuild granularity against
    /// per-shard overhead. Must be at least 1.
    pub shards: usize,
    /// Maximum sampled Theorem 2 residual accepted after a re-solve.
    pub residual_tolerance: f64,
    /// Number of invariant samples drawn per re-solve.
    pub residual_sample: usize,
    /// Seed of the deterministic residual sampler.
    pub residual_seed: u64,
    /// Route re-solves through the threshold-indexed active-set fast path
    /// (`SolverMode::ThresholdIndex`): λ-probes drop from O(N) to
    /// O(log N) against an index the service maintains across solves —
    /// reused verbatim for budget/bound-only updates, rebuilt on churn.
    /// Opt-in because certified fast prices are *near* the exact solver's
    /// (within the certification bands), not bit-identical to them; every
    /// fast solve is certified by exact probes and the Theorem-2 residual
    /// and falls back to the exact solver on violation. `false` (the
    /// default) preserves the exact solver's bit-for-bit contract.
    pub fast_path: bool,
}

impl ServiceConfig {
    /// A configuration with the default solver, always-on pricing, 8
    /// store shards, and a `1e-6` Theorem 2 tolerance sampled at 1024
    /// clients per re-solve.
    pub fn new(bound: BoundParams, budget: f64) -> Self {
        Self {
            bound,
            budget,
            solver: SolverOptions::default(),
            availability_aware: false,
            shards: 8,
            residual_tolerance: 1e-6,
            residual_sample: 1024,
            residual_seed: 0x5EED,
            fast_path: false,
        }
    }

    /// Validate a budget value: the mechanism prices against a finite,
    /// strictly positive `B` (a zero budget admits no equilibrium and a
    /// NaN would poison the λ-bisection). Shared by construction-time
    /// validation and the `UpdateBudget` command path so a wire peer
    /// cannot smuggle in a value `validate` would have rejected.
    fn validate_budget(budget: f64) -> Result<(), ServiceError> {
        if !(budget.is_finite() && budget > 0.0) {
            return Err(ServiceError::InvalidConfig {
                field: "budget",
                reason: format!("must be finite and positive, got {budget}"),
            });
        }
        Ok(())
    }

    fn validate(&self) -> Result<(), ServiceError> {
        Self::validate_budget(self.budget)?;
        if self.shards == 0 {
            return Err(ServiceError::InvalidConfig {
                field: "shards",
                reason: "need at least one shard".into(),
            });
        }
        if !(self.residual_tolerance.is_finite() && self.residual_tolerance > 0.0) {
            return Err(ServiceError::InvalidConfig {
                field: "residual_tolerance",
                reason: format!(
                    "must be finite and positive, got {}",
                    self.residual_tolerance
                ),
            });
        }
        if self.residual_sample == 0 {
            return Err(ServiceError::InvalidConfig {
                field: "residual_sample",
                reason: "sampling zero clients would silently disable the Theorem 2 \
                         certification"
                    .into(),
            });
        }
        Ok(())
    }
}

/// One request to the service.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Command {
    /// Register new clients; replies with their assigned ids.
    AddClients(Vec<ClientParams>),
    /// Deregister clients by id (atomic: an unknown id rejects the batch).
    RemoveClients(Vec<ClientId>),
    /// Replace every client's availability pattern; the model is aligned
    /// to client-insertion order and must match the population size.
    UpdateAvailability(AvailabilityModel),
    /// Replace the deployment budget `B`. No store shard is dirtied — the
    /// columns are budget-independent — but the equilibrium re-solves
    /// (warm-started through `estimate_path_parameter` at the new budget)
    /// at the next read or `Reprice`.
    UpdateBudget(f64),
    /// Replace the Theorem 1 bound constants `(α, β, R)`. Like
    /// `UpdateBudget`, this dirties no shard; the warm-start hint is
    /// rescaled by the `α/R` ratio before the verified descent.
    UpdateBound(BoundParams),
    /// Re-solve the equilibrium now (deltas otherwise re-solve lazily at
    /// the next read).
    Reprice,
    /// Batched price read for the given ids.
    GetPrices(Vec<ClientId>),
    /// Full view of the current equilibrium.
    Snapshot,
    /// Scrape the observability registry: a typed metrics snapshot plus
    /// its Prometheus-style text exposition. Read-only — dirties nothing,
    /// solves nothing, and (unlike every other command) is excluded from
    /// the command counters so scraping does not perturb what it measures.
    Metrics,
}

/// The service's reply to one [`Command`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Ids assigned to an `AddClients` batch, in submission order.
    Added(Vec<ClientId>),
    /// Number of clients removed.
    Removed(usize),
    /// The availability model was replaced.
    AvailabilityUpdated,
    /// The budget was replaced.
    BudgetUpdated,
    /// The bound constants were replaced.
    BoundUpdated,
    /// Result of an explicit `Reprice`.
    Repriced(RepriceReport),
    /// Quotes for a `GetPrices` batch, in request order.
    Prices(Vec<PriceQuote>),
    /// Result of a `Snapshot`.
    Snapshot(ServiceSnapshot),
    /// Result of a `Metrics` scrape (zeroed snapshot when no recorder is
    /// installed).
    Metrics(MetricsReport),
}

/// One client's current quote.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PriceQuote {
    /// The client.
    pub id: ClientId,
    /// Equilibrium price per unit of (effective) participation. Excluded
    /// clients — unreachable under the current availability model — are
    /// quoted `0.0`.
    pub price: f64,
    /// The effective participation level `q_eff` the price implements
    /// (`0.0` for excluded clients).
    pub q_eff: f64,
}

/// Diagnostics of one re-solve — the observable half of the warm-start
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepriceReport {
    /// Clients registered at solve time.
    pub clients: usize,
    /// Clients excluded as effectively unreachable (rate `0`, or an
    /// effective cap below the solver floor).
    pub excluded: usize,
    /// KKT multiplier `λ*` (`None` for saturated or floored populations).
    pub lambda: Option<f64>,
    /// Realised total payment `Σ P q_eff`.
    pub spent: f64,
    /// Whether every priceable client saturated at its cap with budget to
    /// spare.
    pub saturated: bool,
    /// Maximum sampled Theorem 2 residual (`None` when no interior λ*).
    pub theorem2_residual: Option<f64>,
    /// Whether a warm-start hint from a previous solve was available.
    pub warm_started: bool,
    /// Dyadic depth the λ-bisection started from (0 = cold).
    pub warm_start_depth: usize,
    /// Midpoint iterations the λ-bisection ran.
    pub bisect_iterations: usize,
    /// Distinct spend evaluations, including warm-start verification.
    pub bisect_evaluations: usize,
    /// Number of store shards.
    pub shard_count: usize,
    /// Shards whose column caches were rebuilt for this solve (the shards
    /// the deltas since the previous solve touched).
    pub dirty_shards: usize,
    /// Clients whose cached columns were recomputed — the dirty-shard
    /// contract's cost, `O(N/S · dirty)` instead of `O(N)`.
    pub rebuilt_columns: usize,
    /// Which solver path produced the prices: `Exact` when
    /// [`ServiceConfig::fast_path`] is off, `ThresholdIndex` for a
    /// certified fast solve, `ThresholdIndexFallback` when certification
    /// demoted the solve to the exact path.
    pub solver_mode: SolverMode,
    /// Probe-phase work in per-client spend-evaluation units (see
    /// [`fedfl_core::server::KktDiagnostics::probe_evaluations`]).
    pub probe_evaluations: u64,
    /// Nanoseconds spent rebuilding or incrementally patching the
    /// threshold index for this solve (0 when the cached index was reused
    /// — the budget/bound-only churn case — or when the fast path is
    /// off).
    pub index_rebuild_ns: u64,
    /// Threshold-index segments re-sorted for this solve: every segment
    /// on a cold build, only the dirty-shard segments on an incremental
    /// patch, 0 on reuse or the exact path.
    pub index_segments_rebuilt: u64,
    /// Clean index segments re-sorted only because the weight-total
    /// drift reordered their thresholds (patch repairs).
    pub index_segments_repaired: u64,
    /// Index segments reused verbatim by an incremental patch.
    pub index_segments_reused: u64,
}

/// Full view of the current equilibrium.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Client ids in insertion order.
    pub ids: Vec<ClientId>,
    /// Per-client prices (aligned with `ids`; excluded clients are `0.0`).
    pub prices: Vec<f64>,
    /// Per-client effective participation levels (aligned with `ids`).
    pub q_eff: Vec<f64>,
    /// The budget the equilibrium was solved for.
    pub budget: f64,
    /// The report of the solve that produced this snapshot.
    pub report: RepriceReport,
}

/// Cached result of the last successful re-solve, scattered back to the
/// full client list.
#[derive(Debug, Clone)]
struct PricedState {
    prices: Vec<f64>,
    q_eff: Vec<f64>,
    report: RepriceReport,
}

/// Warm-start state carried between solves: the path parameter
/// `t* = 1/λ*`, plus the total raw weight and `α/R` it was solved at.
///
/// A churn delta rescales every normalised weight by `W_old / W_new`,
/// shifting the KKT path roughly like `t ↦ t · (W_new / W_old)²`; a bound
/// update scales it like `t ↦ t · (α/R)_old / (α/R)_new` (the path levels
/// depend on the product `(α/R)·t`). The rescaled value is refined by the
/// closed-form spend model and handed to the bisection as a *hint* — the
/// bisection verifies the bracket before trusting it.
#[derive(Debug, Clone, Copy)]
struct WarmHint {
    t_star: f64,
    total_weight: f64,
    aor: f64,
}

/// The fast path's cached threshold index plus the stamps it was built
/// at. The index is a pure function of the assembled population and the
/// solver parameters `(α/R, q_min)`; the assembled population is a pure
/// function of the store contents (its mutation `version`) and the
/// availability flag. A matching global stamp therefore proves the
/// cached index still describes the current population — budget and
/// bound-`β` updates reuse it with zero rebuild work. When only the
/// global stamp moved, the per-shard stamps say *which* store shards
/// churned, and the keyed index is incrementally patched: only the
/// segments nested in those shards re-sort, everything else is reused.
#[derive(Debug, Clone)]
struct FastIndexState {
    index: ActiveSetIndex,
    store_version: u64,
    /// Per-shard store stamps at build time; diffed against the store's
    /// current stamps to flag dirty index segments.
    shard_versions: Vec<u64>,
    aor_bits: u64,
    q_min_bits: u64,
    availability_aware: bool,
}

/// A long-running pricing service owning a churning, sharded client
/// population.
///
/// See the crate docs for the full contract. All mutating commands are
/// cheap (`O(batch)` or one `O(N)` compaction) and dirty only the store
/// shards they touch; a re-solve rebuilds only the dirty shards' columns
/// before the λ-bisection, warm-started from the previous solve.
#[derive(Debug, Clone)]
pub struct PricingService {
    config: ServiceConfig,
    store: ShardedClientStore,
    state: Option<PricedState>,
    dirty: bool,
    warm_hint: Option<WarmHint>,
    fast_index: Option<FastIndexState>,
    /// Shared observability registry. `None` (the default) routes every
    /// instrument call through [`NoopRecorder`] — zero hot-path cost.
    recorder: Option<Arc<Registry>>,
}

impl PricingService {
    /// Create an empty service.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] for a non-finite or
    /// non-positive budget, or an invalid tolerance.
    pub fn new(config: ServiceConfig) -> Result<Self, ServiceError> {
        config.validate()?;
        Ok(Self {
            store: ShardedClientStore::new(config.shards),
            config,
            state: None,
            dirty: true,
            warm_hint: None,
            fast_index: None,
            recorder: None,
        })
    }

    /// Create an empty service recording into `recorder`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PricingService::new`].
    pub fn with_recorder(
        config: ServiceConfig,
        recorder: Arc<Registry>,
    ) -> Result<Self, ServiceError> {
        let mut service = Self::new(config)?;
        service.set_recorder(recorder);
        Ok(service)
    }

    /// Install (or replace) the observability registry. Metrics recorded
    /// so far stay in the old registry; counting continues in the new one.
    pub fn set_recorder(&mut self, recorder: Arc<Registry>) {
        recorder.gauge_set(Metric::ServiceClients, self.store.len() as u64);
        self.recorder = Some(recorder);
    }

    /// The installed observability registry, if any.
    pub fn recorder(&self) -> Option<&Arc<Registry>> {
        self.recorder.as_ref()
    }

    /// The current metrics report (zeroed when no recorder is installed).
    pub fn metrics_report(&self) -> MetricsReport {
        self.recorder
            .as_ref()
            .map_or_else(|| Registry::new().report(), |registry| registry.report())
    }

    /// Create a service pre-populated with `clients`.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError`] for an invalid config or client batch.
    pub fn with_clients(
        config: ServiceConfig,
        clients: Vec<ClientParams>,
    ) -> Result<(Self, Vec<ClientId>), ServiceError> {
        let mut service = Self::new(config)?;
        let ids = service.add_clients(clients)?;
        Ok((service, ids))
    }

    /// The static configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// Whether deltas have accumulated since the last solve.
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }

    /// Process one command.
    ///
    /// # Errors
    ///
    /// Propagates the underlying typed method's error; failed commands
    /// leave the service state unchanged.
    pub fn execute(&mut self, command: Command) -> Result<Response, ServiceError> {
        if matches!(command, Command::Metrics) {
            return Ok(Response::Metrics(self.metrics_report()));
        }
        let recorder = self.recorder.clone();
        if let Some(registry) = &recorder {
            registry.add(Metric::ServiceCommands, 1);
        }
        let result = match command {
            Command::AddClients(batch) => self.add_clients(batch).map(Response::Added),
            Command::RemoveClients(ids) => self.remove_clients(&ids).map(Response::Removed),
            Command::UpdateAvailability(model) => self
                .update_availability(&model)
                .map(|()| Response::AvailabilityUpdated),
            Command::UpdateBudget(budget) => {
                self.update_budget(budget).map(|()| Response::BudgetUpdated)
            }
            Command::UpdateBound(bound) => {
                self.update_bound(bound).map(|()| Response::BoundUpdated)
            }
            Command::Reprice => self.reprice().map(Response::Repriced),
            Command::GetPrices(ids) => self.get_prices(&ids).map(Response::Prices),
            Command::Snapshot => self.snapshot().map(Response::Snapshot),
            Command::Metrics => unreachable!("handled above"),
        };
        if result.is_err() {
            if let Some(registry) = &recorder {
                registry.add(Metric::ServiceCommandErrors, 1);
            }
        }
        result
    }

    /// Register new clients, assigning fresh ids.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidClient`] (mutating nothing) if any
    /// submitted parameters are invalid.
    pub fn add_clients(&mut self, batch: Vec<ClientParams>) -> Result<Vec<ClientId>, ServiceError> {
        let ids = self.store.add(batch)?;
        if !ids.is_empty() {
            self.dirty = true;
        }
        if let Some(registry) = &self.recorder {
            registry.gauge_set(Metric::ServiceClients, self.store.len() as u64);
        }
        Ok(ids)
    }

    /// Deregister a batch of clients.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownClient`] (mutating nothing) if any id
    /// is unknown or duplicated.
    pub fn remove_clients(&mut self, ids: &[ClientId]) -> Result<usize, ServiceError> {
        let removed = self.store.remove(ids)?;
        if removed > 0 {
            self.dirty = true;
        }
        if let Some(registry) = &self.recorder {
            registry.gauge_set(Metric::ServiceClients, self.store.len() as u64);
        }
        Ok(removed)
    }

    /// Replace every client's availability pattern (aligned to insertion
    /// order).
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::AvailabilityMismatch`] if the model size
    /// disagrees with the population.
    pub fn update_availability(&mut self, model: &AvailabilityModel) -> Result<(), ServiceError> {
        let aware = self.config.availability_aware;
        let changed = self.store.set_availability(model, aware)?;
        if aware && changed {
            self.dirty = true;
        }
        Ok(())
    }

    /// Replace the deployment budget `B`. Dirties no store shard (the
    /// columns are budget-independent); the next solve re-bisects λ at
    /// the new budget, warm-started from the previous path parameter.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] for a non-finite or
    /// non-positive budget (mutating nothing) — the same check
    /// construction-time [`ServiceConfig`] validation applies, so the
    /// `UpdateBudget` command cannot bypass it.
    pub fn update_budget(&mut self, budget: f64) -> Result<(), ServiceError> {
        ServiceConfig::validate_budget(budget)?;
        if budget != self.config.budget {
            self.config.budget = budget;
            self.dirty = true;
        }
        Ok(())
    }

    /// Replace the Theorem 1 bound constants `(α, β, R)`. Dirties no
    /// store shard; the warm-start hint is rescaled by the `α/R` ratio
    /// before the next solve's verified descent.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::InvalidConfig`] for invalid constants
    /// (mutating nothing) — deserialized `BoundParams` are re-validated
    /// here.
    pub fn update_bound(&mut self, bound: BoundParams) -> Result<(), ServiceError> {
        let bound = BoundParams::new(bound.alpha(), bound.beta(), bound.rounds()).map_err(|e| {
            ServiceError::InvalidConfig {
                field: "bound",
                reason: e.to_string(),
            }
        })?;
        if bound != self.config.bound {
            self.config.bound = bound;
            self.dirty = true;
        }
        Ok(())
    }

    /// Re-solve the equilibrium now, warm-starting from the previous λ*.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::NoPriceableClients`] for an empty or fully
    /// excluded population, [`ServiceError::InvariantViolated`] if the
    /// solved equilibrium fails the Theorem 2 check, and
    /// [`ServiceError::Game`] for solver failures. On error the previous
    /// priced state is kept (and remains stale).
    pub fn reprice(&mut self) -> Result<RepriceReport, ServiceError> {
        match self.recorder.clone() {
            Some(registry) => self.reprice_observed(&*registry),
            None => self.reprice_observed(&NoopRecorder),
        }
    }

    /// [`PricingService::reprice`] with an explicit metric sink. The solve
    /// and the resulting prices are byte-for-byte independent of the
    /// recorder; instrumentation only reads what the solve already
    /// computed (plus [`Stopwatch`] spans, which are the single
    /// measurement site for the report's timing fields).
    fn reprice_observed<R: Recorder + ?Sized>(
        &mut self,
        recorder: &R,
    ) -> Result<RepriceReport, ServiceError> {
        let reprice_watch = Stopwatch::start();
        let n = self.store.len();
        // Rebuild only the dirty shards' cached columns (availability
        // rates, inclusion masks, the effective cost/cap transform) —
        // O(N/S · dirty) instead of the monolithic O(N) rebuild — then
        // gather them in global insertion order with the exact
        // `Population::from_raw` weight normalisation, split into
        // chunk-aligned solver shards. Prices are therefore bit-identical
        // to a from-scratch solve over the same clients, for any shard
        // count.
        let stats = self
            .store
            .ensure_caches(self.config.availability_aware, self.config.solver.q_min);
        let assembled = self.store.assemble(self.config.shards)?;
        let aor = self.config.bound.alpha_over_r();

        // Warm-start hint: rescale the previous path parameter for the
        // weight renormalisation (and any bound update) since the last
        // solve, then refine it with the closed-form spend model on the
        // new columns. Both are heuristics; the bisection verifies the
        // implied bracket before trusting it.
        let hint = self.warm_hint.map(|warm| {
            let ratio = assembled.total_raw_weight / warm.total_weight;
            let t_scaled = warm.t_star * ratio * ratio * (warm.aor / aor);
            estimate_path_parameter_sharded(
                &assembled.population,
                &self.config.bound,
                self.config.budget,
                t_scaled,
                self.config.solver.config.n_threads,
            )
            .unwrap_or(t_scaled)
        });
        let (solution, diag) = if self.config.fast_path {
            // Reuse the cached threshold index when the global stamp
            // proves the assembled population and the index parameters
            // are unchanged (budget/bound-β-only churn). When only some
            // store shards churned under unchanged solver knobs,
            // incrementally patch it — O(dirty · (N/S) · log(N/S)) sort
            // work, bit-identical to a cold keyed build. Otherwise
            // rebuild it once — O(N log N) — and cache it under the new
            // stamps.
            let store_version = self.store.version();
            let q_min_bits = self.config.solver.q_min.to_bits();
            let params_match = |cached: &FastIndexState| {
                cached.aor_bits == aor.to_bits()
                    && cached.q_min_bits == q_min_bits
                    && cached.availability_aware == self.config.availability_aware
            };
            let stamp_matches = self.fast_index.as_ref().is_some_and(|cached| {
                cached.store_version == store_version && params_match(cached)
            });
            let mut index_rebuild_ns = 0u64;
            let mut segments = PatchStats::default();
            if stamp_matches {
                recorder.add(Metric::ServiceIndexReuses, 1);
            } else {
                let shard_count = self.store.shard_count();
                let current_versions = self.store.shard_versions().to_vec();
                // Patching needs the same solver knobs (a knob change
                // moves every threshold) and the segment-in-shard
                // nesting: segments and shards key on the same id
                // blocks, so whenever the shard count divides the
                // segment count, segment `k` lives entirely inside
                // store shard `k % shard_count`.
                let previous = self.fast_index.take().filter(|cached| {
                    params_match(cached)
                        && cached.shard_versions.len() == shard_count
                        && INDEX_SEGMENTS.is_multiple_of(shard_count)
                });
                let index = if let Some(cached) = previous {
                    let mut dirty = vec![false; INDEX_SEGMENTS];
                    for (k, flag) in dirty.iter_mut().enumerate() {
                        *flag = current_versions[k % shard_count]
                            != cached.shard_versions[k % shard_count];
                    }
                    let patch_watch = Stopwatch::start();
                    let (index, stats) = cached.index.patch(
                        &assembled.index.columns(),
                        &assembled.index.seg_keys,
                        &dirty,
                        assembled.index.scale,
                        self.config.solver.config.n_threads,
                    );
                    // One measurement feeds both the histogram and the
                    // report's `index_rebuild_ns` field below.
                    index_rebuild_ns = patch_watch.record(recorder, Metric::SolverIndexPatchNs);
                    recorder.add(Metric::ServiceIndexPatches, 1);
                    segments = stats;
                    index
                } else {
                    recorder.add(Metric::ServiceIndexRebuilds, 1);
                    let build_watch = Stopwatch::start();
                    let index = ActiveSetIndex::build_keyed(
                        &assembled.index.columns(),
                        &assembled.index.seg_keys,
                        INDEX_SEGMENTS,
                        aor,
                        self.config.solver.q_min,
                        assembled.index.scale,
                        self.config.solver.config.n_threads,
                    );
                    index_rebuild_ns = build_watch.record(recorder, Metric::SolverIndexBuildNs);
                    recorder.add(Metric::SolverIndexBuilds, 1);
                    segments.rebuilt = index.segment_count();
                    index
                };
                recorder.add(Metric::SolverIndexSegmentsRebuilt, segments.rebuilt as u64);
                recorder.add(
                    Metric::SolverIndexSegmentsRepaired,
                    segments.repaired as u64,
                );
                recorder.add(Metric::SolverIndexSegmentsReused, segments.reused as u64);
                self.fast_index = Some(FastIndexState {
                    index,
                    store_version,
                    shard_versions: current_versions,
                    aor_bits: aor.to_bits(),
                    q_min_bits,
                    availability_aware: self.config.availability_aware,
                });
            }
            let index = &self.fast_index.as_ref().expect("cached above").index;
            let (solution, mut diag) = solve_kkt_sharded_fast_with_index_observed(
                &assembled.population,
                &self.config.bound,
                self.config.budget,
                &self.config.solver,
                index,
                hint,
                recorder,
            )?;
            diag.index_rebuild_ns = index_rebuild_ns;
            diag.index_segments_rebuilt = segments.rebuilt as u64;
            diag.index_segments_repaired = segments.repaired as u64;
            diag.index_segments_reused = segments.reused as u64;
            (solution, diag)
        } else {
            solve_kkt_sharded_hinted_observed(
                &assembled.population,
                &self.config.bound,
                self.config.budget,
                &self.config.solver,
                hint,
                recorder,
            )?
        };

        // Certify the equilibrium before serving it (Theorem 2).
        let residual = theorem2_max_residual_sharded(
            &assembled.population,
            &self.config.bound,
            &solution,
            self.config.residual_sample,
            self.config.residual_seed,
        );
        if let Some(r) = residual {
            if r > self.config.residual_tolerance {
                return Err(ServiceError::InvariantViolated {
                    residual: r,
                    tolerance: self.config.residual_tolerance,
                });
            }
        }

        let report = RepriceReport {
            clients: n,
            excluded: n - assembled.included_count,
            lambda: solution.lambda,
            spent: solution.spent,
            saturated: solution.saturated,
            theorem2_residual: residual,
            warm_started: hint.is_some(),
            warm_start_depth: diag.warm_start_depth,
            bisect_iterations: diag.bisect_iterations,
            bisect_evaluations: diag.bisect_evaluations,
            shard_count: self.store.shard_count(),
            dirty_shards: stats.dirty_shards,
            rebuilt_columns: stats.rebuilt_columns,
            solver_mode: diag.solver_mode,
            probe_evaluations: diag.probe_evaluations,
            index_rebuild_ns: diag.index_rebuild_ns,
            index_segments_rebuilt: diag.index_segments_rebuilt,
            index_segments_repaired: diag.index_segments_repaired,
            index_segments_reused: diag.index_segments_reused,
        };

        // Scatter the solved profile back over the full client list.
        let mut prices = vec![0.0f64; n];
        let mut q_eff = vec![0.0f64; n];
        let mut j = 0usize;
        for i in 0..n {
            if assembled.included[i] {
                prices[i] = solution.prices[j];
                q_eff[i] = solution.q[j];
                j += 1;
            }
        }
        self.state = Some(PricedState {
            prices,
            q_eff,
            report,
        });
        self.warm_hint = (diag.t_star > 0.0).then_some(WarmHint {
            t_star: diag.t_star,
            total_weight: assembled.total_raw_weight,
            aor,
        });
        self.dirty = false;
        recorder.add(Metric::ServiceReprices, 1);
        recorder.add(
            if report.warm_started {
                Metric::ServiceWarmSolves
            } else {
                Metric::ServiceColdSolves
            },
            1,
        );
        recorder.add(Metric::ServiceDirtyShards, report.dirty_shards as u64);
        recorder.add(Metric::ServiceRebuiltColumns, report.rebuilt_columns as u64);
        recorder.gauge_set(Metric::ServiceClients, report.clients as u64);
        recorder.gauge_set(Metric::ServiceExcludedClients, report.excluded as u64);
        reprice_watch.record(recorder, Metric::ServiceRepriceNs);
        Ok(report)
    }

    /// Re-solve only if deltas have accumulated.
    fn ensure_priced(&mut self) -> Result<(), ServiceError> {
        if self.dirty || self.state.is_none() {
            self.reprice()?;
        }
        Ok(())
    }

    /// Batched price read (re-solving first if the state is stale).
    ///
    /// The batch is atomic: every id — including duplicates — is resolved
    /// before any quote is assembled, so the first unknown id (in request
    /// order) rejects the whole batch and no partial quote vector is ever
    /// observable.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::UnknownClient`] naming the first unknown
    /// id in the batch, plus any [`PricingService::reprice`] error.
    pub fn get_prices(&mut self, ids: &[ClientId]) -> Result<Vec<PriceQuote>, ServiceError> {
        self.ensure_priced()?;
        let state = self.state.as_ref().expect("priced above");
        // Resolve every position first; quotes are only built once the
        // whole batch is known to be servable.
        let positions: Vec<usize> = ids
            .iter()
            .map(|&id| {
                self.store
                    .position(id)
                    .ok_or(ServiceError::UnknownClient(id))
            })
            .collect::<Result<_, _>>()?;
        Ok(ids
            .iter()
            .zip(positions)
            .map(|(&id, pos)| PriceQuote {
                id,
                price: state.prices[pos],
                q_eff: state.q_eff[pos],
            })
            .collect())
    }

    /// Full equilibrium view (re-solving first if the state is stale).
    ///
    /// # Errors
    ///
    /// Propagates [`PricingService::reprice`] errors.
    pub fn snapshot(&mut self) -> Result<ServiceSnapshot, ServiceError> {
        self.ensure_priced()?;
        let state = self.state.as_ref().expect("priced above");
        Ok(ServiceSnapshot {
            ids: self.store.ids().to_vec(),
            prices: state.prices.clone(),
            q_eff: state.q_eff.clone(),
            budget: self.config.budget,
            report: state.report,
        })
    }

    /// The report of the most recent successful re-solve, if any.
    pub fn last_report(&self) -> Option<&RepriceReport> {
        self.state.as_ref().map(|s| &s.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AvailabilityPattern;

    fn bound() -> BoundParams {
        BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
    }

    fn client(k: usize) -> ClientParams {
        ClientParams::always_on(
            1.0 + k as f64,
            4.0 + k as f64,
            30.0 + 10.0 * k as f64,
            2.0 * k as f64,
            1.0,
        )
    }

    #[test]
    fn command_stream_round_trip() {
        let mut service = PricingService::new(ServiceConfig::new(bound(), 10.0)).unwrap();
        assert!(service.is_empty());
        let ids = match service
            .execute(Command::AddClients((0..4).map(client).collect()))
            .unwrap()
        {
            Response::Added(ids) => ids,
            other => panic!("{other:?}"),
        };
        assert_eq!(service.len(), 4);
        assert!(service.is_dirty());
        let report = match service.execute(Command::Reprice).unwrap() {
            Response::Repriced(r) => r,
            other => panic!("{other:?}"),
        };
        assert!(!service.is_dirty());
        assert_eq!(report.clients, 4);
        assert_eq!(report.excluded, 0);
        assert!(!report.warm_started);
        let quotes = match service
            .execute(Command::GetPrices(vec![ids[2], ids[0]]))
            .unwrap()
        {
            Response::Prices(q) => q,
            other => panic!("{other:?}"),
        };
        assert_eq!(quotes[0].id, ids[2]);
        assert!(quotes.iter().all(|q| q.price.is_finite()));
        match service
            .execute(Command::RemoveClients(vec![ids[1]]))
            .unwrap()
        {
            Response::Removed(1) => {}
            other => panic!("{other:?}"),
        }
        // Reads lazily re-solve after a delta, now warm-started.
        let snapshot = match service.execute(Command::Snapshot).unwrap() {
            Response::Snapshot(s) => s,
            other => panic!("{other:?}"),
        };
        assert_eq!(snapshot.ids.len(), 3);
        assert!(snapshot.report.warm_started);
        assert!(service.last_report().is_some());
    }

    #[test]
    fn metrics_command_reports_the_registry() {
        let registry = Arc::new(Registry::new());
        let mut service =
            PricingService::with_recorder(ServiceConfig::new(bound(), 10.0), Arc::clone(&registry))
                .unwrap();
        service
            .execute(Command::AddClients((0..4).map(client).collect()))
            .unwrap();
        service.execute(Command::Reprice).unwrap();
        let report = match service.execute(Command::Metrics).unwrap() {
            Response::Metrics(report) => report,
            other => panic!("{other:?}"),
        };
        let snap = &report.snapshot;
        assert_eq!(snap.counter("fedfl_service_commands_total"), Some(2));
        assert_eq!(snap.counter("fedfl_service_reprices_total"), Some(1));
        assert_eq!(snap.counter("fedfl_solver_solves_total"), Some(1));
        assert_eq!(snap.counter("fedfl_solver_exact_solves_total"), Some(1));
        assert_eq!(snap.gauge("fedfl_service_clients"), Some(4));
        assert_eq!(snap.histogram("fedfl_service_reprice_ns").unwrap().count, 1);
        assert!(report.exposition.contains("fedfl_service_reprices_total 1"));
        // A scrape perturbs nothing: the command counter stays at 2 and
        // the service without a recorder answers a zeroed snapshot.
        let again = service.metrics_report();
        assert_eq!(
            again.snapshot.counter("fedfl_service_commands_total"),
            Some(2)
        );
        let mut bare = PricingService::new(ServiceConfig::new(bound(), 10.0)).unwrap();
        match bare.execute(Command::Metrics).unwrap() {
            Response::Metrics(report) => {
                assert_eq!(
                    report.snapshot.counter("fedfl_service_commands_total"),
                    Some(0)
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn report_fields_and_metrics_are_the_same_measurement() {
        // Satellite contract: the report's timing/probe fields and the
        // obs counters come from the same measurement sites, so their
        // totals agree exactly across a churning fast-path run.
        let registry = Arc::new(Registry::new());
        let mut config = ServiceConfig::new(bound(), 10.0);
        config.fast_path = true;
        let mut service = PricingService::with_recorder(config, Arc::clone(&registry)).unwrap();
        service.add_clients((0..32).map(client).collect()).unwrap();

        let mut probe_total = 0u64;
        let mut iteration_total = 0u64;
        let mut build_ns_total = 0u64;
        let mut patch_ns_total = 0u64;
        let mut dirty_total = 0u64;
        let mut rebuilt_columns_total = 0u64;
        let mut segments_rebuilt_total = 0u64;
        let mut segments_repaired_total = 0u64;
        let mut segments_reused_total = 0u64;
        for round in 0..4 {
            if round == 2 {
                // Dirty one shard so the index must patch incrementally.
                service.add_clients(vec![client(40 + round)]).unwrap();
            } else if round > 0 {
                // Budget-only churn: the cached index must be reused.
                service.update_budget(10.0 + round as f64).unwrap();
            }
            let report = service.reprice().unwrap();
            probe_total += report.probe_evaluations;
            iteration_total += report.bisect_iterations as u64;
            dirty_total += report.dirty_shards as u64;
            rebuilt_columns_total += report.rebuilt_columns as u64;
            segments_rebuilt_total += report.index_segments_rebuilt;
            segments_repaired_total += report.index_segments_repaired;
            segments_reused_total += report.index_segments_reused;
            match round {
                0 => {
                    // Cold build: every segment sorted, nothing reused.
                    assert!(report.index_rebuild_ns > 0);
                    assert_eq!(report.index_segments_rebuilt, INDEX_SEGMENTS as u64);
                    assert_eq!(report.index_segments_reused, 0);
                    build_ns_total += report.index_rebuild_ns;
                }
                2 => {
                    // Incremental patch: only the churned shard's
                    // nested segments (INDEX_SEGMENTS / shards of them
                    // per dirty shard) re-sort; everything else is
                    // reused or (at most, under weight drift) repaired.
                    assert!(report.index_rebuild_ns > 0);
                    assert!(report.index_segments_rebuilt >= 1);
                    let per_shard = (INDEX_SEGMENTS / report.shard_count) as u64;
                    assert!(
                        report.index_segments_rebuilt <= report.dirty_shards as u64 * per_shard
                    );
                    assert_eq!(
                        report.index_segments_rebuilt
                            + report.index_segments_repaired
                            + report.index_segments_reused,
                        INDEX_SEGMENTS as u64
                    );
                    patch_ns_total += report.index_rebuild_ns;
                }
                _ => {
                    // Budget-only: full reuse, zero index maintenance.
                    assert_eq!(report.index_rebuild_ns, 0);
                    assert_eq!(report.index_segments_rebuilt, 0);
                    assert_eq!(report.index_segments_reused, 0);
                }
            }
        }

        assert_eq!(
            registry.counter(Metric::SolverProbeEvaluations),
            probe_total,
            "probe counter and report field disagree"
        );
        assert_eq!(
            registry.counter(Metric::SolverBisectIterations),
            iteration_total
        );
        let build_hist = registry.histogram(Metric::SolverIndexBuildNs);
        assert_eq!(
            build_hist.sum, build_ns_total,
            "index-build span and report ns disagree"
        );
        assert_eq!(build_hist.count, 1);
        let patch_hist = registry.histogram(Metric::SolverIndexPatchNs);
        assert_eq!(
            patch_hist.sum, patch_ns_total,
            "index-patch span and report ns disagree"
        );
        assert_eq!(patch_hist.count, 1);
        assert_eq!(registry.counter(Metric::SolverIndexBuilds), 1);
        assert_eq!(registry.counter(Metric::ServiceIndexRebuilds), 1);
        assert_eq!(registry.counter(Metric::ServiceIndexPatches), 1);
        assert_eq!(registry.counter(Metric::ServiceIndexReuses), 2);
        assert_eq!(
            registry.counter(Metric::SolverIndexSegmentsRebuilt),
            segments_rebuilt_total
        );
        assert_eq!(
            registry.counter(Metric::SolverIndexSegmentsRepaired),
            segments_repaired_total
        );
        assert_eq!(
            registry.counter(Metric::SolverIndexSegmentsReused),
            segments_reused_total
        );
        assert_eq!(registry.counter(Metric::ServiceDirtyShards), dirty_total);
        assert_eq!(
            registry.counter(Metric::ServiceRebuiltColumns),
            rebuilt_columns_total
        );
        assert_eq!(registry.counter(Metric::ServiceReprices), 4);
        assert_eq!(registry.counter(Metric::ServiceColdSolves), 1);
        assert_eq!(registry.counter(Metric::ServiceWarmSolves), 3);
        assert_eq!(registry.histogram(Metric::ServiceRepriceNs).count, 4);
        // Fast-path solves all certified or fell back; either way every
        // solve is accounted for exactly once.
        assert_eq!(registry.counter(Metric::SolverSolves), 4);
        assert_eq!(
            registry.counter(Metric::SolverFastSolves)
                + registry.counter(Metric::SolverFallbackSolves),
            4
        );
    }

    #[test]
    fn recorder_does_not_change_prices() {
        let clients: Vec<ClientParams> = (0..16).map(client).collect();
        let mut config = ServiceConfig::new(bound(), 10.0);
        config.fast_path = true;
        let (mut bare, _) = PricingService::with_clients(config, clients.clone()).unwrap();
        let mut observed =
            PricingService::with_recorder(config, Arc::new(Registry::new())).unwrap();
        observed.add_clients(clients).unwrap();
        let bare_snap = bare.snapshot().unwrap();
        let observed_snap = observed.snapshot().unwrap();
        let bits = |prices: &[f64]| prices.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&bare_snap.prices), bits(&observed_snap.prices));
        assert_eq!(bare_snap.q_eff, observed_snap.q_eff);
    }

    #[test]
    fn empty_service_cannot_price() {
        let mut service = PricingService::new(ServiceConfig::new(bound(), 10.0)).unwrap();
        assert!(matches!(
            service.reprice(),
            Err(ServiceError::NoPriceableClients { registered: 0 })
        ));
        assert!(service.get_prices(&[ClientId(0)]).is_err());
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let (mut service, ids) = PricingService::with_clients(
            ServiceConfig::new(bound(), 10.0),
            (0..3).map(client).collect(),
        )
        .unwrap();
        assert!(matches!(
            service.get_prices(&[ClientId(99)]),
            Err(ServiceError::UnknownClient(ClientId(99)))
        ));
        assert!(service.remove_clients(&[ClientId(99)]).is_err());
        assert_eq!(service.len(), 3);
        assert!(service.get_prices(&ids).is_ok());
    }

    #[test]
    fn never_available_clients_get_zero_not_nan() {
        let mut config = ServiceConfig::new(bound(), 10.0);
        config.availability_aware = true;
        let mut dead = client(1);
        // A valid pattern with a vanishing rate: effectively unreachable.
        dead.availability = AvailabilityPattern::Random { probability: 1e-12 };
        let (mut service, ids) =
            PricingService::with_clients(config, vec![client(0), dead, client(2), client(3)])
                .unwrap();
        let report = service.reprice().unwrap();
        assert_eq!(report.excluded, 1);
        let quotes = service.get_prices(&ids).unwrap();
        assert_eq!(quotes[1].price, 0.0);
        assert_eq!(quotes[1].q_eff, 0.0);
        assert!(quotes
            .iter()
            .all(|q| q.price.is_finite() && q.q_eff.is_finite()));
        assert!(quotes[0].q_eff > 0.0);
    }

    #[test]
    fn availability_flag_off_reproduces_always_on_prices() {
        let patterns = [
            AvailabilityPattern::AlwaysOn,
            AvailabilityPattern::Random { probability: 0.5 },
            AvailabilityPattern::DutyCycle {
                period: 4,
                on_rounds: 1,
                offset: 0,
            },
        ];
        let clients: Vec<ClientParams> = (0..3)
            .map(|k| {
                let mut c = client(k);
                c.availability = patterns[k];
                c
            })
            .collect();
        let mut aware_cfg = ServiceConfig::new(bound(), 10.0);
        aware_cfg.availability_aware = true;
        let (mut aware, _) = PricingService::with_clients(aware_cfg, clients.clone()).unwrap();
        let (mut blind, _) =
            PricingService::with_clients(ServiceConfig::new(bound(), 10.0), clients.clone())
                .unwrap();
        let (mut plain, _) = PricingService::with_clients(
            ServiceConfig::new(bound(), 10.0),
            clients
                .iter()
                .map(|c| ClientParams {
                    availability: AvailabilityPattern::AlwaysOn,
                    ..*c
                })
                .collect(),
        )
        .unwrap();
        let aware_snap = aware.snapshot().unwrap();
        let blind_snap = blind.snapshot().unwrap();
        let plain_snap = plain.snapshot().unwrap();
        // The flag off ignores patterns entirely: bit-identical to always-on.
        assert_eq!(blind_snap.prices, plain_snap.prices);
        // The flag on prices the intermittent clients differently.
        assert_ne!(aware_snap.prices, plain_snap.prices);
        // Updating availability only dirties an availability-aware service.
        let model = AvailabilityModel::always_on(3);
        blind.update_availability(&model).unwrap();
        assert!(!blind.is_dirty());
        aware.update_availability(&model).unwrap();
        assert!(aware.is_dirty());
        let aware_now_plain = aware.snapshot().unwrap();
        assert_eq!(aware_now_plain.prices, plain_snap.prices);
        // Mismatched model length is rejected.
        assert!(aware
            .update_availability(&AvailabilityModel::always_on(2))
            .is_err());
    }

    #[test]
    fn intermittent_clients_are_compensated_more_per_effective_unit() {
        // Two identical zero-value clients, one available half the time:
        // the rarer client's effective cost doubles... quadruples, so its
        // price per unit of effective participation must be higher.
        let mut config = ServiceConfig::new(bound(), 8.0);
        config.availability_aware = true;
        let base = ClientParams::always_on(1.0, 9.0, 50.0, 0.0, 1.0);
        let mut flaky = base;
        flaky.availability = AvailabilityPattern::Random { probability: 0.5 };
        let (mut service, ids) = PricingService::with_clients(config, vec![base, flaky]).unwrap();
        let quotes = service.get_prices(&ids).unwrap();
        assert!(
            quotes[1].price > quotes[0].price,
            "flaky client must earn a higher price: {quotes:?}"
        );
        assert!(quotes[1].q_eff < quotes[0].q_eff);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut config = ServiceConfig::new(bound(), f64::NAN);
        assert!(PricingService::new(config).is_err());
        config.budget = 0.0;
        assert!(PricingService::new(config).is_err(), "zero budget");
        config.budget = -3.0;
        assert!(PricingService::new(config).is_err(), "negative budget");
        config.budget = 10.0;
        config.residual_tolerance = 0.0;
        assert!(PricingService::new(config).is_err());
    }

    #[test]
    fn update_budget_command_revalidates_like_the_constructor() {
        // `execute(UpdateBudget(..))` must apply the same budget check as
        // `ServiceConfig::validate` — a wire peer sends commands, not
        // configs, so the command path is the one that matters.
        let (mut service, _) = PricingService::with_clients(
            ServiceConfig::new(bound(), 10.0),
            (0..3).map(client).collect(),
        )
        .unwrap();
        service.snapshot().unwrap();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let err = service.execute(Command::UpdateBudget(bad)).unwrap_err();
            assert!(
                matches!(
                    err,
                    ServiceError::InvalidConfig {
                        field: "budget",
                        ..
                    }
                ),
                "budget {bad}: {err:?}"
            );
            assert_eq!(service.config().budget, 10.0, "rejected update mutated B");
            assert!(!service.is_dirty(), "rejected update dirtied the service");
        }
        service.execute(Command::UpdateBudget(12.0)).unwrap();
        assert_eq!(service.config().budget, 12.0);
        assert!(service.is_dirty());
    }

    #[test]
    fn update_bound_command_revalidates_like_the_constructor() {
        let (mut service, _) = PricingService::with_clients(
            ServiceConfig::new(bound(), 10.0),
            (0..3).map(client).collect(),
        )
        .unwrap();
        service.snapshot().unwrap();
        // A hand-deserialized BoundParams can carry values `new` would
        // reject; `execute(UpdateBound(..))` must re-run that validation.
        let bad: BoundParams =
            serde_json::from_str("{\"alpha\":-1.0,\"beta\":100.0,\"rounds\":1000}").unwrap();
        let err = service.execute(Command::UpdateBound(bad)).unwrap_err();
        assert!(
            matches!(err, ServiceError::InvalidConfig { field: "bound", .. }),
            "{err:?}"
        );
        assert_eq!(service.config().bound, bound());
        assert!(!service.is_dirty());
    }

    #[test]
    fn get_prices_is_atomic_over_duplicates_and_unknown_ids() {
        // Pin the atomicity contract alongside the `RemoveClients` one: a
        // batch mixing known ids (twice) with unknown ids must fail as a
        // whole, naming the first unknown id in request order, and leak
        // no partial quote vector.
        let (mut service, ids) = PricingService::with_clients(
            ServiceConfig::new(bound(), 10.0),
            (0..3).map(client).collect(),
        )
        .unwrap();
        // Duplicates of known ids are fine: reads are idempotent.
        let quotes = service.get_prices(&[ids[1], ids[1], ids[0]]).unwrap();
        assert_eq!(quotes.len(), 3);
        assert_eq!(quotes[0].id, ids[1]);
        assert_eq!(quotes[0].price.to_bits(), quotes[1].price.to_bits());
        // First unknown id in request order wins, even with a later one.
        let err = service
            .get_prices(&[ids[2], ClientId(77), ids[0], ClientId(88)])
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownClient(ClientId(77)));
        // Repeated unknown ids behave the same as a single one.
        let err = service
            .get_prices(&[ClientId(99), ClientId(99)])
            .unwrap_err();
        assert_eq!(err, ServiceError::UnknownClient(ClientId(99)));
        // The failed batches left the service fully servable.
        assert_eq!(service.get_prices(&ids).unwrap().len(), 3);
    }
}
