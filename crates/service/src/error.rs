//! Error type for the pricing service.

use fedfl_core::GameError;
use fedfl_sim::SimError;
use std::fmt;

use crate::ClientId;

/// Error returned by the pricing service.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The service configuration is invalid.
    InvalidConfig {
        /// Which field is invalid.
        field: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A submitted client's parameters are invalid.
    InvalidClient {
        /// Position of the offending client within the submitted batch.
        index: usize,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// A command referenced a client id the service does not know.
    UnknownClient(ClientId),
    /// A `RemoveClients` batch named the same (registered) client twice;
    /// the batch was rejected atomically and the client is still
    /// registered.
    DuplicateRemoval(ClientId),
    /// An availability model's length disagrees with the population.
    AvailabilityMismatch {
        /// Number of clients currently registered.
        clients: usize,
        /// Number of patterns submitted.
        patterns: usize,
    },
    /// The service holds no clients (or none that are priceable), so there
    /// is no equilibrium to serve.
    NoPriceableClients {
        /// Total clients registered.
        registered: usize,
    },
    /// The re-solved equilibrium violated the Theorem 2 invariant beyond
    /// the configured tolerance — the service refuses to serve prices it
    /// cannot certify.
    InvariantViolated {
        /// Maximum sampled relative residual.
        residual: f64,
        /// The configured tolerance it exceeded.
        tolerance: f64,
    },
    /// An underlying equilibrium-engine call failed.
    Game(GameError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::InvalidConfig { field, reason } => {
                write!(f, "invalid service config `{field}`: {reason}")
            }
            ServiceError::InvalidClient { index, reason } => {
                write!(f, "invalid client at batch index {index}: {reason}")
            }
            ServiceError::UnknownClient(id) => write!(f, "unknown client id {id}"),
            ServiceError::DuplicateRemoval(id) => {
                write!(f, "client id {id} appears twice in one removal batch")
            }
            ServiceError::AvailabilityMismatch { clients, patterns } => write!(
                f,
                "availability model has {patterns} patterns for {clients} clients"
            ),
            ServiceError::NoPriceableClients { registered } => write!(
                f,
                "no priceable clients ({registered} registered, all excluded or none present)"
            ),
            ServiceError::InvariantViolated {
                residual,
                tolerance,
            } => write!(
                f,
                "theorem 2 invariant violated after re-solve: residual {residual:.3e} > {tolerance:.3e}"
            ),
            ServiceError::Game(e) => write!(f, "equilibrium engine error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Game(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GameError> for ServiceError {
    fn from(e: GameError) -> Self {
        ServiceError::Game(e)
    }
}

impl From<SimError> for ServiceError {
    fn from(e: SimError) -> Self {
        ServiceError::InvalidConfig {
            field: "availability",
            reason: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ServiceError::UnknownClient(ClientId(7))
            .to_string()
            .contains('7'));
        assert!(ServiceError::DuplicateRemoval(ClientId(3))
            .to_string()
            .contains("twice"));
        assert!(ServiceError::InvariantViolated {
            residual: 1e-3,
            tolerance: 1e-6
        }
        .to_string()
        .contains("theorem 2"));
        let e: ServiceError = GameError::LengthMismatch {
            expected: 2,
            found: 1,
        }
        .into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(ServiceError::AvailabilityMismatch {
            clients: 3,
            patterns: 2
        }
        .to_string()
        .contains("3 clients"));
    }
}
