//! The service's client store: raw-weighted profiles under churn.
//!
//! The store keeps clients in **insertion order** and holds *raw* data
//! weights (`d_n`, not the normalised `a_n`): normalisation depends on who
//! else is currently registered, so it is re-derived at solve time via
//! [`fedfl_core::population::Population::from_raw`]. This is what makes the
//! incremental path bit-identical to a from-scratch solve — both normalise
//! the same raw profiles in the same order.

use crate::error::ServiceError;
use crate::{ClientId, ClientParams};
use fedfl_core::population::ClientProfile;
use fedfl_sim::availability::AvailabilityModel;
use std::collections::HashMap;

/// One registered client.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClientRecord {
    /// The id handed out at registration.
    pub id: ClientId,
    /// The client's submitted parameters.
    pub params: ClientParams,
}

/// Insertion-ordered client store with id lookup and batched delta apply.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClientStore {
    records: Vec<ClientRecord>,
    index: HashMap<u64, usize>,
    next_id: u64,
}

impl ClientStore {
    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Borrow the records in insertion order.
    pub fn records(&self) -> &[ClientRecord] {
        &self.records
    }

    /// Position of `id` in insertion order, if registered.
    pub fn position(&self, id: ClientId) -> Option<usize> {
        self.index.get(&id.0).copied()
    }

    /// Append validated clients, assigning fresh ids.
    pub fn add(&mut self, batch: Vec<ClientParams>) -> Result<Vec<ClientId>, ServiceError> {
        for (index, params) in batch.iter().enumerate() {
            params
                .validate()
                .map_err(|reason| ServiceError::InvalidClient { index, reason })?;
        }
        let mut ids = Vec::with_capacity(batch.len());
        for params in batch {
            let id = ClientId(self.next_id);
            self.next_id += 1;
            self.index.insert(id.0, self.records.len());
            self.records.push(ClientRecord { id, params });
            ids.push(id);
        }
        Ok(ids)
    }

    /// Remove a batch of ids (order-preserving compaction, one O(N) pass).
    ///
    /// Rejects the whole batch — mutating nothing — if any id is unknown
    /// or duplicated within the batch.
    pub fn remove(&mut self, ids: &[ClientId]) -> Result<usize, ServiceError> {
        let mut doomed = vec![false; self.records.len()];
        for &id in ids {
            let pos = self.position(id).ok_or(ServiceError::UnknownClient(id))?;
            if doomed[pos] {
                return Err(ServiceError::DuplicateRemoval(id));
            }
            doomed[pos] = true;
        }
        let removed = ids.len();
        if removed == 0 {
            return Ok(0);
        }
        let mut keep = 0usize;
        for (i, &dead) in doomed.iter().enumerate() {
            if !dead {
                self.records.swap(keep, i);
                keep += 1;
            }
        }
        for record in self.records.drain(keep..) {
            self.index.remove(&record.id.0);
        }
        for (pos, record) in self.records.iter().enumerate() {
            self.index.insert(record.id.0, pos);
        }
        Ok(removed)
    }

    /// Replace every client's availability pattern from a model aligned to
    /// insertion order.
    pub fn set_availability(&mut self, model: &AvailabilityModel) -> Result<(), ServiceError> {
        if model.len() != self.records.len() {
            return Err(ServiceError::AvailabilityMismatch {
                clients: self.records.len(),
                patterns: model.len(),
            });
        }
        for (record, &pattern) in self.records.iter_mut().zip(model.patterns()) {
            record.params.availability = pattern;
        }
        Ok(())
    }

    /// The raw-weighted [`ClientProfile`]s of the records selected by
    /// `included`, in insertion order.
    pub fn raw_profiles(&self, included: &[bool]) -> Vec<ClientProfile> {
        self.records
            .iter()
            .zip(included)
            .filter(|(_, &inc)| inc)
            .map(|(r, _)| r.params.raw_profile())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(weight: f64) -> ClientParams {
        ClientParams {
            data_size: weight,
            g_squared: 4.0,
            cost: 10.0,
            value: 1.0,
            q_max: 1.0,
            availability: fedfl_sim::availability::AvailabilityPattern::AlwaysOn,
        }
    }

    #[test]
    fn add_assigns_sequential_ids_and_indexes() {
        let mut store = ClientStore::default();
        let ids = store.add(vec![params(1.0), params(2.0)]).unwrap();
        assert_eq!(ids, vec![ClientId(0), ClientId(1)]);
        assert_eq!(store.position(ClientId(1)), Some(1));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
    }

    #[test]
    fn add_rejects_invalid_without_mutation() {
        let mut store = ClientStore::default();
        let mut bad = params(1.0);
        bad.cost = -1.0;
        assert!(matches!(
            store.add(vec![params(1.0), bad]),
            Err(ServiceError::InvalidClient { index: 1, .. })
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn remove_preserves_order_and_reindexes() {
        let mut store = ClientStore::default();
        let ids = store
            .add(vec![params(1.0), params(2.0), params(3.0), params(4.0)])
            .unwrap();
        assert_eq!(store.remove(&[ids[1], ids[3]]).unwrap(), 2);
        assert_eq!(store.len(), 2);
        let order: Vec<ClientId> = store.records().iter().map(|r| r.id).collect();
        assert_eq!(order, vec![ids[0], ids[2]]);
        assert_eq!(store.position(ids[2]), Some(1));
        assert_eq!(store.position(ids[1]), None);
        // Unknown and duplicate ids reject the whole batch atomically.
        assert!(store.remove(&[ids[1]]).is_err());
        assert!(store.remove(&[ids[0], ids[0]]).is_err());
        assert_eq!(store.len(), 2);
        assert_eq!(store.remove(&[]).unwrap(), 0);
    }

    #[test]
    fn ids_are_never_reused_after_removal() {
        let mut store = ClientStore::default();
        let ids = store.add(vec![params(1.0)]).unwrap();
        store.remove(&[ids[0]]).unwrap();
        let fresh = store.add(vec![params(1.0)]).unwrap();
        assert_ne!(fresh[0], ids[0]);
    }
}
