//! The service's sharded client store: raw-weighted profiles under churn,
//! with per-shard dirty tracking.
//!
//! Clients are routed to a fixed set of shards by id block
//! (`shard = (id / 32) % shards`, so one registration batch lands in few
//! shards) while a separate insertion-order index preserves the **global
//! client order** — the order every solve, snapshot, and from-scratch
//! verifier uses. Each shard caches the per-client solver inputs that are
//! expensive to recompute under churn (availability rates, inclusion
//! masks, the effective-cost transform `c/rate²` and cap `q_max·rate`);
//! a delta dirties only the shards it touches, and
//! [`ShardedClientStore::ensure_caches`] rebuilds only those. The
//! per-solve [`ShardedClientStore::assemble`] pass then gathers the cached
//! columns in insertion order, normalises raw weights with the same
//! left-fold `Population::from_raw` performs, and splits the result into
//! chunk-aligned solver shards — so the sharded service's prices are
//! bit-identical to a from-scratch solve over the same clients for any
//! shard count.
//!
//! The store keeps *raw* data weights (`d_n`, not the normalised `a_n`):
//! normalisation depends on who else is currently registered, so it is
//! re-derived at solve time in the assembly pass.

use crate::error::ServiceError;
use crate::{ClientId, ClientParams};
use fedfl_core::active_set::IndexColumns;
use fedfl_core::population::PopulationColumns;
use fedfl_core::shard::ShardedPopulation;
use fedfl_core::GameError;
use fedfl_num::parallel::ShardPlan;
use fedfl_sim::availability::AvailabilityModel;
use std::collections::HashMap;

/// Consecutive ids routed to the same shard. A churn batch of up to this
/// many registrations dirties at most two shards; removals dirty the
/// shards of the departing ids.
const ROUTE_BLOCK: u64 = 32;

/// Segment count of the service's keyed threshold index. Clients key on
/// the same id blocks the store routes by (`(id / ROUTE_BLOCK) %
/// INDEX_SEGMENTS`), so whenever the store's shard count divides this,
/// every index segment nests inside exactly one store shard — the mapping
/// that turns per-shard dirty bits into dirty index segments. 256 keeps
/// segments fine-grained (a one-shard churn re-sorts 1/256th of the
/// population at the reference shard count) without bloating the segment
/// directory walk.
pub(crate) const INDEX_SEGMENTS: usize = 256;

/// One registered client.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ClientRecord {
    /// The id handed out at registration.
    pub id: ClientId,
    /// The client's submitted parameters.
    pub params: ClientParams,
}

/// Cached per-client solver inputs of one shard, aligned with its records.
///
/// Everything here is a pure per-client function of the record and the
/// service's fixed `(availability_aware, q_min)` knobs — never of the rest
/// of the population — which is what makes the cache shard-local. The
/// weight-normalisation (and the `a²G²` column that depends on it) is
/// global and recomputed in the assembly pass.
#[derive(Debug, Clone, Default)]
struct ShardCache {
    rate: Vec<f64>,
    included: Vec<bool>,
    w_raw: Vec<f64>,
    g2: Vec<f64>,
    cost_eff: Vec<f64>,
    value: Vec<f64>,
    q_max_eff: Vec<f64>,
}

/// One store shard: its records plus the lazily rebuilt cache
/// (`None` = dirty).
#[derive(Debug, Clone, Default)]
struct StoreShard {
    records: Vec<ClientRecord>,
    cache: Option<ShardCache>,
}

/// Where a client lives: its shard, its position within the shard, and
/// its position in the global insertion order.
#[derive(Debug, Clone, Copy)]
struct Slot {
    shard: usize,
    local: usize,
    global: usize,
}

/// Rebuild statistics of one [`ShardedClientStore::ensure_caches`] call —
/// the observable half of the dirty-shard contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct ShardStats {
    /// Shards whose caches were rebuilt.
    pub dirty_shards: usize,
    /// Clients whose cached columns were recomputed (the sum of the dirty
    /// shards' sizes).
    pub rebuilt_columns: usize,
}

/// Scale-free threshold-index inputs of the included clients, in
/// insertion order — the raw-weight twin of the normalised solver
/// columns.
///
/// The normalised `a²G² = (w/W)²G²` column moves with every change of the
/// raw-weight total `W`, so an index over it could never reuse segments
/// across churn. These columns carry `w²G²` from *raw* weights instead
/// and the squared total as [`IndexInputs::scale`]; the index evaluates
/// thresholds at that scale on the fly, keeping its stored segments
/// `W`-independent (see `fedfl_core::active_set`).
#[derive(Debug)]
pub(crate) struct IndexInputs {
    /// `w_raw²·G²` per included client.
    pub w2g2: Vec<f64>,
    /// Effective costs (same values the solver columns carry).
    pub cost: Vec<f64>,
    /// Client values.
    pub value: Vec<f64>,
    /// Effective caps.
    pub q_max: Vec<f64>,
    /// Index segment key per included client:
    /// `(id / ROUTE_BLOCK) % INDEX_SEGMENTS` — a pure function of the id,
    /// so the segment partition never depends on shard or thread counts.
    pub seg_keys: Vec<u32>,
    /// The probe scale `σ = W²` (squared raw-weight total).
    pub scale: f64,
}

impl IndexInputs {
    /// Borrow as the index builder's column view.
    pub fn columns(&self) -> IndexColumns<'_> {
        IndexColumns {
            w2g2: &self.w2g2,
            cost: &self.cost,
            value: &self.value,
            q_max: &self.q_max,
        }
    }
}

/// The assembled solver view of the current population.
#[derive(Debug)]
pub(crate) struct AssembledView {
    /// Effective solver columns of the included clients, in insertion
    /// order, split into chunk-aligned solver shards.
    pub population: ShardedPopulation,
    /// Global inclusion mask, aligned with [`ShardedClientStore::ids`].
    pub included: Vec<bool>,
    /// Number of included clients.
    pub included_count: usize,
    /// Total raw weight of the included clients (the warm-start rescale
    /// reference).
    pub total_raw_weight: f64,
    /// Scale-free inputs for the fast path's keyed threshold index.
    pub index: IndexInputs,
}

/// Sharded client store with id lookup, per-shard dirty tracking, and
/// batched delta apply.
#[derive(Debug, Clone)]
pub(crate) struct ShardedClientStore {
    shards: Vec<StoreShard>,
    /// Client ids in global insertion order.
    order: Vec<ClientId>,
    index: HashMap<u64, Slot>,
    next_id: u64,
    /// Monotonically increasing mutation stamp: bumped by every delta that
    /// can change the assembled solver view (adds, removes, effective
    /// availability changes). Caches derived from an assembled view — the
    /// fast path's threshold index — key on this stamp to detect reuse.
    version: u64,
    /// Per-shard mutation stamps: `shard_versions[s]` is the global
    /// [`Self::version`] of the last delta that touched shard `s` (0 =
    /// never touched). A cache stamped at global version `v` can tell
    /// exactly which shards changed since: `{s | shard_versions[s] > v}`
    /// — the dirty set the fast path's incremental index patch rebuilds.
    shard_versions: Vec<u64>,
}

impl ShardedClientStore {
    /// Create an empty store with `shard_count >= 1` shards.
    pub fn new(shard_count: usize) -> Self {
        Self {
            shards: vec![StoreShard::default(); shard_count.max(1)],
            order: Vec::new(),
            index: HashMap::new(),
            next_id: 0,
            version: 0,
            shard_versions: vec![0; shard_count.max(1)],
        }
    }

    /// The current mutation stamp (see the `version` field).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Per-shard mutation stamps (see the `shard_versions` field): the
    /// global version of the last delta that touched each shard.
    pub fn shard_versions(&self) -> &[u64] {
        &self.shard_versions
    }

    /// Number of registered clients.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Number of store shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Client ids in global insertion order.
    pub fn ids(&self) -> &[ClientId] {
        &self.order
    }

    /// Position of `id` in the global insertion order, if registered.
    pub fn position(&self, id: ClientId) -> Option<usize> {
        self.index.get(&id.0).map(|slot| slot.global)
    }

    /// The shard an id is (or would be) routed to.
    fn route(&self, id: u64) -> usize {
        ((id / ROUTE_BLOCK) % self.shards.len() as u64) as usize
    }

    /// Append validated clients, assigning fresh ids and dirtying only the
    /// shards the new ids route to.
    pub fn add(&mut self, batch: Vec<ClientParams>) -> Result<Vec<ClientId>, ServiceError> {
        for (index, params) in batch.iter().enumerate() {
            params
                .validate()
                .map_err(|reason| ServiceError::InvalidClient { index, reason })?;
        }
        if !batch.is_empty() {
            self.version += 1;
        }
        let mut ids = Vec::with_capacity(batch.len());
        for params in batch {
            let id = ClientId(self.next_id);
            self.next_id += 1;
            let shard = self.route(id.0);
            self.shards[shard].cache = None;
            self.shard_versions[shard] = self.version;
            self.index.insert(
                id.0,
                Slot {
                    shard,
                    local: self.shards[shard].records.len(),
                    global: self.order.len(),
                },
            );
            self.shards[shard].records.push(ClientRecord { id, params });
            self.order.push(id);
            ids.push(id);
        }
        Ok(ids)
    }

    /// Remove a batch of ids (order-preserving compaction of the touched
    /// shards and the global order), dirtying only the touched shards.
    ///
    /// Rejects the whole batch — mutating nothing — if any id is unknown
    /// or duplicated within the batch.
    pub fn remove(&mut self, ids: &[ClientId]) -> Result<usize, ServiceError> {
        let mut doomed_global = vec![false; self.order.len()];
        for &id in ids {
            let slot = self
                .index
                .get(&id.0)
                .copied()
                .ok_or(ServiceError::UnknownClient(id))?;
            if doomed_global[slot.global] {
                return Err(ServiceError::DuplicateRemoval(id));
            }
            doomed_global[slot.global] = true;
        }
        if ids.is_empty() {
            return Ok(0);
        }
        self.version += 1;
        // Compact each touched shard, preserving per-shard order.
        let mut touched = vec![false; self.shards.len()];
        for &id in ids {
            touched[self.index[&id.0].shard] = true;
        }
        let index = &self.index;
        for (s, shard) in self.shards.iter_mut().enumerate() {
            if touched[s] {
                shard.cache = None;
                self.shard_versions[s] = self.version;
                shard
                    .records
                    .retain(|r| !doomed_global[index[&r.id.0].global]);
            }
        }
        // Compact the global order and drop removed ids from the index.
        for &id in ids {
            self.index.remove(&id.0);
        }
        let mut flags = doomed_global.iter();
        self.order.retain(|_| !*flags.next().expect("mask aligned"));
        // Reindex: shard/local for touched shards, global for everyone at
        // or after the first removal.
        for (s, shard) in self.shards.iter().enumerate() {
            if touched[s] {
                for (local, record) in shard.records.iter().enumerate() {
                    let slot = self.index.get_mut(&record.id.0).expect("kept id indexed");
                    slot.shard = s;
                    slot.local = local;
                }
            }
        }
        for (global, id) in self.order.iter().enumerate() {
            self.index.get_mut(&id.0).expect("kept id indexed").global = global;
        }
        Ok(ids.len())
    }

    /// Replace every client's availability pattern from a model aligned to
    /// the global insertion order, dirtying only shards whose patterns
    /// actually changed (and only when `track_dirty` is set — an
    /// availability-blind service's caches never read the patterns).
    ///
    /// Returns whether any pattern changed.
    pub fn set_availability(
        &mut self,
        model: &AvailabilityModel,
        track_dirty: bool,
    ) -> Result<bool, ServiceError> {
        if model.len() != self.order.len() {
            return Err(ServiceError::AvailabilityMismatch {
                clients: self.order.len(),
                patterns: model.len(),
            });
        }
        let mut changed = false;
        let mut touched = vec![false; self.shards.len()];
        for (id, &pattern) in self.order.iter().zip(model.patterns()) {
            let slot = self.index[&id.0];
            let record = &mut self.shards[slot.shard].records[slot.local];
            if record.params.availability != pattern {
                record.params.availability = pattern;
                changed = true;
                if track_dirty {
                    self.shards[slot.shard].cache = None;
                    touched[slot.shard] = true;
                }
            }
        }
        // An availability-blind service's assembled view never reads the
        // patterns, so only tracked changes advance the stamps.
        if changed && track_dirty {
            self.version += 1;
            for (s, &hit) in touched.iter().enumerate() {
                if hit {
                    self.shard_versions[s] = self.version;
                }
            }
        }
        Ok(changed)
    }

    /// Rebuild the caches of dirty shards only, returning how much work
    /// that took. `O(N/S · dirty)` — the tentpole of the sharded store.
    pub fn ensure_caches(&mut self, availability_aware: bool, q_min: f64) -> ShardStats {
        let mut stats = ShardStats::default();
        for shard in &mut self.shards {
            if shard.cache.is_some() {
                continue;
            }
            stats.dirty_shards += 1;
            stats.rebuilt_columns += shard.records.len();
            let m = shard.records.len();
            let mut cache = ShardCache {
                rate: Vec::with_capacity(m),
                included: Vec::with_capacity(m),
                w_raw: Vec::with_capacity(m),
                g2: Vec::with_capacity(m),
                cost_eff: Vec::with_capacity(m),
                value: Vec::with_capacity(m),
                q_max_eff: Vec::with_capacity(m),
            };
            for record in &shard.records {
                let p = &record.params;
                let rate = if availability_aware {
                    p.availability.availability_rate()
                } else {
                    1.0
                };
                // A rate of exactly 1.0 makes both transforms bit-exact
                // identities, so the always-on path matches the paper's
                // pricing bit for bit.
                let included = rate > 0.0 && p.q_max * rate > q_min;
                cache.rate.push(rate);
                cache.included.push(included);
                cache.w_raw.push(p.data_size);
                cache.g2.push(p.g_squared);
                cache.cost_eff.push(if included {
                    p.cost / (rate * rate)
                } else {
                    0.0
                });
                cache.value.push(p.value);
                cache.q_max_eff.push(p.q_max * rate);
            }
            shard.cache = Some(cache);
        }
        stats
    }

    /// Gather the cached columns in global insertion order, normalise the
    /// raw weights (the exact left-fold `Population::from_raw` performs
    /// over the included clients), and split the result into
    /// `solve_shards` chunk-aligned solver shards.
    ///
    /// Must run after [`ShardedClientStore::ensure_caches`].
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::NoPriceableClients`] when every client is
    /// excluded, and [`ServiceError::Game`] for degenerate raw weights —
    /// the same conditions the from-scratch `Population::from_raw` path
    /// rejects.
    pub fn assemble(&self, solve_shards: usize) -> Result<AssembledView, ServiceError> {
        let n = self.order.len();
        let mut included = Vec::with_capacity(n);
        let mut w_raw = Vec::with_capacity(n);
        let mut g2 = Vec::with_capacity(n);
        let mut cost = Vec::with_capacity(n);
        let mut value = Vec::with_capacity(n);
        let mut q_max = Vec::with_capacity(n);
        let mut seg_keys = Vec::with_capacity(n);
        for id in &self.order {
            let slot = self.index[&id.0];
            let cache = self.shards[slot.shard]
                .cache
                .as_ref()
                .expect("ensure_caches runs before assemble");
            let inc = cache.included[slot.local];
            included.push(inc);
            if inc {
                w_raw.push(cache.w_raw[slot.local]);
                g2.push(cache.g2[slot.local]);
                cost.push(cache.cost_eff[slot.local]);
                value.push(cache.value[slot.local]);
                q_max.push(cache.q_max_eff[slot.local]);
                seg_keys.push(((id.0 / ROUTE_BLOCK) % INDEX_SEGMENTS as u64) as u32);
            }
        }
        let included_count = w_raw.len();
        if included_count == 0 {
            return Err(ServiceError::NoPriceableClients { registered: n });
        }
        // The same sequential left-fold `Population::from_raw` uses, so
        // the normalised weights — and everything derived from them — are
        // bit-identical to the from-scratch path.
        let total_raw_weight: f64 = w_raw.iter().sum();
        if !(total_raw_weight.is_finite() && total_raw_weight > 0.0) {
            return Err(ServiceError::Game(GameError::InvalidParameter {
                name: "weights",
                reason: format!(
                    "raw weights must sum to a positive finite total, got {total_raw_weight}"
                ),
            }));
        }
        let plan = ShardPlan::new(included_count, solve_shards.max(1))
            .expect("solve_shards >= 1 by construction");
        let mut shards = Vec::with_capacity(plan.shard_count());
        for range in plan.ranges() {
            let mut cols = PopulationColumns {
                a2g2: Vec::with_capacity(range.len()),
                cost: cost[range.clone()].to_vec(),
                value: value[range.clone()].to_vec(),
                q_max: q_max[range.clone()].to_vec(),
            };
            for i in range {
                let nw = w_raw[i] / total_raw_weight;
                if !(nw.is_finite() && nw > 0.0) {
                    return Err(ServiceError::Game(GameError::InvalidParameter {
                        name: "weight",
                        reason: format!("normalised weight must be finite and positive, got {nw}"),
                    }));
                }
                cols.a2g2.push(nw * nw * g2[i]);
            }
            shards.push(cols);
        }
        let population = ShardedPopulation::from_shards(shards)
            .expect("plan-split shards are chunk-aligned by construction");
        let w2g2 = w_raw
            .iter()
            .zip(&g2)
            .map(|(&w, &g)| w * w * g)
            .collect::<Vec<f64>>();
        let index = IndexInputs {
            w2g2,
            cost,
            value,
            q_max,
            seg_keys,
            scale: total_raw_weight * total_raw_weight,
        };
        Ok(AssembledView {
            population,
            included,
            included_count,
            total_raw_weight,
            index,
        })
    }

    #[cfg(test)]
    fn record(&self, id: ClientId) -> Option<&ClientRecord> {
        let slot = self.index.get(&id.0)?;
        Some(&self.shards[slot.shard].records[slot.local])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_core::population::Q_MIN;
    use fedfl_sim::availability::AvailabilityPattern;

    fn params(weight: f64) -> ClientParams {
        ClientParams {
            data_size: weight,
            g_squared: 4.0,
            cost: 10.0,
            value: 1.0,
            q_max: 1.0,
            availability: AvailabilityPattern::AlwaysOn,
        }
    }

    #[test]
    fn add_assigns_sequential_ids_and_indexes() {
        let mut store = ShardedClientStore::new(4);
        let ids = store.add(vec![params(1.0), params(2.0)]).unwrap();
        assert_eq!(ids, vec![ClientId(0), ClientId(1)]);
        assert_eq!(store.position(ClientId(1)), Some(1));
        assert_eq!(store.len(), 2);
        assert!(!store.is_empty());
        assert_eq!(store.shard_count(), 4);
        assert_eq!(store.ids(), &[ClientId(0), ClientId(1)]);
    }

    #[test]
    fn add_rejects_invalid_without_mutation() {
        let mut store = ShardedClientStore::new(2);
        let mut bad = params(1.0);
        bad.cost = -1.0;
        assert!(matches!(
            store.add(vec![params(1.0), bad]),
            Err(ServiceError::InvalidClient { index: 1, .. })
        ));
        assert!(store.is_empty());
    }

    #[test]
    fn remove_preserves_order_and_reindexes() {
        let mut store = ShardedClientStore::new(3);
        let ids = store
            .add(vec![params(1.0), params(2.0), params(3.0), params(4.0)])
            .unwrap();
        assert_eq!(store.remove(&[ids[1], ids[3]]).unwrap(), 2);
        assert_eq!(store.len(), 2);
        assert_eq!(store.ids(), &[ids[0], ids[2]]);
        assert_eq!(store.position(ids[2]), Some(1));
        assert_eq!(store.position(ids[1]), None);
        // Unknown and duplicate ids reject the whole batch atomically.
        assert!(store.remove(&[ids[1]]).is_err());
        assert!(store.remove(&[ids[0], ids[0]]).is_err());
        assert_eq!(store.len(), 2);
        assert_eq!(store.remove(&[]).unwrap(), 0);
        // Records survive compaction intact.
        assert_eq!(store.record(ids[2]).unwrap().params.data_size, 3.0);
    }

    #[test]
    fn ids_are_never_reused_after_removal() {
        let mut store = ShardedClientStore::new(2);
        let ids = store.add(vec![params(1.0)]).unwrap();
        store.remove(&[ids[0]]).unwrap();
        let fresh = store.add(vec![params(1.0)]).unwrap();
        assert_ne!(fresh[0], ids[0]);
    }

    #[test]
    fn dirty_tracking_rebuilds_only_touched_shards() {
        // 8 shards, enough clients that several route blocks are live.
        let mut store = ShardedClientStore::new(8);
        let n = ROUTE_BLOCK as usize * 8 + 7;
        let ids = store
            .add((0..n).map(|k| params(1.0 + k as f64)).collect())
            .unwrap();
        let cold = store.ensure_caches(false, Q_MIN);
        assert_eq!(cold.dirty_shards, 8);
        assert_eq!(cold.rebuilt_columns, n);
        // Nothing dirty: nothing rebuilt.
        assert_eq!(store.ensure_caches(false, Q_MIN), ShardStats::default());
        // Removing one client dirties exactly its shard.
        store.remove(&[ids[0]]).unwrap();
        let after_remove = store.ensure_caches(false, Q_MIN);
        assert_eq!(after_remove.dirty_shards, 1);
        assert!(after_remove.rebuilt_columns < n / 2);
        // A small add batch lands in at most two shards.
        store.add(vec![params(5.0), params(6.0)]).unwrap();
        let after_add = store.ensure_caches(false, Q_MIN);
        assert!(after_add.dirty_shards <= 2);
    }

    #[test]
    fn shard_versions_stamp_only_touched_shards() {
        let mut store = ShardedClientStore::new(4);
        assert_eq!(store.shard_versions(), &[0, 0, 0, 0]);
        // One route block of adds stamps exactly shard 0 at the new
        // global version.
        let ids = store
            .add((0..ROUTE_BLOCK).map(|_| params(1.0)).collect())
            .unwrap();
        assert_eq!(store.version(), 1);
        assert_eq!(store.shard_versions(), &[1, 0, 0, 0]);
        // The next block routes to shard 1; shard 0's stamp is left
        // alone, so a cache stamped at version 1 sees exactly shard 1
        // as newer.
        store
            .add((0..ROUTE_BLOCK).map(|_| params(2.0)).collect())
            .unwrap();
        assert_eq!(store.version(), 2);
        assert_eq!(store.shard_versions(), &[1, 2, 0, 0]);
        let stamped = 1u64;
        let dirty: Vec<usize> = store
            .shard_versions()
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > stamped)
            .map(|(s, _)| s)
            .collect();
        assert_eq!(dirty, vec![1]);
        // Removing from shard 0 stamps shard 0 only.
        store.remove(&[ids[0]]).unwrap();
        assert_eq!(store.version(), 3);
        assert_eq!(store.shard_versions(), &[3, 2, 0, 0]);
        // An availability change to one client stamps its shard only —
        // and only when the service tracks availability.
        let n = store.len();
        let mut patterns = vec![AvailabilityPattern::AlwaysOn; n];
        patterns[n - 1] = AvailabilityPattern::Random { probability: 0.5 };
        let model = AvailabilityModel::new(patterns).unwrap();
        assert!(store.set_availability(&model, false).unwrap());
        assert_eq!(store.shard_versions(), &[3, 2, 0, 0], "untracked change");
        let model = AvailabilityModel::always_on(n);
        assert!(store.set_availability(&model, true).unwrap());
        assert_eq!(store.version(), 4);
        assert_eq!(store.shard_versions(), &[3, 4, 0, 0]);
    }

    #[test]
    fn assembled_index_inputs_align_with_included_clients() {
        let mut store = ShardedClientStore::new(2);
        let mut dead = params(2.0);
        dead.availability = AvailabilityPattern::Random { probability: 1e-12 };
        store
            .add(vec![params(1.5), dead, params(3.0), params(4.0)])
            .unwrap();
        store.ensure_caches(true, Q_MIN);
        let assembled = store.assemble(1).unwrap();
        let inputs = &assembled.index;
        assert_eq!(inputs.w2g2.len(), assembled.included_count);
        assert_eq!(inputs.seg_keys.len(), assembled.included_count);
        // w²G² is raw-weight squared times G², in insertion order over
        // the included clients; the scale is the squared raw total.
        let expected: Vec<f64> = [1.5f64, 3.0, 4.0].iter().map(|w| w * w * 4.0).collect();
        assert_eq!(inputs.w2g2, expected);
        let total: f64 = 1.5 + 3.0 + 4.0;
        assert_eq!(inputs.scale.to_bits(), (total * total).to_bits());
        // All four ids share route block 0, so every segment key is 0.
        assert_eq!(inputs.seg_keys, vec![0, 0, 0]);
        // The scaled index columns describe the same clients the solver
        // columns do: (w/W)²G² == w²G² / scale up to one rounding.
        let cols = assembled.population.concat();
        for (i, &a2g2) in cols.a2g2.iter().enumerate() {
            let rescaled = inputs.w2g2[i] / inputs.scale;
            assert!((rescaled - a2g2).abs() <= 1e-12 * a2g2.abs());
        }
    }

    #[test]
    fn availability_updates_dirty_only_changed_shards() {
        let mut store = ShardedClientStore::new(4);
        let n = ROUTE_BLOCK as usize * 4;
        store.add((0..n).map(|_| params(1.0)).collect()).unwrap();
        store.ensure_caches(true, Q_MIN);
        // An identical model changes nothing and dirties nothing.
        let same = AvailabilityModel::always_on(n);
        assert!(!store.set_availability(&same, true).unwrap());
        assert_eq!(store.ensure_caches(true, Q_MIN), ShardStats::default());
        // Changing one client's pattern dirties exactly its shard.
        let mut patterns = vec![AvailabilityPattern::AlwaysOn; n];
        patterns[3] = AvailabilityPattern::Random { probability: 0.5 };
        let model = AvailabilityModel::new(patterns).unwrap();
        assert!(store.set_availability(&model, true).unwrap());
        let stats = store.ensure_caches(true, Q_MIN);
        assert_eq!(stats.dirty_shards, 1);
        assert_eq!(stats.rebuilt_columns, ROUTE_BLOCK as usize);
        // Mismatched model length is rejected.
        assert!(store
            .set_availability(&AvailabilityModel::always_on(n - 1), true)
            .is_err());
    }

    #[test]
    fn assemble_matches_from_raw_normalisation() {
        use fedfl_core::population::Population;
        let mut store = ShardedClientStore::new(3);
        let clients: Vec<ClientParams> = (0..10).map(|k| params(1.0 + k as f64)).collect();
        store.add(clients.clone()).unwrap();
        store.ensure_caches(false, Q_MIN);
        let assembled = store.assemble(2).unwrap();
        assert_eq!(assembled.included_count, 10);
        assert!(assembled.included.iter().all(|&inc| inc));
        let reference =
            Population::from_raw(clients.iter().map(ClientParams::raw_profile).collect())
                .unwrap()
                .columns();
        assert_eq!(assembled.population.concat(), reference);
        let expected_total: f64 = clients.iter().map(|c| c.data_size).sum();
        assert_eq!(
            assembled.total_raw_weight.to_bits(),
            expected_total.to_bits()
        );
    }

    #[test]
    fn assemble_excludes_unreachable_clients() {
        let mut store = ShardedClientStore::new(2);
        let mut dead = params(2.0);
        dead.availability = AvailabilityPattern::Random { probability: 1e-12 };
        store.add(vec![params(1.0), dead, params(3.0)]).unwrap();
        store.ensure_caches(true, Q_MIN);
        let assembled = store.assemble(1).unwrap();
        assert_eq!(assembled.included, vec![true, false, true]);
        assert_eq!(assembled.included_count, 2);
        assert_eq!(assembled.population.len(), 2);
        // All excluded -> NoPriceableClients.
        let mut empty = ShardedClientStore::new(2);
        let mut gone = params(1.0);
        gone.availability = AvailabilityPattern::Random { probability: 1e-12 };
        empty.add(vec![gone]).unwrap();
        empty.ensure_caches(true, Q_MIN);
        assert!(matches!(
            empty.assemble(1),
            Err(ServiceError::NoPriceableClients { registered: 1 })
        ));
    }
}
