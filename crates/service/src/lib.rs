//! # fedfl-service — the incremental, availability-aware pricing service
//!
//! The paper's Stage-I Stackelberg solve is a one-shot computation; this
//! crate wraps the equilibrium engine of `fedfl-core` in a long-running
//! [`PricingService`] for a production deployment whose client population
//! churns continuously:
//!
//! * **Command stream** — [`Command::AddClients`], [`Command::RemoveClients`],
//!   [`Command::UpdateAvailability`], [`Command::UpdateBudget`],
//!   [`Command::UpdateBound`], [`Command::Reprice`], and the batched
//!   reads [`Command::GetPrices`] / [`Command::Snapshot`], all through
//!   [`PricingService::execute`] (or the equivalent typed methods).
//! * **Sharded store, dirty-shard rebuilds** — clients are routed to
//!   [`ServiceConfig::shards`] store shards by id block; each shard caches
//!   its clients' solver columns (availability rates, inclusion masks, the
//!   effective `cost/rate²` and `q_max·rate` transforms) and a delta
//!   dirties only the shards it touches. A re-solve rebuilds **only the
//!   dirty shards' columns** — `O(N/S · dirty)` instead of the monolithic
//!   `O(N)` — then gathers them in insertion order with the exact
//!   `Population::from_raw` normalisation and solves over chunk-aligned
//!   shard column-sets ([`fedfl_core::server::solve_kkt_sharded_hinted`]).
//!   Prices are bit-identical for **any** shard count; [`RepriceReport`]
//!   records the dirty-shard accounting.
//! * **Incremental re-solve** — population deltas shift the spend curve of
//!   the KKT path, but the λ\*-bisection can be *warm-started* from the
//!   previous solve's path parameter: the service passes `t* = 1/λ*` as a
//!   hint (rescaled across weight renormalisation, budget and bound
//!   updates), and the bisection verifies a deep dyadic bracket around it
//!   before trusting it. Prices are therefore **bit-identical** to a
//!   from-scratch [`fedfl_core::server::solve_kkt`] over the same clients
//!   at every step, while warm-started re-solves run measurably fewer
//!   bisection iterations ([`RepriceReport`] records both).
//! * **Availability-aware pricing** — with
//!   [`ServiceConfig::availability_aware`] set, each client is priced
//!   against its *effective* participation `q_eff = q · rate`, where
//!   `rate` is its [`AvailabilityPattern`]'s long-run availability
//!   ([`fedfl_core::population::PopulationColumns::effective`]). Clients
//!   whose effective cap cannot clear the solver floor — including
//!   never-available clients with `rate = 0` — are excluded: they get a
//!   zero effective level and a zero price instead of NaN. With the flag
//!   off the service reproduces the paper's always-on behaviour exactly.
//! * **Certified equilibria** — after every re-solve the service samples
//!   the Theorem 2 invariant `(4R/α)·c q³/(a²G²) + v = 1/λ*` and refuses
//!   to serve prices whose residual exceeds
//!   [`ServiceConfig::residual_tolerance`].
//!
//! # Example
//!
//! ```
//! use fedfl_core::bound::BoundParams;
//! use fedfl_service::{ClientParams, Command, PricingService, Response, ServiceConfig};
//!
//! let config = ServiceConfig::new(BoundParams::new(4_000.0, 100.0, 1_000)?, 10.0);
//! let mut service = PricingService::new(config)?;
//! let clients: Vec<ClientParams> = (1..=4)
//!     .map(|k| ClientParams::always_on(k as f64, 9.0, 30.0 * k as f64, 2.0, 1.0))
//!     .collect();
//! let ids = match service.execute(Command::AddClients(clients))? {
//!     Response::Added(ids) => ids,
//!     _ => unreachable!(),
//! };
//! let report = service.reprice()?;
//! assert!(report.theorem2_residual.unwrap_or(0.0) < 1e-6);
//! let quotes = service.get_prices(&ids)?;
//! assert_eq!(quotes.len(), 4);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod service;
mod store;

use serde::{Deserialize, Serialize};
use std::fmt;

pub use error::ServiceError;
pub use fedfl_obs::{Metric, MetricsReport, MetricsSnapshot, Registry};
pub use fedfl_sim::availability::{AvailabilityModel, AvailabilityPattern};
pub use service::{
    Command, PriceQuote, PricingService, RepriceReport, Response, ServiceConfig, ServiceSnapshot,
};

/// Opaque handle for one registered client. Ids are assigned by the
/// service at [`Command::AddClients`] time and are never reused, even
/// after the client is removed.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct ClientId(pub u64);

impl fmt::Display for ClientId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Parameters of one client as submitted to the service.
///
/// Unlike [`fedfl_core::population::ClientProfile`], the weight here is the
/// client's *raw* data size `d_n`: the normalised weight `a_n = d_n / Σ d_m`
/// depends on who else is registered, so the service re-derives it at every
/// re-solve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientParams {
    /// Raw data size `d_n > 0` (normalised into the weight `a_n`).
    pub data_size: f64,
    /// Squared gradient-norm bound `G_n²`.
    pub g_squared: f64,
    /// Local cost parameter `c_n > 0`.
    pub cost: f64,
    /// Intrinsic-value preference `v_n ≥ 0`.
    pub value: f64,
    /// Maximum feasible participation level `q_{n,max} ∈ (0, 1]`.
    pub q_max: f64,
    /// When the client is reachable (priced in when
    /// [`ServiceConfig::availability_aware`] is set).
    pub availability: AvailabilityPattern,
}

impl ClientParams {
    /// Convenience constructor for an always-available client.
    pub fn always_on(data_size: f64, g_squared: f64, cost: f64, value: f64, q_max: f64) -> Self {
        Self {
            data_size,
            g_squared,
            cost,
            value,
            q_max,
            availability: AvailabilityPattern::AlwaysOn,
        }
    }

    /// Validate the parameters, returning a human-readable reason on
    /// failure.
    pub fn validate(&self) -> Result<(), String> {
        self.raw_profile().validate().map_err(|e| e.to_string())?;
        self.availability.validate().map_err(|e| e.to_string())
    }

    /// The raw-weighted core profile (weight = `data_size`, **not** yet
    /// normalised — feed a batch of these through
    /// [`fedfl_core::population::Population::from_raw`]). Exposed so
    /// from-scratch verifiers share the exact field mapping the service
    /// itself solves with.
    pub fn raw_profile(&self) -> fedfl_core::population::ClientProfile {
        fedfl_core::population::ClientProfile {
            weight: self.data_size,
            g_squared: self.g_squared,
            cost: self.cost,
            value: self.value,
            q_max: self.q_max,
        }
    }
}
