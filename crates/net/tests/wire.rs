//! End-to-end wire tests: error-frame round-trips for every service
//! error, malformed-input handling, connection lifecycle, concurrent
//! reads against the single writer, and the bit-identity smoke check.

use fedfl_core::bound::BoundParams;
use fedfl_core::GameError;
use fedfl_net::{
    load_records, serve, verify_records, ClientError, CodecViolation, PricingClient, ServerHandle,
    ServerOptions, WireError, WireRecorder, WireReply,
};
use fedfl_service::{
    ClientId, ClientParams, Command, PricingService, Response, ServiceConfig, ServiceError,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

fn client(k: usize) -> ClientParams {
    ClientParams::always_on(
        1.0 + k as f64,
        4.0 + k as f64,
        30.0 + 10.0 * k as f64,
        2.0 * k as f64,
        1.0,
    )
}

fn config() -> ServiceConfig {
    ServiceConfig::new(bound(), 10.0)
}

fn seeded_service(n: usize) -> (PricingService, Vec<ClientId>) {
    PricingService::with_clients(config(), (0..n).map(client).collect()).unwrap()
}

fn start_server(
    service: PricingService,
    options: ServerOptions,
    recorder: Option<WireRecorder>,
) -> ServerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    serve(service, listener, options, recorder).unwrap()
}

#[test]
fn live_server_answers_metrics_covering_every_subsystem() {
    let (service, ids) = seeded_service(4);
    let mut handle = start_server(service, ServerOptions::default(), None);
    let mut conn = PricingClient::connect(handle.addr()).unwrap();

    conn.call(&Command::Reprice).unwrap();
    conn.call(&Command::GetPrices(ids.clone())).unwrap();
    // A known service error: must count as an error frame, not kill the
    // connection.
    assert!(conn.call(&Command::GetPrices(vec![ClientId(999)])).is_err());

    let report = conn.metrics().unwrap();
    let snap = &report.snapshot;
    // Solver, service and net subsystems are all covered by one scrape.
    assert_eq!(snap.counter("fedfl_solver_solves_total"), Some(1));
    assert_eq!(snap.counter("fedfl_service_reprices_total"), Some(1));
    assert_eq!(snap.gauge("fedfl_service_clients"), Some(4));
    // 3 commands before the scrape, plus the scrape's own frame.
    assert_eq!(snap.counter("fedfl_net_frames_read_total"), Some(4));
    assert_eq!(snap.counter("fedfl_net_frames_decoded_total"), Some(4));
    assert_eq!(snap.counter("fedfl_net_error_frames_total"), Some(1));
    assert_eq!(snap.counter("fedfl_net_metrics_scrapes_total"), Some(1));
    assert_eq!(snap.gauge("fedfl_net_active_connections"), Some(1));
    assert!(snap.counter("fedfl_net_bytes_written_total").unwrap() > 0);
    // The scrape's own span closes after the snapshot, so only the three
    // prior requests have latency samples here.
    assert_eq!(snap.histogram("fedfl_net_request_ns").unwrap().count, 3);
    assert!(report
        .exposition
        .contains("# TYPE fedfl_net_request_ns summary"));
    // The server handle exposes the same registry.
    assert_eq!(
        handle
            .metrics()
            .snapshot()
            .counter("fedfl_net_metrics_scrapes_total"),
        Some(1)
    );
    // Scrapes are not service commands, and reads are served from the
    // published view without touching the service: only Reprice counted.
    assert_eq!(snap.counter("fedfl_service_commands_total"), Some(1));
    handle.shutdown();
}

#[test]
fn metrics_scrapes_stay_out_of_wire_traces() {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let recorder = WireRecorder::to_writer(Box::new(SharedBuf(Arc::clone(&buffer))));
    // Start empty so the trace is self-contained for replay.
    let service = PricingService::new(config()).unwrap();
    let mut handle = start_server(service, ServerOptions::default(), Some(recorder));
    let mut conn = PricingClient::connect(handle.addr()).unwrap();
    let Response::Added(ids) = conn
        .call(&Command::AddClients((0..3).map(client).collect()))
        .unwrap()
    else {
        panic!("AddClients reply");
    };
    conn.call(&Command::Reprice).unwrap();
    conn.metrics().unwrap();
    conn.call(&Command::GetPrices(ids)).unwrap();
    conn.metrics().unwrap();
    handle.shutdown();

    let text = String::from_utf8(buffer.lock().unwrap().clone()).unwrap();
    let records = load_records(&text).unwrap();
    assert_eq!(
        records.len(),
        3,
        "scrapes must not be recorded: {records:?}"
    );
    assert!(records
        .iter()
        .all(|r| !matches!(r.command, Some(Command::Metrics))));
    // The scrape-free trace replays bit-for-bit.
    let verified = verify_records(config(), &records).unwrap();
    assert_eq!(verified, 3);
}

#[test]
fn every_service_error_variant_round_trips_through_error_frames() {
    let variants: Vec<ServiceError> = vec![
        ServiceError::InvalidConfig {
            field: "budget",
            reason: "must be finite and positive, got NaN".into(),
        },
        ServiceError::InvalidClient {
            index: 3,
            reason: "q_max must be positive".into(),
        },
        ServiceError::UnknownClient(ClientId(42)),
        ServiceError::DuplicateRemoval(ClientId(7)),
        ServiceError::AvailabilityMismatch {
            clients: 10,
            patterns: 9,
        },
        ServiceError::NoPriceableClients { registered: 5 },
        ServiceError::InvariantViolated {
            residual: 1.5e-3,
            tolerance: 1e-6,
        },
        ServiceError::Game(GameError::LengthMismatch {
            expected: 4,
            found: 2,
        }),
    ];
    for service_error in &variants {
        let wire: WireError = service_error.into();
        // The wire mirror renders the same message as the in-process
        // error, so logs agree across transports.
        assert_eq!(wire.to_string(), service_error.to_string());
        let frame = WireReply::Err(wire.clone()).encode();
        let decoded = WireReply::decode(&frame).unwrap();
        assert_eq!(
            decoded,
            WireReply::Err(wire),
            "error frame round-trip for {service_error:?}"
        );
    }
}

#[test]
fn commands_round_trip_over_loopback_bit_identically() {
    let (service, _) = seeded_service(4);
    let (mut mirror, ids) = seeded_service(4);
    let mut handle = start_server(service, ServerOptions::default(), None);
    let mut conn = PricingClient::connect(handle.addr()).unwrap();

    // The same command sequence, over the wire and in process.
    let sequence = vec![
        Command::Snapshot,
        Command::UpdateBudget(14.0),
        Command::GetPrices(ids.clone()),
        Command::AddClients(vec![client(9)]),
        Command::Reprice,
        Command::RemoveClients(vec![ids[1]]),
        Command::GetPrices(vec![ids[0], ids[3]]),
        Command::Snapshot,
    ];
    for command in sequence {
        let served = conn.call(&command).unwrap();
        let local = mirror.execute(command).unwrap();
        assert_eq!(served, local, "wire and in-process replies must agree");
    }

    // Served prices are the certified equilibrium, bit for bit.
    let Response::Snapshot(served) = conn.call(&Command::Snapshot).unwrap() else {
        panic!("snapshot reply");
    };
    let local = mirror.snapshot().unwrap();
    let served_bits: Vec<u64> = served.prices.iter().map(|p| p.to_bits()).collect();
    let local_bits: Vec<u64> = local.prices.iter().map(|p| p.to_bits()).collect();
    assert_eq!(served_bits, local_bits);
    assert!(
        served.report.theorem2_residual.unwrap_or(0.0) <= 1e-6,
        "served equilibrium must be certified"
    );
    handle.shutdown();
}

#[test]
fn malformed_input_yields_typed_error_frames_and_the_connection_survives() {
    let (service, ids) = seeded_service(3);
    let mut handle = start_server(service, ServerOptions::default(), None);
    let mut conn = PricingClient::connect(handle.addr()).unwrap();

    // Garbage JSON → typed Malformed error frame.
    let reply = conn.call_raw(b"{\"not json").unwrap();
    assert!(matches!(
        reply,
        WireReply::Err(WireError::Codec {
            violation: CodecViolation::Malformed,
            ..
        })
    ));
    // Unknown command tag → typed Decode error frame naming the tag.
    let reply = conn.call_raw(b"{\"EraseAllClients\":[]}").unwrap();
    match reply {
        WireReply::Err(WireError::Codec {
            violation: CodecViolation::Decode,
            detail,
        }) => assert!(detail.contains("EraseAllClients"), "{detail}"),
        other => panic!("{other:?}"),
    }
    // A NaN budget serializes as null — rejected by the codec gate, so
    // it never reaches the service.
    let nan_payload = serde_json::to_string(&Command::UpdateBudget(f64::NAN)).unwrap();
    let reply = conn.call_raw(nan_payload.as_bytes()).unwrap();
    assert!(matches!(
        reply,
        WireReply::Err(WireError::Codec {
            violation: CodecViolation::NullValue,
            ..
        })
    ));
    // An out-of-range float literal parses to infinity — also rejected.
    let reply = conn.call_raw(b"{\"UpdateBudget\":1e999}").unwrap();
    assert!(matches!(
        reply,
        WireReply::Err(WireError::Codec {
            violation: CodecViolation::NonFinite,
            ..
        })
    ));
    // A service-level rejection comes back as the mirrored error.
    let err = conn
        .call(&Command::GetPrices(vec![ClientId(999)]))
        .unwrap_err();
    assert!(matches!(
        err,
        ClientError::Server(WireError::UnknownClient(999))
    ));

    // After all of that, the same connection still serves reads.
    let Response::Prices(quotes) = conn.call(&Command::GetPrices(ids)).unwrap() else {
        panic!("prices reply");
    };
    assert_eq!(quotes.len(), 3);
    assert!(quotes.iter().all(|q| q.price.is_finite()));
    handle.shutdown();
}

#[test]
fn oversized_frames_are_reported_then_the_connection_closes() {
    let (service, ids) = seeded_service(3);
    let mut handle = start_server(service, ServerOptions { max_frame: 256 }, None);
    // The client's cap is larger, so it can send what the server rejects.
    let mut conn = PricingClient::connect_with(handle.addr(), 1 << 20).unwrap();
    let big = format!("{{\"padding\":\"{}\"}}", "x".repeat(512));
    let reply = conn.call_raw(big.as_bytes()).unwrap();
    assert!(matches!(
        reply,
        WireReply::Err(WireError::Codec {
            violation: CodecViolation::Frame,
            ..
        })
    ));
    // The stream cannot be resynchronised past the unread payload: the
    // server closes, and the next call fails instead of hanging.
    assert!(conn.call(&Command::GetPrices(vec![ids[0]])).is_err());
    // A fresh connection is unaffected (a one-quote reply fits the cap).
    let mut fresh = PricingClient::connect(handle.addr()).unwrap();
    assert!(fresh.call(&Command::GetPrices(vec![ids[0]])).is_ok());
    handle.shutdown();
}

#[test]
fn truncated_frames_close_cleanly_without_poisoning_the_server() {
    let (service, _) = seeded_service(3);
    let mut handle = start_server(service, ServerOptions::default(), None);
    // Declare 100 payload bytes, deliver 10, then vanish.
    {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(&100u32.to_be_bytes()).unwrap();
        raw.write_all(b"0123456789").unwrap();
    }
    // And a half-written length prefix.
    {
        let mut raw = TcpStream::connect(handle.addr()).unwrap();
        raw.write_all(&[0u8, 1u8]).unwrap();
    }
    // The server shrugs both off and keeps serving.
    let mut fresh = PricingClient::connect(handle.addr()).unwrap();
    assert!(fresh.call(&Command::Snapshot).is_ok());
    handle.shutdown();
}

#[test]
fn concurrent_readers_ride_the_single_writer_without_uncertified_prices() {
    let (service, ids) = seeded_service(16);
    let tolerance = service.config().residual_tolerance;
    let mut handle = start_server(service, ServerOptions::default(), None);
    let addr = handle.addr();

    let mut workers = Vec::new();
    // One writer churning the population and the budget.
    {
        let writer_ids = ids.clone();
        workers.push(std::thread::spawn(move || {
            let mut conn = PricingClient::connect(addr).unwrap();
            for round in 0..20 {
                conn.call(&Command::AddClients(vec![client(round)]))
                    .unwrap();
                conn.call(&Command::UpdateBudget(10.0 + round as f64))
                    .unwrap();
                conn.call(&Command::GetPrices(vec![writer_ids[0]])).unwrap();
            }
        }));
    }
    // Several readers hammering prices and snapshots.
    for _ in 0..4 {
        let reader_ids = ids.clone();
        workers.push(std::thread::spawn(move || {
            let mut conn = PricingClient::connect(addr).unwrap();
            for _ in 0..50 {
                match conn.call(&Command::GetPrices(reader_ids.clone())) {
                    Ok(Response::Prices(quotes)) => {
                        assert!(quotes.iter().all(|q| q.price.is_finite()));
                    }
                    Ok(other) => panic!("{other:?}"),
                    Err(e) => panic!("reader failed: {e}"),
                }
                match conn.call(&Command::Snapshot) {
                    Ok(Response::Snapshot(snapshot)) => {
                        // Every served snapshot is certified.
                        assert!(snapshot.report.theorem2_residual.unwrap_or(0.0) <= tolerance);
                    }
                    Ok(other) => panic!("{other:?}"),
                    Err(e) => panic!("snapshot reader failed: {e}"),
                }
            }
        }));
    }
    for worker in workers {
        worker.join().expect("no worker may panic");
    }
    handle.shutdown();
}

/// A `Write` sink tests can read back out of the recorder.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn wire_traces_record_and_verify_against_the_in_process_service() {
    // Start *empty* so the whole population arrives over the wire — the
    // trace is then self-contained and `verify_records` can replay it
    // against a fresh deployment of the same config.
    let service = PricingService::new(config()).unwrap();
    let sink = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let recorder = WireRecorder::to_writer(Box::new(sink.clone()));
    let mut handle = start_server(service, ServerOptions::default(), Some(recorder));
    let mut conn = PricingClient::connect(handle.addr()).unwrap();

    let Response::Added(ids) = conn
        .call(&Command::AddClients((0..4).map(client).collect()))
        .unwrap()
    else {
        panic!("added reply");
    };
    conn.call(&Command::Snapshot).unwrap();
    conn.call(&Command::UpdateBudget(12.5)).unwrap();
    conn.call(&Command::GetPrices(ids)).unwrap();
    // One codec-rejected frame lands in the trace with no command…
    let _ = conn.call_raw(b"{\"garbage\":").unwrap();
    // …and one service-rejected command lands with its error reply.
    let _ = conn.call(&Command::GetPrices(vec![ClientId(404)]));
    drop(conn);
    handle.shutdown();

    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let records = load_records(&text).unwrap();
    assert_eq!(records.len(), 6);
    assert!(
        records.iter().any(|r| r.command.is_none()),
        "codec reject recorded"
    );
    // JSONL round-trip is lossless.
    let reencoded: String = records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap() + "\n")
        .collect();
    assert_eq!(load_records(&reencoded).unwrap(), records);
    // The recorded replies replay bit-for-bit against a fresh in-process
    // service: 5 command-bearing exchanges, the codec reject skipped.
    let verified = verify_records(config(), &records).unwrap();
    assert_eq!(verified, 5);
}

#[test]
fn recorder_verification_catches_traces_with_out_of_band_state() {
    // This server was seeded *before* recording started, so the trace is
    // not self-contained — verification must flag the divergence rather
    // than pass vacuously.
    let (service, _) = seeded_service(2);
    let sink = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    let recorder = WireRecorder::to_writer(Box::new(sink.clone()));
    let mut handle = start_server(service, ServerOptions::default(), Some(recorder));
    let mut conn = PricingClient::connect(handle.addr()).unwrap();
    conn.call(&Command::Snapshot).unwrap();
    drop(conn);
    handle.shutdown();
    let text = String::from_utf8(sink.0.lock().unwrap().clone()).unwrap();
    let records = load_records(&text).unwrap();
    assert!(verify_records(config(), &records).is_err());
}
