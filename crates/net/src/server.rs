//! The thread-per-connection TCP front-end.
//!
//! Reads (`GetPrices`/`Snapshot`) are served concurrently from the last
//! Theorem-2-certified equilibrium, published behind a [`RwLock`];
//! mutations funnel through the single writer — the [`Mutex`]-owned
//! [`PricingService`] — whose re-solve republishes only after the
//! certification passes. No connection can ever observe an uncertified
//! price: the published view is replaced exclusively with snapshots that
//! the service's own invariant check has accepted, and a failed re-solve
//! leaves the previous certified view in place (and the staleness flag
//! down, so readers keep retrying the solve rather than serving it).

use crate::codec::{decode_command, read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::error::WireError;
use crate::protocol::WireReply;
use crate::recorder::WireRecorder;
use fedfl_obs::{Metric, Recorder as _, Registry, Stopwatch};
use fedfl_service::{ClientId, Command, PriceQuote, PricingService, Response, ServiceSnapshot};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::thread::JoinHandle;

/// Tuning knobs of one server instance.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Hard cap on one frame's payload, bytes (both directions).
    pub max_frame: usize,
}

impl Default for ServerOptions {
    fn default() -> Self {
        Self {
            max_frame: DEFAULT_MAX_FRAME,
        }
    }
}

/// The last certified equilibrium, indexed for concurrent reads.
struct Published {
    snapshot: ServiceSnapshot,
    /// Client id → position in the snapshot's insertion-ordered columns.
    index: HashMap<u64, usize>,
}

impl Published {
    fn new(snapshot: ServiceSnapshot) -> Self {
        let index = snapshot
            .ids
            .iter()
            .enumerate()
            .map(|(pos, id)| (id.0, pos))
            .collect();
        Self { snapshot, index }
    }

    /// Batched quotes with the in-process atomicity contract: every id
    /// resolves before any quote is built; the first unknown id (in
    /// request order) rejects the whole batch.
    fn quotes(&self, ids: &[ClientId]) -> Result<Vec<PriceQuote>, WireError> {
        let positions: Vec<usize> = ids
            .iter()
            .map(|id| {
                self.index
                    .get(&id.0)
                    .copied()
                    .ok_or(WireError::UnknownClient(id.0))
            })
            .collect::<Result<_, _>>()?;
        Ok(ids
            .iter()
            .zip(positions)
            .map(|(&id, pos)| PriceQuote {
                id,
                price: self.snapshot.prices[pos],
                q_eff: self.snapshot.q_eff[pos],
            })
            .collect())
    }
}

/// Shared state between the writer and every reader connection.
struct Shared {
    /// The single writer: every mutation and every re-solve runs under
    /// this lock.
    service: Mutex<PricingService>,
    /// The last certified equilibrium; readers clone the `Arc` and serve
    /// without touching the service.
    published: RwLock<Option<Arc<Published>>>,
    /// Whether `published` reflects the service's current state. Cleared
    /// by successful mutations (under the service lock), raised only
    /// after a certified snapshot is published.
    fresh: AtomicBool,
    recorder: Option<WireRecorder>,
    /// The observability registry, shared with the owned service so one
    /// scrape covers solver, service and net counters. `Metrics` scrapes
    /// are served straight from here, without the service lock.
    metrics: Arc<Registry>,
    options: ServerOptions,
    stop: AtomicBool,
}

/// Mutex/RwLock recovery: a panicking holder must not take the server
/// down with it (the server's contract is to never panic).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    /// A read view of the current equilibrium, re-solving (through the
    /// single writer) first if mutations have accumulated.
    fn read_view(&self) -> Result<Arc<Published>, WireError> {
        if self.fresh.load(Ordering::Acquire) {
            let published = self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(view) = published.as_ref() {
                return Ok(Arc::clone(view));
            }
        }
        // Stale (or never published): funnel through the single writer.
        let mut service = lock(&self.service);
        // Re-check under the lock — a concurrent reader may have
        // refreshed while this one waited.
        if self.fresh.load(Ordering::Acquire) {
            let published = self
                .published
                .read()
                .unwrap_or_else(PoisonError::into_inner);
            if let Some(view) = published.as_ref() {
                return Ok(Arc::clone(view));
            }
        }
        // `snapshot()` re-solves if dirty and only returns equilibria
        // that passed the Theorem 2 certification; on error nothing is
        // published and the previous certified view stays.
        let snapshot = service.snapshot().map_err(WireError::from)?;
        let view = Arc::new(Published::new(snapshot));
        *self
            .published
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&view));
        self.fresh.store(true, Ordering::Release);
        Ok(view)
    }

    /// Execute one decoded command, returning the reply frame payload.
    fn handle(&self, command: Command) -> WireReply {
        match command {
            Command::GetPrices(ids) => match self.read_view() {
                Ok(view) => match view.quotes(&ids) {
                    Ok(quotes) => WireReply::Ok(Response::Prices(quotes)),
                    Err(e) => WireReply::Err(e),
                },
                Err(e) => WireReply::Err(e),
            },
            Command::Snapshot => match self.read_view() {
                Ok(view) => WireReply::Ok(Response::Snapshot(view.snapshot.clone())),
                Err(e) => WireReply::Err(e),
            },
            // Lock-free: scrapes must not queue behind the writer.
            Command::Metrics => {
                self.metrics.add(Metric::NetMetricsScrapes, 1);
                WireReply::Ok(Response::Metrics(self.metrics.report()))
            }
            mutation => {
                let mut service = lock(&self.service);
                match service.execute(mutation) {
                    Ok(response) => {
                        // The published view may now be stale; readers
                        // will refresh (and re-certify) on demand. A
                        // failed command leaves the service unchanged,
                        // so freshness is only cleared on success.
                        self.fresh.store(false, Ordering::Release);
                        WireReply::Ok(response)
                    }
                    Err(e) => WireReply::Err(WireError::from(&e)),
                }
            }
        }
    }
}

/// Per-connection bookkeeping: the serving thread plus a tracked clone
/// of its stream, so shutdown can unblock the thread's pending read.
type ConnectionRegistry = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// A running server: its bound address and the shutdown handle.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    connections: ConnectionRegistry,
}

impl ServerHandle {
    /// The address the server accepts connections on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability registry (shared with its service).
    pub fn metrics(&self) -> Arc<Registry> {
        Arc::clone(&self.shared.metrics)
    }

    /// Stop accepting, close every live connection, and join all server
    /// threads. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let connections = std::mem::take(&mut *lock(&self.connections));
        for (handle, stream) in connections {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Serve `service` on `listener`, one thread per connection.
///
/// # Errors
///
/// Returns the listener's error if its local address cannot be read.
pub fn serve(
    mut service: PricingService,
    listener: TcpListener,
    options: ServerOptions,
    recorder: Option<WireRecorder>,
) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    // One registry covers the whole stack: adopt the service's if it has
    // one, otherwise install a fresh one so the solver/service counters
    // land in the same scrape as the connection counters.
    let metrics = match service.recorder() {
        Some(registry) => Arc::clone(registry),
        None => {
            let registry = Arc::new(Registry::new());
            service.set_recorder(Arc::clone(&registry));
            registry
        }
    };
    let shared = Arc::new(Shared {
        service: Mutex::new(service),
        published: RwLock::new(None),
        fresh: AtomicBool::new(false),
        recorder,
        metrics,
        options,
        stop: AtomicBool::new(false),
    });
    let connections: ConnectionRegistry = Arc::new(Mutex::new(Vec::new()));

    let accept_shared = Arc::clone(&shared);
    let accept_connections = Arc::clone(&connections);
    let accept_thread = std::thread::spawn(move || {
        let mut next_conn = 0u64;
        for incoming in listener.incoming() {
            if accept_shared.stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = incoming else { continue };
            let Ok(tracked) = stream.try_clone() else {
                continue;
            };
            let conn_id = next_conn;
            next_conn += 1;
            let conn_shared = Arc::clone(&accept_shared);
            let handle =
                std::thread::spawn(move || serve_connection(&conn_shared, stream, conn_id));
            lock(&accept_connections).push((handle, tracked));
        }
    });

    Ok(ServerHandle {
        addr,
        shared,
        accept_thread: Some(accept_thread),
        connections,
    })
}

/// One connection's request/reply loop. Never panics: every codec or
/// service failure becomes an error frame (or, for unrecoverable framing
/// violations, a final error frame followed by a close).
fn serve_connection(shared: &Shared, stream: TcpStream, conn_id: u64) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let metrics = &*shared.metrics;
    metrics.add(Metric::NetConnectionsOpened, 1);
    metrics.gauge_add(Metric::NetActiveConnections, 1);
    let mut reader = BufReader::new(read_half);
    let mut writer = BufWriter::new(stream);
    loop {
        if shared.stop.load(Ordering::Acquire) {
            break;
        }
        let payload = match read_frame(&mut reader, shared.options.max_frame) {
            Ok(Some(payload)) => payload,
            // Clean EOF between frames: the peer is done.
            Ok(None) => break,
            Err(err @ FrameError::TooLarge { .. }) => {
                // The unread payload cannot be skipped safely; report
                // and close.
                let reply = WireReply::Err(WireError::Codec {
                    violation: crate::error::CodecViolation::Frame,
                    detail: err.to_string(),
                });
                metrics.add(Metric::NetErrorFrames, 1);
                if reply_to(shared, &mut writer, &reply).is_ok() {
                    metrics.add(Metric::NetRepliesSent, 1);
                }
                record(shared, conn_id, None, &reply);
                break;
            }
            // Truncation or transport failure: the peer is gone.
            Err(_) => break,
        };
        metrics.add(Metric::NetFramesRead, 1);
        metrics.add(Metric::NetBytesRead, payload.len() as u64 + 4);
        let (command, reply) = match decode_command(&payload) {
            Ok(command) => {
                metrics.add(Metric::NetFramesDecoded, 1);
                let watch = Stopwatch::start();
                let reply = shared.handle(command.clone());
                watch.record(metrics, Metric::NetRequestNs);
                (Some(command), reply)
            }
            // The framing was intact, so the connection stays usable.
            Err(codec) => (None, WireReply::Err(WireError::from(codec))),
        };
        if matches!(reply, WireReply::Err(_)) {
            metrics.add(Metric::NetErrorFrames, 1);
        }
        record(shared, conn_id, command.as_ref(), &reply);
        if reply_to(shared, &mut writer, &reply).is_err() {
            break;
        }
        metrics.add(Metric::NetRepliesSent, 1);
    }
    // Dropping the handles is not enough to close the socket: the accept
    // registry's tracked clone still holds the descriptor, so the peer
    // would never see EOF. Shut the stream down explicitly.
    let _ = writer.flush();
    let _ = writer.get_ref().shutdown(std::net::Shutdown::Both);
    metrics.add(Metric::NetConnectionsClosed, 1);
    metrics.gauge_sub(Metric::NetActiveConnections, 1);
}

/// Encode and write one reply frame, counting the bytes that went out.
fn reply_to(
    shared: &Shared,
    writer: &mut BufWriter<TcpStream>,
    reply: &WireReply,
) -> Result<(), FrameError> {
    let encoded = reply.encode();
    write_frame(writer, &encoded, shared.options.max_frame)?;
    shared
        .metrics
        .add(Metric::NetBytesWritten, encoded.len() as u64 + 4);
    Ok(())
}

fn record(shared: &Shared, conn_id: u64, command: Option<&Command>, reply: &WireReply) {
    if let Some(recorder) = &shared.recorder {
        recorder.record(conn_id, command, reply);
    }
}
