//! The reply frame: one tagged union per request frame.

use crate::error::WireError;
use fedfl_service::Response;
use serde::{Deserialize, Serialize};

/// The server's answer to one request frame — exactly one reply frame
/// per request, success or error, so a client can always correlate by
/// order within its connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireReply {
    /// The command executed; the service's reply.
    Ok(Response),
    /// The command was rejected — by the codec before execution, or by
    /// the service during it. The service state is unchanged either way.
    Err(WireError),
}

impl WireReply {
    /// Encode this reply as a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_string(self)
            .expect("replies serialize infallibly")
            .into_bytes()
    }

    /// Decode a reply frame payload.
    ///
    /// # Errors
    ///
    /// Returns the decoder's message if the payload is not a reply.
    pub fn decode(payload: &[u8]) -> Result<Self, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("invalid utf-8: {e}"))?;
        serde_json::from_str(text).map_err(|e| e.to_string())
    }
}
