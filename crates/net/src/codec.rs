//! The strict wire codec: length-prefixed JSON frames and typed decode
//! errors.
//!
//! A frame is a 4-byte big-endian payload length followed by that many
//! bytes of UTF-8 JSON. The codec layer is deliberately separate from the
//! command handler: framing violations (oversized or truncated frames)
//! and payload violations (garbage JSON, unknown command tags, `null` or
//! non-finite floats smuggled into solver inputs) are rejected *here*,
//! with typed errors, before any command reaches the service.

use fedfl_service::Command;
use serde::Value;
use std::fmt;
use std::io::{self, Read, Write};

/// Default hard cap on one frame's payload, in bytes. Generous enough
/// for a full 1M-client snapshot reply, small enough that a hostile
/// length prefix cannot make the server allocate unbounded memory.
pub const DEFAULT_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Bytes of the frame length prefix.
pub const LENGTH_PREFIX: usize = 4;

/// A framing violation — the byte stream itself broke the protocol.
#[derive(Debug)]
pub enum FrameError {
    /// The declared payload length exceeds the configured cap. The
    /// stream cannot be resynchronised past an unread payload this
    /// large, so the connection must close after reporting it.
    TooLarge {
        /// Length the prefix declared.
        declared: usize,
        /// The configured cap it exceeded.
        max: usize,
    },
    /// The stream ended in the middle of a frame.
    Truncated {
        /// Bytes the frame still owed.
        expected: usize,
        /// Bytes actually read before EOF.
        got: usize,
    },
    /// The underlying transport failed.
    Io(io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte cap")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "stream ended mid-frame: got {got} of {expected} bytes")
            }
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// A payload violation — the frame arrived intact but its JSON cannot
/// become a solver-safe [`Command`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The payload is not valid UTF-8 or not valid JSON.
    Malformed {
        /// What the parser reported.
        detail: String,
    },
    /// The JSON parsed but does not decode as a `Command` (unknown
    /// command tag, missing field, wrong type).
    Decode {
        /// What the decoder reported.
        detail: String,
    },
    /// The payload carries a JSON `null` — the serializer's encoding of
    /// a non-finite float, which must never smuggle a NaN into the
    /// solver.
    NullValue {
        /// Path of the offending value inside the payload.
        path: String,
    },
    /// The payload carries a float that parsed to a non-finite value
    /// (e.g. an out-of-range literal like `1e999`).
    NonFinite {
        /// Path of the offending value inside the payload.
        path: String,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Malformed { detail } => write!(f, "malformed payload: {detail}"),
            CodecError::Decode { detail } => write!(f, "undecodable command: {detail}"),
            CodecError::NullValue { path } => {
                write!(f, "null value at {path}: non-finite floats are rejected")
            }
            CodecError::NonFinite { path } => {
                write!(f, "non-finite float at {path}")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Write one frame: big-endian length prefix, then the payload.
///
/// # Errors
///
/// Returns [`FrameError::TooLarge`] for a payload over `max` (nothing is
/// written) and [`FrameError::Io`] for transport failures.
pub fn write_frame(writer: &mut impl Write, payload: &[u8], max: usize) -> Result<(), FrameError> {
    if payload.len() > max {
        return Err(FrameError::TooLarge {
            declared: payload.len(),
            max,
        });
    }
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge {
        declared: payload.len(),
        max,
    })?;
    writer.write_all(&len.to_be_bytes())?;
    writer.write_all(payload)?;
    writer.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` is a clean EOF *between* frames
/// (the peer closed an idle connection).
///
/// # Errors
///
/// Returns [`FrameError::TooLarge`] without consuming the payload (the
/// stream is unrecoverable past it), [`FrameError::Truncated`] for EOF
/// inside a frame, and [`FrameError::Io`] for transport failures.
pub fn read_frame(reader: &mut impl Read, max: usize) -> Result<Option<Vec<u8>>, FrameError> {
    let mut prefix = [0u8; LENGTH_PREFIX];
    match read_exact_or_eof(reader, &mut prefix)? {
        0 => return Ok(None),
        n if n < LENGTH_PREFIX => {
            return Err(FrameError::Truncated {
                expected: LENGTH_PREFIX,
                got: n,
            })
        }
        _ => {}
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    let got = read_exact_or_eof(reader, &mut payload)?;
    if got < declared {
        return Err(FrameError::Truncated {
            expected: declared,
            got,
        });
    }
    Ok(Some(payload))
}

/// Fill `buf` as far as the stream allows, returning the bytes read
/// (short only at EOF).
fn read_exact_or_eof(reader: &mut impl Read, buf: &mut [u8]) -> Result<usize, FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(filled)
}

/// Decode a frame payload into a [`Command`], enforcing the solver-safety
/// gate: the parsed JSON tree must contain no `null` and no non-finite
/// float anywhere. (The serializer encodes non-finite floats as `null`,
/// and the parser accepts out-of-range literals as infinities — both are
/// rejected here so `UpdateBudget(NaN)` can never reach the service,
/// which would reject it anyway, let alone the solver.)
///
/// # Errors
///
/// Returns a typed [`CodecError`] naming the violation; the connection
/// remains usable, since the framing itself was intact.
pub fn decode_command(payload: &[u8]) -> Result<Command, CodecError> {
    let text = std::str::from_utf8(payload).map_err(|e| CodecError::Malformed {
        detail: format!("invalid utf-8: {e}"),
    })?;
    let value: Value = serde_json::from_str(text).map_err(|e| CodecError::Malformed {
        detail: e.to_string(),
    })?;
    check_solver_safe(&value, &mut String::from("$"))?;
    value
        .deserialize_into::<Command>()
        .map_err(|e| CodecError::Decode {
            detail: e.to_string(),
        })
}

/// Recursively reject `null` and non-finite floats, tracking a JSONPath
/// to the offending value.
fn check_solver_safe(value: &Value, path: &mut String) -> Result<(), CodecError> {
    match value {
        Value::Null => Err(CodecError::NullValue { path: path.clone() }),
        Value::F64(x) if !x.is_finite() => Err(CodecError::NonFinite { path: path.clone() }),
        Value::Seq(items) => {
            for (i, item) in items.iter().enumerate() {
                let len = path.len();
                path.push_str(&format!("[{i}]"));
                check_solver_safe(item, path)?;
                path.truncate(len);
            }
            Ok(())
        }
        Value::Map(entries) => {
            for (key, item) in entries {
                let len = path.len();
                path.push_str(&format!(".{key}"));
                check_solver_safe(item, path)?;
                path.truncate(len);
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedfl_service::ClientId;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"a\":1}", 1024).unwrap();
        write_frame(&mut buf, b"", 1024).unwrap();
        let mut cursor = io::Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(&b"{\"a\":1}"[..])
        );
        assert_eq!(
            read_frame(&mut cursor, 1024).unwrap().as_deref(),
            Some(&b""[..])
        );
        assert!(read_frame(&mut cursor, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_and_truncated_frames_are_typed() {
        let mut buf = Vec::new();
        assert!(matches!(
            write_frame(&mut buf, &[0u8; 32], 16),
            Err(FrameError::TooLarge {
                declared: 32,
                max: 16
            })
        ));
        // A hostile prefix declaring more than the cap.
        let hostile = 0xFFFF_FFFFu32.to_be_bytes();
        let mut cursor = io::Cursor::new(hostile.to_vec());
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::TooLarge { .. })
        ));
        // A frame cut off mid-payload.
        let mut cut = 8u32.to_be_bytes().to_vec();
        cut.extend_from_slice(b"abc");
        let mut cursor = io::Cursor::new(cut);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Truncated {
                expected: 8,
                got: 3
            })
        ));
        // A prefix cut off mid-length.
        let mut cursor = io::Cursor::new(vec![0u8, 0u8]);
        assert!(matches!(
            read_frame(&mut cursor, 1024),
            Err(FrameError::Truncated {
                expected: 4,
                got: 2
            })
        ));
    }

    #[test]
    fn commands_round_trip_through_the_codec() {
        let commands = [
            Command::GetPrices(vec![ClientId(3), ClientId(1)]),
            Command::Snapshot,
            Command::Reprice,
            Command::UpdateBudget(42.5),
            Command::RemoveClients(vec![ClientId(9)]),
        ];
        for command in commands {
            let payload = serde_json::to_string(&command).unwrap();
            let decoded = decode_command(payload.as_bytes()).unwrap();
            assert_eq!(decoded, command);
        }
    }

    #[test]
    fn garbage_and_unknown_tags_are_typed_errors() {
        assert!(matches!(
            decode_command(&[0xFF, 0xFE]),
            Err(CodecError::Malformed { .. })
        ));
        assert!(matches!(
            decode_command(b"{\"not json"),
            Err(CodecError::Malformed { .. })
        ));
        let err = decode_command(b"{\"LaunchMissiles\":[]}").unwrap_err();
        match err {
            CodecError::Decode { detail } => assert!(
                detail.contains("LaunchMissiles"),
                "error should name the unknown tag: {detail}"
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn null_and_non_finite_floats_are_rejected_with_paths() {
        // NaN budgets serialize as null — the codec names the path.
        let payload = serde_json::to_string(&Command::UpdateBudget(f64::NAN)).unwrap();
        assert_eq!(payload, "{\"UpdateBudget\":null}");
        assert_eq!(
            decode_command(payload.as_bytes()),
            Err(CodecError::NullValue {
                path: "$.UpdateBudget".into()
            })
        );
        // Out-of-range literals parse to infinity — also rejected.
        assert_eq!(
            decode_command(b"{\"UpdateBudget\":1e999}"),
            Err(CodecError::NonFinite {
                path: "$.UpdateBudget".into()
            })
        );
        // Nested positions are named too.
        assert_eq!(
            decode_command(b"{\"AddClients\":[{\"data_size\":null}]}"),
            Err(CodecError::NullValue {
                path: "$.AddClients[0].data_size".into()
            })
        );
    }
}
