//! Wire-serializable errors: the error-frame payload and the client's
//! failure type.

use crate::codec::{CodecError, FrameError};
use fedfl_service::{ClientId, ServiceError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which codec rule a rejected frame violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CodecViolation {
    /// Payload was not valid UTF-8/JSON.
    Malformed,
    /// JSON did not decode as a command (unknown tag, missing field).
    Decode,
    /// A `null` appeared where a finite value is required.
    NullValue,
    /// A float parsed to a non-finite value.
    NonFinite,
    /// The frame itself broke the protocol (oversized).
    Frame,
}

/// The error payload of a wire error frame — a serializable mirror of
/// every [`ServiceError`] variant plus the codec layer's rejections.
///
/// `ServiceError` itself carries `&'static str` fields and nested engine
/// errors that cannot be deserialized; this mirror owns all its strings,
/// so any error the handler can produce survives the round trip through
/// an error frame bit-for-bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WireError {
    /// Mirrors [`ServiceError::InvalidConfig`].
    InvalidConfig {
        /// Which config field is invalid.
        field: String,
        /// The violated constraint.
        reason: String,
    },
    /// Mirrors [`ServiceError::InvalidClient`].
    InvalidClient {
        /// Position of the offending client in the submitted batch.
        index: usize,
        /// The violated constraint.
        reason: String,
    },
    /// Mirrors [`ServiceError::UnknownClient`].
    UnknownClient(u64),
    /// Mirrors [`ServiceError::DuplicateRemoval`].
    DuplicateRemoval(u64),
    /// Mirrors [`ServiceError::AvailabilityMismatch`].
    AvailabilityMismatch {
        /// Clients currently registered.
        clients: usize,
        /// Patterns submitted.
        patterns: usize,
    },
    /// Mirrors [`ServiceError::NoPriceableClients`].
    NoPriceableClients {
        /// Total clients registered.
        registered: usize,
    },
    /// Mirrors [`ServiceError::InvariantViolated`]. Both fields are
    /// finite by construction (a non-finite tolerance never validates),
    /// so they survive JSON.
    InvariantViolated {
        /// Maximum sampled relative residual.
        residual: f64,
        /// The configured tolerance it exceeded.
        tolerance: f64,
    },
    /// Mirrors [`ServiceError::Game`], flattened to its message (the
    /// engine error tree carries `&'static str` names).
    Game {
        /// The engine error's rendered message.
        message: String,
    },
    /// The codec rejected the frame before any command existed.
    Codec {
        /// Which rule the frame violated.
        violation: CodecViolation,
        /// The rendered codec error.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::InvalidConfig { field, reason } => {
                write!(f, "invalid service config `{field}`: {reason}")
            }
            WireError::InvalidClient { index, reason } => {
                write!(f, "invalid client at batch index {index}: {reason}")
            }
            WireError::UnknownClient(id) => write!(f, "unknown client id {id}"),
            WireError::DuplicateRemoval(id) => {
                write!(f, "client id {id} appears twice in one removal batch")
            }
            WireError::AvailabilityMismatch { clients, patterns } => write!(
                f,
                "availability model has {patterns} patterns for {clients} clients"
            ),
            WireError::NoPriceableClients { registered } => write!(
                f,
                "no priceable clients ({registered} registered, all excluded or none present)"
            ),
            WireError::InvariantViolated {
                residual,
                tolerance,
            } => write!(
                f,
                "theorem 2 invariant violated after re-solve: residual {residual:.3e} > {tolerance:.3e}"
            ),
            WireError::Game { message } => write!(f, "equilibrium engine error: {message}"),
            WireError::Codec { detail, .. } => write!(f, "rejected frame: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<&ServiceError> for WireError {
    fn from(e: &ServiceError) -> Self {
        match e {
            ServiceError::InvalidConfig { field, reason } => WireError::InvalidConfig {
                field: (*field).to_string(),
                reason: reason.clone(),
            },
            ServiceError::InvalidClient { index, reason } => WireError::InvalidClient {
                index: *index,
                reason: reason.clone(),
            },
            ServiceError::UnknownClient(ClientId(id)) => WireError::UnknownClient(*id),
            ServiceError::DuplicateRemoval(ClientId(id)) => WireError::DuplicateRemoval(*id),
            ServiceError::AvailabilityMismatch { clients, patterns } => {
                WireError::AvailabilityMismatch {
                    clients: *clients,
                    patterns: *patterns,
                }
            }
            ServiceError::NoPriceableClients { registered } => WireError::NoPriceableClients {
                registered: *registered,
            },
            ServiceError::InvariantViolated {
                residual,
                tolerance,
            } => WireError::InvariantViolated {
                residual: *residual,
                tolerance: *tolerance,
            },
            ServiceError::Game(game) => WireError::Game {
                message: game.to_string(),
            },
        }
    }
}

impl From<ServiceError> for WireError {
    fn from(e: ServiceError) -> Self {
        WireError::from(&e)
    }
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        let violation = match &e {
            CodecError::Malformed { .. } => CodecViolation::Malformed,
            CodecError::Decode { .. } => CodecViolation::Decode,
            CodecError::NullValue { .. } => CodecViolation::NullValue,
            CodecError::NonFinite { .. } => CodecViolation::NonFinite,
        };
        WireError::Codec {
            violation,
            detail: e.to_string(),
        }
    }
}

/// What a [`crate::client::PricingClient`] call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection or framing failed.
    Frame(FrameError),
    /// The server's reply frame did not decode.
    Protocol {
        /// What went wrong with the reply.
        detail: String,
    },
    /// The server answered with an error frame.
    Server(WireError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Frame(e) => write!(f, "{e}"),
            ClientError::Protocol { detail } => write!(f, "protocol error: {detail}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Frame(FrameError::Io(e))
    }
}
