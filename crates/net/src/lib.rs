//! std-only TCP front-end for the pricing service.
//!
//! The paper's mechanism is a *server* pricing a churning client
//! population; this crate puts [`fedfl_service::PricingService`] on the
//! wire so remote peers can drive it with the existing
//! [`fedfl_service::Command`]/[`fedfl_service::Response`] stream:
//!
//! * [`codec`] — length-prefixed JSON frames (4-byte big-endian length,
//!   UTF-8 payload) with a strict decode gate: frame-size caps, typed
//!   errors for garbage payloads and unknown command tags, and rejection
//!   of `null`/non-finite floats so a NaN can never be smuggled into the
//!   solver;
//! * [`server`] — a [`std::net::TcpListener`] thread-per-connection
//!   loop. Reads are served concurrently from the last
//!   Theorem-2-certified equilibrium behind a `RwLock`; mutations funnel
//!   through the single-writer re-solve, so no connection ever observes
//!   an uncertified price;
//! * [`client`] — a small blocking client;
//! * [`recorder`] — a JSONL wire-trace recorder with an in-process
//!   replay verifier, for replayable debugging;
//! * [`error`] — [`WireError`], the serializable mirror of every
//!   [`fedfl_service::ServiceError`] variant that error frames carry.
//!
//! The bit-identity contract: a command stream replayed over loopback
//! TCP serves byte-for-byte the same price bits (and therefore the same
//! workload `price_checksum`) as the same stream executed in process.
//! `crates/bench`'s `workload --transport tcp` asserts this on the 10k
//! reference trace in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod error;
pub mod protocol;
pub mod recorder;
pub mod server;

pub use client::PricingClient;
pub use codec::{CodecError, FrameError, DEFAULT_MAX_FRAME};
pub use error::{ClientError, CodecViolation, WireError};
pub use protocol::WireReply;
pub use recorder::{load_records, verify_records, WireRecord, WireRecorder};
pub use server::{serve, ServerHandle, ServerOptions};
