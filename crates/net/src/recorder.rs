//! The wire-trace recorder: an append-only JSONL log of every (command,
//! reply) pair a server processed, replayable for debugging.

use crate::error::WireError;
use crate::protocol::WireReply;
use fedfl_service::{Command, PricingService, Response, ServiceConfig};
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};

/// One request/reply exchange, as the server processed it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireRecord {
    /// Global sequence number, in processing order across connections.
    pub seq: u64,
    /// Which connection carried the exchange.
    pub conn: u64,
    /// The decoded command; `None` when the codec rejected the frame
    /// (the reply then carries the codec error).
    pub command: Option<Command>,
    /// The reply frame sent back.
    pub reply: WireReply,
}

struct RecorderInner {
    out: Box<dyn Write + Send>,
    seq: u64,
}

/// A shareable, thread-safe JSONL sink the server appends one
/// [`WireRecord`] per processed frame to.
#[derive(Clone)]
pub struct WireRecorder {
    inner: Arc<Mutex<RecorderInner>>,
}

impl WireRecorder {
    /// Record to a file at `path` (truncating an existing one).
    ///
    /// # Errors
    ///
    /// Returns the file creation error.
    pub fn to_file(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::to_writer(Box::new(BufWriter::new(file))))
    }

    /// Record to an arbitrary sink (tests use an in-memory buffer).
    pub fn to_writer(out: Box<dyn Write + Send>) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RecorderInner { out, seq: 0 })),
        }
    }

    /// Append one exchange. Sink failures are swallowed — recording is
    /// diagnostic and must never take the serving path down.
    ///
    /// `Metrics` scrapes are not recorded: their replies depend on live
    /// counter state (including the scrapes themselves), so they can
    /// never replay bit-for-bit and would poison [`verify_records`].
    pub fn record(&self, conn: u64, command: Option<&Command>, reply: &WireReply) {
        if matches!(command, Some(Command::Metrics)) {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let record = WireRecord {
            seq: inner.seq,
            conn,
            command: command.cloned(),
            reply: reply.clone(),
        };
        inner.seq += 1;
        if let Ok(line) = serde_json::to_string(&record) {
            let _ = writeln!(inner.out, "{line}");
            let _ = inner.out.flush();
        }
    }
}

/// Parse a JSONL wire trace back into records.
///
/// # Errors
///
/// Returns the line number and decoder message of the first bad line.
pub fn load_records(text: &str) -> Result<Vec<WireRecord>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| {
            serde_json::from_str::<WireRecord>(line)
                .map_err(|e| format!("wire trace line {}: {e}", i + 1))
        })
        .collect()
}

/// Replay a recorded single-connection wire trace against a fresh
/// in-process service deployed with `config`, checking every recorded
/// reply bit-for-bit. Returns the number of verified exchanges.
///
/// Codec-rejected records (no command) are skipped: they never reached
/// the service, so they cannot affect its state. So are `Metrics`
/// scrapes from hand-built traces: their replies are live counter reads,
/// inherently unreplayable (the recorder itself never writes them).
///
/// # Errors
///
/// Returns a description of the first diverging exchange.
pub fn verify_records(config: ServiceConfig, records: &[WireRecord]) -> Result<usize, String> {
    let mut service =
        PricingService::new(config).map_err(|e| format!("service deployment failed: {e}"))?;
    let mut verified = 0usize;
    for record in records {
        let Some(command) = &record.command else {
            continue;
        };
        if matches!(command, Command::Metrics) {
            continue;
        }
        let expected = match service.execute(command.clone()) {
            Ok(response) => WireReply::Ok(normalise(response)),
            Err(e) => WireReply::Err(WireError::from(&e)),
        };
        if expected != record.reply {
            return Err(format!(
                "exchange seq {} diverged: recorded {:?}, in-process {:?}",
                record.seq, record.reply, expected
            ));
        }
        verified += 1;
    }
    Ok(verified)
}

/// Responses compare bit-for-bit as-is; hook for future variants whose
/// replay-equality needs canonicalisation.
fn normalise(response: Response) -> Response {
    response
}
