//! A small blocking client for the TCP front-end.

use crate::codec::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME};
use crate::error::ClientError;
use crate::protocol::WireReply;
use fedfl_obs::MetricsReport;
use fedfl_service::{Command, Response};
use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to a pricing server: one in-flight request at a
/// time, one reply frame per request.
pub struct PricingClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    max_frame: usize,
}

impl PricingClient {
    /// Connect with the default frame cap.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Frame`] for connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        Self::connect_with(addr, DEFAULT_MAX_FRAME)
    }

    /// Connect with an explicit frame cap (must match the server's to
    /// round-trip large snapshots).
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Frame`] for connection failures.
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame: usize) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(FrameError::Io)?;
        stream.set_nodelay(true).map_err(FrameError::Io)?;
        let read_half = stream.try_clone().map_err(FrameError::Io)?;
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            max_frame,
        })
    }

    /// Execute one command, returning the service's reply.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Server`] when the server answers with an
    /// error frame, [`ClientError::Frame`]/[`ClientError::Protocol`] for
    /// transport and decode failures.
    pub fn call(&mut self, command: &Command) -> Result<Response, ClientError> {
        let payload = serde_json::to_string(command).map_err(|e| ClientError::Protocol {
            detail: format!("command failed to serialize: {e}"),
        })?;
        match self.call_raw(payload.as_bytes())? {
            WireReply::Ok(response) => Ok(response),
            WireReply::Err(err) => Err(ClientError::Server(err)),
        }
    }

    /// Scrape the server's metrics: a typed snapshot covering the
    /// solver, service and net subsystems, plus the Prometheus-style
    /// text exposition. Served lock-free — a scrape never queues behind
    /// the single writer.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PricingClient::call`], plus
    /// [`ClientError::Protocol`] if the server answers a `Metrics`
    /// command with anything but a metrics report.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Command::Metrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(ClientError::Protocol {
                detail: format!("Metrics answered with {other:?}"),
            }),
        }
    }

    /// Send a raw frame payload and decode the reply frame — the escape
    /// hatch wire tests use to deliver deliberately malformed payloads.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Frame`] for transport failures and
    /// [`ClientError::Protocol`] if the reply does not decode.
    pub fn call_raw(&mut self, payload: &[u8]) -> Result<WireReply, ClientError> {
        write_frame(&mut self.writer, payload, self.max_frame)?;
        let reply =
            read_frame(&mut self.reader, self.max_frame)?.ok_or_else(|| ClientError::Protocol {
                detail: "server closed the connection before replying".to_string(),
            })?;
        WireReply::decode(&reply).map_err(|detail| ClientError::Protocol { detail })
    }
}
