//! Property tests for the log2 histogram: deterministic merge and
//! quantile agreement with exact sorted-percentile computation.

use fedfl_obs::{
    bucket_bounds, bucket_index, Histogram, HistogramSnapshot, Metric, Recorder, Registry,
};
use proptest::prelude::*;

/// The workload harness's nearest-rank percentile over raw samples
/// (mirrors `crates/workload/src/report.rs`).
fn exact_percentile(samples: &[u64], p: f64) -> u64 {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn feed(samples: &[u64]) -> HistogramSnapshot {
    let histogram = Histogram::new();
    for &sample in samples {
        histogram.record(sample);
    }
    histogram.snapshot()
}

proptest! {
    /// Splitting samples across any number of shard-local histograms, in
    /// any order, and merging in any grouping, is identical to one
    /// histogram fed everything.
    #[test]
    fn merge_is_order_and_partition_independent(
        samples in prop::collection::vec(0u64..u64::MAX, 1..200),
        cut_a in 0usize..200,
        cut_b in 0usize..200,
    ) {
        let single = feed(&samples);

        // Partition into three shard-local histograms.
        let cut_a = cut_a.min(samples.len());
        let cut_b = cut_b.min(samples.len()).max(cut_a);
        let (head, tail) = samples.split_at(cut_a);
        let (mid, tail) = tail.split_at(cut_b - cut_a);

        // Reverse one shard: per-sample order must not matter.
        let mut reversed_mid: Vec<u64> = mid.to_vec();
        reversed_mid.reverse();

        // Merge grouping 1: ((head ⊕ mid) ⊕ tail).
        let mut left = feed(head);
        left.merge(&feed(&reversed_mid));
        left.merge(&feed(tail));

        // Merge grouping 2: (tail ⊕ (mid ⊕ head)) — different association
        // and commutation.
        let mut inner = feed(mid);
        inner.merge(&feed(head));
        let mut right = feed(tail);
        right.merge(&inner);

        prop_assert_eq!(&left, &single);
        prop_assert_eq!(&right, &single);
        prop_assert_eq!(left.count, samples.len() as u64);
    }

    /// The recorded quantile brackets the exact sorted-percentile answer
    /// within one bucket boundary, for the same nearest-rank convention
    /// the workload reports use.
    #[test]
    fn quantiles_match_exact_percentile_within_one_bucket(
        samples in prop::collection::vec(0u64..1_000_000_000_000, 1..300),
        p in 0.01f64..1.0,
    ) {
        let snapshot = feed(&samples);
        let exact = exact_percentile(&samples, p);
        let (lower, upper) = snapshot.quantile_bounds(p);
        prop_assert!(
            lower <= exact && exact <= upper,
            "exact {} outside bucket [{}, {}] at p={}",
            exact, lower, upper, p
        );
        // The reported point answer is the bucket upper bound.
        prop_assert_eq!(snapshot.quantile(p), upper);
        // One bucket boundary: the reported value's bucket is the exact
        // answer's bucket.
        prop_assert_eq!(bucket_index(upper), bucket_index(exact));
    }

    /// Bucket index and bounds are mutually consistent everywhere.
    #[test]
    fn bucket_bounds_invert_bucket_index(value in any::<u64>()) {
        let index = bucket_index(value);
        let (lower, upper) = bucket_bounds(index);
        prop_assert!(lower <= value && value <= upper);
        // Relative width bound: upper/lower < 1 + 1/32 above the exact range.
        if lower >= 64 {
            prop_assert!(upper - lower < lower / 32 + 1);
        }
    }
}

/// Thread-local histograms merged across real threads equal a single
/// histogram fed the union — the shard-worker use case.
#[test]
fn threaded_merge_matches_single_feed() {
    let samples: Vec<u64> = (0..10_000u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9))
        .collect();
    let single = feed(&samples);

    let chunks: Vec<Vec<u64>> = samples.chunks(1013).map(<[u64]>::to_vec).collect();
    let merged = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| scope.spawn(|| feed(chunk)))
            .collect();
        let mut merged = HistogramSnapshot::default();
        for handle in handles {
            merged.merge(&handle.join().expect("histogram thread"));
        }
        merged
    });
    assert_eq!(merged, single);
}

/// Concurrent recording into one shared registry loses nothing.
#[test]
fn concurrent_registry_recording_is_lossless() {
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for thread in 0..4u64 {
            let registry = &registry;
            scope.spawn(move || {
                for i in 0..1000u64 {
                    registry.add(Metric::SolverProbeEvaluations, 1);
                    registry.observe(Metric::SolverSolveNs, thread * 1000 + i);
                }
            });
        }
    });
    assert_eq!(registry.counter(Metric::SolverProbeEvaluations), 4000);
    assert_eq!(registry.histogram(Metric::SolverSolveNs).count, 4000);
}
