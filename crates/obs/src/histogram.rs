//! Fixed-boundary log2 latency histograms.
//!
//! Bucket boundaries are a compile-time function of the value, so two
//! histograms fed the same samples — in any order, from any number of
//! shards or threads — have identical bucket counts and therefore merge
//! deterministically by per-bucket addition. That is the property the
//! workload harness relies on to replace its hand-rolled latency vectors
//! without breaking record reproducibility.
//!
//! # Bucket layout
//!
//! Values below 64 get exact single-value buckets. From 64 up, each
//! power-of-two octave is split into [`SUB`] equal sub-buckets, so the
//! relative bucket width is at most `1/32` (~3.1%) everywhere. The full
//! `u64` range is covered by [`BUCKETS`] buckets; recorded quantiles are
//! exact nearest-rank answers up to that bucket resolution.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two octave.
pub const SUB: u64 = 32;
/// `log2(SUB)`.
pub const SUB_BITS: u32 = 5;
/// Total bucket count covering the full `u64` range.
pub const BUCKETS: usize = 1920;

/// Bucket index of `value`; monotone in `value`.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    if value < 2 * SUB {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        (shift as usize) * SUB as usize + (value >> shift) as usize
    }
}

/// Inclusive `[lower, upper]` value range of bucket `index`.
///
/// # Panics
///
/// Panics if `index >= BUCKETS`.
#[must_use]
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKETS, "bucket index {index} out of range");
    if index < 2 * SUB as usize {
        (index as u64, index as u64)
    } else {
        let shift = (index / SUB as usize - 1) as u32;
        let mantissa = SUB + (index % SUB as usize) as u64;
        let lower = mantissa << shift;
        (lower, lower + ((1u64 << shift) - 1))
    }
}

/// A lock-free histogram: one atomic counter per fixed bucket.
///
/// Recording is two relaxed `fetch_add`s; reads happen through
/// [`Histogram::snapshot`]. Under concurrent recording a snapshot is a
/// consistent per-bucket view (`count` is derived from the buckets), while
/// `sum` may trail by in-flight samples.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").finish_non_exhaustive()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A sparse, serialisable copy of the current bucket counts.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push(BucketCount {
                    index: index as u32,
                    count: n,
                });
            }
        }
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// One non-empty bucket in a [`HistogramSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Bucket index (see [`bucket_bounds`]).
    pub index: u32,
    /// Samples recorded in this bucket.
    pub count: u64,
}

/// An immutable, serialisable view of a [`Histogram`].
///
/// Snapshots merge deterministically ([`HistogramSnapshot::merge`]) and
/// answer nearest-rank quantile queries exactly up to bucket resolution.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<BucketCount>,
}

impl HistogramSnapshot {
    /// True if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Largest possible value of the highest non-empty bucket, 0 if empty.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.sorted_buckets()
            .last()
            .map_or(0, |bucket| bucket_bounds(bucket.index as usize).1)
    }

    /// Fold `other` into `self` by per-bucket addition.
    ///
    /// Merging is associative and commutative: any grouping of
    /// shard/thread-local histograms over the same samples produces the
    /// same merged snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut dense = vec![0u64; BUCKETS];
        for bucket in self.buckets.iter().chain(other.buckets.iter()) {
            dense[bucket.index as usize] += bucket.count;
        }
        self.count += other.count;
        // Sums wrap, matching the live histogram's atomic fetch_add.
        self.sum = self.sum.wrapping_add(other.sum);
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|&(_, &count)| count > 0)
            .map(|(index, &count)| BucketCount {
                index: index as u32,
                count,
            })
            .collect();
    }

    /// Nearest-rank `p`-quantile, reported as the upper bound of the
    /// bucket holding the ranked sample; 0 if the histogram is empty.
    ///
    /// The rank convention matches the workload harness's sorted-vector
    /// percentile: `rank = ceil(p * count)` clamped to `[1, count]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> u64 {
        self.quantile_bounds(p).1
    }

    /// Inclusive `[lower, upper]` value range of the bucket holding the
    /// nearest-rank `p`-quantile; `(0, 0)` if empty.
    ///
    /// The exact sorted-percentile answer over the same samples is
    /// guaranteed to lie inside these bounds.
    #[must_use]
    pub fn quantile_bounds(&self, p: f64) -> (u64, u64) {
        if self.count == 0 {
            return (0, 0);
        }
        let rank = {
            let raw = (p * self.count as f64).ceil() as u64;
            raw.clamp(1, self.count)
        };
        let mut cumulative = 0u64;
        for bucket in self.sorted_buckets() {
            cumulative += bucket.count;
            if cumulative >= rank {
                return bucket_bounds(bucket.index as usize);
            }
        }
        // Unreachable when counts are consistent; fall back to the top
        // bucket rather than panicking on a hand-built snapshot.
        self.sorted_buckets()
            .last()
            .map_or((0, 0), |bucket| bucket_bounds(bucket.index as usize))
    }

    /// Buckets ascending by index (deserialised snapshots may be unsorted).
    fn sorted_buckets(&self) -> Vec<BucketCount> {
        let mut buckets = self.buckets.clone();
        buckets.sort_by_key(|bucket| bucket.index);
        buckets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_invert_it() {
        let mut probes: Vec<u64> = (0..200)
            .chain((6..64).flat_map(|e| {
                let base = 1u64 << e;
                [base - 1, base, base + 1, base + base / 3]
            }))
            .chain([u64::MAX - 1, u64::MAX])
            .collect();
        probes.sort_unstable();
        let mut last = 0usize;
        for (position, &value) in probes.iter().enumerate() {
            let index = bucket_index(value);
            assert!(index < BUCKETS);
            let (lower, upper) = bucket_bounds(index);
            assert!(
                lower <= value && value <= upper,
                "{value} outside [{lower}, {upper}] of bucket {index}"
            );
            if position > 0 {
                assert!(index >= last, "bucket_index not monotone at {value}");
            }
            last = index;
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn buckets_tile_the_range_exactly() {
        let mut expected_lower = 0u64;
        for index in 0..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            assert_eq!(lower, expected_lower, "gap or overlap at bucket {index}");
            assert!(upper >= lower);
            if index + 1 < BUCKETS {
                expected_lower = upper + 1;
            } else {
                assert_eq!(upper, u64::MAX);
            }
        }
    }

    #[test]
    fn relative_width_is_bounded() {
        for index in 2 * SUB as usize..BUCKETS {
            let (lower, upper) = bucket_bounds(index);
            let width = upper - lower + 1;
            assert!(
                width <= lower / SUB,
                "bucket {index}: width {width} vs lower {lower}"
            );
        }
    }

    #[test]
    fn quantiles_walk_nearest_rank() {
        let histogram = Histogram::new();
        for value in 1..=100u64 {
            histogram.record(value);
        }
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, 100);
        assert_eq!(snapshot.sum, 5050);
        // Values 1..=63 land in exact buckets: the p50 (rank 50) is exact.
        assert_eq!(snapshot.quantile_bounds(0.5), (50, 50));
        // Rank 99 = value 99 lands in the [96, 98]/[99, 101]-style octave
        // buckets: exact answer must sit inside the reported bounds.
        let (lower, upper) = snapshot.quantile_bounds(0.99);
        assert!((lower..=upper).contains(&99));
        assert_eq!(snapshot.quantile(1.0), snapshot.max_value());
    }

    #[test]
    fn merge_matches_single_feed() {
        let all = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        for value in [0u64, 1, 63, 64, 65, 1000, 1_000_000, u64::MAX] {
            all.record(value);
            if value % 2 == 0 {
                left.record(value);
            } else {
                right.record(value);
            }
        }
        let mut merged = left.snapshot();
        merged.merge(&right.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn empty_snapshot_answers_zero() {
        let snapshot = Histogram::new().snapshot();
        assert!(snapshot.is_empty());
        assert_eq!(snapshot.quantile(0.5), 0);
        assert_eq!(snapshot.max_value(), 0);
    }
}
