//! The closed set of metrics the workspace records.
//!
//! Metrics are a compile-time enum rather than runtime-registered strings:
//! every instrument site names a [`Metric`] variant, the [`Registry`]
//! (see [`crate::registry`]) stores one slot per variant indexed by the
//! discriminant, and recording is a single atomic op with no hashing or
//! locking on the hot path.
//!
//! # Naming scheme
//!
//! Exposition names follow `fedfl_<subsystem>_<metric>`:
//!
//! * subsystems are `solver` (fedfl-core Stage-I solves), `service`
//!   (fedfl-service store/reprice), `net` (fedfl-net TCP front-end) and
//!   `workload` (harness-side latency);
//! * monotone counters end in `_total`;
//! * duration histograms end in `_ns` and record nanoseconds.

/// What kind of instrument a [`Metric`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Instantaneous `u64` level (set/add/sub).
    Gauge,
    /// log2 sub-bucketed value distribution (see [`crate::histogram`]).
    Histogram,
}

macro_rules! metrics {
    ($( $variant:ident => ($kind:ident, $name:literal, $help:literal), )*) => {
        /// One named instrument; the closed workspace metric set.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub enum Metric {
            $(
                #[doc = $help]
                $variant,
            )*
        }

        impl Metric {
            /// Every metric, in slot order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant,)*];

            /// The instrument kind.
            #[must_use]
            pub fn kind(self) -> MetricKind {
                match self {
                    $(Metric::$variant => MetricKind::$kind,)*
                }
            }

            /// The exposition name (`fedfl_<subsystem>_<metric>`).
            #[must_use]
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name,)*
                }
            }

            /// One-line description, used for `# HELP` exposition lines.
            #[must_use]
            pub fn help(self) -> &'static str {
                match self {
                    $(Metric::$variant => $help,)*
                }
            }
        }
    };
}

metrics! {
    // -- solver (fedfl-core Stage-I KKT solves) --------------------------
    SolverSolves => (Counter, "fedfl_solver_solves_total",
        "Stage-I KKT solves completed (any mode)."),
    SolverExactSolves => (Counter, "fedfl_solver_exact_solves_total",
        "Solves answered by the exact bisection path."),
    SolverFastSolves => (Counter, "fedfl_solver_fast_solves_total",
        "Solves answered by the certified threshold-index fast path."),
    SolverFallbackSolves => (Counter, "fedfl_solver_fallback_solves_total",
        "Fast-path attempts that failed certification and fell back to exact."),
    SolverProbeEvaluations => (Counter, "fedfl_solver_probe_evaluations_total",
        "Per-client spend evaluations across all lambda probes."),
    SolverBisectIterations => (Counter, "fedfl_solver_bisect_iterations_total",
        "Lambda bisection iterations across all solves."),
    SolverCertBand0Hits => (Counter, "fedfl_solver_cert_band0_hits_total",
        "Fast-path certifications that passed at the tightest band (1e-9)."),
    SolverCertBand1Hits => (Counter, "fedfl_solver_cert_band1_hits_total",
        "Fast-path certifications that passed at the middle band (1e-7)."),
    SolverCertBand2Hits => (Counter, "fedfl_solver_cert_band2_hits_total",
        "Fast-path certifications that passed at the widest band (1e-5)."),
    SolverCertFailures => (Counter, "fedfl_solver_cert_failures_total",
        "Fast-path candidates rejected by every certification band."),
    SolverResidualRejects => (Counter, "fedfl_solver_residual_rejects_total",
        "Fast-path candidates rejected by the sampled residual gate."),
    SolverIndexBuilds => (Counter, "fedfl_solver_index_builds_total",
        "Threshold-index (re)builds."),
    SolverIndexBuildNs => (Histogram, "fedfl_solver_index_build_ns",
        "Wall time of threshold-index builds, nanoseconds."),
    SolverIndexSegmentsRebuilt => (Counter, "fedfl_solver_index_segments_rebuilt_total",
        "Threshold-index segments re-sorted because their rows churned (cold builds count every segment)."),
    SolverIndexSegmentsRepaired => (Counter, "fedfl_solver_index_segments_repaired_total",
        "Clean threshold-index segments re-sorted because scale drift reordered their thresholds."),
    SolverIndexSegmentsReused => (Counter, "fedfl_solver_index_segments_reused_total",
        "Threshold-index segments reused verbatim by incremental patches."),
    SolverIndexPatchNs => (Histogram, "fedfl_solver_index_patch_ns",
        "Wall time of incremental threshold-index patches, nanoseconds."),
    SolverSolveNs => (Histogram, "fedfl_solver_solve_ns",
        "Wall time of Stage-I solves, nanoseconds."),

    // -- service (fedfl-service store + reprice) -------------------------
    ServiceCommands => (Counter, "fedfl_service_commands_total",
        "Commands executed by the pricing service (excluding wire-level Metrics scrapes)."),
    ServiceCommandErrors => (Counter, "fedfl_service_command_errors_total",
        "Commands that returned a service error."),
    ServiceReprices => (Counter, "fedfl_service_reprices_total",
        "Successful reprice operations."),
    ServiceWarmSolves => (Counter, "fedfl_service_warm_solves_total",
        "Reprices that started the solver from a warm lambda hint."),
    ServiceColdSolves => (Counter, "fedfl_service_cold_solves_total",
        "Reprices that started the solver cold (no usable hint)."),
    ServiceDirtyShards => (Counter, "fedfl_service_dirty_shards_total",
        "Shards found dirty and reassembled across all reprices."),
    ServiceRebuiltColumns => (Counter, "fedfl_service_rebuilt_columns_total",
        "Per-client solver columns rebuilt across all reprices."),
    ServiceIndexReuses => (Counter, "fedfl_service_index_reuses_total",
        "Fast-path reprices that reused the cached threshold index."),
    ServiceIndexRebuilds => (Counter, "fedfl_service_index_rebuilds_total",
        "Fast-path reprices that had to rebuild the threshold index from scratch."),
    ServiceIndexPatches => (Counter, "fedfl_service_index_patches_total",
        "Fast-path reprices that incrementally patched the cached threshold index."),
    ServiceRepriceNs => (Histogram, "fedfl_service_reprice_ns",
        "Wall time of reprice operations, nanoseconds."),
    ServiceClients => (Gauge, "fedfl_service_clients",
        "Clients currently registered in the store."),
    ServiceExcludedClients => (Gauge, "fedfl_service_excluded_clients",
        "Registered clients excluded from the last solve (infeasible params)."),

    // -- net (fedfl-net TCP front-end) -----------------------------------
    NetConnectionsOpened => (Counter, "fedfl_net_connections_opened_total",
        "TCP connections accepted."),
    NetConnectionsClosed => (Counter, "fedfl_net_connections_closed_total",
        "TCP connections closed."),
    NetActiveConnections => (Gauge, "fedfl_net_active_connections",
        "TCP connections currently open."),
    NetFramesRead => (Counter, "fedfl_net_frames_read_total",
        "Request frames read off the wire."),
    NetFramesDecoded => (Counter, "fedfl_net_frames_decoded_total",
        "Request frames that decoded into a valid command."),
    NetErrorFrames => (Counter, "fedfl_net_error_frames_total",
        "Error replies sent (decode failures, oversized frames, service errors)."),
    NetRepliesSent => (Counter, "fedfl_net_replies_sent_total",
        "Reply frames written to the wire."),
    NetBytesRead => (Counter, "fedfl_net_bytes_read_total",
        "Bytes read off the wire, including length prefixes."),
    NetBytesWritten => (Counter, "fedfl_net_bytes_written_total",
        "Bytes written to the wire, including length prefixes."),
    NetMetricsScrapes => (Counter, "fedfl_net_metrics_scrapes_total",
        "Metrics commands served."),
    NetRequestNs => (Histogram, "fedfl_net_request_ns",
        "Wall time from decoded command to computed reply, nanoseconds."),

    // -- workload (harness-side latency) ---------------------------------
    WorkloadCommands => (Counter, "fedfl_workload_commands_total",
        "Trace commands driven through the harness."),
    WorkloadVerifiedSteps => (Counter, "fedfl_workload_verified_steps_total",
        "Replay steps verified against a freshly solved equilibrium."),
    WorkloadResolveSteadyNs => (Histogram, "fedfl_workload_resolve_steady_ns",
        "Re-solve latency during steady phases, nanoseconds."),
    WorkloadResolveFlashNs => (Histogram, "fedfl_workload_resolve_flash_ns",
        "Re-solve latency during flash-crowd phases, nanoseconds."),
    WorkloadReadSteadyNs => (Histogram, "fedfl_workload_read_steady_ns",
        "Read (price-quote batch) latency during steady phases, nanoseconds."),
    WorkloadReadFlashNs => (Histogram, "fedfl_workload_read_flash_ns",
        "Read (price-quote batch) latency during flash-crowd phases, nanoseconds."),
}

impl Metric {
    /// Slot index of this metric inside a [`crate::registry::Registry`].
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The certification-band hit counter for `CERT_BANDS[band]`.
    ///
    /// Bands beyond the known three map to the widest band's counter so
    /// the solver never has to bounds-check before recording.
    #[must_use]
    pub fn cert_band_hit(band: usize) -> Metric {
        match band {
            0 => Metric::SolverCertBand0Hits,
            1 => Metric::SolverCertBand1Hits,
            _ => Metric::SolverCertBand2Hits,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_ordered() {
        for (position, metric) in Metric::ALL.iter().enumerate() {
            assert_eq!(metric.index(), position);
        }
    }

    #[test]
    fn names_are_unique_and_well_formed() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate metric name");
        for metric in Metric::ALL {
            let name = metric.name();
            assert!(name.starts_with("fedfl_"), "{name}: missing fedfl_ prefix");
            assert!(
                name.bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'),
                "{name}: invalid exposition name"
            );
            match metric.kind() {
                MetricKind::Counter => {
                    assert!(name.ends_with("_total"), "{name}: counter without _total")
                }
                MetricKind::Histogram => {
                    assert!(name.ends_with("_ns"), "{name}: histogram without _ns")
                }
                MetricKind::Gauge => {}
            }
            assert!(!metric.help().is_empty());
        }
    }
}
