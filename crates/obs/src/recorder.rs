//! The [`Recorder`] sink trait, its no-op implementation, and span timers.

use crate::metric::Metric;
use std::time::Instant;

/// A sink for metric events.
///
/// Instrumented code is generic over `R: Recorder` and calls these methods
/// unconditionally; when `R` is [`NoopRecorder`] every call is an empty
/// inlined body, so the solver's hot path and bit-identity contract are
/// untouched with observability off.
pub trait Recorder {
    /// Increment a counter by `delta`.
    fn add(&self, metric: Metric, delta: u64);
    /// Set a gauge to `value`.
    fn gauge_set(&self, metric: Metric, value: u64);
    /// Raise a gauge by `delta`.
    fn gauge_add(&self, metric: Metric, delta: u64);
    /// Lower a gauge by `delta`, saturating at zero.
    fn gauge_sub(&self, metric: Metric, delta: u64);
    /// Record one histogram sample.
    fn observe(&self, metric: Metric, value: u64);
}

/// The recorder that records nothing; every method compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline(always)]
    fn add(&self, _metric: Metric, _delta: u64) {}
    #[inline(always)]
    fn gauge_set(&self, _metric: Metric, _value: u64) {}
    #[inline(always)]
    fn gauge_add(&self, _metric: Metric, _delta: u64) {}
    #[inline(always)]
    fn gauge_sub(&self, _metric: Metric, _delta: u64) {}
    #[inline(always)]
    fn observe(&self, _metric: Metric, _value: u64) {}
}

/// Blanket impl so `&R` works wherever `R: Recorder` is expected.
impl<R: Recorder + ?Sized> Recorder for &R {
    #[inline]
    fn add(&self, metric: Metric, delta: u64) {
        (**self).add(metric, delta);
    }
    #[inline]
    fn gauge_set(&self, metric: Metric, value: u64) {
        (**self).gauge_set(metric, value);
    }
    #[inline]
    fn gauge_add(&self, metric: Metric, delta: u64) {
        (**self).gauge_add(metric, delta);
    }
    #[inline]
    fn gauge_sub(&self, metric: Metric, delta: u64) {
        (**self).gauge_sub(metric, delta);
    }
    #[inline]
    fn observe(&self, metric: Metric, value: u64) {
        (**self).observe(metric, value);
    }
}

/// A lightweight span timer: one `Instant` read at start, one at stop.
///
/// `Stopwatch` is the single measurement site for wall-time fields that
/// also feed diagnostics structs — [`Stopwatch::record`] returns the
/// elapsed nanoseconds it just recorded, so both surfaces see the same
/// number by construction.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since [`Stopwatch::start`], saturating.
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Record the elapsed nanoseconds into `metric` and return them.
    pub fn record<R: Recorder + ?Sized>(&self, recorder: &R, metric: Metric) -> u64 {
        let elapsed = self.elapsed_ns();
        recorder.observe(metric, elapsed);
        elapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_reports_what_it_records() {
        let registry = crate::registry::Registry::new();
        let watch = Stopwatch::start();
        let reported = watch.record(&registry, Metric::SolverSolveNs);
        let snapshot = registry.histogram(Metric::SolverSolveNs);
        assert_eq!(snapshot.count, 1);
        assert_eq!(snapshot.sum, reported);
    }

    #[test]
    fn noop_recorder_is_inert() {
        let noop = NoopRecorder;
        noop.add(Metric::SolverSolves, 1);
        noop.observe(Metric::SolverSolveNs, 17);
        let watch = Stopwatch::start();
        assert!(watch.record(&noop, Metric::SolverSolveNs) < u64::MAX);
    }
}
