//! The live metric store and its serialisable snapshot/report types.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Metric, MetricKind};
use crate::recorder::Recorder;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

enum Slot {
    Value(AtomicU64),
    Hist(Histogram),
}

/// The live store: one lock-free slot per [`Metric`] variant.
///
/// A `Registry` is shared as `Arc<Registry>` between the service, the TCP
/// front-end and the workload harness; recording is a relaxed atomic op,
/// reading goes through [`Registry::snapshot`].
pub struct Registry {
    slots: Vec<Slot>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry").finish_non_exhaustive()
    }
}

impl Registry {
    /// A registry with every metric at zero.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            slots: Metric::ALL
                .iter()
                .map(|metric| match metric.kind() {
                    MetricKind::Counter | MetricKind::Gauge => Slot::Value(AtomicU64::new(0)),
                    MetricKind::Histogram => Slot::Hist(Histogram::new()),
                })
                .collect(),
        }
    }

    fn value_slot(&self, metric: Metric) -> &AtomicU64 {
        match &self.slots[metric.index()] {
            Slot::Value(value) => value,
            Slot::Hist(_) => unreachable!("{} is a histogram, not a value", metric.name()),
        }
    }

    fn hist_slot(&self, metric: Metric) -> &Histogram {
        match &self.slots[metric.index()] {
            Slot::Hist(histogram) => histogram,
            Slot::Value(_) => unreachable!("{} is a value, not a histogram", metric.name()),
        }
    }

    /// Current value of a counter.
    #[must_use]
    pub fn counter(&self, metric: Metric) -> u64 {
        debug_assert_eq!(metric.kind(), MetricKind::Counter);
        self.value_slot(metric).load(Ordering::Relaxed)
    }

    /// Current value of a gauge.
    #[must_use]
    pub fn gauge(&self, metric: Metric) -> u64 {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge);
        self.value_slot(metric).load(Ordering::Relaxed)
    }

    /// Snapshot of a histogram metric.
    #[must_use]
    pub fn histogram(&self, metric: Metric) -> HistogramSnapshot {
        debug_assert_eq!(metric.kind(), MetricKind::Histogram);
        self.hist_slot(metric).snapshot()
    }

    /// Snapshot every metric, in [`Metric::ALL`] order.
    ///
    /// Zero-valued metrics are included so a scrape always covers the
    /// full solver/service/net/workload surface deterministically.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snapshot = MetricsSnapshot::default();
        for &metric in Metric::ALL {
            let name = metric.name().to_string();
            match metric.kind() {
                MetricKind::Counter => snapshot.counters.push(CounterValue {
                    name,
                    value: self.counter(metric),
                }),
                MetricKind::Gauge => snapshot.gauges.push(GaugeValue {
                    name,
                    value: self.gauge(metric),
                }),
                MetricKind::Histogram => snapshot.histograms.push(HistogramValue {
                    name,
                    histogram: self.histogram(metric),
                }),
            }
        }
        snapshot
    }

    /// Snapshot plus its rendered text exposition.
    #[must_use]
    pub fn report(&self) -> MetricsReport {
        let snapshot = self.snapshot();
        let exposition = snapshot.exposition();
        MetricsReport {
            snapshot,
            exposition,
        }
    }
}

impl Recorder for Registry {
    #[inline]
    fn add(&self, metric: Metric, delta: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Counter);
        self.value_slot(metric).fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn gauge_set(&self, metric: Metric, value: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge);
        self.value_slot(metric).store(value, Ordering::Relaxed);
    }

    #[inline]
    fn gauge_add(&self, metric: Metric, delta: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge);
        self.value_slot(metric).fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    fn gauge_sub(&self, metric: Metric, delta: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Gauge);
        let slot = self.value_slot(metric);
        let mut current = slot.load(Ordering::Relaxed);
        loop {
            let next = current.saturating_sub(delta);
            match slot.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(observed) => current = observed,
            }
        }
    }

    #[inline]
    fn observe(&self, metric: Metric, value: u64) {
        debug_assert_eq!(metric.kind(), MetricKind::Histogram);
        self.hist_slot(metric).record(value);
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterValue {
    /// Exposition name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaugeValue {
    /// Exposition name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// One histogram in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramValue {
    /// Exposition name.
    pub name: String,
    /// Bucket counts and quantile queries.
    pub histogram: HistogramSnapshot,
}

/// A point-in-time copy of every metric, safe to ship over the wire.
///
/// All payloads are unsigned integers and strings — no floats, so the
/// frame codec's non-finite/null rejection can never fire on a scrape.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counters, in [`Metric::ALL`] order when produced by a [`Registry`].
    pub counters: Vec<CounterValue>,
    /// Gauges.
    pub gauges: Vec<GaugeValue>,
    /// Histograms.
    pub histograms: Vec<HistogramValue>,
}

impl MetricsSnapshot {
    /// Value of the named counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| entry.value)
    }

    /// Value of the named gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| entry.value)
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|entry| entry.name == name)
            .map(|entry| &entry.histogram)
    }

    /// Fold `other` into `self`: counters add, gauges take `other`'s
    /// value (it is the newer observation), histograms merge per bucket.
    /// Names unseen in `self` are appended.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for counter in &other.counters {
            match self.counters.iter_mut().find(|c| c.name == counter.name) {
                Some(existing) => existing.value += counter.value,
                None => self.counters.push(counter.clone()),
            }
        }
        for gauge in &other.gauges {
            match self.gauges.iter_mut().find(|g| g.name == gauge.name) {
                Some(existing) => existing.value = gauge.value,
                None => self.gauges.push(gauge.clone()),
            }
        }
        for histogram in &other.histograms {
            match self
                .histograms
                .iter_mut()
                .find(|h| h.name == histogram.name)
            {
                Some(existing) => existing.histogram.merge(&histogram.histogram),
                None => self.histograms.push(histogram.clone()),
            }
        }
    }

    /// Render the Prometheus-style text exposition.
    ///
    /// Counters and gauges emit `# HELP` / `# TYPE` / value lines;
    /// histograms emit summary-style `{quantile="0.5"}` / `{quantile="0.99"}`
    /// lines plus `_sum` and `_count`. Values are nanoseconds for `_ns`
    /// metrics.
    #[must_use]
    pub fn exposition(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for counter in &self.counters {
            write_meta(&mut out, &counter.name, "counter");
            let _ = writeln!(out, "{} {}", counter.name, counter.value);
        }
        for gauge in &self.gauges {
            write_meta(&mut out, &gauge.name, "gauge");
            let _ = writeln!(out, "{} {}", gauge.name, gauge.value);
        }
        for entry in &self.histograms {
            write_meta(&mut out, &entry.name, "summary");
            let hist = &entry.histogram;
            let _ = writeln!(
                out,
                "{}{{quantile=\"0.5\"}} {}",
                entry.name,
                hist.quantile(0.5)
            );
            let _ = writeln!(
                out,
                "{}{{quantile=\"0.99\"}} {}",
                entry.name,
                hist.quantile(0.99)
            );
            let _ = writeln!(out, "{}_sum {}", entry.name, hist.sum);
            let _ = writeln!(out, "{}_count {}", entry.name, hist.count);
        }
        out
    }
}

fn write_meta(out: &mut String, name: &str, kind: &str) {
    use std::fmt::Write as _;
    if let Some(help) = Metric::ALL
        .iter()
        .find(|metric| metric.name() == name)
        .map(|metric| metric.help())
    {
        let _ = writeln!(out, "# HELP {name} {help}");
    }
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// A [`MetricsSnapshot`] plus its rendered exposition — the payload of
/// the wire `Metrics` command.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// The typed snapshot.
    pub snapshot: MetricsSnapshot,
    /// Prometheus-style text exposition of the same snapshot.
    pub exposition: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_metric() {
        let registry = Registry::new();
        let snapshot = registry.snapshot();
        let listed = snapshot.counters.len() + snapshot.gauges.len() + snapshot.histograms.len();
        assert_eq!(listed, Metric::ALL.len());
        for &metric in Metric::ALL {
            let name = metric.name();
            let found = match metric.kind() {
                MetricKind::Counter => snapshot.counter(name).is_some(),
                MetricKind::Gauge => snapshot.gauge(name).is_some(),
                MetricKind::Histogram => snapshot.histogram(name).is_some(),
            };
            assert!(found, "{name} missing from snapshot");
        }
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let registry = Registry::new();
        registry.add(Metric::SolverSolves, 3);
        registry.gauge_set(Metric::ServiceClients, 10);
        registry.gauge_add(Metric::ServiceClients, 5);
        registry.gauge_sub(Metric::ServiceClients, 2);
        registry.gauge_sub(Metric::NetActiveConnections, 99);
        registry.observe(Metric::SolverSolveNs, 1234);
        assert_eq!(registry.counter(Metric::SolverSolves), 3);
        assert_eq!(registry.gauge(Metric::ServiceClients), 13);
        assert_eq!(registry.gauge(Metric::NetActiveConnections), 0);
        assert_eq!(registry.histogram(Metric::SolverSolveNs).count, 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let a = Registry::new();
        let b = Registry::new();
        a.add(Metric::NetFramesRead, 2);
        b.add(Metric::NetFramesRead, 5);
        a.observe(Metric::NetRequestNs, 100);
        b.observe(Metric::NetRequestNs, 100);
        b.gauge_set(Metric::NetActiveConnections, 7);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("fedfl_net_frames_read_total"), Some(7));
        assert_eq!(merged.gauge("fedfl_net_active_connections"), Some(7));
        let hist = merged.histogram("fedfl_net_request_ns").unwrap();
        assert_eq!(hist.count, 2);
        assert_eq!(hist.sum, 200);
    }

    #[test]
    fn exposition_names_every_metric() {
        let registry = Registry::new();
        registry.add(Metric::SolverSolves, 1);
        registry.observe(Metric::SolverSolveNs, 42);
        let report = registry.report();
        assert_eq!(report.exposition, report.snapshot.exposition());
        for &metric in Metric::ALL {
            assert!(
                report
                    .exposition
                    .contains(&format!("# TYPE {} ", metric.name())),
                "{} missing from exposition",
                metric.name()
            );
        }
        assert!(report.exposition.contains("fedfl_solver_solves_total 1"));
        assert!(report
            .exposition
            .contains("fedfl_solver_solve_ns{quantile=\"0.5\"} 42"));
        assert!(report
            .exposition
            .contains("# HELP fedfl_solver_solves_total"));
    }

    #[test]
    fn snapshot_roundtrips_through_serde_value() {
        use serde::{Deserialize as _, Serialize as _};
        let registry = Registry::new();
        registry.add(Metric::ServiceCommands, 9);
        registry.observe(Metric::ServiceRepriceNs, 1_000_000);
        let report = registry.report();
        let value = report.to_value();
        let back = MetricsReport::from_value(&value).expect("roundtrip");
        assert_eq!(back, report);
    }
}
