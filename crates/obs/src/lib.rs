//! # fedfl-obs — workspace-wide metrics and tracing
//!
//! Std-only observability substrate for the pricing stack:
//!
//! * [`metric`] — the closed, compile-time set of workspace metrics and
//!   the `fedfl_<subsystem>_<metric>` naming scheme;
//! * [`histogram`] — fixed-boundary log2 latency histograms with exact
//!   nearest-rank quantile queries (up to bucket resolution, ≤ 1/32
//!   relative width) and a deterministic merge;
//! * [`recorder`] — the [`Recorder`] sink trait, the [`NoopRecorder`]
//!   whose methods compile to nothing (instrumentation off ⇒ zero hot-path
//!   cost, solver bit-identity untouched), and the [`Stopwatch`] span
//!   timer;
//! * [`registry`] — the lock-free [`Registry`] slot store, its
//!   wire-safe [`MetricsSnapshot`] (integers and strings only), and the
//!   Prometheus-style text [`MetricsSnapshot::exposition`].
//!
//! # Example
//!
//! ```
//! use fedfl_obs::{Metric, Recorder, Registry, Stopwatch};
//!
//! let registry = Registry::new();
//! registry.add(Metric::SolverSolves, 1);
//! let watch = Stopwatch::start();
//! // ... work ...
//! watch.record(&registry, Metric::SolverSolveNs);
//!
//! let report = registry.report();
//! assert_eq!(report.snapshot.counter("fedfl_solver_solves_total"), Some(1));
//! assert!(report.exposition.contains("fedfl_solver_solve_ns_count 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod metric;
pub mod recorder;
pub mod registry;

pub use histogram::{bucket_bounds, bucket_index, BucketCount, Histogram, HistogramSnapshot};
pub use metric::{Metric, MetricKind};
pub use recorder::{NoopRecorder, Recorder, Stopwatch};
pub use registry::{
    CounterValue, GaugeValue, HistogramValue, MetricsReport, MetricsSnapshot, Registry,
};
