//! Property-based tests for the numeric substrate.

use fedfl_num::dist::{BoundedPareto, Exponential, Normal};
use fedfl_num::linalg::{axpy, dot, norm2, norm2_squared, Matrix};
use fedfl_num::rng::{seeded, split};
use fedfl_num::roots::{best_response_cubic, bisect, cubic_real_roots};
use fedfl_num::search::{golden_section_min, grid_search_min};
use fedfl_num::solve::{bisect_monotone, BoxConstraints};
use fedfl_num::stats::{mean, quantile, ranks, spearman};
use proptest::prelude::*;

fn nonzero_coeff() -> impl Strategy<Value = f64> {
    prop_oneof![-100.0f64..-1e-3, 1e-3f64..100.0]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn split_is_deterministic(parent in any::<u64>(), label in any::<u64>()) {
        prop_assert_eq!(split(parent, label), split(parent, label));
    }

    #[test]
    fn normal_samples_are_finite(mean_p in -1e6f64..1e6, sd in 0.0f64..1e3, seed in any::<u64>()) {
        let d = Normal::new(mean_p, sd).unwrap();
        let mut rng = seeded(seed);
        for _ in 0..32 {
            prop_assert!(d.sample(&mut rng).is_finite());
        }
    }

    #[test]
    fn exponential_samples_nonnegative(m in 1e-3f64..1e6, seed in any::<u64>()) {
        let d = Exponential::with_mean(m).unwrap();
        let mut rng = seeded(seed);
        for _ in 0..32 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= 0.0 && x.is_finite());
        }
    }

    #[test]
    fn pareto_stays_in_support(lo in 1.0f64..100.0, width in 1.0f64..1000.0, alpha in 0.1f64..5.0, seed in any::<u64>()) {
        let hi = lo + width;
        let d = BoundedPareto::new(lo, hi, alpha).unwrap();
        let mut rng = seeded(seed);
        for _ in 0..64 {
            let x = d.sample(&mut rng);
            prop_assert!(x >= lo && x <= hi);
        }
    }

    #[test]
    fn cubic_roots_satisfy_polynomial(
        a3 in nonzero_coeff(),
        a2 in -100.0f64..100.0,
        a1 in -100.0f64..100.0,
        a0 in -100.0f64..100.0,
    ) {
        let roots = cubic_real_roots(a3, a2, a1, a0).unwrap();
        prop_assert!(!roots.is_empty());
        for r in roots {
            let val = ((a3 * r + a2) * r + a1) * r + a0;
            let scale = a3.abs() * r.abs().powi(3) + a2.abs() * r.powi(2).abs()
                + a1.abs() * r.abs() + a0.abs() + 1.0;
            prop_assert!(val.abs() / scale < 1e-6, "residual {} at root {}", val, r);
        }
    }

    #[test]
    fn best_response_root_is_valid_and_monotone(
        c in 0.1f64..1e4,
        p in -1e3f64..1e3,
        k in 0.0f64..1e6,
    ) {
        let q = best_response_cubic(c, p, k).unwrap();
        prop_assert!(q >= 0.0 && q.is_finite());
        // Monotone in P: a higher price never reduces participation.
        let q2 = best_response_cubic(c, p + 10.0, k).unwrap();
        prop_assert!(q2 >= q - 1e-9);
        // Monotone in c (decreasing): higher cost never increases it.
        let q3 = best_response_cubic(c * 2.0, p, k).unwrap();
        prop_assert!(q3 <= q + 1e-9);
    }

    #[test]
    fn bisect_finds_root_of_shifted_cube(target in -100.0f64..100.0) {
        let r = bisect(|x| x * x * x - target, -10.0, 10.0, 1e-12).unwrap();
        prop_assert!((r * r * r - target).abs() < 1e-6);
    }

    #[test]
    fn bisect_monotone_result_in_interval(target in -10.0f64..10.0) {
        let x = bisect_monotone(|x| x.tanh() * 5.0, target, -3.0, 3.0, 1e-12).unwrap();
        prop_assert!((-3.0..=3.0).contains(&x));
    }

    #[test]
    fn grid_min_not_worse_than_endpoints(step in 0.01f64..1.0) {
        let f = |x: f64| (x - 1.7).powi(2) + 0.3 * x.sin();
        let r = grid_search_min(f, -5.0, 5.0, step).unwrap();
        prop_assert!(r.min_value <= f(-5.0) + 1e-12);
        prop_assert!(r.min_value <= f(5.0) + 1e-12);
    }

    #[test]
    fn golden_section_finds_quadratic_min(center in -50.0f64..50.0) {
        let r = golden_section_min(|x| (x - center).powi(2), -100.0, 100.0, 1e-10).unwrap();
        prop_assert!((r.argmin - center).abs() < 1e-4);
    }

    #[test]
    fn dot_cauchy_schwarz(xs in prop::collection::vec(-100.0f64..100.0, 1..32)) {
        let ys: Vec<f64> = xs.iter().map(|&x| x * 0.5 + 1.0).collect();
        let lhs = dot(&xs, &ys).abs();
        let rhs = norm2(&xs) * norm2(&ys);
        prop_assert!(lhs <= rhs + 1e-9 * rhs.max(1.0));
    }

    #[test]
    fn axpy_matches_manual(alpha in -10.0f64..10.0, xs in prop::collection::vec(-10.0f64..10.0, 1..16)) {
        let mut y = vec![1.0; xs.len()];
        axpy(alpha, &xs, &mut y);
        for (i, &x) in xs.iter().enumerate() {
            prop_assert!((y[i] - (1.0 + alpha * x)).abs() < 1e-12);
        }
    }

    #[test]
    fn matvec_linear(scale in -5.0f64..5.0) {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![-3.0, 0.5]]).unwrap();
        let x = [1.0, -2.0];
        let sx = [scale * x[0], scale * x[1]];
        let a = m.matvec(&sx);
        let b = m.matvec(&x);
        for i in 0..2 {
            prop_assert!((a[i] - scale * b[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn box_projection_is_idempotent(
        xs in prop::collection::vec(-100.0f64..100.0, 1..16),
    ) {
        let b = BoxConstraints::uniform(xs.len(), -1.0, 1.0).unwrap();
        let mut once = xs.clone();
        b.project(&mut once);
        let mut twice = once.clone();
        b.project(&mut twice);
        prop_assert_eq!(once.clone(), twice);
        prop_assert!(b.contains(&once, 0.0));
    }

    #[test]
    fn mean_between_min_max(xs in prop::collection::vec(-1e6f64..1e6, 1..64)) {
        let m = mean(&xs).unwrap();
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-6 && m <= hi + 1e-6);
    }

    #[test]
    fn quantile_monotone_in_p(xs in prop::collection::vec(-1e3f64..1e3, 2..64)) {
        let q1 = quantile(&xs, 0.25).unwrap();
        let q2 = quantile(&xs, 0.5).unwrap();
        let q3 = quantile(&xs, 0.75).unwrap();
        prop_assert!(q1 <= q2 + 1e-12 && q2 <= q3 + 1e-12);
    }

    #[test]
    fn ranks_are_permutation_of_averages(xs in prop::collection::vec(-1e3f64..1e3, 1..32)) {
        let r = ranks(&xs);
        let total: f64 = r.iter().sum();
        let expected = (xs.len() * (xs.len() + 1)) as f64 / 2.0;
        prop_assert!((total - expected).abs() < 1e-9);
    }

    #[test]
    fn spearman_invariant_under_monotone_transform(xs in prop::collection::vec(-10.0f64..10.0, 3..32)) {
        let distinct = xs.iter().map(|x| (x * 1e6) as i64).collect::<std::collections::HashSet<_>>();
        prop_assume!(distinct.len() == xs.len());
        let ys: Vec<f64> = xs.iter().map(|&x| x.exp()).collect();
        let s = spearman(&xs, &ys).unwrap();
        prop_assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn norm_squared_consistency(xs in prop::collection::vec(-100.0f64..100.0, 1..32)) {
        let n2 = norm2(&xs);
        prop_assert!((n2 * n2 - norm2_squared(&xs)).abs() <= 1e-6 * norm2_squared(&xs).max(1.0));
    }
}
