//! Deterministic chunked parallel reductions and fills.
//!
//! The Stage-I solvers evaluate per-client expressions over populations of
//! up to millions of clients inside a bisection loop, so the inner passes
//! must be parallel *and* bit-reproducible. Both primitives here follow the
//! same discipline as the simulator's worker pool: the work is split into
//! fixed-width chunks whose boundaries depend only on the population size
//! (never on the thread count), each chunk is reduced sequentially, and the
//! per-chunk results are combined in chunk order. Floating-point addition is
//! not associative, but with a fixed chunking the summation tree is
//! identical whether one thread or sixteen execute it — `n_threads = 1` and
//! `n_threads = 16` produce bit-identical results.
//!
//! Each call spawns a scoped worker crew and distributes chunk indices
//! over a [`crossbeam::channel`] job queue, so uneven per-chunk cost (e.g.
//! clamped vs. interior clients) cannot idle workers behind a static
//! partition. Spawning is skipped entirely unless every worker would get
//! at least two chunks — below that the per-call thread/channel overhead
//! rivals the chunk work itself, and the inline path computes the
//! identical result (the summation tree is fixed by the chunking alone).

use crate::error::NumError;
use crossbeam::channel;

/// Fixed chunk width used by the solvers' per-client passes.
///
/// Chosen so one chunk of `f64` parameters stays comfortably inside L2
/// while amortising the job-queue synchronisation; the exact value only
/// affects performance, never results — but changing it *does* change the
/// summation tree, so it is a compile-time constant rather than a knob.
pub const DEFAULT_CHUNK: usize = 8_192;

/// Resolve a thread-count knob: `0` means one worker per available core.
///
/// The core-count lookup is a syscall, and auto-threaded reductions can
/// sit in solver inner loops (the M-search calls one per gradient
/// evaluation), so the answer is cached for the life of the process.
pub fn resolve_threads(n_threads: usize) -> usize {
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if n_threads > 0 {
        n_threads
    } else {
        *AVAILABLE.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// Number of fixed-width chunks covering `n` items.
fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk)
}

/// Workers worth spawning for `chunks` chunks: each must get at least two
/// chunks, else run inline (1).
fn effective_workers(n_threads: usize, chunks: usize) -> usize {
    resolve_threads(n_threads).min(chunks / 2).max(1)
}

/// Sum `f(start..end)` over fixed-width chunks of `0..n`, deterministically.
///
/// `f` receives each chunk's half-open index range and returns its partial
/// sum; partials are combined in ascending chunk order, so the result is
/// independent of `n_threads`. With `n_threads <= 1` (after
/// [`resolve_threads`]) or a single chunk the reduction runs inline without
/// spawning.
pub fn chunked_sum<F>(n: usize, n_threads: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    let chunk = DEFAULT_CHUNK;
    let chunks = chunk_count(n, chunk);
    let workers = effective_workers(n_threads, chunks);
    if workers <= 1 {
        let mut total = 0.0;
        for c in 0..chunks {
            let start = c * chunk;
            total += f(start..(start + chunk).min(n));
        }
        return total;
    }

    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for c in 0..chunks {
        job_tx.send(c).expect("queue open");
    }
    drop(job_tx);

    let mut partials = vec![0.0f64; chunks];
    let collected: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(c) = job_rx.recv() {
                    let start = c * chunk;
                    local.push((c, f(start..(start + chunk).min(n))));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (c, partial) in collected.into_iter().flatten() {
        partials[c] = partial;
    }
    // Combine in chunk order: the summation tree is fixed by `chunk` alone.
    partials.into_iter().sum()
}

/// A chunk-aligned partition of `0..n` into contiguous shards.
///
/// This is the unit of the two-level merge the sharded solvers run on:
/// every shard boundary lies on the fixed [`DEFAULT_CHUNK`] grid, so a
/// shard's per-chunk partial sums are *exactly* the global reduction's
/// partials for those chunks. Merging all shards' partials in shard order
/// ([`merge_shard_partials`]) therefore reproduces the flat
/// [`chunked_sum`] **bit for bit**, for any shard count and any thread
/// count — which is what lets a shard be computed by a different worker
/// crew (or, eventually, a different process) without perturbing results.
///
/// When there are fewer chunks than shards, trailing shards are empty;
/// empty shards contribute nothing to the merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    /// Shard start offsets plus the final `n`; `starts.len() == shards + 1`
    /// and every entry except the last is a multiple of [`DEFAULT_CHUNK`].
    starts: Vec<usize>,
}

impl ShardPlan {
    /// Partition `0..n` into `shards` contiguous, chunk-aligned shards of
    /// near-equal chunk counts.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] for `shards == 0`.
    pub fn new(n: usize, shards: usize) -> Result<Self, NumError> {
        if shards == 0 {
            return Err(NumError::InvalidParameter {
                name: "shards",
                reason: "need at least one shard".into(),
            });
        }
        let chunks = chunk_count(n, DEFAULT_CHUNK);
        let mut starts = Vec::with_capacity(shards + 1);
        for s in 0..shards {
            starts.push(((s * chunks).div_ceil(shards) * DEFAULT_CHUNK).min(n));
        }
        starts.push(n);
        Ok(Self { n, starts })
    }

    /// Total number of items covered by the plan.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the plan covers no items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of shards (including empty trailing shards).
    pub fn shard_count(&self) -> usize {
        self.starts.len() - 1
    }

    /// The half-open item range of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= shard_count()`.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        self.starts[s]..self.starts[s + 1]
    }

    /// Iterate over the shard ranges in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.shard_count()).map(|s| self.range(s))
    }
}

/// Per-chunk partial sums of `f` over `0..n` — the mergeable accumulator
/// of one shard.
///
/// The returned vector holds one entry per fixed-width chunk, in chunk
/// order; folding it from zero reproduces `chunked_sum(n, _, f)` exactly.
/// A shard of a larger population computes this over its *local* index
/// space: because shard boundaries are chunk-aligned ([`ShardPlan`]), the
/// local chunk grid coincides with the global one restricted to the shard,
/// so the partials can be merged across shards without re-summation.
pub fn chunk_partial_sums<F>(n: usize, n_threads: usize, f: F) -> Vec<f64>
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    let chunk = DEFAULT_CHUNK;
    let chunks = chunk_count(n, chunk);
    let workers = effective_workers(n_threads, chunks);
    let mut partials = vec![0.0f64; chunks];
    if workers <= 1 {
        for (c, p) in partials.iter_mut().enumerate() {
            let start = c * chunk;
            *p = f(start..(start + chunk).min(n));
        }
        return partials;
    }

    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for c in 0..chunks {
        job_tx.send(c).expect("queue open");
    }
    drop(job_tx);

    let collected: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(c) = job_rx.recv() {
                    let start = c * chunk;
                    local.push((c, f(start..(start + chunk).min(n))));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (c, partial) in collected.into_iter().flatten() {
        partials[c] = partial;
    }
    partials
}

/// Merge shards' per-chunk partial sums, in shard order, into the total.
///
/// Concatenating the shards' chunk partials (shard boundaries are
/// chunk-aligned, so the concatenation *is* the global per-chunk partial
/// vector) and folding from zero uses the identical summation tree as the
/// flat [`chunked_sum`]: the result is bit-identical for any shard count.
pub fn merge_shard_partials<'a, I>(shards: I) -> f64
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut total = 0.0f64;
    for part in shards {
        for &p in part {
            total += p;
        }
    }
    total
}

/// Two-level deterministic reduction over explicit shard lengths, run by
/// a **single** worker crew: one job queue covers every shard's chunks,
/// the per-chunk partials land in one flat buffer in (shard, chunk)
/// order, and the final fold over that buffer is exactly the
/// [`merge_shard_partials`] merge — bit-identical to the flat
/// [`chunked_sum`] over the concatenation when the shard lengths are
/// chunk-aligned ([`ShardPlan`] lengths always are).
///
/// `f` receives a shard index and a *shard-local* chunk range. Compared
/// to reducing each shard with its own crew, this spawns one crew (not
/// one per shard) per call, allocates one partials buffer (not one per
/// shard), and lets workers cross shard boundaries instead of idling at
/// each barrier — the shape a λ-probe over many small shards wants.
pub fn multi_shard_sum<F>(shard_lens: &[usize], n_threads: usize, f: F) -> f64
where
    F: Fn(usize, std::ops::Range<usize>) -> f64 + Sync,
{
    let chunk = DEFAULT_CHUNK;
    // Flat slot table in shard-major, chunk-ascending order: folding the
    // partials by slot index reproduces the shard-order merge.
    let mut slots: Vec<(usize, usize)> = Vec::new();
    for (s, &len) in shard_lens.iter().enumerate() {
        for c in 0..chunk_count(len, chunk) {
            slots.push((s, c));
        }
    }
    let eval = |slot: usize| {
        let (s, c) = slots[slot];
        let start = c * chunk;
        f(s, start..(start + chunk).min(shard_lens[s]))
    };
    let workers = effective_workers(n_threads, slots.len());
    let mut partials = vec![0.0f64; slots.len()];
    if workers <= 1 {
        for (slot, p) in partials.iter_mut().enumerate() {
            *p = eval(slot);
        }
        return partials.into_iter().sum();
    }

    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for slot in 0..slots.len() {
        job_tx.send(slot).expect("queue open");
    }
    drop(job_tx);

    let collected: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let eval = &eval;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(slot) = job_rx.recv() {
                    local.push((slot, eval(slot)));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (slot, partial) in collected.into_iter().flatten() {
        partials[slot] = partial;
    }
    partials.into_iter().sum()
}

/// Two-level deterministic reduction: per-shard chunk partials merged in
/// shard order.
///
/// `f` receives global index ranges, exactly as in [`chunked_sum`]; the
/// result is bit-identical to `chunked_sum(plan.len(), n_threads, f)` for
/// **any** shard plan over the same `n` and any thread count.
pub fn sharded_sum<F>(plan: &ShardPlan, n_threads: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    if plan.shard_count() == 1 {
        return chunked_sum(plan.len(), n_threads, f);
    }
    let lens: Vec<usize> = plan.ranges().map(|r| r.len()).collect();
    multi_shard_sum(&lens, n_threads, |s, local| {
        let offset = plan.range(s).start;
        f(offset + local.start..offset + local.end)
    })
}

/// Fill `out` in parallel by fixed-width chunks.
///
/// `f` receives each chunk's starting index and the mutable sub-slice
/// `out[start..start + len]` to write. Chunks are disjoint, so the fill is
/// race-free without locking, and because every element is computed from
/// its own index the result is independent of `n_threads`.
pub fn chunked_fill<T, F>(out: &mut [T], n_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = DEFAULT_CHUNK;
    let n = out.len();
    let chunks = chunk_count(n, chunk);
    let workers = effective_workers(n_threads, chunks);
    if workers <= 1 {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            f(c * chunk, slice);
        }
        return;
    }

    let (job_tx, job_rx) = channel::unbounded::<(usize, &mut [T])>();
    for (c, slice) in out.chunks_mut(chunk).enumerate() {
        job_tx
            .send((c * chunk, slice))
            .map_err(|_| ())
            .expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((start, slice)) = job_rx.recv() {
                    f(start, slice);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_sum_matches_serial_reference_on_small_inputs() {
        // Fewer items than one chunk: the reduction is the plain serial sum.
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let expected: f64 = xs.iter().sum();
        let got = chunked_sum(xs.len(), 4, |r| r.map(|i| xs[i]).sum());
        assert_eq!(got, expected);
    }

    #[test]
    fn chunked_sum_is_bitwise_thread_count_invariant() {
        // Enough items for many chunks, with values chosen so that the
        // summation order matters in the last ulps.
        let n = DEFAULT_CHUNK * 7 + 123;
        let xs: Vec<f64> = (0..n)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let reference = chunked_sum(n, 1, |r| r.map(|i| xs[i]).sum());
        for threads in [2, 3, 4, 8] {
            let parallel = chunked_sum(n, threads, |r| r.map(|i| xs[i]).sum());
            assert_eq!(parallel.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_sum_handles_empty_input() {
        assert_eq!(chunked_sum(0, 4, |_| unreachable!()), 0.0);
    }

    #[test]
    fn chunked_fill_writes_every_element() {
        let n = DEFAULT_CHUNK * 7 + 17;
        let mut out = vec![0.0f64; n];
        chunked_fill(&mut out, 4, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = (start + k) as f64;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn chunked_fill_is_thread_count_invariant() {
        let n = DEFAULT_CHUNK * 8 + 5;
        let compute = |i: usize| ((i as f64) * 0.1).cos();
        let mut serial = vec![0.0f64; n];
        chunked_fill(&mut serial, 1, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = compute(start + k);
            }
        });
        let mut parallel = vec![0.0f64; n];
        chunked_fill(&mut parallel, 6, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = compute(start + k);
            }
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }

    #[test]
    fn shard_plan_is_chunk_aligned_and_covers_everything() {
        for &(n, shards) in &[
            (0usize, 3usize),
            (100, 1),
            (100, 7),
            (DEFAULT_CHUNK * 5 + 17, 2),
            (DEFAULT_CHUNK * 11 + 1, 32),
            (DEFAULT_CHUNK, 4),
        ] {
            let plan = ShardPlan::new(n, shards).unwrap();
            assert_eq!(plan.len(), n);
            assert_eq!(plan.is_empty(), n == 0);
            assert_eq!(plan.shard_count(), shards);
            let mut next = 0usize;
            for (s, range) in plan.ranges().enumerate() {
                assert_eq!(range.start, next, "gap before shard {s}");
                assert!(
                    range.start % DEFAULT_CHUNK == 0 || range.start == n,
                    "shard {s} of ({n}, {shards}) starts off-grid at {}",
                    range.start
                );
                next = range.end;
            }
            assert_eq!(next, n, "plan ({n}, {shards}) does not cover 0..{n}");
        }
        assert!(ShardPlan::new(10, 0).is_err());
    }

    #[test]
    fn sharded_sum_is_bitwise_identical_to_chunked_sum() {
        // Values with order-sensitive low bits: any change to the
        // summation tree shows up in the last ulps.
        let n = DEFAULT_CHUNK * 11 + 123;
        let xs: Vec<f64> = (0..n)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let f = |r: std::ops::Range<usize>| r.map(|i| xs[i]).sum::<f64>();
        let flat = chunked_sum(n, 1, f);
        for shards in [1, 2, 7, 32, 200] {
            let plan = ShardPlan::new(n, shards).unwrap();
            for threads in [1, 3] {
                let got = sharded_sum(&plan, threads, f);
                assert_eq!(
                    got.to_bits(),
                    flat.to_bits(),
                    "shards={shards} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn chunk_partials_merge_to_the_flat_sum() {
        let n = DEFAULT_CHUNK * 6 + 77;
        let xs: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
        let f = |r: std::ops::Range<usize>| r.map(|i| xs[i]).sum::<f64>();
        // One shard's partials fold to the chunked sum ...
        let partials = chunk_partial_sums(n, 3, f);
        assert_eq!(partials.len(), n.div_ceil(DEFAULT_CHUNK));
        assert_eq!(
            merge_shard_partials([partials.as_slice()]).to_bits(),
            chunked_sum(n, 1, f).to_bits()
        );
        // ... and per-shard partials computed independently (as a remote
        // worker would) concatenate to the identical global partials.
        let plan = ShardPlan::new(n, 4).unwrap();
        let per_shard: Vec<Vec<f64>> = plan
            .ranges()
            .map(|range| {
                let offset = range.start;
                chunk_partial_sums(range.len(), 1, |local| {
                    f(offset + local.start..offset + local.end)
                })
            })
            .collect();
        let concat: Vec<f64> = per_shard.iter().flatten().copied().collect();
        assert_eq!(concat, partials);
        assert_eq!(
            merge_shard_partials(per_shard.iter().map(Vec::as_slice)).to_bits(),
            chunked_sum(n, 1, f).to_bits()
        );
    }

    #[test]
    fn empty_shards_contribute_nothing() {
        // More shards than chunks: trailing shards are empty.
        let n = 100;
        let plan = ShardPlan::new(n, 32).unwrap();
        assert_eq!(plan.range(0), 0..100);
        assert!(plan.ranges().skip(1).all(|r| r.is_empty()));
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let f = |r: std::ops::Range<usize>| r.map(|i| xs[i]).sum::<f64>();
        assert_eq!(
            sharded_sum(&plan, 2, f).to_bits(),
            chunked_sum(n, 1, f).to_bits()
        );
        assert_eq!(merge_shard_partials(std::iter::empty()), 0.0);
    }
}
