//! Deterministic chunked parallel reductions and fills.
//!
//! The Stage-I solvers evaluate per-client expressions over populations of
//! up to millions of clients inside a bisection loop, so the inner passes
//! must be parallel *and* bit-reproducible. Both primitives here follow the
//! same discipline as the simulator's worker pool: the work is split into
//! fixed-width chunks whose boundaries depend only on the population size
//! (never on the thread count), each chunk is reduced sequentially, and the
//! per-chunk results are combined in chunk order. Floating-point addition is
//! not associative, but with a fixed chunking the summation tree is
//! identical whether one thread or sixteen execute it — `n_threads = 1` and
//! `n_threads = 16` produce bit-identical results.
//!
//! Each call spawns a scoped worker crew and distributes chunk indices
//! over a [`crossbeam::channel`] job queue, so uneven per-chunk cost (e.g.
//! clamped vs. interior clients) cannot idle workers behind a static
//! partition. Spawning is skipped entirely unless every worker would get
//! at least two chunks — below that the per-call thread/channel overhead
//! rivals the chunk work itself, and the inline path computes the
//! identical result (the summation tree is fixed by the chunking alone).

use crossbeam::channel;

/// Fixed chunk width used by the solvers' per-client passes.
///
/// Chosen so one chunk of `f64` parameters stays comfortably inside L2
/// while amortising the job-queue synchronisation; the exact value only
/// affects performance, never results — but changing it *does* change the
/// summation tree, so it is a compile-time constant rather than a knob.
pub const DEFAULT_CHUNK: usize = 8_192;

/// Resolve a thread-count knob: `0` means one worker per available core.
///
/// The core-count lookup is a syscall, and auto-threaded reductions can
/// sit in solver inner loops (the M-search calls one per gradient
/// evaluation), so the answer is cached for the life of the process.
pub fn resolve_threads(n_threads: usize) -> usize {
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    if n_threads > 0 {
        n_threads
    } else {
        *AVAILABLE.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }
}

/// Number of fixed-width chunks covering `n` items.
fn chunk_count(n: usize, chunk: usize) -> usize {
    n.div_ceil(chunk)
}

/// Workers worth spawning for `chunks` chunks: each must get at least two
/// chunks, else run inline (1).
fn effective_workers(n_threads: usize, chunks: usize) -> usize {
    resolve_threads(n_threads).min(chunks / 2).max(1)
}

/// Sum `f(start..end)` over fixed-width chunks of `0..n`, deterministically.
///
/// `f` receives each chunk's half-open index range and returns its partial
/// sum; partials are combined in ascending chunk order, so the result is
/// independent of `n_threads`. With `n_threads <= 1` (after
/// [`resolve_threads`]) or a single chunk the reduction runs inline without
/// spawning.
pub fn chunked_sum<F>(n: usize, n_threads: usize, f: F) -> f64
where
    F: Fn(std::ops::Range<usize>) -> f64 + Sync,
{
    let chunk = DEFAULT_CHUNK;
    let chunks = chunk_count(n, chunk);
    let workers = effective_workers(n_threads, chunks);
    if workers <= 1 {
        let mut total = 0.0;
        for c in 0..chunks {
            let start = c * chunk;
            total += f(start..(start + chunk).min(n));
        }
        return total;
    }

    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for c in 0..chunks {
        job_tx.send(c).expect("queue open");
    }
    drop(job_tx);

    let mut partials = vec![0.0f64; chunks];
    let collected: Vec<Vec<(usize, f64)>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut local = Vec::new();
                while let Ok(c) = job_rx.recv() {
                    let start = c * chunk;
                    local.push((c, f(start..(start + chunk).min(n))));
                }
                local
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for (c, partial) in collected.into_iter().flatten() {
        partials[c] = partial;
    }
    // Combine in chunk order: the summation tree is fixed by `chunk` alone.
    partials.into_iter().sum()
}

/// Fill `out` in parallel by fixed-width chunks.
///
/// `f` receives each chunk's starting index and the mutable sub-slice
/// `out[start..start + len]` to write. Chunks are disjoint, so the fill is
/// race-free without locking, and because every element is computed from
/// its own index the result is independent of `n_threads`.
pub fn chunked_fill<T, F>(out: &mut [T], n_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = DEFAULT_CHUNK;
    let n = out.len();
    let chunks = chunk_count(n, chunk);
    let workers = effective_workers(n_threads, chunks);
    if workers <= 1 {
        for (c, slice) in out.chunks_mut(chunk).enumerate() {
            f(c * chunk, slice);
        }
        return;
    }

    let (job_tx, job_rx) = channel::unbounded::<(usize, &mut [T])>();
    for (c, slice) in out.chunks_mut(chunk).enumerate() {
        job_tx
            .send((c * chunk, slice))
            .map_err(|_| ())
            .expect("queue open");
    }
    drop(job_tx);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((start, slice)) = job_rx.recv() {
                    f(start, slice);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_sum_matches_serial_reference_on_small_inputs() {
        // Fewer items than one chunk: the reduction is the plain serial sum.
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let expected: f64 = xs.iter().sum();
        let got = chunked_sum(xs.len(), 4, |r| r.map(|i| xs[i]).sum());
        assert_eq!(got, expected);
    }

    #[test]
    fn chunked_sum_is_bitwise_thread_count_invariant() {
        // Enough items for many chunks, with values chosen so that the
        // summation order matters in the last ulps.
        let n = DEFAULT_CHUNK * 7 + 123;
        let xs: Vec<f64> = (0..n)
            .map(|i| 1.0 / (i as f64 + 1.0) * if i % 3 == 0 { -1.0 } else { 1.0 })
            .collect();
        let reference = chunked_sum(n, 1, |r| r.map(|i| xs[i]).sum());
        for threads in [2, 3, 4, 8] {
            let parallel = chunked_sum(n, threads, |r| r.map(|i| xs[i]).sum());
            assert_eq!(parallel.to_bits(), reference.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunked_sum_handles_empty_input() {
        assert_eq!(chunked_sum(0, 4, |_| unreachable!()), 0.0);
    }

    #[test]
    fn chunked_fill_writes_every_element() {
        let n = DEFAULT_CHUNK * 7 + 17;
        let mut out = vec![0.0f64; n];
        chunked_fill(&mut out, 4, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = (start + k) as f64;
            }
        });
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i as f64);
        }
    }

    #[test]
    fn chunked_fill_is_thread_count_invariant() {
        let n = DEFAULT_CHUNK * 8 + 5;
        let compute = |i: usize| ((i as f64) * 0.1).cos();
        let mut serial = vec![0.0f64; n];
        chunked_fill(&mut serial, 1, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = compute(start + k);
            }
        });
        let mut parallel = vec![0.0f64; n];
        chunked_fill(&mut parallel, 6, |start, slice| {
            for (k, v) in slice.iter_mut().enumerate() {
                *v = compute(start + k);
            }
        });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn resolve_threads_zero_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(3), 3);
    }
}
