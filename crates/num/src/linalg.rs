//! Dense vector and matrix operations.
//!
//! The multinomial logistic-regression substrate needs only a small set of
//! BLAS-1/2 operations on `f64` data: dot products, axpy updates, scaling,
//! norms, and row-major matrix–vector products. They are implemented here so
//! the workspace carries no external linear-algebra dependency.

use crate::error::NumError;
use serde::{Deserialize, Serialize};

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds if the lengths differ; in release builds the
/// shorter length wins (standard `zip` semantics), so callers should treat a
/// mismatch as a bug.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// `y += alpha * x` (axpy).
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha` in place.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_squared(x: &[f64]) -> f64 {
    dot(x, x)
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn dist2_squared(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dist2_squared: length mismatch");
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

/// `out = a - b` elementwise.
#[inline]
pub fn sub(a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len(), "sub: length mismatch");
    debug_assert_eq!(a.len(), out.len(), "sub: output length mismatch");
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x - y;
    }
}

/// Row-major dense matrix of `f64`.
///
/// # Example
///
/// ```
/// use fedfl_num::linalg::Matrix;
///
/// let m = Matrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]])?;
/// assert_eq!(m.matvec(&[1.0, 1.0]), vec![3.0, 7.0]);
/// # Ok::<(), fedfl_num::NumError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a zero matrix of shape `rows × cols`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a matrix from row-major data.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, NumError> {
        if data.len() != rows * cols {
            return Err(NumError::DimensionMismatch {
                expected: format!("{rows}x{cols} = {} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Create a matrix from a list of equal-length rows.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if rows have unequal lengths
    /// and [`NumError::EmptyInput`] if there are no rows.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self, NumError> {
        let n_rows = rows.len();
        if n_rows == 0 {
            return Err(NumError::EmptyInput);
        }
        let n_cols = rows[0].len();
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for (i, row) in rows.into_iter().enumerate() {
            if row.len() != n_cols {
                return Err(NumError::DimensionMismatch {
                    expected: format!("row of length {n_cols}"),
                    found: format!("row {i} of length {}", row.len()),
                });
            }
            data.extend(row);
        }
        Ok(Self {
            rows: n_rows,
            cols: n_cols,
            data,
        })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds {}", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j]
    }

    /// Set element at `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, i: usize, j: usize, value: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of bounds"
        );
        self.data[i * self.cols + j] = value;
    }

    /// Matrix–vector product `self * x`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        (0..self.rows).map(|i| dot(self.row(i), x)).collect()
    }

    /// Transposed matrix–vector product `selfᵀ * y`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `y.len() != rows`.
    pub fn matvec_t(&self, y: &[f64]) -> Vec<f64> {
        debug_assert_eq!(y.len(), self.rows, "matvec_t: length mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &yi) in y.iter().enumerate() {
            axpy(yi, self.row(i), &mut out);
        }
        out
    }

    /// Rank-1 update `self += alpha * u * vᵀ`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds on dimension mismatch.
    pub fn rank1_update(&mut self, alpha: f64, u: &[f64], v: &[f64]) {
        debug_assert_eq!(u.len(), self.rows, "rank1_update: u length mismatch");
        debug_assert_eq!(v.len(), self.cols, "rank1_update: v length mismatch");
        for (i, &ui) in u.iter().enumerate() {
            let coef = alpha * ui;
            axpy(coef, v, &mut self.data[i * self.cols..(i + 1) * self.cols]);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        norm2(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, -5.0, 6.0];
        assert_eq!(dot(&a, &b), 12.0);
        assert_eq!(norm2_squared(&a), 14.0);
        assert!((norm2(&a) - 14.0_f64.sqrt()).abs() < 1e-15);
        assert_eq!(dist2_squared(&a, &a), 0.0);
    }

    #[test]
    fn axpy_scale_sub() {
        let x = [1.0, 2.0];
        let mut y = vec![10.0, 20.0];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, vec![12.0, 24.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![6.0, 12.0]);
        let mut out = vec![0.0; 2];
        sub(&y, &x, &mut out);
        assert_eq!(out, vec![5.0, 10.0]);
    }

    #[test]
    fn matrix_constructors() {
        let m = Matrix::zeros(2, 3);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert!(m.data().iter().all(|&x| x == 0.0));
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(vec![]).is_err());
        assert!(Matrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matvec_roundtrip() {
        let m = Matrix::from_rows(vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn rank1_update_matches_manual() {
        let mut m = Matrix::zeros(2, 2);
        m.rank1_update(2.0, &[1.0, 3.0], &[4.0, 5.0]);
        assert_eq!(m.get(0, 0), 8.0);
        assert_eq!(m.get(0, 1), 10.0);
        assert_eq!(m.get(1, 0), 24.0);
        assert_eq!(m.get(1, 1), 30.0);
    }

    #[test]
    fn accessors_and_frobenius() {
        let mut m = Matrix::from_vec(2, 2, vec![3.0, 0.0, 0.0, 4.0]).unwrap();
        assert_eq!(m.frobenius_norm(), 5.0);
        m.set(0, 1, 1.0);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.row(1), &[0.0, 4.0]);
        m.row_mut(1)[0] = 9.0;
        assert_eq!(m.get(1, 0), 9.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        Matrix::zeros(1, 1).get(1, 0);
    }
}
