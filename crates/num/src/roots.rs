//! Scalar root finding.
//!
//! The client best response of the CPL game (equation (13) of the paper) is
//! the unique positive root of the cubic
//! `2 c q^3 − P q^2 − K = 0` with `K = v (α/R) a² G² ≥ 0`; the server-side
//! budget-tightening steps need a robust monotone bisection. Both are
//! provided here, together with a safeguarded Newton iteration used when a
//! good derivative is available.

use crate::error::NumError;

/// Default tolerance on the root location.
pub const DEFAULT_TOL: f64 = 1e-12;

/// Default iteration budget for the bracketing methods.
pub const DEFAULT_MAX_ITER: usize = 200;

/// Find a root of `f` in `[lo, hi]` by bisection.
///
/// `f(lo)` and `f(hi)` must have opposite signs (a zero at an endpoint is
/// accepted). Converges unconditionally for continuous `f`.
///
/// # Errors
///
/// Returns [`NumError::NoBracket`] if the interval does not bracket a sign
/// change, and [`NumError::InvalidParameter`] if the interval is invalid.
pub fn bisect<F: FnMut(f64) -> f64>(mut f: F, lo: f64, hi: f64, tol: f64) -> Result<f64, NumError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
        });
    }
    let mut a = lo;
    let mut b = hi;
    let mut fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::NoBracket { lo, hi });
    }
    // 200 halvings shrink any f64 interval below machine precision.
    for _ in 0..DEFAULT_MAX_ITER {
        let mid = 0.5 * (a + b);
        let fm = f(mid);
        if fm == 0.0 || (b - a) < tol {
            return Ok(mid);
        }
        if fm.signum() == fa.signum() {
            a = mid;
            fa = fm;
        } else {
            b = mid;
        }
    }
    Ok(0.5 * (a + b))
}

/// Safeguarded Newton iteration: Newton steps that stay within a bracketing
/// interval, falling back to bisection when a step leaves the bracket or the
/// derivative is too small.
///
/// # Errors
///
/// Same conditions as [`bisect`].
pub fn newton_bracketed<F, G>(
    mut f: F,
    mut df: G,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, NumError>
where
    F: FnMut(f64) -> f64,
    G: FnMut(f64) -> f64,
{
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
        });
    }
    let mut a = lo;
    let mut b = hi;
    let fa = f(a);
    let fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(NumError::NoBracket { lo, hi });
    }
    let sign_a = fa.signum();
    let mut x = 0.5 * (a + b);
    for _ in 0..DEFAULT_MAX_ITER {
        let fx = f(x);
        if fx == 0.0 || (b - a) < tol {
            return Ok(x);
        }
        // Maintain the bracket.
        if fx.signum() == sign_a {
            a = x;
        } else {
            b = x;
        }
        let d = df(x);
        let newton = if d.abs() > 1e-300 {
            x - fx / d
        } else {
            f64::NAN
        };
        x = if newton.is_finite() && newton > a && newton < b {
            newton
        } else {
            0.5 * (a + b)
        };
    }
    Ok(x)
}

/// All real roots of the cubic `a3 x^3 + a2 x^2 + a1 x + a0 = 0`, computed
/// analytically (Cardano, trigonometric form for three real roots).
///
/// Degenerate leading coefficients fall back to the quadratic/linear case.
/// Roots are returned in ascending order.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] when all coefficients are zero
/// (identically-zero polynomial) or any coefficient is non-finite.
pub fn cubic_real_roots(a3: f64, a2: f64, a1: f64, a0: f64) -> Result<Vec<f64>, NumError> {
    for (name, v) in [("a3", a3), ("a2", a2), ("a1", a1), ("a0", a0)] {
        if !v.is_finite() {
            return Err(NumError::InvalidParameter {
                name: "coefficients",
                reason: format!("{name} must be finite, got {v}"),
            });
        }
    }
    const EPS: f64 = 1e-300;
    if a3.abs() < EPS {
        // Quadratic a2 x^2 + a1 x + a0.
        if a2.abs() < EPS {
            if a1.abs() < EPS {
                return Err(NumError::InvalidParameter {
                    name: "coefficients",
                    reason: "identically zero polynomial has no isolated roots".into(),
                });
            }
            return Ok(vec![-a0 / a1]);
        }
        let disc = a1 * a1 - 4.0 * a2 * a0;
        if disc < 0.0 {
            return Ok(vec![]);
        }
        let sq = disc.sqrt();
        let mut roots = vec![(-a1 - sq) / (2.0 * a2), (-a1 + sq) / (2.0 * a2)];
        roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
        return Ok(roots);
    }
    // Depressed cubic t^3 + p t + q with x = t - b/(3a).
    let b = a2 / a3;
    let c = a1 / a3;
    let d = a0 / a3;
    let p = c - b * b / 3.0;
    let q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;
    let shift = -b / 3.0;
    let disc = (q / 2.0) * (q / 2.0) + (p / 3.0) * (p / 3.0) * (p / 3.0);
    let mut roots = if disc > 1e-18 {
        // One real root (Cardano).
        let sq = disc.sqrt();
        let u = cbrt(-q / 2.0 + sq);
        let v = cbrt(-q / 2.0 - sq);
        vec![u + v + shift]
    } else if disc < -1e-18 {
        // Three distinct real roots (trigonometric method).
        let m = 2.0 * (-p / 3.0).sqrt();
        let acos_arg = (3.0 * q / (p * m)).clamp(-1.0, 1.0);
        let theta = acos_arg.acos() / 3.0;
        (0..3)
            .map(|k| m * (theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0).cos() + shift)
            .collect()
    } else {
        // Multiple root boundary.
        if q.abs() < 1e-18 && p.abs() < 1e-18 {
            vec![shift]
        } else {
            let u = cbrt(-q / 2.0);
            vec![2.0 * u + shift, -u + shift]
        }
    };
    roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
    // Polish with one Newton step each to mop up cancellation error.
    for r in roots.iter_mut() {
        let f = |x: f64| ((a3 * x + a2) * x + a1) * x + a0;
        let df = |x: f64| (3.0 * a3 * x + 2.0 * a2) * x + a1;
        let d = df(*r);
        if d.abs() > 1e-12 {
            let step = f(*r) / d;
            if step.is_finite() {
                *r -= step;
            }
        }
    }
    Ok(roots)
}

fn cbrt(x: f64) -> f64 {
    x.signum() * x.abs().powf(1.0 / 3.0)
}

/// Unique positive root of the best-response cubic
/// `2 c q^3 − P q^2 − K = 0` with `c > 0`, `K ≥ 0`.
///
/// This is the first-order condition (13) of the paper rearranged; for
/// `K > 0` the left-hand side is negative at `q = 0` and strictly increasing
/// for `q` past its stationary point, so the positive root is unique. For
/// `K = 0` the equation degenerates to `q²(2cq − P) = 0` whose economically
/// meaningful root is `max(P, 0) / (2c)`.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] if `c ≤ 0`, `K < 0`, or any input
/// is non-finite.
pub fn best_response_cubic(c: f64, p: f64, k: f64) -> Result<f64, NumError> {
    if !c.is_finite() || c <= 0.0 {
        return Err(NumError::InvalidParameter {
            name: "c",
            reason: format!("must be finite and positive, got {c}"),
        });
    }
    if !k.is_finite() || k < 0.0 {
        return Err(NumError::InvalidParameter {
            name: "k",
            reason: format!("must be finite and non-negative, got {k}"),
        });
    }
    if !p.is_finite() {
        return Err(NumError::InvalidParameter {
            name: "p",
            reason: format!("must be finite, got {p}"),
        });
    }
    if k == 0.0 {
        return Ok(p.max(0.0) / (2.0 * c));
    }
    // g(q) = 2c q^3 - P q^2 - K; g(0) = -K < 0 and g -> +inf, and any root
    // has g'(root) > 0, so the positive root is unique.
    let roots = cubic_real_roots(2.0 * c, -p, 0.0, -k)?;
    let root = roots
        .into_iter()
        .filter(|&r| r > 0.0)
        .fold(f64::NAN, |acc, r| if acc.is_nan() { r } else { acc.max(r) });
    if root.is_nan() {
        // Fall back to bracketed search; cannot happen analytically but we
        // keep the solver total.
        let hi = 1.0_f64.max((p.abs() / c).max((k / c).cbrt()) * 4.0 + 1.0);
        return bisect(|q| ((2.0 * c * q - p) * q) * q - k, 0.0, hi, DEFAULT_TOL);
    }
    Ok(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert_close(r, std::f64::consts::SQRT_2, 1e-10);
    }

    #[test]
    fn bisect_accepts_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect(|x| x - 1.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_rejects_non_bracketing() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, 1e-12),
            Err(NumError::NoBracket { .. })
        ));
    }

    #[test]
    fn bisect_rejects_bad_interval() {
        assert!(bisect(|x| x, 1.0, 0.0, 1e-12).is_err());
        assert!(bisect(|x| x, f64::NAN, 1.0, 1e-12).is_err());
    }

    #[test]
    fn newton_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let df = |x: f64| x.exp();
        let r = newton_bracketed(f, df, 0.0, 2.0, 1e-13).unwrap();
        assert_close(r, 3.0_f64.ln(), 1e-10);
    }

    #[test]
    fn newton_survives_flat_derivative() {
        // df ~ 0 near x=0 forces the bisection fallback.
        let f = |x: f64| x * x * x - 0.001;
        let df = |x: f64| 3.0 * x * x;
        let r = newton_bracketed(f, df, -1.0, 1.0, 1e-13).unwrap();
        assert_close(r, 0.1, 1e-8);
    }

    #[test]
    fn cubic_three_real_roots() {
        // (x-1)(x-2)(x-3) = x^3 - 6x^2 + 11x - 6.
        let roots = cubic_real_roots(1.0, -6.0, 11.0, -6.0).unwrap();
        assert_eq!(roots.len(), 3);
        assert_close(roots[0], 1.0, 1e-9);
        assert_close(roots[1], 2.0, 1e-9);
        assert_close(roots[2], 3.0, 1e-9);
    }

    #[test]
    fn cubic_one_real_root() {
        // x^3 + x + 1 has a single real root near -0.6823.
        let roots = cubic_real_roots(1.0, 0.0, 1.0, 1.0).unwrap();
        assert_eq!(roots.len(), 1);
        assert_close(roots[0], -0.682_327_803_828_019_3, 1e-9);
    }

    #[test]
    fn cubic_triple_root() {
        // (x-2)^3 = x^3 - 6x^2 + 12x - 8.
        let roots = cubic_real_roots(1.0, -6.0, 12.0, -8.0).unwrap();
        assert!(roots.iter().any(|&r| (r - 2.0).abs() < 1e-6), "{roots:?}");
    }

    #[test]
    fn cubic_degenerates_to_quadratic_and_linear() {
        let roots = cubic_real_roots(0.0, 1.0, -3.0, 2.0).unwrap();
        assert_eq!(roots.len(), 2);
        assert_close(roots[0], 1.0, 1e-9);
        assert_close(roots[1], 2.0, 1e-9);
        let roots = cubic_real_roots(0.0, 0.0, 2.0, -4.0).unwrap();
        assert_eq!(roots, vec![2.0]);
        assert!(cubic_real_roots(0.0, 0.0, 0.0, 0.0).is_err());
    }

    #[test]
    fn cubic_rejects_nonfinite() {
        assert!(cubic_real_roots(f64::NAN, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn best_response_satisfies_foc() {
        for &(c, p, k) in &[
            (50.0, 10.0, 4.0),
            (20.0, -5.0, 100.0),
            (80.0, 0.0, 0.5),
            (1.0, 100.0, 1e-6),
            (1e3, -50.0, 1e4),
        ] {
            let q = best_response_cubic(c, p, k).unwrap();
            assert!(q > 0.0, "q={q} for (c={c}, p={p}, k={k})");
            let residual = 2.0 * c * q * q * q - p * q * q - k;
            let scale = (2.0 * c * q * q * q).abs().max(k).max(1.0);
            assert!(
                residual.abs() / scale < 1e-8,
                "residual {residual} for (c={c}, p={p}, k={k})"
            );
        }
    }

    #[test]
    fn best_response_zero_k_matches_linear_cost_tradeoff() {
        // Without intrinsic value, q* = max(P,0)/(2c).
        assert_close(best_response_cubic(10.0, 40.0, 0.0).unwrap(), 2.0, 1e-12);
        assert_eq!(best_response_cubic(10.0, -40.0, 0.0).unwrap(), 0.0);
    }

    #[test]
    fn best_response_monotone_in_price() {
        let mut prev = 0.0;
        for i in 0..50 {
            let p = -20.0 + i as f64 * 2.0;
            let q = best_response_cubic(30.0, p, 7.0).unwrap();
            assert!(q >= prev - 1e-12, "not monotone at p={p}");
            prev = q;
        }
    }

    #[test]
    fn best_response_rejects_bad_inputs() {
        assert!(best_response_cubic(0.0, 1.0, 1.0).is_err());
        assert!(best_response_cubic(-1.0, 1.0, 1.0).is_err());
        assert!(best_response_cubic(1.0, 1.0, -1.0).is_err());
        assert!(best_response_cubic(1.0, f64::NAN, 1.0).is_err());
    }
}
