//! Seeded, splittable random-number-generator helpers.
//!
//! Every stochastic component of the workspace (dataset generation, client
//! participation sampling, SGD mini-batching, system heterogeneity) derives
//! its generator from a single experiment seed through [`seeded`] and
//! [`split`], which makes whole experiments bit-reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic generator from a 64-bit seed.
///
/// # Example
///
/// ```
/// use fedfl_num::rng::seeded;
/// use rand::RngExt;
///
/// let mut a = seeded(42);
/// let mut b = seeded(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from a parent seed and a stream label.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mixer, so
/// distinct `(parent, label)` pairs map to well-separated child seeds.
///
/// # Example
///
/// ```
/// use fedfl_num::rng::split;
///
/// let data_seed = split(42, 0);
/// let sgd_seed = split(42, 1);
/// assert_ne!(data_seed, sgd_seed);
/// ```
pub fn split(parent: u64, label: u64) -> u64 {
    let mut z = parent.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(label.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Create a generator for a named sub-stream of an experiment seed.
///
/// Shorthand for `seeded(split(parent, label))`.
pub fn substream(parent: u64, label: u64) -> StdRng {
    seeded(split(parent, label))
}

/// Draw a uniform `f64` in the half-open interval `[0, 1)`.
pub fn uniform01<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    rng.random::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let xs: Vec<u64> = (0..8).map(|_| 0).collect();
        let mut a = seeded(123);
        let mut b = seeded(123);
        let va: Vec<u64> = xs.iter().map(|_| a.random()).collect();
        let vb: Vec<u64> = xs.iter().map(|_| b.random()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded(1);
        let mut b = seeded(2);
        let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn split_is_injective_on_labels() {
        let mut seen = std::collections::HashSet::new();
        for label in 0..10_000u64 {
            assert!(seen.insert(split(7, label)), "collision at label {label}");
        }
    }

    #[test]
    fn split_differs_from_parent() {
        for parent in [0u64, 1, 42, u64::MAX] {
            assert_ne!(split(parent, 0), parent);
        }
    }

    #[test]
    fn substream_matches_manual_composition() {
        let mut a = substream(99, 3);
        let mut b = seeded(split(99, 3));
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn uniform01_in_range() {
        let mut rng = seeded(5);
        for _ in 0..1000 {
            let u = uniform01(&mut rng);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
