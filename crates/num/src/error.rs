//! Error type shared by the numeric routines.

use std::fmt;

/// Error returned by numeric routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumError {
    /// A distribution or solver was constructed with an invalid parameter.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the constraint that was violated.
        reason: String,
    },
    /// A bracketing root finder was given an interval that does not bracket
    /// a sign change.
    NoBracket {
        /// Lower end of the interval.
        lo: f64,
        /// Upper end of the interval.
        hi: f64,
    },
    /// An iterative method failed to converge within its iteration budget.
    NoConvergence {
        /// Name of the method that failed.
        method: &'static str,
        /// Number of iterations performed.
        iterations: usize,
    },
    /// A dimension mismatch between linear-algebra operands.
    DimensionMismatch {
        /// Description of the expected shape.
        expected: String,
        /// Description of the shape that was found.
        found: String,
    },
    /// The input slice was empty where at least one element is required.
    EmptyInput,
}

impl fmt::Display for NumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            NumError::NoBracket { lo, hi } => {
                write!(f, "interval [{lo}, {hi}] does not bracket a root")
            }
            NumError::NoConvergence { method, iterations } => {
                write!(f, "{method} did not converge after {iterations} iterations")
            }
            NumError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            NumError::EmptyInput => write!(f, "input must contain at least one element"),
        }
    }
}

impl std::error::Error for NumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs = [
            NumError::InvalidParameter {
                name: "sigma",
                reason: "must be positive".into(),
            },
            NumError::NoBracket { lo: 0.0, hi: 1.0 },
            NumError::NoConvergence {
                method: "newton",
                iterations: 100,
            },
            NumError::DimensionMismatch {
                expected: "3x2".into(),
                found: "2x3".into(),
            },
            NumError::EmptyInput,
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NumError>();
    }
}
