//! Descriptive statistics for the experiment harness.
//!
//! Experiments in the paper are averaged over 20 independent runs and report
//! means and variability; the bound-fidelity ablation additionally needs
//! rank correlation between the bound-predicted objective and the simulated
//! loss.

use crate::error::NumError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn mean(xs: &[f64]) -> Result<f64, NumError> {
    if xs.is_empty() {
        return Err(NumError::EmptyInput);
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn variance(xs: &[f64]) -> Result<f64, NumError> {
    let m = mean(xs)?;
    Ok(xs.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64)
}

/// Sample standard deviation (divides by `n − 1`; 0 for a single sample).
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn std_dev(xs: &[f64]) -> Result<f64, NumError> {
    if xs.is_empty() {
        return Err(NumError::EmptyInput);
    }
    if xs.len() == 1 {
        return Ok(0.0);
    }
    let m = mean(xs)?;
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    Ok((ss / (xs.len() - 1) as f64).sqrt())
}

/// Linear-interpolation quantile for `p` in `[0, 1]`.
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice and
/// [`NumError::InvalidParameter`] for `p` outside `[0, 1]`.
pub fn quantile(xs: &[f64], p: f64) -> Result<f64, NumError> {
    if xs.is_empty() {
        return Err(NumError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(NumError::InvalidParameter {
            name: "p",
            reason: format!("must lie in [0, 1], got {p}"),
        });
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = p * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (the 0.5 quantile).
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn median(xs: &[f64]) -> Result<f64, NumError> {
    quantile(xs, 0.5)
}

/// Pearson correlation coefficient of paired samples.
///
/// # Errors
///
/// Returns [`NumError::DimensionMismatch`] for unequal lengths,
/// [`NumError::EmptyInput`] for empty input, and
/// [`NumError::InvalidParameter`] if either series is constant (undefined
/// correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    if xs.len() != ys.len() {
        return Err(NumError::DimensionMismatch {
            expected: format!("ys of length {}", xs.len()),
            found: format!("length {}", ys.len()),
        });
    }
    if xs.is_empty() {
        return Err(NumError::EmptyInput);
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(NumError::InvalidParameter {
            name: "series",
            reason: "correlation undefined for a constant series".into(),
        });
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation of paired samples (ties get average ranks).
///
/// # Errors
///
/// Same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64, NumError> {
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Average ranks of a sample (1-based; ties share the mean rank).
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in ranks input"));
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Mean together with a normal-approximation 95% confidence half-width
/// (`1.96 · s/√n`).
///
/// # Errors
///
/// Returns [`NumError::EmptyInput`] for an empty slice.
pub fn mean_ci95(xs: &[f64]) -> Result<(f64, f64), NumError> {
    let m = mean(xs)?;
    let s = std_dev(xs)?;
    Ok((m, 1.96 * s / (xs.len() as f64).sqrt()))
}

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarise a sample.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::EmptyInput`] for an empty slice.
    pub fn of(xs: &[f64]) -> Result<Self, NumError> {
        if xs.is_empty() {
            return Err(NumError::EmptyInput);
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Ok(Self {
            n: xs.len(),
            mean: mean(xs)?,
            std_dev: std_dev(xs)?,
            min,
            median: median(xs)?,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs).unwrap(), 5.0);
        assert_eq!(variance(&xs).unwrap(), 4.0);
        assert!((std_dev(&xs).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(NumError::EmptyInput));
        assert_eq!(variance(&[]), Err(NumError::EmptyInput));
        assert_eq!(std_dev(&[]), Err(NumError::EmptyInput));
        assert_eq!(median(&[]), Err(NumError::EmptyInput));
        assert!(Summary::of(&[]).is_err());
    }

    #[test]
    fn single_sample() {
        assert_eq!(std_dev(&[3.0]).unwrap(), 0.0);
        assert_eq!(median(&[3.0]).unwrap(), 3.0);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!(quantile(&xs, 1.5).is_err());
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let zs: Vec<f64> = xs.iter().map(|&x| -x).collect();
        assert!((pearson(&xs, &zs).unwrap() + 1.0).abs() < 1e-12);
        assert!(pearson(&xs, &[1.0, 1.0, 1.0, 1.0]).is_err());
        assert!(pearson(&xs, &[1.0]).is_err());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear relation has Spearman 1.
        let xs = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|&x| x.exp()).collect();
        assert!((spearman(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..1000).map(|i| (i % 10) as f64).collect();
        let (_, wa) = mean_ci95(&a).unwrap();
        let (_, wb) = mean_ci95(&b).unwrap();
        assert!(wb < wa);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[3.0, 1.0, 2.0]).unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
        assert_eq!(s.mean, 2.0);
    }
}
