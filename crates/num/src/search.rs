//! One-dimensional minimisation: golden-section and fixed-step grid search.
//!
//! The paper solves the server's non-convex Stage-I problem P1'' by fixing
//! the auxiliary variable `M = Σ c_n q_n²`, solving the then-convex inner
//! problem, and running "a linear search method with a fixed step-size ε₀"
//! over `M`. [`grid_search_min`] is that linear search; [`golden_section_min`]
//! is the refinement we use to polish the best grid cell.

use crate::error::NumError;

/// Result of a one-dimensional search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchResult {
    /// Argument at which the minimum was found.
    pub argmin: f64,
    /// Objective value at [`SearchResult::argmin`].
    pub min_value: f64,
    /// Number of objective evaluations performed.
    pub evaluations: usize,
}

/// Minimise `f` over `[lo, hi]` by evaluating on a fixed-step grid with step
/// `step` (the paper's ε₀), returning the best grid point.
///
/// Points where `f` returns NaN are skipped, which lets callers encode
/// infeasibility as NaN.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] if the interval or step is invalid,
/// and [`NumError::NoConvergence`] if every evaluation was NaN.
pub fn grid_search_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    step: f64,
) -> Result<SearchResult, NumError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
        });
    }
    if !step.is_finite() || step <= 0.0 {
        return Err(NumError::InvalidParameter {
            name: "step",
            reason: format!("must be finite and positive, got {step}"),
        });
    }
    let mut best: Option<(f64, f64)> = None;
    let mut x = lo;
    let mut evaluations = 0;
    loop {
        let fx = f(x);
        evaluations += 1;
        if fx.is_finite() {
            best = match best {
                Some((bx, bv)) if bv <= fx => Some((bx, bv)),
                _ => Some((x, fx)),
            };
        }
        if x >= hi {
            break;
        }
        x = (x + step).min(hi);
    }
    match best {
        Some((argmin, min_value)) => Ok(SearchResult {
            argmin,
            min_value,
            evaluations,
        }),
        None => Err(NumError::NoConvergence {
            method: "grid_search_min",
            iterations: evaluations,
        }),
    }
}

/// Minimise a unimodal `f` over `[lo, hi]` by golden-section search.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] if the interval is invalid.
pub fn golden_section_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<SearchResult, NumError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
        });
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_9;
    let mut a = lo;
    let mut b = hi;
    let mut c = b - INV_PHI * (b - a);
    let mut d = a + INV_PHI * (b - a);
    let mut fc = f(c);
    let mut fd = f(d);
    let mut evaluations = 2;
    while (b - a) > tol && evaluations < 500 {
        if fc <= fd {
            b = d;
            d = c;
            fd = fc;
            c = b - INV_PHI * (b - a);
            fc = f(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + INV_PHI * (b - a);
            fd = f(d);
        }
        evaluations += 1;
    }
    let (argmin, min_value) = if fc <= fd { (c, fc) } else { (d, fd) };
    Ok(SearchResult {
        argmin,
        min_value,
        evaluations,
    })
}

/// Two-phase minimisation: coarse grid pass followed by golden-section
/// refinement around the best grid cell. This is the solver the server uses
/// for the outer `M`-search of Problem P1''.
///
/// # Errors
///
/// Propagates errors from [`grid_search_min`] and [`golden_section_min`].
pub fn refine_search_min<F: FnMut(f64) -> f64>(
    mut f: F,
    lo: f64,
    hi: f64,
    step: f64,
    tol: f64,
) -> Result<SearchResult, NumError> {
    let coarse = grid_search_min(&mut f, lo, hi, step)?;
    let a = (coarse.argmin - step).max(lo);
    let b = (coarse.argmin + step).min(hi);
    let fine = golden_section_min(&mut f, a, b, tol)?;
    let total_evals = coarse.evaluations + fine.evaluations;
    // A NaN-plateau around the grid minimum can make the local refinement
    // worse than the grid point; keep the better of the two.
    if fine.min_value.is_finite() && fine.min_value <= coarse.min_value {
        Ok(SearchResult {
            evaluations: total_evals,
            ..fine
        })
    } else {
        Ok(SearchResult {
            evaluations: total_evals,
            ..coarse
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_finds_parabola_minimum() {
        let r = grid_search_min(|x| (x - 3.0) * (x - 3.0), 0.0, 10.0, 0.1).unwrap();
        assert!((r.argmin - 3.0).abs() < 0.051, "argmin {}", r.argmin);
    }

    #[test]
    fn grid_skips_nan_regions() {
        let r = grid_search_min(
            |x| if x < 2.0 { f64::NAN } else { (x - 5.0).powi(2) },
            0.0,
            10.0,
            0.5,
        )
        .unwrap();
        assert!((r.argmin - 5.0).abs() < 0.26);
    }

    #[test]
    fn grid_all_nan_is_error() {
        assert!(matches!(
            grid_search_min(|_| f64::NAN, 0.0, 1.0, 0.1),
            Err(NumError::NoConvergence { .. })
        ));
    }

    #[test]
    fn grid_single_point_interval() {
        let r = grid_search_min(|x| x * x, 2.0, 2.0, 0.5).unwrap();
        assert_eq!(r.argmin, 2.0);
        assert_eq!(r.min_value, 4.0);
    }

    #[test]
    fn grid_rejects_bad_inputs() {
        assert!(grid_search_min(|x| x, 1.0, 0.0, 0.1).is_err());
        assert!(grid_search_min(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(grid_search_min(|x| x, 0.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn golden_section_high_precision() {
        let r = golden_section_min(|x| (x - std::f64::consts::E).powi(2), 0.0, 10.0, 1e-9).unwrap();
        assert!((r.argmin - std::f64::consts::E).abs() < 1e-7);
    }

    #[test]
    fn golden_section_picks_boundary_minimum() {
        let r = golden_section_min(|x| x, 2.0, 5.0, 1e-9).unwrap();
        assert!((r.argmin - 2.0).abs() < 1e-6);
    }

    #[test]
    fn refine_beats_coarse_grid() {
        let f = |x: f64| (x - 3.123_456).powi(2);
        let coarse = grid_search_min(f, 0.0, 10.0, 0.5).unwrap();
        let refined = refine_search_min(f, 0.0, 10.0, 0.5, 1e-10).unwrap();
        assert!(refined.min_value <= coarse.min_value);
        assert!((refined.argmin - 3.123_456).abs() < 1e-6);
    }
}
