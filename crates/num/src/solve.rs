//! Convex solvers: projected gradient descent on a box, quadratic-penalty
//! treatment of coupling constraints, and monotone bisection.
//!
//! The paper solves the inner problem of P1'' "via a convex optimization
//! tool, e.g., CVX". We replace CVX with a projected-gradient method plus a
//! quadratic-penalty continuation for the two coupling constraints (the
//! budget inequality and the `Σ c_n q_n² = M` equality); the outer
//! budget-tightening searches (Lemma 3) use [`bisect_monotone`].

use crate::error::NumError;

/// Box constraints `lo[i] <= x[i] <= hi[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoxConstraints {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl BoxConstraints {
    /// Create box constraints from per-coordinate bounds.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::DimensionMismatch`] if the vectors differ in
    /// length and [`NumError::InvalidParameter`] if any `lo[i] > hi[i]` or a
    /// bound is NaN.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self, NumError> {
        if lo.len() != hi.len() {
            return Err(NumError::DimensionMismatch {
                expected: format!("hi of length {}", lo.len()),
                found: format!("length {}", hi.len()),
            });
        }
        for (i, (&l, &h)) in lo.iter().zip(&hi).enumerate() {
            if l.is_nan() || h.is_nan() || l > h {
                return Err(NumError::InvalidParameter {
                    name: "bounds",
                    reason: format!("need lo <= hi at index {i}, got [{l}, {h}]"),
                });
            }
        }
        Ok(Self { lo, hi })
    }

    /// Uniform box `[lo, hi]^dim`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BoxConstraints::new`].
    pub fn uniform(dim: usize, lo: f64, hi: f64) -> Result<Self, NumError> {
        Self::new(vec![lo; dim], vec![hi; dim])
    }

    /// Dimension of the box.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Project `x` onto the box in place.
    pub fn project(&self, x: &mut [f64]) {
        for ((xi, &l), &h) in x.iter_mut().zip(&self.lo).zip(&self.hi) {
            *xi = xi.clamp(l, h);
        }
    }

    /// Whether `x` lies in the box up to tolerance `tol`.
    pub fn contains(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.dim()
            && x.iter()
                .zip(&self.lo)
                .zip(&self.hi)
                .all(|((&xi, &l), &h)| xi >= l - tol && xi <= h + tol)
    }

    /// Midpoint of the box, a canonical feasible starting iterate.
    pub fn midpoint(&self) -> Vec<f64> {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(&l, &h)| 0.5 * (l + h))
            .collect()
    }
}

/// Configuration for [`projected_gradient`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdConfig {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// Initial step size tried by the backtracking line search.
    pub initial_step: f64,
    /// Multiplicative backtracking factor in `(0, 1)`.
    pub backtrack: f64,
    /// Convergence tolerance on the projected-gradient step norm.
    pub tol: f64,
}

impl Default for PgdConfig {
    fn default() -> Self {
        Self {
            max_iter: 2_000,
            initial_step: 1.0,
            backtrack: 0.5,
            tol: 1e-10,
        }
    }
}

/// Outcome of a projected-gradient run.
#[derive(Debug, Clone, PartialEq)]
pub struct PgdResult {
    /// Final iterate.
    pub x: Vec<f64>,
    /// Objective value at the final iterate.
    pub value: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether the step-norm tolerance was reached.
    pub converged: bool,
}

/// Minimise a smooth objective over a box by projected gradient descent with
/// Armijo backtracking.
///
/// `fg` evaluates the objective and writes the gradient into its second
/// argument. Convergence to the global minimum is guaranteed for convex
/// objectives; for non-convex ones a stationary point is returned.
///
/// # Errors
///
/// Returns [`NumError::DimensionMismatch`] when `x0` does not match the box
/// dimension and [`NumError::InvalidParameter`] for invalid configuration.
pub fn projected_gradient<F>(
    mut fg: F,
    x0: &[f64],
    bounds: &BoxConstraints,
    config: &PgdConfig,
) -> Result<PgdResult, NumError>
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    if x0.len() != bounds.dim() {
        return Err(NumError::DimensionMismatch {
            expected: format!("x0 of length {}", bounds.dim()),
            found: format!("length {}", x0.len()),
        });
    }
    if !(config.backtrack > 0.0 && config.backtrack < 1.0) {
        return Err(NumError::InvalidParameter {
            name: "backtrack",
            reason: format!("must lie in (0, 1), got {}", config.backtrack),
        });
    }
    if !(config.initial_step > 0.0 && config.initial_step.is_finite()) {
        return Err(NumError::InvalidParameter {
            name: "initial_step",
            reason: format!("must be finite and positive, got {}", config.initial_step),
        });
    }
    let n = x0.len();
    let mut x = x0.to_vec();
    bounds.project(&mut x);
    let mut grad = vec![0.0; n];
    let mut value = fg(&x, &mut grad);
    let mut step = config.initial_step;
    let mut iterations = 0;
    let mut converged = false;
    // Scratch buffers reused across iterations and backtracking trials, so
    // one PGD step allocates nothing proportional to the dimension.
    let mut candidate = vec![0.0; n];
    let mut cand_grad = vec![0.0; n];

    while iterations < config.max_iter {
        iterations += 1;
        // Backtracking: find a step giving sufficient decrease.
        let mut accepted = false;
        let mut trial_step = step;
        for _ in 0..60 {
            for i in 0..n {
                candidate[i] = x[i] - trial_step * grad[i];
            }
            bounds.project(&mut candidate);
            let cand_value = fg(&candidate, &mut cand_grad);
            // Armijo condition w.r.t. the projected step.
            let mut decrease = 0.0;
            for i in 0..n {
                let d = candidate[i] - x[i];
                decrease += grad[i] * d + 0.5 / trial_step.max(1e-300) * d * d;
            }
            if cand_value.is_finite() && cand_value <= value + 1e-4 * decrease.min(0.0) {
                let step_norm: f64 = candidate
                    .iter()
                    .zip(&x)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                x.copy_from_slice(&candidate);
                std::mem::swap(&mut grad, &mut cand_grad);
                value = cand_value;
                // Allow the step to grow back.
                step = (trial_step / config.backtrack).min(config.initial_step * 1e6);
                accepted = true;
                if step_norm < config.tol {
                    converged = true;
                }
                break;
            }
            trial_step *= config.backtrack;
        }
        if !accepted || converged {
            converged = converged || !accepted;
            break;
        }
    }
    Ok(PgdResult {
        x,
        value,
        iterations,
        converged,
    })
}

/// A coupling constraint handled by quadratic penalty in
/// [`penalty_minimize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintKind {
    /// `g(x) = 0`.
    Equality,
    /// `g(x) <= 0`.
    Inequality,
}

/// A boxed constraint callback for [`penalty_minimize`]: evaluates `g(x)`
/// and writes `∇g(x)` into its second argument.
pub type ConstraintFn<'a> = Box<dyn FnMut(&[f64], &mut [f64]) -> f64 + 'a>;

/// Minimise `f` over a box subject to scalar coupling constraints, by
/// quadratic-penalty continuation around [`projected_gradient`].
///
/// Each constraint is a closure returning `(g(x), ∇g(x))`; the penalty
/// weight is escalated geometrically until the worst violation falls below
/// `feas_tol`.
///
/// # Errors
///
/// Propagates [`projected_gradient`] errors; returns
/// [`NumError::NoConvergence`] if feasibility is not reached.
pub fn penalty_minimize<F>(
    mut fg: F,
    constraints: &mut [(ConstraintKind, ConstraintFn<'_>)],
    x0: &[f64],
    bounds: &BoxConstraints,
    config: &PgdConfig,
    feas_tol: f64,
) -> Result<PgdResult, NumError>
where
    F: FnMut(&[f64], &mut [f64]) -> f64,
{
    let n = bounds.dim();
    let mut x = x0.to_vec();
    let mut rho = 10.0;
    let mut last = None;
    for _round in 0..18 {
        let mut cons_grad = vec![0.0; n];
        let result = {
            let constraints = &mut *constraints;
            let fg = &mut fg;
            projected_gradient(
                |y: &[f64], grad: &mut [f64]| {
                    let mut value = fg(y, grad);
                    for (kind, c) in constraints.iter_mut() {
                        cons_grad.iter_mut().for_each(|g| *g = 0.0);
                        let g = c(y, &mut cons_grad);
                        let active = match kind {
                            ConstraintKind::Equality => true,
                            ConstraintKind::Inequality => g > 0.0,
                        };
                        if active {
                            value += 0.5 * rho * g * g;
                            for i in 0..n {
                                grad[i] += rho * g * cons_grad[i];
                            }
                        }
                    }
                    value
                },
                &x,
                bounds,
                config,
            )?
        };
        x.copy_from_slice(&result.x);
        // Measure raw violation.
        let mut worst: f64 = 0.0;
        let mut scratch = vec![0.0; n];
        for (kind, c) in constraints.iter_mut() {
            let g = c(&x, &mut scratch);
            let v = match kind {
                ConstraintKind::Equality => g.abs(),
                ConstraintKind::Inequality => g.max(0.0),
            };
            worst = worst.max(v);
        }
        last = Some(result);
        if worst <= feas_tol {
            return Ok(last.unwrap());
        }
        rho *= 4.0;
    }
    match last {
        Some(r) => Ok(r), // Best effort: caller can check feasibility.
        None => Err(NumError::NoConvergence {
            method: "penalty_minimize",
            iterations: 0,
        }),
    }
}

/// Find `x` in `[lo, hi]` with `f(x) = target` for a nondecreasing `f`,
/// clamping at the endpoints.
///
/// Returns `lo` if `f(lo) >= target` and `hi` if `f(hi) <= target`, which is
/// the behaviour the budget-tightening searches want: if even the cheapest
/// admissible choice overshoots the budget the search saturates at the
/// boundary instead of failing.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] for an invalid interval.
pub fn bisect_monotone<F: FnMut(f64) -> f64>(
    f: F,
    target: f64,
    lo: f64,
    hi: f64,
    tol: f64,
) -> Result<f64, NumError> {
    bisect_monotone_with(f, target, lo, hi, tol, 200)
}

/// [`bisect_monotone`] with an explicit iteration budget.
///
/// Each iteration halves the bracket, so `max_iters` bounds the number of
/// `f` evaluations after the two endpoint probes; the midpoint of the final
/// bracket is returned if the tolerance is not reached first.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] for an invalid interval or a zero
/// iteration budget.
pub fn bisect_monotone_with<F: FnMut(f64) -> f64>(
    f: F,
    target: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
) -> Result<f64, NumError> {
    Ok(bisect_monotone_instrumented(f, target, lo, hi, tol, max_iters, None)?.0)
}

/// Statistics of one monotone-bisection run — what the warm-start contract
/// of the pricing service is measured by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BisectStats {
    /// Midpoint bisection steps performed (the classic iteration count).
    pub iterations: usize,
    /// Distinct evaluations of `f`, including the two endpoint probes and
    /// any warm-start verification probes.
    pub evaluations: usize,
    /// Dyadic depth of the bracket the bisection started from: `0` for a
    /// cold start, `d > 0` when a warm-start hint let the search skip the
    /// first `d` halvings.
    pub start_depth: usize,
}

/// Evaluate `f(x)` through a tiny bit-keyed memo so warm-start verification
/// probes and the subsequent bisection never pay for the same point twice.
fn memo_eval<F: FnMut(f64) -> f64>(
    f: &mut F,
    cache: &mut Vec<(u64, f64)>,
    stats: &mut BisectStats,
    x: f64,
) -> f64 {
    let bits = x.to_bits();
    if let Some(&(_, v)) = cache.iter().find(|&&(b, _)| b == bits) {
        return v;
    }
    stats.evaluations += 1;
    let v = f(x);
    cache.push((bits, v));
    v
}

/// [`bisect_monotone_with`], instrumented and optionally warm-started.
///
/// `hint` is a guess at the root — typically the previous solution of a
/// perturbed instance (the pricing service passes the last solve's `1/λ*`).
/// The search descends the dyadic bracket tree of `[lo, hi]` toward the
/// hint *without evaluating `f`*, then binary-searches over depth for the
/// deepest bracket that still contains the root (each containment test is
/// at most two memoised evaluations of `f`), and runs the ordinary
/// bisection from there.
///
/// **Bit-identity contract:** because every bracket reachable this way is a
/// bracket the cold bisection itself would reach — the depth-`d` dyadic
/// interval `[a, b]` with `f(a) < target ≤ f(b)` is unique for a monotone
/// `f` — the returned root is bit-identical to the cold
/// [`bisect_monotone_with`] result whenever the tolerance (rather than the
/// iteration cap) terminates the search, for *any* hint. The cap is also
/// mirrored: a warm start at depth `d` leaves `max_iters − d` iterations,
/// so even cap-terminated runs agree. A useless hint costs at most
/// `2·log₂(max_iters)` extra evaluations; a good one skips
/// `start_depth` iterations.
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] for an invalid interval or a zero
/// iteration budget.
pub fn bisect_monotone_instrumented<F: FnMut(f64) -> f64>(
    mut f: F,
    target: f64,
    lo: f64,
    hi: f64,
    tol: f64,
    max_iters: usize,
    hint: Option<f64>,
) -> Result<(f64, BisectStats), NumError> {
    if !(lo.is_finite() && hi.is_finite()) || lo > hi {
        return Err(NumError::InvalidParameter {
            name: "interval",
            reason: format!("need finite lo <= hi, got [{lo}, {hi}]"),
        });
    }
    if max_iters == 0 {
        return Err(NumError::InvalidParameter {
            name: "max_iters",
            reason: "need at least one bisection iteration".into(),
        });
    }
    let mut stats = BisectStats {
        iterations: 0,
        evaluations: 1,
        start_depth: 0,
    };
    let flo = f(lo);
    if flo >= target {
        return Ok((lo, stats));
    }
    stats.evaluations += 1;
    let fhi = f(hi);
    if fhi <= target {
        return Ok((hi, stats));
    }

    let mut a = lo;
    let mut b = hi;
    let mut cache: Vec<(u64, f64)> = Vec::new();
    let warm = hint.is_some_and(|h| h.is_finite() && h > lo && h < hi);
    if warm {
        let h = hint.expect("checked above");
        cache.push((lo.to_bits(), flo));
        cache.push((hi.to_bits(), fhi));
        // The chain of dyadic brackets toward the hint; chain[d] is the
        // depth-d bracket. Built with the exact arithmetic of the cold
        // loop (`mid = 0.5 * (a + b)`), so its intervals are the cold
        // bisection's own candidate brackets.
        //
        // The descent stops at the f64 resolution of the *hint*: a bracket
        // narrower than one ulp of `h` is below the precision the hint was
        // computed at, so verifying containment there spends probes
        // without information — on heavy-tailed instances (bracket spans
        // of 50+ decades) the descent toward a near-zero hint would
        // otherwise stagnate, pushing `max_iters` sub-resolution brackets
        // for the containment search to probe. Starting shallower is
        // always safe: every chain prefix is cold-reachable.
        let hint_resolution = f64::EPSILON * h.abs();
        let mut chain: Vec<(f64, f64)> = vec![(lo, hi)];
        let (mut ca, mut cb) = (lo, hi);
        while chain.len() <= max_iters && (cb - ca) >= tol && (cb - ca) > hint_resolution {
            let mid = 0.5 * (ca + cb);
            if mid <= ca || mid >= cb {
                break; // f64 resolution exhausted
            }
            if h < mid {
                cb = mid;
            } else {
                ca = mid;
            }
            chain.push((ca, cb));
        }
        // Containment — f(a_d) < target && f(b_d) >= target — is a prefix
        // property of the chain (endpoints move monotonically toward the
        // hint and f is monotone), so the deepest valid start depth is
        // found by binary search over depth. Depth 0 is known valid from
        // the endpoint probes above.
        let (mut lo_d, mut hi_d) = (0usize, chain.len() - 1);
        while lo_d < hi_d {
            let m = lo_d + (hi_d - lo_d).div_ceil(2);
            let (am, bm) = chain[m];
            let contains = memo_eval(&mut f, &mut cache, &mut stats, am) < target
                && memo_eval(&mut f, &mut cache, &mut stats, bm) >= target;
            if contains {
                lo_d = m;
            } else {
                hi_d = m - 1;
            }
        }
        stats.start_depth = lo_d;
        (a, b) = chain[lo_d];
    }

    // A warm start at depth d has d of the cap's halvings already behind
    // it, so cap-terminated runs stop at the same depth as a cold run.
    for _ in 0..(max_iters - stats.start_depth) {
        let mid = 0.5 * (a + b);
        if (b - a) < tol || mid <= a || mid >= b {
            // Tolerance reached — or f64 resolution exhausted, where the
            // midpoint stops moving and further iterations cannot change
            // the bracket (the monotone invariant pins the branch), so
            // returning now is bit-identical to running out the cap.
            return Ok((mid, stats));
        }
        stats.iterations += 1;
        let fmid = if warm {
            memo_eval(&mut f, &mut cache, &mut stats, mid)
        } else {
            stats.evaluations += 1;
            f(mid)
        };
        if fmid < target {
            a = mid;
        } else {
            b = mid;
        }
    }
    Ok((0.5 * (a + b), stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_projection_clamps() {
        let b = BoxConstraints::uniform(3, 0.0, 1.0).unwrap();
        let mut x = vec![-1.0, 0.5, 2.0];
        b.project(&mut x);
        assert_eq!(x, vec![0.0, 0.5, 1.0]);
        assert!(b.contains(&x, 0.0));
    }

    #[test]
    fn box_rejects_inverted_bounds() {
        assert!(BoxConstraints::new(vec![1.0], vec![0.0]).is_err());
        assert!(BoxConstraints::new(vec![0.0, 0.0], vec![1.0]).is_err());
        assert!(BoxConstraints::new(vec![f64::NAN], vec![1.0]).is_err());
    }

    #[test]
    fn pgd_solves_quadratic() {
        // min ||x - t||^2 over [0,1]^3 with t = (0.3, -2, 5) -> (0.3, 0, 1).
        let t = [0.3, -2.0, 5.0];
        let b = BoxConstraints::uniform(3, 0.0, 1.0).unwrap();
        let r = projected_gradient(
            |x, g| {
                let mut v = 0.0;
                for i in 0..3 {
                    let d = x[i] - t[i];
                    g[i] = 2.0 * d;
                    v += d * d;
                }
                v
            },
            &[0.5, 0.5, 0.5],
            &b,
            &PgdConfig::default(),
        )
        .unwrap();
        assert!((r.x[0] - 0.3).abs() < 1e-6);
        assert!(r.x[1].abs() < 1e-6);
        assert!((r.x[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn pgd_handles_ill_conditioned_quadratic() {
        // min x'Dx with D = diag(1, 1000) from a far start.
        let b = BoxConstraints::uniform(2, -10.0, 10.0).unwrap();
        let r = projected_gradient(
            |x, g| {
                g[0] = 2.0 * x[0];
                g[1] = 2000.0 * x[1];
                x[0] * x[0] + 1000.0 * x[1] * x[1]
            },
            &[9.0, 9.0],
            &b,
            &PgdConfig {
                max_iter: 20_000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.value < 1e-8, "value {}", r.value);
    }

    #[test]
    fn pgd_dimension_mismatch() {
        let b = BoxConstraints::uniform(2, 0.0, 1.0).unwrap();
        assert!(projected_gradient(|_, _| 0.0, &[0.0], &b, &PgdConfig::default()).is_err());
    }

    #[test]
    fn pgd_rejects_bad_config() {
        let b = BoxConstraints::uniform(1, 0.0, 1.0).unwrap();
        let bad = PgdConfig {
            backtrack: 1.5,
            ..Default::default()
        };
        assert!(projected_gradient(|_, _| 0.0, &[0.5], &b, &bad).is_err());
    }

    #[test]
    fn penalty_enforces_equality() {
        // min sum((x-2)^2) s.t. sum(x) = 1, x in [0, 5]^2 -> x = (0.5, 0.5).
        let b = BoxConstraints::uniform(2, 0.0, 5.0).unwrap();
        let mut constraints: Vec<(ConstraintKind, ConstraintFn<'_>)> = vec![(
            ConstraintKind::Equality,
            Box::new(|x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                g[1] = 1.0;
                x[0] + x[1] - 1.0
            }),
        )];
        let r = penalty_minimize(
            |x, g| {
                let mut v = 0.0;
                for i in 0..2 {
                    let d = x[i] - 2.0;
                    g[i] = 2.0 * d;
                    v += d * d;
                }
                v
            },
            &mut constraints,
            &[2.0, 2.0],
            &b,
            &PgdConfig::default(),
            1e-6,
        )
        .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 0.5).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn penalty_inactive_inequality_is_free() {
        // Constraint x0 <= 10 never binds.
        let b = BoxConstraints::uniform(1, -5.0, 5.0).unwrap();
        let mut constraints: Vec<(ConstraintKind, ConstraintFn<'_>)> = vec![(
            ConstraintKind::Inequality,
            Box::new(|x: &[f64], g: &mut [f64]| {
                g[0] = 1.0;
                x[0] - 10.0
            }),
        )];
        let r = penalty_minimize(
            |x, g| {
                g[0] = 2.0 * (x[0] - 1.0);
                (x[0] - 1.0) * (x[0] - 1.0)
            },
            &mut constraints,
            &[0.0],
            &b,
            &PgdConfig::default(),
            1e-8,
        )
        .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn bisect_monotone_hits_target() {
        let x = bisect_monotone(|x| x * x * x, 8.0, 0.0, 10.0, 1e-12).unwrap();
        assert!((x - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bisect_monotone_clamps_at_boundaries() {
        assert_eq!(bisect_monotone(|x| x, -5.0, 0.0, 1.0, 1e-12).unwrap(), 0.0);
        assert_eq!(bisect_monotone(|x| x, 5.0, 0.0, 1.0, 1e-12).unwrap(), 1.0);
    }

    #[test]
    fn bisect_monotone_rejects_bad_interval() {
        assert!(bisect_monotone(|x| x, 0.5, 1.0, 0.0, 1e-12).is_err());
        assert!(bisect_monotone_instrumented(|x| x, 0.5, 0.0, 1.0, 1e-12, 0, None).is_err());
    }

    /// A family of strictly increasing test functions for the warm-start
    /// identity checks.
    fn monotone_fn(k: usize) -> impl Fn(f64) -> f64 {
        move |x: f64| match k {
            0 => x * x * x,
            1 => x.exp_m1() + 0.25 * x,
            2 => x / (1.0 + x.abs()) + 1e-3 * x,
            _ => x.atan() + 0.5 * x,
        }
    }

    #[test]
    fn hinted_bisection_is_bit_identical_to_cold_for_any_hint() {
        for k in 0..4 {
            let f = monotone_fn(k);
            for &target in &[0.1, 1.0, 4.7, 7.99] {
                let cold = bisect_monotone_with(&f, target, -3.0, 10.0, 1e-12, 200).unwrap();
                for &hint in &[
                    f64::NAN,
                    f64::INFINITY,
                    -3.0,
                    10.0,
                    -2.999,
                    9.999,
                    cold,
                    cold + 1e-9,
                    cold - 0.5,
                    cold + 2.0,
                    0.0,
                ] {
                    let (warm, stats) = bisect_monotone_instrumented(
                        &f,
                        target,
                        -3.0,
                        10.0,
                        1e-12,
                        200,
                        Some(hint),
                    )
                    .unwrap();
                    assert_eq!(
                        warm.to_bits(),
                        cold.to_bits(),
                        "k={k} target={target} hint={hint}: {warm} vs {cold}"
                    );
                    // The warm start can only remove halvings, never add.
                    let (_, cold_stats) =
                        bisect_monotone_instrumented(&f, target, -3.0, 10.0, 1e-12, 200, None)
                            .unwrap();
                    assert!(
                        stats.iterations <= cold_stats.iterations,
                        "hint={hint}: warm {} > cold {} iterations",
                        stats.iterations,
                        cold_stats.iterations
                    );
                }
            }
        }
    }

    #[test]
    fn good_hints_skip_deep_into_the_bracket_tree() {
        let f = |x: f64| x * x * x;
        let cold = bisect_monotone_with(f, 8.0, 0.0, 10.0, 1e-12, 200).unwrap();
        let (warm, stats) =
            bisect_monotone_instrumented(f, 8.0, 0.0, 10.0, 1e-12, 200, Some(cold)).unwrap();
        assert_eq!(warm.to_bits(), cold.to_bits());
        assert!(
            stats.start_depth > 20,
            "exact hint should verify deep: depth {}",
            stats.start_depth
        );
        let (_, cold_stats) =
            bisect_monotone_instrumented(f, 8.0, 0.0, 10.0, 1e-12, 200, None).unwrap();
        assert!(stats.iterations < cold_stats.iterations / 2);
        assert!(stats.evaluations < cold_stats.evaluations);
    }

    #[test]
    fn hinted_bisection_respects_endpoint_clamps() {
        // Clamping at the endpoints ignores the hint entirely.
        let (x, s) =
            bisect_monotone_instrumented(|x| x, -5.0, 0.0, 1.0, 1e-12, 200, Some(0.5)).unwrap();
        assert_eq!(x, 0.0);
        assert_eq!(s.evaluations, 1);
        let (x, _) =
            bisect_monotone_instrumented(|x| x, 5.0, 0.0, 1.0, 1e-12, 200, Some(0.5)).unwrap();
        assert_eq!(x, 1.0);
    }

    #[test]
    fn hinted_bisection_agrees_under_a_binding_iteration_cap() {
        // With the cap (not the tolerance) terminating the search, a warm
        // start still stops at the same dyadic depth as a cold run.
        let f = |x: f64| x * x * x;
        let cold = bisect_monotone_with(f, 8.0, 0.0, 10.0, 1e-30, 17).unwrap();
        for &hint in &[1.9, 2.0, 2.2, 7.5] {
            let (warm, _) =
                bisect_monotone_instrumented(f, 8.0, 0.0, 10.0, 1e-30, 17, Some(hint)).unwrap();
            assert_eq!(warm.to_bits(), cold.to_bits(), "hint {hint}");
        }
    }
}
