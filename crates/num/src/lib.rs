//! # fedfl-num — numeric substrate for the `fedfl` workspace
//!
//! This crate provides every piece of numerical machinery the paper's
//! reproduction needs but that we deliberately do not pull from external
//! numeric crates:
//!
//! * [`rng`] — seeded, splittable random-number-generator helpers so every
//!   experiment in the workspace is reproducible from a single `u64` seed.
//! * [`dist`] — samplers for the Normal, Exponential, LogNormal,
//!   bounded-Pareto (power-law) and Bernoulli distributions used by the
//!   dataset generators and the system-heterogeneity model.
//! * [`roots`] — scalar root finding (bisection, safeguarded Newton) and an
//!   analytic/iterative cubic solver for the client best-response equation
//!   (13) of the paper.
//! * [`search`] — golden-section and grid line search, used for the paper's
//!   one-dimensional search over the auxiliary variable `M` in Problem P1''.
//! * [`solve`] — a projected-gradient solver for smooth convex problems on a
//!   box, plus monotone bisection used for budget-tightening.
//! * [`parallel`] — deterministic chunked parallel reductions and fills:
//!   the per-client passes of the Stage-I solvers run on a worker pool with
//!   a fixed summation tree, so results are bit-identical regardless of
//!   thread count.
//! * [`prefix`] — stable argsort, exclusive prefix sums and a stable
//!   k-way merge of sorted runs: the ordering analogue of [`parallel`]'s
//!   shard-mergeable partial sums, backing the threshold-indexed
//!   active-set fast path.
//! * [`linalg`] — dense vector/matrix operations backing the multinomial
//!   logistic-regression substrate.
//! * [`stats`] — descriptive statistics (mean, variance, quantiles, Pearson
//!   and Spearman correlation) used by the experiment harness.
//!
//! # Example
//!
//! ```
//! use fedfl_num::rng::seeded;
//! use fedfl_num::dist::Normal;
//!
//! let mut rng = seeded(7);
//! let normal = Normal::new(0.0, 1.0).expect("valid parameters");
//! let x = normal.sample(&mut rng);
//! assert!(x.is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod error;
pub mod linalg;
pub mod parallel;
pub mod prefix;
pub mod rng;
pub mod roots;
pub mod search;
pub mod solve;
pub mod stats;

pub use error::NumError;
