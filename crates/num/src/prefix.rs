//! Threshold-order prefix primitives for the active-set fast path.
//!
//! The sub-linear λ-probe index sorts clients by their closed-form
//! entry/saturation thresholds once per rebuild and then answers every
//! probe with a binary search over prefix sums. These primitives carry
//! the same shard-mergeable contract as [`crate::parallel`]'s chunked
//! reductions, but for *orderings* instead of summation trees: a sharded
//! population sorts each contiguous shard segment independently and
//! merges the sorted runs, and [`merge_sorted_runs`] guarantees the
//! merged order is **bit-identical** to a flat stable sort of the
//! concatenated keys. Prefix sums taken in that order are therefore
//! themselves independent of the shard count.
//!
//! All orderings use [`f64::total_cmp`], so ties (including `-0.0` vs
//! `0.0` and NaN payloads) have one well-defined resolution everywhere.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Stable argsort of `keys` under [`f64::total_cmp`].
///
/// Returns the permutation `perm` such that `keys[perm[0]] <=
/// keys[perm[1]] <= ...`, with ties resolved by original position
/// (stability). Indices are `u32` — the index layer caps populations at
/// `u32::MAX` clients, far above the workloads the repo targets.
///
/// # Panics
///
/// Panics if `keys.len()` exceeds `u32::MAX`.
pub fn sort_permutation(keys: &[f64]) -> Vec<u32> {
    assert!(
        u32::try_from(keys.len()).is_ok(),
        "sort_permutation supports at most u32::MAX keys"
    );
    let mut perm: Vec<u32> = (0..keys.len() as u32).collect();
    // `sort_by` is stable, so equal keys keep their original order.
    perm.sort_by(|&a, &b| keys[a as usize].total_cmp(&keys[b as usize]));
    perm
}

/// Gather `values` into the order given by `perm`.
///
/// # Panics
///
/// Panics if any index in `perm` is out of bounds for `values`.
pub fn gather(values: &[f64], perm: &[u32]) -> Vec<f64> {
    perm.iter().map(|&i| values[i as usize]).collect()
}

/// Exclusive left-fold prefix sums: `out[i] = values[0] + ... +
/// values[i-1]`, so `out` has length `values.len() + 1` and
/// `out[j] - out[i]` is the contiguous-range sum over `i..j`.
///
/// The fold order is fixed (ascending index), so two calls over the same
/// slice produce the same bits regardless of how the slice was assembled
/// — the prefix analogue of the fixed summation tree in
/// [`crate::parallel::chunked_sum`].
pub fn exclusive_prefix_sums(values: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(values.len() + 1);
    let mut acc = 0.0f64;
    out.push(acc);
    for &v in values {
        acc += v;
        out.push(acc);
    }
    out
}

/// One position in a merged ordering: which run, and which index within
/// that run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunPos {
    /// Index of the source run in the slice passed to
    /// [`merge_sorted_runs`].
    pub run: u32,
    /// Position within that run.
    pub index: u32,
}

/// An entry in the k-way merge heap, ordered so the heap pops the
/// smallest `(key, run)` first — the leftmost-run-first tie-break that
/// makes the merge of contiguous-segment runs equal a flat stable sort.
struct HeapEntry {
    key: f64,
    run: u32,
    index: u32,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key.total_cmp(&other.key) == Ordering::Equal && self.run == other.run
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: `BinaryHeap` is a max-heap and we want the smallest
        // key (then the leftmost run) on top.
        other
            .key
            .total_cmp(&self.key)
            .then(other.run.cmp(&self.run))
    }
}

/// Stable k-way merge of sorted runs.
///
/// Each run must already be sorted under [`f64::total_cmp`] (as produced
/// by [`sort_permutation`] + [`gather`]). Returns the merged order as
/// [`RunPos`] entries. Ties across runs resolve to the leftmost run, and
/// ties within a run keep the run's order, so if the runs are sorted
/// contiguous segments of one flat array, the merged order is exactly
/// the flat array's stable sort order — the contract that makes
/// per-shard index builds bit-identical to a flat build.
///
/// # Panics
///
/// Panics if there are more than `u32::MAX` runs or any run is longer
/// than `u32::MAX`.
pub fn merge_sorted_runs(runs: &[&[f64]]) -> Vec<RunPos> {
    assert!(
        u32::try_from(runs.len()).is_ok(),
        "merge_sorted_runs supports at most u32::MAX runs"
    );
    let total: usize = runs.iter().map(|r| r.len()).sum();
    let mut out = Vec::with_capacity(total);
    let mut heap = BinaryHeap::with_capacity(runs.len());
    for (run, keys) in runs.iter().enumerate() {
        assert!(
            u32::try_from(keys.len()).is_ok(),
            "merge_sorted_runs supports runs of at most u32::MAX keys"
        );
        if let Some(&key) = keys.first() {
            heap.push(HeapEntry {
                key,
                run: run as u32,
                index: 0,
            });
        }
    }
    while let Some(HeapEntry { run, index, .. }) = heap.pop() {
        out.push(RunPos { run, index });
        let keys = runs[run as usize];
        let next = index as usize + 1;
        if next < keys.len() {
            heap.push(HeapEntry {
                key: keys[next],
                run,
                index: next as u32,
            });
        }
    }
    out
}

/// Count of elements in a sorted slice strictly below `bound` —
/// `partition_point` under [`f64::total_cmp`], exposed so index lookups
/// across the workspace share one tie-break convention.
pub fn count_below(sorted: &[f64], bound: f64) -> usize {
    sorted.partition_point(|&k| k.total_cmp(&bound) == Ordering::Less)
}

/// Count of elements in a sorted slice at or below `bound` (`<=` under
/// [`f64::total_cmp`]).
pub fn count_at_or_below(sorted: &[f64], bound: f64) -> usize {
    sorted.partition_point(|&k| k.total_cmp(&bound) != Ordering::Greater)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_permutation_is_stable_on_ties() {
        let keys = [2.0, 1.0, 2.0, -0.0, 0.0, 1.0];
        let perm = sort_permutation(&keys);
        // total_cmp orders -0.0 before 0.0; equal keys keep input order.
        assert_eq!(perm, vec![3, 4, 1, 5, 0, 2]);
    }

    #[test]
    fn exclusive_prefix_sums_match_a_left_fold() {
        let values = [0.1, 0.2, 0.3, 1e16, 1.0];
        let prefix = exclusive_prefix_sums(&values);
        assert_eq!(prefix.len(), values.len() + 1);
        let mut acc = 0.0f64;
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(prefix[i].to_bits(), acc.to_bits());
            acc += v;
        }
        assert_eq!(prefix[values.len()].to_bits(), acc.to_bits());
    }

    #[test]
    fn merged_runs_reproduce_the_flat_stable_sort() {
        // Keys with cross-run ties: the merge must equal the flat stable
        // sort of the concatenation, position for position.
        let flat = [5.0, 1.0, 3.0, 3.0, 1.0, 2.0, 3.0, 0.5, 1.0, 9.0, 3.0];
        for split in [vec![11], vec![4, 7], vec![3, 3, 3, 2], vec![1; 11]] {
            let mut runs_owned: Vec<Vec<f64>> = Vec::new();
            let mut offsets = vec![0usize];
            let mut start = 0;
            for len in &split {
                let segment = &flat[start..start + len];
                let perm = sort_permutation(segment);
                runs_owned.push(gather(segment, &perm));
                start += len;
                offsets.push(start);
            }
            assert_eq!(start, flat.len());
            let runs: Vec<&[f64]> = runs_owned.iter().map(Vec::as_slice).collect();
            let merged = merge_sorted_runs(&runs);

            // Map every merged position back to its flat index; the
            // sequence must match the flat stable argsort exactly.
            let mut flat_from_merge = Vec::new();
            for pos in &merged {
                let segment = &flat[offsets[pos.run as usize]..offsets[pos.run as usize + 1]];
                let perm = sort_permutation(segment);
                flat_from_merge.push(offsets[pos.run as usize] + perm[pos.index as usize] as usize);
            }
            let flat_perm: Vec<usize> = sort_permutation(&flat)
                .into_iter()
                .map(|i| i as usize)
                .collect();
            assert_eq!(flat_from_merge, flat_perm, "split {split:?}");
        }
    }

    #[test]
    fn merged_prefix_sums_are_split_invariant() {
        // The downstream contract: gathering values in merged order and
        // prefix-summing them gives the same bits for any contiguous
        // split.
        let keys = [4.0, 1.0, 4.0, 2.0, 8.0, 1.0, 0.25, 4.0];
        let values = [0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 6.4, 12.8];
        let flat_perm = sort_permutation(&keys);
        let reference = exclusive_prefix_sums(&gather(&values, &flat_perm));
        for split in [vec![8], vec![3, 5], vec![2, 2, 2, 2]] {
            let mut sorted_keys: Vec<Vec<f64>> = Vec::new();
            let mut sorted_values: Vec<Vec<f64>> = Vec::new();
            let mut start = 0;
            for len in &split {
                let perm = sort_permutation(&keys[start..start + len]);
                sorted_keys.push(gather(&keys[start..start + len], &perm));
                sorted_values.push(gather(&values[start..start + len], &perm));
                start += len;
            }
            let runs: Vec<&[f64]> = sorted_keys.iter().map(Vec::as_slice).collect();
            let merged = merge_sorted_runs(&runs);
            let gathered: Vec<f64> = merged
                .iter()
                .map(|p| sorted_values[p.run as usize][p.index as usize])
                .collect();
            let prefix = exclusive_prefix_sums(&gathered);
            assert_eq!(prefix.len(), reference.len());
            for (a, b) in prefix.iter().zip(&reference) {
                assert_eq!(a.to_bits(), b.to_bits(), "split {split:?}");
            }
        }
    }

    #[test]
    fn count_helpers_agree_with_linear_scans() {
        let sorted = [1.0, 2.0, 2.0, 2.0, 5.0];
        assert_eq!(count_below(&sorted, 2.0), 1);
        assert_eq!(count_at_or_below(&sorted, 2.0), 4);
        assert_eq!(count_below(&sorted, 0.0), 0);
        assert_eq!(count_at_or_below(&sorted, 5.0), 5);
        assert_eq!(count_at_or_below(&sorted, 6.0), 5);
    }

    #[test]
    fn empty_inputs_are_fine() {
        assert!(sort_permutation(&[]).is_empty());
        assert_eq!(exclusive_prefix_sums(&[]), vec![0.0]);
        assert!(merge_sorted_runs(&[]).is_empty());
        let empty: &[f64] = &[];
        assert!(merge_sorted_runs(&[empty, empty]).is_empty());
    }
}
