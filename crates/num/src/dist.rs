//! Probability distributions used across the workspace.
//!
//! The paper's experiments draw the per-client local-cost parameters `c_n`
//! and intrinsic-value parameters `v_n` from Exponential distributions
//! (Section VI-A.2), partition dataset sizes by a power law (bounded
//! Pareto), and the hardware-heterogeneity substitute draws client compute
//! speeds and link rates from LogNormal distributions. All samplers are
//! implemented here from uniform variates so that the workspace needs no
//! external distribution crate.

use crate::error::NumError;
use rand::Rng;

/// Normal (Gaussian) distribution sampled with the Box–Muller transform.
///
/// # Example
///
/// ```
/// use fedfl_num::dist::Normal;
/// use fedfl_num::rng::seeded;
///
/// let n = Normal::new(5.0, 2.0)?;
/// let mut rng = seeded(1);
/// let x = n.sample(&mut rng);
/// assert!(x.is_finite());
/// # Ok::<(), fedfl_num::NumError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Create a Normal distribution with the given mean and standard deviation.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] if `std_dev` is negative or
    /// either parameter is non-finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NumError> {
        if !mean.is_finite() {
            return Err(NumError::InvalidParameter {
                name: "mean",
                reason: format!("must be finite, got {mean}"),
            });
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NumError::InvalidParameter {
                name: "std_dev",
                reason: format!("must be finite and non-negative, got {std_dev}"),
            });
        }
        Ok(Self { mean, std_dev })
    }

    /// The standard normal distribution `N(0, 1)`.
    pub fn standard() -> Self {
        Self {
            mean: 0.0,
            std_dev: 1.0,
        }
    }

    /// Mean of the distribution.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box–Muller: u1 in (0,1] so the log is finite.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        let radius = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std_dev * radius * theta.cos()
    }

    /// Fill a vector with `n` independent samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`), sampled by
/// inverse-CDF.
///
/// The paper draws the client cost parameters `c_n` and intrinsic values
/// `v_n` "following exponential distribution among clients" with the setup
/// means of Table I; [`Exponential::with_mean`] matches that usage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Create an Exponential distribution from its rate parameter.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] if `rate` is not strictly
    /// positive and finite.
    pub fn new(rate: f64) -> Result<Self, NumError> {
        if !rate.is_finite() || rate <= 0.0 {
            return Err(NumError::InvalidParameter {
                name: "rate",
                reason: format!("must be finite and positive, got {rate}"),
            });
        }
        Ok(Self { rate })
    }

    /// Create an Exponential distribution from its mean (`1/rate`).
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] if `mean` is not strictly
    /// positive and finite.
    pub fn with_mean(mean: f64) -> Result<Self, NumError> {
        if !mean.is_finite() || mean <= 0.0 {
            return Err(NumError::InvalidParameter {
                name: "mean",
                reason: format!("must be finite and positive, got {mean}"),
            });
        }
        Self::new(1.0 / mean)
    }

    /// Rate parameter `lambda`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Mean of the distribution (`1/lambda`).
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = 1.0 - rng.random::<f64>(); // in (0, 1]
        -u.ln() / self.rate
    }

    /// Fill a vector with `n` independent samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// LogNormal distribution: `exp(N(mu, sigma))`.
///
/// Used by the simulated cross-device testbed for client compute speeds and
/// wireless link rates, which are positive and right-skewed in practice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    normal: Normal,
}

impl LogNormal {
    /// Create a LogNormal from the location `mu` and scale `sigma` of the
    /// underlying normal distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] under the same conditions as
    /// [`Normal::new`].
    pub fn new(mu: f64, sigma: f64) -> Result<Self, NumError> {
        Ok(Self {
            normal: Normal::new(mu, sigma)?,
        })
    }

    /// Create a LogNormal whose *median* is `median` and whose underlying
    /// normal scale is `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] if `median` is not strictly
    /// positive or `sigma` is invalid.
    pub fn with_median(median: f64, sigma: f64) -> Result<Self, NumError> {
        if !median.is_finite() || median <= 0.0 {
            return Err(NumError::InvalidParameter {
                name: "median",
                reason: format!("must be finite and positive, got {median}"),
            });
        }
        Self::new(median.ln(), sigma)
    }

    /// Draw one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.normal.sample(rng).exp()
    }

    /// Fill a vector with `n` independent samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Bounded Pareto (power-law) distribution on `[lo, hi]` with shape `alpha`.
///
/// The paper distributes per-client sample counts "in an unbalanced
/// power-law distribution"; the bounded Pareto is the standard realisation
/// of that description and keeps every client non-empty.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    lo: f64,
    hi: f64,
    alpha: f64,
}

impl BoundedPareto {
    /// Create a bounded Pareto distribution on `[lo, hi]` with shape `alpha`.
    ///
    /// # Errors
    ///
    /// Returns [`NumError::InvalidParameter`] unless `0 < lo < hi` and
    /// `alpha > 0` (all finite).
    pub fn new(lo: f64, hi: f64, alpha: f64) -> Result<Self, NumError> {
        if !lo.is_finite() || lo <= 0.0 {
            return Err(NumError::InvalidParameter {
                name: "lo",
                reason: format!("must be finite and positive, got {lo}"),
            });
        }
        if !hi.is_finite() || hi <= lo {
            return Err(NumError::InvalidParameter {
                name: "hi",
                reason: format!("must be finite and greater than lo={lo}, got {hi}"),
            });
        }
        if !alpha.is_finite() || alpha <= 0.0 {
            return Err(NumError::InvalidParameter {
                name: "alpha",
                reason: format!("must be finite and positive, got {alpha}"),
            });
        }
        Ok(Self { lo, hi, alpha })
    }

    /// Lower bound of the support.
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Shape parameter.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draw one sample by inverse-CDF of the truncated Pareto.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random();
        let la = self.lo.powf(-self.alpha);
        let ha = self.hi.powf(-self.alpha);
        // Inverse CDF of bounded Pareto.
        (la - u * (la - ha)).powf(-1.0 / self.alpha)
    }

    /// Fill a vector with `n` independent samples.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draw from a Bernoulli with success probability `p` (clamped to `[0, 1]`).
///
/// Values of `p` outside `[0, 1]` are clamped rather than rejected because
/// equilibrium solvers can produce participation levels like `1.0 + 1e-16`
/// from floating-point round-off.
pub fn bernoulli<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    let p = p.clamp(0.0, 1.0);
    rng.random::<f64>() < p
}

/// Draw an index from the categorical distribution given by `weights`
/// (non-negative, not all zero).
///
/// # Errors
///
/// Returns [`NumError::InvalidParameter`] if `weights` is empty, contains a
/// negative or non-finite value, or sums to zero.
pub fn categorical<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Result<usize, NumError> {
    if weights.is_empty() {
        return Err(NumError::EmptyInput);
    }
    let mut total = 0.0;
    for &w in weights {
        if !w.is_finite() || w < 0.0 {
            return Err(NumError::InvalidParameter {
                name: "weights",
                reason: format!("must be finite and non-negative, got {w}"),
            });
        }
        total += w;
    }
    if total <= 0.0 {
        return Err(NumError::InvalidParameter {
            name: "weights",
            reason: "must not sum to zero".into(),
        });
    }
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return Ok(i);
        }
    }
    Ok(weights.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::stats::{mean, variance};

    #[test]
    fn normal_moments() {
        let mut rng = seeded(11);
        let d = Normal::new(3.0, 2.0).unwrap();
        let xs = d.sample_vec(&mut rng, 200_000);
        assert!((mean(&xs).unwrap() - 3.0).abs() < 0.03);
        assert!((variance(&xs).unwrap() - 4.0).abs() < 0.1);
    }

    #[test]
    fn normal_rejects_bad_params() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_zero_std_is_constant() {
        let mut rng = seeded(3);
        let d = Normal::new(7.0, 0.0).unwrap();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 7.0);
        }
    }

    #[test]
    fn exponential_moments() {
        let mut rng = seeded(12);
        let d = Exponential::with_mean(50.0).unwrap();
        let xs = d.sample_vec(&mut rng, 200_000);
        assert!((mean(&xs).unwrap() - 50.0).abs() < 0.6);
        // Var = mean^2 for exponential.
        assert!((variance(&xs).unwrap() - 2500.0).abs() < 60.0);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn exponential_rejects_bad_params() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::with_mean(0.0).is_err());
        assert!(Exponential::with_mean(f64::NAN).is_err());
    }

    #[test]
    fn lognormal_positive_and_median() {
        let mut rng = seeded(13);
        let d = LogNormal::with_median(10.0, 0.5).unwrap();
        let mut xs = d.sample_vec(&mut rng, 100_001);
        assert!(xs.iter().all(|&x| x > 0.0));
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = xs[xs.len() / 2];
        assert!((median - 10.0).abs() < 0.2, "median {median}");
    }

    #[test]
    fn bounded_pareto_support_and_skew() {
        let mut rng = seeded(14);
        let d = BoundedPareto::new(10.0, 1000.0, 1.2).unwrap();
        let xs = d.sample_vec(&mut rng, 50_000);
        assert!(xs.iter().all(|&x| (10.0..=1000.0).contains(&x)));
        // Power law with small alpha: mean well above the median.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(mean(&xs).unwrap() > 1.3 * median);
    }

    #[test]
    fn bounded_pareto_rejects_bad_params() {
        assert!(BoundedPareto::new(0.0, 10.0, 1.0).is_err());
        assert!(BoundedPareto::new(10.0, 10.0, 1.0).is_err());
        assert!(BoundedPareto::new(10.0, 5.0, 1.0).is_err());
        assert!(BoundedPareto::new(1.0, 10.0, 0.0).is_err());
    }

    #[test]
    fn bernoulli_frequency() {
        let mut rng = seeded(15);
        for &p in &[0.0, 0.25, 0.5, 0.9, 1.0] {
            let hits = (0..100_000).filter(|_| bernoulli(&mut rng, p)).count();
            let freq = hits as f64 / 100_000.0;
            assert!((freq - p).abs() < 0.01, "p={p} freq={freq}");
        }
    }

    #[test]
    fn bernoulli_clamps_out_of_range() {
        let mut rng = seeded(16);
        assert!(!bernoulli(&mut rng, -0.5));
        assert!(bernoulli(&mut rng, 1.5));
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = seeded(17);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[categorical(&mut rng, &w).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    fn categorical_rejects_bad_weights() {
        let mut rng = seeded(18);
        assert_eq!(categorical(&mut rng, &[]), Err(NumError::EmptyInput));
        assert!(categorical(&mut rng, &[0.0, 0.0]).is_err());
        assert!(categorical(&mut rng, &[-1.0, 2.0]).is_err());
        assert!(categorical(&mut rng, &[f64::NAN]).is_err());
    }
}
