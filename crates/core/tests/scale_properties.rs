//! Scale properties of the Stage-I equilibrium engine.
//!
//! The paper proves its structural results for arbitrary population sizes;
//! this suite pins them across synthesized populations from 1 client to
//! 100k (and a million-client smoke solve), plus the engine's own
//! contract: the parallel chunked solver is **bit-identical** to the
//! sequential one.
//!
//! * Lemma 3 — budget tightness at interior equilibria;
//! * Theorem 2 — the interior invariant equals `1/λ*`;
//! * Theorem 3 — the payment-direction threshold `v_t = 1/(3λ*)`;
//! * `solve_m_search` ≈ `solve_kkt` agreement;
//! * `n_threads = 1` and `n_threads > 1` produce identical bits.
//!
//! The `#[ignore]` tests are the release-mode scale gate run by CI's
//! `cargo test --release -- --ignored` job; each asserts a wall-clock
//! budget so a performance regression fails the build.

use fedfl_core::bound::BoundParams;
use fedfl_core::game::CplGame;
use fedfl_core::population::{ParamDist, Population, PopulationSpec, Q_MIN};
use fedfl_core::server::{
    path_budget, solve_kkt, solve_kkt_columns_fast, solve_kkt_columns_hinted, solve_m_search,
    SolverMode, SolverOptions,
};
use proptest::prelude::*;
use std::time::Instant;

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

fn spec_for(variant: u8) -> PopulationSpec {
    let mut spec = PopulationSpec::table1_like();
    match variant % 3 {
        0 => {}
        1 => {
            // Homogeneous shards, heavy-tailed values.
            spec.weight = ParamDist::Constant(1.0);
            spec.value = ParamDist::BoundedPareto {
                lo: 1.0,
                hi: 50_000.0,
                alpha: 1.1,
            };
        }
        _ => {
            // Mild log-normal heterogeneity, zero intrinsic value.
            spec.weight = ParamDist::LogNormal {
                median: 10.0,
                sigma: 1.0,
            };
            spec.value = ParamDist::Constant(0.0);
            spec.cost = ParamDist::Uniform {
                lo: 10.0,
                hi: 200.0,
            };
        }
    }
    spec
}

/// Assert every structural result of the paper on one synthesized game,
/// and that the parallel solver path reproduces the sequential one
/// bit-for-bit.
fn assert_scale_invariants(n: usize, seed: u64, variant: u8, frac: f64) {
    let spec = spec_for(variant);
    let p = Population::synthesize(n, &spec, seed).expect("synthesize");
    let b = bound();
    let sequential = SolverOptions::with_threads(1);
    let budget = path_budget(&p, &b, &sequential, frac);

    // Parallel path must equal the sequential path exactly.
    let sol = solve_kkt(&p, &b, budget, &sequential).expect("solve");
    for threads in [2, 4] {
        let par = solve_kkt(&p, &b, budget, &SolverOptions::with_threads(threads))
            .expect("parallel solve");
        assert_eq!(sol, par, "n={n} seed={seed}: thread count changed bits");
    }

    let game = CplGame::new(p.clone(), b, budget)
        .unwrap()
        .with_options(sequential);
    let se = game.solve().expect("game solve");

    // Lemma 3: the budget is spent exactly (interior by construction).
    assert!(
        se.is_budget_tight(1e-5) || se.is_saturated(),
        "n={n} seed={seed}: spent {} vs budget {budget}",
        se.spent()
    );

    // Theorem 2: the invariant is constant (= 1/λ*) over interior clients.
    if let Some(lambda) = se.lambda() {
        let target = 1.0 / lambda;
        for inv in se.theorem2_invariants(&p, &b) {
            assert!(
                (inv - target).abs() / target.abs().max(1.0) < 1e-6,
                "n={n} seed={seed}: invariant {inv} vs 1/λ {target}"
            );
        }
        // And the sampled variant agrees.
        if let Some(residual) = se.theorem2_max_residual(&p, &b, 64, seed) {
            assert!(residual < 1e-6, "sampled residual {residual}");
        }

        // Theorem 3: v_t = 1/(3λ*) separates payment directions.
        let vt = se.payment_threshold().expect("interior threshold");
        for (i, c) in p.iter().enumerate() {
            let interior = se.q()[i] > Q_MIN * 1.01 && se.q()[i] < c.q_max * 0.999;
            if !interior {
                continue;
            }
            if c.value < vt * (1.0 - 1e-9) {
                assert!(
                    se.prices()[i] > 0.0,
                    "n={n} seed={seed} client {i}: v={} < vt={vt} but P={}",
                    c.value,
                    se.prices()[i]
                );
            }
            if c.value > vt * (1.0 + 1e-9) {
                assert!(
                    se.prices()[i] < 0.0,
                    "n={n} seed={seed} client {i}: v={} > vt={vt} but P={}",
                    c.value,
                    se.prices()[i]
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariants_hold_for_random_populations(
        n in 1usize..400,
        seed in 0u64..1_000_000,
        variant in 0u8..3,
        frac in 0.05f64..0.95,
    ) {
        assert_scale_invariants(n, seed, variant, frac);
    }
}

proptest! {
    // The M-search runs a projected-gradient inner solve per grid cell:
    // a handful of cases keeps the default suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn m_search_tracks_kkt_on_random_populations(
        n in 2usize..8,
        seed in 0u64..1_000,
        frac in 0.2f64..0.8,
    ) {
        // The M-search is the paper's slow literal method: small n only,
        // and the zero-value spec so budgets stay positive and the inner
        // convex problems well-scaled.
        let spec = spec_for(2);
        let p = Population::synthesize(n, &spec, seed).expect("synthesize");
        let b = bound();
        let options = SolverOptions {
            m_grid_steps: 40,
            ..SolverOptions::with_threads(1)
        };
        let budget = path_budget(&p, &b, &options, frac);
        let kkt = solve_kkt(&p, &b, budget, &options).expect("kkt");
        let msearch = solve_m_search(&p, &b, budget, &options).expect("m-search");
        let v_kkt = b.variance_term(&p, &kkt.q);
        let v_m = b.variance_term(&p, &msearch.q);
        // The M-search's penalty method may overspend within its 1e-3
        // feasibility slack, which can nominally "beat" the KKT value at
        // the smaller budget. The sound optimality check is against the
        // KKT optimum at the spend the M-search actually realised.
        let kkt_realized = solve_kkt(&p, &b, msearch.spent, &options).expect("kkt at spend");
        let v_kkt_realized = b.variance_term(&p, &kkt_realized.q);
        prop_assert!(
            v_m >= v_kkt_realized * (1.0 - 1e-3) - 1e-9,
            "m-search beat the KKT optimum at its own spend: {v_m} vs {v_kkt_realized}"
        );
        prop_assert!(
            msearch.spent <= budget.abs().max(1.0).mul_add(1e-3, budget),
            "m-search overspent: {} vs {budget}",
            msearch.spent
        );
        // The outer search is a fixed-step grid (the paper's ε₀), so the
        // agreement band reflects the grid resolution, not solver noise.
        prop_assert!(
            (v_m - v_kkt) / v_kkt.abs().max(1.0) < 0.25,
            "m-search too far from optimum: {v_m} vs {v_kkt}"
        );
    }
}

#[test]
fn size_ladder_from_one_to_ten_thousand() {
    for (k, &n) in [1usize, 10, 100, 1_000, 10_000].iter().enumerate() {
        assert_scale_invariants(n, 42 + k as u64, k as u8, 0.4);
    }
}

#[test]
// The regression anchors keep every digit the seed solver printed.
#[allow(clippy::excessive_precision)]
fn optimality_gap_does_not_regress_versus_seed() {
    // Gap values produced by the seed (pre-refactor, sequential) solver on
    // the canonical 4-client fixture; the scalable engine must match them.
    let expected = [
        (4.0, 13.4621964534365954),
        (10.0, 12.9920410520387737),
        (16.0, 12.5329627123358680),
    ];
    let p = Population::builder()
        .weights(vec![0.4, 0.3, 0.2, 0.1])
        .g_squared(vec![9.0, 16.0, 25.0, 36.0])
        .costs(vec![30.0, 50.0, 70.0, 90.0])
        .values(vec![0.0, 2.0, 5.0, 10.0])
        .build()
        .unwrap();
    let b = bound();
    for (budget, seed_gap) in expected {
        let sol = solve_kkt(&p, &b, budget, &SolverOptions::default()).unwrap();
        let gap = b.optimality_gap(&p, &sol.q);
        assert!(
            gap <= seed_gap * (1.0 + 1e-9),
            "budget {budget}: gap {gap} regressed past seed {seed_gap}"
        );
        assert!(
            (gap - seed_gap).abs() <= seed_gap * 1e-9,
            "budget {budget}: gap {gap} drifted from seed {seed_gap}"
        );
    }
}

/// Release-mode scale gate (CI runs these with `--ignored`): the 100k
/// property pass. The wall-clock budget is generous enough for a single
/// CI core but fails on an accidental O(N²) or per-iteration allocation
/// regression.
#[test]
#[ignore = "release-mode scale gate; run with --ignored"]
fn hundred_thousand_clients_keep_the_invariants() {
    let started = Instant::now();
    assert_scale_invariants(100_000, 7, 0, 0.5);
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_secs_f64() < 120.0,
        "100k-client invariant pass took {elapsed:?} (budget 120s)"
    );
}

/// Release-mode scale gate: the million-client smoke solve of the
/// tentpole acceptance criteria — synthesize 1M clients, solve the
/// Stackelberg equilibrium, verify Theorem 2 on a sample, and check the
/// parallel path is bit-identical to the sequential one.
#[test]
#[ignore = "release-mode scale gate; run with --ignored"]
fn million_client_equilibrium_smoke() {
    let spec = PopulationSpec::table1_like();
    let p = Population::synthesize(1_000_000, &spec, 2023).expect("synthesize 1M");
    let b = bound();
    let sequential = SolverOptions::with_threads(1);
    let budget = path_budget(&p, &b, &sequential, 0.5);

    let started = Instant::now();
    let par = solve_kkt(&p, &b, budget, &SolverOptions::with_threads(4)).expect("parallel solve");
    let solve_time = started.elapsed();

    let seq = solve_kkt(&p, &b, budget, &sequential).expect("sequential solve");
    assert_eq!(par, seq, "thread count changed bits at 1M clients");

    let game = CplGame::new(p.clone(), b, budget).unwrap();
    let se = game.solve().expect("game solve");
    assert!(se.is_budget_tight(1e-5), "spent {}", se.spent());
    let residual = se
        .theorem2_max_residual(&p, &b, 10_000, 99)
        .expect("interior clients in a 1M draw");
    assert!(residual < 1e-6, "Theorem 2 residual {residual}");

    assert!(
        solve_time.as_secs_f64() < 120.0,
        "1M-client solve took {solve_time:?} (budget 120s)"
    );
}

/// Release-mode scale gate: the million-client fast-path cross-check of
/// the sub-linear λ-probe acceptance criteria. The certified fast solve
/// must spend ≥10× fewer per-client spend evaluations than the exact
/// probe phase, land within the certification bands, and keep the exact
/// Theorem-2 residual within the solver tolerance.
#[test]
#[ignore = "release-mode scale gate; run with --ignored"]
fn million_client_fast_path_cross_check() {
    let spec = PopulationSpec::table1_like();
    let p = Population::synthesize(1_000_000, &spec, 2023).expect("synthesize 1M");
    let b = bound();
    let options = SolverOptions::with_threads(4);
    let budget = path_budget(&p, &b, &options, 0.5);
    let cols = p.columns();

    let (exact, exact_diag) =
        solve_kkt_columns_hinted(&cols, &b, budget, &options, None).expect("exact solve");

    let started = Instant::now();
    let (fast, fast_diag) = solve_kkt_columns_fast(&cols, &b, budget, &options).expect("fast");
    let fast_time = started.elapsed();

    assert_eq!(
        fast_diag.solver_mode,
        SolverMode::ThresholdIndex,
        "table1-like 1M population must certify, not fall back"
    );
    assert!(
        fast_diag.probe_evaluations * 10 <= exact_diag.probe_evaluations,
        "fast {} vs exact {} spend evaluations — expected ≥10× fewer",
        fast_diag.probe_evaluations,
        exact_diag.probe_evaluations
    );
    let worst_price = fast
        .prices
        .iter()
        .zip(&exact.prices)
        .map(|(f, e)| (f - e).abs() / e.abs().max(1.0))
        .fold(0.0f64, f64::max);
    assert!(worst_price <= 1e-6, "certified price error {worst_price:e}");
    assert!(
        (fast.spent - exact.spent).abs() <= 1e-6 * exact.spent.abs().max(1.0),
        "spent diverged: fast {} vs exact {}",
        fast.spent,
        exact.spent
    );
    let residual = fedfl_core::server::theorem2_max_residual_columns(&cols, &b, &fast, 10_000, 99)
        .expect("interior clients in a 1M draw");
    assert!(residual < 1e-6, "fast Theorem-2 residual {residual}");
    // Index build + certified solve together must beat the 1.3s exact
    // probe phase by a wide margin; 20s leaves room for a slow CI core
    // while still catching an accidental O(N) probe loop.
    assert!(
        fast_time.as_secs_f64() < 20.0,
        "1M fast solve took {fast_time:?} (budget 20s)"
    );
}
