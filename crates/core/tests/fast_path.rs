//! Certification contract of the threshold-indexed fast path.
//!
//! The fast solver is allowed to land on a *different-bits* root than the
//! exact solver — its probes run over a reordered, series-truncated spend
//! model — but every certified solve must agree with the exact solver to
//! within the certification bands:
//!
//! * relative price error ≤ 1e-6 against the exact solution;
//! * exact sampled Theorem-2 residual of the fast profile ≤ 1e-6;
//! * saturation/floored classification identical.
//!
//! And every *fallback* solve must be **bit-identical** to the exact
//! solver — the fallback is the exact solver.
//!
//! Pinned across shard counts {1, 2, 7, 32} × threads {1, 3}, the
//! proptest population variants of `scale_properties`, and the
//! heavy-tail Pareto spreads of `heavy_tail`.

use fedfl_core::active_set::ActiveSetIndex;
use fedfl_core::bound::BoundParams;
use fedfl_core::population::{ParamDist, Population, PopulationSpec};
use fedfl_core::server::{
    path_budget, solve_kkt_columns_fast, solve_kkt_columns_hinted, solve_kkt_sharded_fast,
    solve_kkt_sharded_fast_with_index, theorem2_max_residual_columns, SolverMode, SolverOptions,
};
use fedfl_core::shard::ShardedPopulation;
use proptest::prelude::*;

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

fn spec_for(variant: u8) -> PopulationSpec {
    let mut spec = PopulationSpec::table1_like();
    match variant % 3 {
        0 => {}
        1 => {
            spec.weight = ParamDist::Constant(1.0);
            spec.value = ParamDist::BoundedPareto {
                lo: 1.0,
                hi: 50_000.0,
                alpha: 1.1,
            };
        }
        _ => {
            spec.weight = ParamDist::LogNormal {
                median: 10.0,
                sigma: 1.0,
            };
            spec.value = ParamDist::Constant(0.0);
            spec.cost = ParamDist::Uniform {
                lo: 10.0,
                hi: 200.0,
            };
        }
    }
    spec
}

/// Fast solve must either certify (and then agree with the exact solver
/// within the bands) or fall back (and then equal the exact solver bit
/// for bit). Returns the mode for callers that pin one or the other.
fn assert_fast_agrees(p: &Population, budget: f64, options: &SolverOptions) -> SolverMode {
    let b = bound();
    let cols = p.columns();
    let (exact, exact_diag) = solve_kkt_columns_hinted(&cols, &b, budget, options, None).unwrap();
    let (fast, diag) = solve_kkt_columns_fast(&cols, &b, budget, options).unwrap();
    match diag.solver_mode {
        SolverMode::ThresholdIndex => {
            assert_eq!(fast.saturated, exact.saturated, "saturation flag diverged");
            assert_eq!(
                fast.lambda.is_some(),
                exact.lambda.is_some(),
                "interior/corner classification diverged"
            );
            let worst_price = fast
                .prices
                .iter()
                .zip(&exact.prices)
                .map(|(f, e)| (f - e).abs() / e.abs().max(1.0))
                .fold(0.0f64, f64::max);
            assert!(
                worst_price <= 1e-6,
                "certified fast prices off by {worst_price:e}"
            );
            assert!(
                (fast.spent - exact.spent).abs() <= 1e-6 * exact.spent.abs().max(1.0),
                "spent diverged: fast {} vs exact {}",
                fast.spent,
                exact.spent
            );
            if let Some(residual) = theorem2_max_residual_columns(&cols, &b, &fast, 2_048, 7) {
                assert!(residual <= 1e-6, "fast Theorem-2 residual {residual:e}");
            }
        }
        SolverMode::ThresholdIndexFallback => {
            assert_eq!(
                fast, exact,
                "fallback must be the exact solver, bit for bit"
            );
            assert_eq!(diag.t_star.to_bits(), exact_diag.t_star.to_bits());
        }
        SolverMode::Exact => panic!("fast entry point reported Exact mode"),
    }
    diag.solver_mode
}

#[test]
fn certified_fast_solves_agree_across_shards_and_threads() {
    let n = fedfl_num::parallel::DEFAULT_CHUNK + 997;
    let p = Population::synthesize(n, &PopulationSpec::table1_like(), 5).unwrap();
    let b = bound();
    let options = SolverOptions::with_threads(1);
    let budget = path_budget(&p, &b, &options, 0.4);
    let cols = p.columns();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, budget, &options, None).unwrap();
    let (flat_fast, flat_diag) = solve_kkt_columns_fast(&cols, &b, budget, &options).unwrap();
    assert_eq!(
        flat_diag.solver_mode,
        SolverMode::ThresholdIndex,
        "table1-like population should certify"
    );
    for shard_count in [1usize, 2, 7, 32] {
        let sharded = ShardedPopulation::from_columns(&cols, shard_count).unwrap();
        for threads in [1usize, 3] {
            let opts = SolverOptions::with_threads(threads);
            let (fast, diag) = solve_kkt_sharded_fast(&sharded, &b, budget, &opts).unwrap();
            assert_eq!(diag.solver_mode, SolverMode::ThresholdIndex);
            // The sharded index build is bit-identical to the flat one and
            // probes/materialisation share the exact solver's shard-merge
            // contract, so the fast solve itself is shard- and
            // thread-invariant bit for bit.
            assert_eq!(
                fast, flat_fast,
                "shards {shard_count} × threads {threads} changed fast bits"
            );
            let worst = fast
                .prices
                .iter()
                .zip(&exact.prices)
                .map(|(f, e)| (f - e).abs() / e.abs().max(1.0))
                .fold(0.0f64, f64::max);
            assert!(worst <= 1e-6, "price error {worst:e}");
        }
    }
}

#[test]
fn reused_index_solves_match_and_hint_cuts_iterations() {
    let p = Population::synthesize(4_000, &PopulationSpec::table1_like(), 9).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let budget = path_budget(&p, &b, &options, 0.5);
    let cols = p.columns();
    let sharded = ShardedPopulation::from_columns(&cols, 4).unwrap();
    let index = ActiveSetIndex::build_sharded(sharded.shards(), b.alpha_over_r(), options.q_min);
    let (cold, cold_diag) =
        solve_kkt_sharded_fast_with_index(&sharded, &b, budget, &options, &index, None).unwrap();
    assert_eq!(cold_diag.solver_mode, SolverMode::ThresholdIndex);
    assert_eq!(
        cold_diag.index_rebuild_ns, 0,
        "reused index reports no rebuild"
    );
    let (warm, warm_diag) = solve_kkt_sharded_fast_with_index(
        &sharded,
        &b,
        budget,
        &options,
        &index,
        Some(cold_diag.t_star),
    )
    .unwrap();
    assert_eq!(warm_diag.solver_mode, SolverMode::ThresholdIndex);
    assert_eq!(warm, cold, "hinted fast solve changed bits");
    assert!(
        warm_diag.bisect_iterations <= cold_diag.bisect_iterations,
        "hint increased iterations: {} > {}",
        warm_diag.bisect_iterations,
        cold_diag.bisect_iterations
    );
    // A stale index (wrong population) is detected, not trusted.
    let other = Population::synthesize(4_001, &PopulationSpec::table1_like(), 10).unwrap();
    let other_sharded = ShardedPopulation::from_columns(&other.columns(), 4).unwrap();
    let (fb, fb_diag) =
        solve_kkt_sharded_fast_with_index(&other_sharded, &b, budget, &options, &index, None)
            .unwrap();
    assert_eq!(fb_diag.solver_mode, SolverMode::ThresholdIndexFallback);
    let (exact_other, _) =
        solve_kkt_columns_hinted(&other.columns(), &b, budget, &options, None).unwrap();
    assert_eq!(fb, exact_other);
}

#[test]
fn fast_probes_are_sublinear_on_moderate_instances() {
    let n = 20_000;
    let p = Population::synthesize(n, &PopulationSpec::table1_like(), 2023).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let budget = path_budget(&p, &b, &options, 0.5);
    let cols = p.columns();
    let (_, exact_diag) = solve_kkt_columns_hinted(&cols, &b, budget, &options, None).unwrap();
    let (_, fast_diag) = solve_kkt_columns_fast(&cols, &b, budget, &options).unwrap();
    assert_eq!(fast_diag.solver_mode, SolverMode::ThresholdIndex);
    assert!(
        fast_diag.probe_evaluations * 10 <= exact_diag.probe_evaluations,
        "fast {} vs exact {} spend evaluations — expected ≥10× fewer",
        fast_diag.probe_evaluations,
        exact_diag.probe_evaluations
    );
}

#[test]
fn extreme_spread_population_stays_correct() {
    // One cheap heavy client plus feather-weights spanning 21 decades of
    // cost: whether or not the model certifies here, the result must obey
    // the contract (certified-close or fallback-bit-identical).
    let p = Population::builder()
        .weights(vec![1.0 - 1e-19, 5e-20, 5e-20])
        .g_squared(vec![4.0, 4.0, 4.0])
        .costs(vec![1e-6, 1e15, 1e15])
        .values(vec![0.0, 0.0, 0.0])
        .build()
        .unwrap();
    let options = SolverOptions::default();
    for frac in [1e-60, 1e-9, 0.5] {
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }
}

#[test]
fn pareto_spread_fast_solves_respect_the_contract() {
    let spec = PopulationSpec {
        weight: ParamDist::BoundedPareto {
            lo: 1.0,
            hi: 1e6,
            alpha: 0.8,
        },
        g_squared: ParamDist::Uniform { lo: 4.0, hi: 36.0 },
        cost: ParamDist::BoundedPareto {
            lo: 1e-4,
            hi: 1e8,
            alpha: 0.5,
        },
        value: ParamDist::Exponential { mean: 4_000.0 },
        q_max: 1.0,
    };
    let p = Population::synthesize(2_000, &spec, 11).unwrap();
    let options = SolverOptions::default();
    for frac in [1e-9, 1e-3, 0.3, 0.9] {
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }
}

#[test]
fn corner_budgets_classify_identically() {
    let p = Population::synthesize(600, &PopulationSpec::table1_like(), 4).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let cols = p.columns();
    // Saturated: budget above the all-caps spend.
    let generous = path_budget(&p, &b, &options, 1.0) * 2.0;
    let (fast, diag) = solve_kkt_columns_fast(&cols, &b, generous, &options).unwrap();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, generous, &options, None).unwrap();
    assert!(fast.saturated);
    assert_eq!(fast.q, exact.q, "saturated profile must match exactly");
    assert_eq!(diag.bisect_iterations, 0);
    // Floored: budget below the floor spend (negative here — values make
    // the floor spend negative-capable, so go far below).
    let stingy = -1e12;
    let (fast, _) = solve_kkt_columns_fast(&cols, &b, stingy, &options).unwrap();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, stingy, &options, None).unwrap();
    assert_eq!(fast.q, exact.q, "floored profile must match exactly");
    assert!(!fast.saturated);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fast_solves_agree_on_random_populations(
        n in 2usize..300,
        seed in 0u64..1_000,
        variant in 0u8..3,
        frac in 1e-6f64..1.0,
        threads in 1usize..4,
    ) {
        let p = Population::synthesize(n, &spec_for(variant), seed).unwrap();
        let options = SolverOptions::with_threads(threads);
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }
}
