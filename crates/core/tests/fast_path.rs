//! Certification contract of the threshold-indexed fast path.
//!
//! The fast solver is allowed to land on a *different-bits* root than the
//! exact solver — its probes run over a reordered, series-truncated spend
//! model — but every certified solve must agree with the exact solver to
//! within the certification bands:
//!
//! * relative price error ≤ 1e-6 against the exact solution;
//! * exact sampled Theorem-2 residual of the fast profile ≤ 1e-6;
//! * saturation/floored classification identical.
//!
//! And every *fallback* solve must be **bit-identical** to the exact
//! solver — the fallback is the exact solver.
//!
//! Pinned across shard counts {1, 2, 7, 32} × threads {1, 3}, the
//! proptest population variants of `scale_properties`, and the
//! heavy-tail Pareto spreads of `heavy_tail`.

use fedfl_core::active_set::{ActiveSetIndex, IndexColumns};
use fedfl_core::bound::BoundParams;
use fedfl_core::population::{ParamDist, Population, PopulationSpec};
use fedfl_core::server::{
    path_budget, solve_kkt_columns_fast, solve_kkt_columns_hinted, solve_kkt_sharded_fast,
    solve_kkt_sharded_fast_with_index, theorem2_max_residual_columns, SolverMode, SolverOptions,
};
use fedfl_core::shard::ShardedPopulation;
use proptest::prelude::*;

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

fn spec_for(variant: u8) -> PopulationSpec {
    let mut spec = PopulationSpec::table1_like();
    match variant % 3 {
        0 => {}
        1 => {
            spec.weight = ParamDist::Constant(1.0);
            spec.value = ParamDist::BoundedPareto {
                lo: 1.0,
                hi: 50_000.0,
                alpha: 1.1,
            };
        }
        _ => {
            spec.weight = ParamDist::LogNormal {
                median: 10.0,
                sigma: 1.0,
            };
            spec.value = ParamDist::Constant(0.0);
            spec.cost = ParamDist::Uniform {
                lo: 10.0,
                hi: 200.0,
            };
        }
    }
    spec
}

/// Fast solve must either certify (and then agree with the exact solver
/// within the bands) or fall back (and then equal the exact solver bit
/// for bit). Returns the mode for callers that pin one or the other.
fn assert_fast_agrees(p: &Population, budget: f64, options: &SolverOptions) -> SolverMode {
    let b = bound();
    let cols = p.columns();
    let (exact, exact_diag) = solve_kkt_columns_hinted(&cols, &b, budget, options, None).unwrap();
    let (fast, diag) = solve_kkt_columns_fast(&cols, &b, budget, options).unwrap();
    match diag.solver_mode {
        SolverMode::ThresholdIndex => {
            assert_eq!(fast.saturated, exact.saturated, "saturation flag diverged");
            assert_eq!(
                fast.lambda.is_some(),
                exact.lambda.is_some(),
                "interior/corner classification diverged"
            );
            let worst_price = fast
                .prices
                .iter()
                .zip(&exact.prices)
                .map(|(f, e)| (f - e).abs() / e.abs().max(1.0))
                .fold(0.0f64, f64::max);
            assert!(
                worst_price <= 1e-6,
                "certified fast prices off by {worst_price:e}"
            );
            assert!(
                (fast.spent - exact.spent).abs() <= 1e-6 * exact.spent.abs().max(1.0),
                "spent diverged: fast {} vs exact {}",
                fast.spent,
                exact.spent
            );
            if let Some(residual) = theorem2_max_residual_columns(&cols, &b, &fast, 2_048, 7) {
                assert!(residual <= 1e-6, "fast Theorem-2 residual {residual:e}");
            }
        }
        SolverMode::ThresholdIndexFallback => {
            assert_eq!(
                fast, exact,
                "fallback must be the exact solver, bit for bit"
            );
            assert_eq!(diag.t_star.to_bits(), exact_diag.t_star.to_bits());
        }
        SolverMode::Exact => panic!("fast entry point reported Exact mode"),
    }
    diag.solver_mode
}

#[test]
fn certified_fast_solves_agree_across_shards_and_threads() {
    let n = fedfl_num::parallel::DEFAULT_CHUNK + 997;
    let p = Population::synthesize(n, &PopulationSpec::table1_like(), 5).unwrap();
    let b = bound();
    let options = SolverOptions::with_threads(1);
    let budget = path_budget(&p, &b, &options, 0.4);
    let cols = p.columns();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, budget, &options, None).unwrap();
    let (flat_fast, flat_diag) = solve_kkt_columns_fast(&cols, &b, budget, &options).unwrap();
    assert_eq!(
        flat_diag.solver_mode,
        SolverMode::ThresholdIndex,
        "table1-like population should certify"
    );
    for shard_count in [1usize, 2, 7, 32] {
        let sharded = ShardedPopulation::from_columns(&cols, shard_count).unwrap();
        for threads in [1usize, 3] {
            let opts = SolverOptions::with_threads(threads);
            let (fast, diag) = solve_kkt_sharded_fast(&sharded, &b, budget, &opts).unwrap();
            assert_eq!(diag.solver_mode, SolverMode::ThresholdIndex);
            // The sharded index build is bit-identical to the flat one and
            // probes/materialisation share the exact solver's shard-merge
            // contract, so the fast solve itself is shard- and
            // thread-invariant bit for bit.
            assert_eq!(
                fast, flat_fast,
                "shards {shard_count} × threads {threads} changed fast bits"
            );
            let worst = fast
                .prices
                .iter()
                .zip(&exact.prices)
                .map(|(f, e)| (f - e).abs() / e.abs().max(1.0))
                .fold(0.0f64, f64::max);
            assert!(worst <= 1e-6, "price error {worst:e}");
        }
    }
}

#[test]
fn reused_index_solves_match_and_hint_cuts_iterations() {
    let p = Population::synthesize(4_000, &PopulationSpec::table1_like(), 9).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let budget = path_budget(&p, &b, &options, 0.5);
    let cols = p.columns();
    let sharded = ShardedPopulation::from_columns(&cols, 4).unwrap();
    let index = ActiveSetIndex::build_sharded(sharded.shards(), b.alpha_over_r(), options.q_min);
    let (cold, cold_diag) =
        solve_kkt_sharded_fast_with_index(&sharded, &b, budget, &options, &index, None).unwrap();
    assert_eq!(cold_diag.solver_mode, SolverMode::ThresholdIndex);
    assert_eq!(
        cold_diag.index_rebuild_ns, 0,
        "reused index reports no rebuild"
    );
    let (warm, warm_diag) = solve_kkt_sharded_fast_with_index(
        &sharded,
        &b,
        budget,
        &options,
        &index,
        Some(cold_diag.t_star),
    )
    .unwrap();
    assert_eq!(warm_diag.solver_mode, SolverMode::ThresholdIndex);
    assert_eq!(warm, cold, "hinted fast solve changed bits");
    assert!(
        warm_diag.bisect_iterations <= cold_diag.bisect_iterations,
        "hint increased iterations: {} > {}",
        warm_diag.bisect_iterations,
        cold_diag.bisect_iterations
    );
    // A stale index (wrong population) is detected, not trusted.
    let other = Population::synthesize(4_001, &PopulationSpec::table1_like(), 10).unwrap();
    let other_sharded = ShardedPopulation::from_columns(&other.columns(), 4).unwrap();
    let (fb, fb_diag) =
        solve_kkt_sharded_fast_with_index(&other_sharded, &b, budget, &options, &index, None)
            .unwrap();
    assert_eq!(fb_diag.solver_mode, SolverMode::ThresholdIndexFallback);
    let (exact_other, _) =
        solve_kkt_columns_hinted(&other.columns(), &b, budget, &options, None).unwrap();
    assert_eq!(fb, exact_other);
}

#[test]
fn fast_probes_are_sublinear_on_moderate_instances() {
    let n = 20_000;
    let p = Population::synthesize(n, &PopulationSpec::table1_like(), 2023).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let budget = path_budget(&p, &b, &options, 0.5);
    let cols = p.columns();
    let (_, exact_diag) = solve_kkt_columns_hinted(&cols, &b, budget, &options, None).unwrap();
    let (_, fast_diag) = solve_kkt_columns_fast(&cols, &b, budget, &options).unwrap();
    assert_eq!(fast_diag.solver_mode, SolverMode::ThresholdIndex);
    assert!(
        fast_diag.probe_evaluations * 10 <= exact_diag.probe_evaluations,
        "fast {} vs exact {} spend evaluations — expected ≥10× fewer",
        fast_diag.probe_evaluations,
        exact_diag.probe_evaluations
    );
}

#[test]
fn extreme_spread_population_stays_correct() {
    // One cheap heavy client plus feather-weights spanning 21 decades of
    // cost: whether or not the model certifies here, the result must obey
    // the contract (certified-close or fallback-bit-identical).
    let p = Population::builder()
        .weights(vec![1.0 - 1e-19, 5e-20, 5e-20])
        .g_squared(vec![4.0, 4.0, 4.0])
        .costs(vec![1e-6, 1e15, 1e15])
        .values(vec![0.0, 0.0, 0.0])
        .build()
        .unwrap();
    let options = SolverOptions::default();
    for frac in [1e-60, 1e-9, 0.5] {
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }
}

#[test]
fn pareto_spread_fast_solves_respect_the_contract() {
    let spec = PopulationSpec {
        weight: ParamDist::BoundedPareto {
            lo: 1.0,
            hi: 1e6,
            alpha: 0.8,
        },
        g_squared: ParamDist::Uniform { lo: 4.0, hi: 36.0 },
        cost: ParamDist::BoundedPareto {
            lo: 1e-4,
            hi: 1e8,
            alpha: 0.5,
        },
        value: ParamDist::Exponential { mean: 4_000.0 },
        q_max: 1.0,
    };
    let p = Population::synthesize(2_000, &spec, 11).unwrap();
    let options = SolverOptions::default();
    for frac in [1e-9, 1e-3, 0.3, 0.9] {
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }
}

#[test]
fn corner_budgets_classify_identically() {
    let p = Population::synthesize(600, &PopulationSpec::table1_like(), 4).unwrap();
    let b = bound();
    let options = SolverOptions::default();
    let cols = p.columns();
    // Saturated: budget above the all-caps spend.
    let generous = path_budget(&p, &b, &options, 1.0) * 2.0;
    let (fast, diag) = solve_kkt_columns_fast(&cols, &b, generous, &options).unwrap();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, generous, &options, None).unwrap();
    assert!(fast.saturated);
    assert_eq!(fast.q, exact.q, "saturated profile must match exactly");
    assert_eq!(diag.bisect_iterations, 0);
    // Floored: budget below the floor spend (negative here — values make
    // the floor spend negative-capable, so go far below).
    let stingy = -1e12;
    let (fast, _) = solve_kkt_columns_fast(&cols, &b, stingy, &options).unwrap();
    let (exact, _) = solve_kkt_columns_hinted(&cols, &b, stingy, &options, None).unwrap();
    assert_eq!(fast.q, exact.q, "floored profile must match exactly");
    assert!(!fast.saturated);
}

/// One synthetic client row of the keyed-index churn model.
#[derive(Clone)]
struct ChurnRow {
    w_raw: f64,
    g2: f64,
    cost: f64,
    value: f64,
    q_max: f64,
    key: u32,
}

/// splitmix64 step mapped to `[0, 1)` — a tiny deterministic stream so
/// the churn trace is reproducible from the proptest-chosen seed alone.
fn next_unit(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

fn churn_row(rng: &mut u64, key: u32) -> ChurnRow {
    ChurnRow {
        w_raw: 0.5 + 4.5 * next_unit(rng),
        g2: 4.0 + 32.0 * next_unit(rng),
        cost: 10.0_f64.powf(-2.0 + 6.0 * next_unit(rng)),
        value: if next_unit(rng) < 0.3 {
            0.0
        } else {
            5_000.0 * next_unit(rng)
        },
        q_max: 0.2 + 0.8 * next_unit(rng),
        key,
    }
}

/// Raw-weight keyed-index inputs assembled the way the service does it:
/// `w2g2 = w_raw² · g2` with `scale = W²` for the current population.
struct ChurnCols {
    w2g2: Vec<f64>,
    cost: Vec<f64>,
    value: Vec<f64>,
    q_max: Vec<f64>,
    keys: Vec<u32>,
    scale: f64,
}

impl ChurnCols {
    fn from_rows(rows: &[ChurnRow]) -> Self {
        let total_w: f64 = rows.iter().map(|r| r.w_raw).sum();
        ChurnCols {
            w2g2: rows.iter().map(|r| r.w_raw * r.w_raw * r.g2).collect(),
            cost: rows.iter().map(|r| r.cost).collect(),
            value: rows.iter().map(|r| r.value).collect(),
            q_max: rows.iter().map(|r| r.q_max).collect(),
            keys: rows.iter().map(|r| r.key).collect(),
            scale: total_w * total_w,
        }
    }

    fn view(&self) -> IndexColumns<'_> {
        IndexColumns {
            w2g2: &self.w2g2,
            cost: &self.cost,
            value: &self.value,
            q_max: &self.q_max,
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn fast_solves_agree_on_random_populations(
        n in 2usize..300,
        seed in 0u64..1_000,
        variant in 0u8..3,
        frac in 1e-6f64..1.0,
        threads in 1usize..4,
    ) {
        let p = Population::synthesize(n, &spec_for(variant), seed).unwrap();
        let options = SolverOptions::with_threads(threads);
        let budget = path_budget(&p, &bound(), &options, frac);
        assert_fast_agrees(&p, budget, &options);
    }

    /// The incremental-patch contract: after any churn batch, patching the
    /// previous keyed index with only the dirty segments flagged is
    /// **bit-identical** to a cold keyed build of the new population —
    /// same thresholds, same prefix moments (structural `PartialEq`), and
    /// same probe bits — across segment counts {1, 2, 7, 32} × threads
    /// {1, 3}. The trace deliberately includes a remove-heavy batch that
    /// empties one segment and a flash-crowd batch that grows one.
    #[test]
    fn patched_index_is_bit_identical_to_cold_keyed_builds_under_churn(
        seed in 0u64..1_000,
        seg_choice in 0usize..4,
        threads in 1usize..4,
    ) {
        let segment_count = [1usize, 2, 7, 32][seg_choice];
        let mut rng = seed.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(0x14057B7E);
        let aor = bound().alpha_over_r();
        let q_min = SolverOptions::default().q_min;
        let mut rows: Vec<ChurnRow> = (0..120)
            .map(|_| {
                let key = (next_unit(&mut rng) * 64.0) as u32 % 64;
                churn_row(&mut rng, key)
            })
            .collect();
        let cols = ChurnCols::from_rows(&rows);
        let mut index = ActiveSetIndex::build_keyed(
            &cols.view(), &cols.keys, segment_count, aor, q_min, cols.scale, threads,
        );
        for step in 0..6u32 {
            let mut dirty = vec![false; segment_count];
            let touch = |key: u32, dirty: &mut Vec<bool>| {
                dirty[key as usize % segment_count] = true;
            };
            match step % 3 {
                0 => {
                    // Mixed churn: a few random departures, a few arrivals.
                    for _ in 0..8 {
                        if !rows.is_empty() {
                            let victim = (next_unit(&mut rng) * rows.len() as f64) as usize
                                % rows.len();
                            touch(rows[victim].key, &mut dirty);
                            rows.remove(victim);
                        }
                        let key = (next_unit(&mut rng) * 64.0) as u32 % 64;
                        touch(key, &mut dirty);
                        rows.push(churn_row(&mut rng, key));
                    }
                }
                1 => {
                    // Remove-heavy: drain every member of one segment, so
                    // the patch must rebuild it down to zero rows.
                    let target = (next_unit(&mut rng) * segment_count as f64) as usize
                        % segment_count;
                    dirty[target] = true;
                    rows.retain(|r| r.key as usize % segment_count != target);
                    if rows.is_empty() {
                        // Keep the population non-degenerate (W > 0).
                        let key = (target as u32).wrapping_add(1);
                        touch(key, &mut dirty);
                        rows.push(churn_row(&mut rng, key));
                    }
                }
                _ => {
                    // Flash crowd concentrated on one hot key.
                    let hot = (next_unit(&mut rng) * 64.0) as u32 % 64;
                    touch(hot, &mut dirty);
                    for _ in 0..40 {
                        rows.push(churn_row(&mut rng, hot));
                    }
                }
            }
            let cols = ChurnCols::from_rows(&rows);
            let cold = ActiveSetIndex::build_keyed(
                &cols.view(), &cols.keys, segment_count, aor, q_min, cols.scale, threads,
            );
            let (patched, stats) =
                index.patch(&cols.view(), &cols.keys, &dirty, cols.scale, threads);
            let dirty_count = dirty.iter().filter(|&&d| d).count();
            // Patch re-sorts exactly the dirty segments and accounts for
            // every segment, and the result matches the cold build
            // structurally (thresholds, permutations, prefix moments).
            prop_assert_eq!(stats.rebuilt, dirty_count);
            prop_assert_eq!(stats.rebuilt + stats.repaired + stats.reused, segment_count);
            prop_assert_eq!(&patched, &cold);
            prop_assert_eq!(
                patched.floor_spend().to_bits(),
                cold.floor_spend().to_bits()
            );
            prop_assert_eq!(
                patched.saturated_spend().to_bits(),
                cold.saturated_spend().to_bits()
            );
            let hi = cold.bracket_hi();
            for k in 0..9 {
                let t = hi * (0.05 + 0.95 * f64::from(k) / 8.0);
                prop_assert_eq!(patched.spend(t).to_bits(), cold.spend(t).to_bits());
            }
            index = patched;
        }
    }
}
