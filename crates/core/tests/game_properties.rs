//! Property-based tests for the CPL game: the structural results of
//! Section V must hold across randomly-drawn populations, bounds and
//! budgets, not just the hand-picked fixtures of the unit tests.

use fedfl_core::bound::BoundParams;
use fedfl_core::population::{Population, Q_MIN};
use fedfl_core::pricing::PricingScheme;
use fedfl_core::response::{best_response, inverse_price, own_utility};
use fedfl_core::server::{solve_kkt, SolverOptions};
use proptest::prelude::*;

/// Strategy: a small random population with normalised weights.
fn population_strategy() -> impl Strategy<Value = Population> {
    (2usize..8)
        .prop_flat_map(|n| {
            (
                prop::collection::vec(0.1f64..10.0, n),  // raw weights
                prop::collection::vec(0.5f64..50.0, n),  // G²
                prop::collection::vec(5.0f64..200.0, n), // c
                prop::collection::vec(0.0f64..20.0, n),  // v
            )
        })
        .prop_map(|(raw_w, g2, c, v)| {
            let total: f64 = raw_w.iter().sum();
            let weights: Vec<f64> = raw_w.iter().map(|w| w / total).collect();
            Population::builder()
                .weights(weights)
                .g_squared(g2)
                .costs(c)
                .values(v)
                .build()
                .expect("strategy produces valid populations")
        })
}

fn bound_strategy() -> impl Strategy<Value = BoundParams> {
    (100.0f64..20_000.0, 0.0f64..500.0, 50usize..2_000)
        .prop_map(|(alpha, beta, r)| BoundParams::new(alpha, beta, r).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn best_response_satisfies_first_order_condition(
        population in population_strategy(),
        bound in bound_strategy(),
        price in -50.0f64..200.0,
    ) {
        for c in population.iter() {
            let q = best_response(c, &bound, price).unwrap();
            prop_assert!((0.0..=c.q_max).contains(&q));
            if q > 1e-9 && q < c.q_max - 1e-9 {
                // Interior: the FOC must hold.
                let k = c.value * bound.alpha_over_r() * c.a2g2();
                let foc = price + k / (q * q) - 2.0 * c.cost * q;
                let scale = price.abs().max(2.0 * c.cost * q).max(1.0);
                prop_assert!(foc.abs() / scale < 1e-6, "FOC residual {foc}");
            }
        }
    }

    #[test]
    fn inverse_price_is_a_right_inverse(
        population in population_strategy(),
        bound in bound_strategy(),
        q in 0.05f64..0.95,
    ) {
        for c in population.iter() {
            let p = inverse_price(c, &bound, q).unwrap();
            let q_back = best_response(c, &bound, p).unwrap();
            prop_assert!((q_back - q).abs() < 1e-7, "{q} -> {p} -> {q_back}");
        }
    }

    #[test]
    fn kkt_solution_is_feasible_and_budget_monotone(
        population in population_strategy(),
        bound in bound_strategy(),
        budget in 0.1f64..100.0,
    ) {
        let options = SolverOptions::default();
        let sol = solve_kkt(&population, &bound, budget, &options).unwrap();
        // Feasibility.
        prop_assert!(sol.spent <= budget + 1e-6 * budget.abs().max(1.0));
        for (c, &q) in population.iter().zip(&sol.q) {
            prop_assert!(q >= options.q_min - 1e-12 && q <= c.q_max + 1e-12);
        }
        // Proposition 1: more budget never hurts any client's q.
        let bigger = solve_kkt(&population, &bound, budget * 1.5, &options).unwrap();
        for (a, b) in sol.q.iter().zip(&bigger.q) {
            prop_assert!(*b >= a - 1e-9);
        }
        prop_assert!(
            bigger.variance_term(&population, &bound)
                <= sol.variance_term(&population, &bound) + 1e-9
        );
    }

    #[test]
    fn equilibrium_prices_implement_the_profile(
        population in population_strategy(),
        bound in bound_strategy(),
        budget in 0.5f64..50.0,
    ) {
        let options = SolverOptions::default();
        let sol = solve_kkt(&population, &bound, budget, &options).unwrap();
        for (n, c) in population.iter().enumerate() {
            if sol.q[n] > Q_MIN * 1.01 {
                let br = best_response(c, &bound, sol.prices[n]).unwrap();
                prop_assert!(
                    (br - sol.q[n]).abs() < 1e-6,
                    "client {n}: br {br} vs q {}", sol.q[n]
                );
            }
            // No profitable deviation on a coarse grid.
            let u_star = own_utility(c, &bound, sol.prices[n], sol.q[n]);
            for i in 1..=20 {
                let q = i as f64 / 20.0 * c.q_max;
                let u = own_utility(c, &bound, sol.prices[n], q);
                prop_assert!(u <= u_star + 1e-6 * u_star.abs().max(1.0));
            }
        }
    }

    #[test]
    fn optimal_pricing_dominates_baselines_on_the_bound(
        population in population_strategy(),
        bound in bound_strategy(),
        budget in 1.0f64..50.0,
    ) {
        let options = SolverOptions::default();
        let optimal = PricingScheme::Optimal
            .solve(&population, &bound, budget, &options)
            .unwrap();
        for scheme in [PricingScheme::Uniform, PricingScheme::Weighted] {
            let baseline = scheme.solve(&population, &bound, budget, &options).unwrap();
            prop_assert!(
                optimal.variance_term(&population, &bound)
                    <= baseline.variance_term(&population, &bound) + 1e-6,
                "{} beat optimal", scheme.name()
            );
        }
    }

    #[test]
    fn theorem2_invariant_across_random_games(
        population in population_strategy(),
        bound in bound_strategy(),
        budget in 1.0f64..30.0,
    ) {
        let options = SolverOptions::default();
        let sol = solve_kkt(&population, &bound, budget, &options).unwrap();
        if sol.saturated {
            return Ok(());
        }
        let coef = 4.0 / bound.alpha_over_r();
        let invariants: Vec<f64> = population
            .iter()
            .zip(&sol.q)
            .filter(|(c, &q)| q > options.q_min * 1.01 && q < c.q_max * 0.999)
            .map(|(c, &q)| coef * c.cost * q.powi(3) / c.a2g2() + c.value)
            .collect();
        if invariants.len() >= 2 {
            let first = invariants[0];
            for inv in &invariants {
                prop_assert!(
                    (inv - first).abs() / first.abs().max(1.0) < 1e-5,
                    "invariant spread: {invariants:?}"
                );
            }
        }
    }

    #[test]
    fn bound_is_monotone_in_every_q(
        population in population_strategy(),
        bound in bound_strategy(),
        base_q in 0.1f64..0.8,
    ) {
        let n = population.len();
        let q = vec![base_q; n];
        let gap = bound.optimality_gap(&population, &q);
        for i in 0..n {
            let mut up = q.clone();
            up[i] += 0.1;
            prop_assert!(bound.optimality_gap(&population, &up) <= gap + 1e-12);
        }
        // Full participation is the floor.
        let full = bound.optimality_gap(&population, &vec![1.0; n]);
        prop_assert!(full <= gap + 1e-12);
    }
}
