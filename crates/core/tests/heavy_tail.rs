//! Heavy-tail regression: the budget bisection and its warm-start
//! containment search must terminate on the tolerance / f64-resolution
//! stop — never on the iteration cap — even when the population's cost
//! spread puts the saturation parameter 50+ decades above the budget root.
//!
//! With the old 200-iteration default cap, a Pareto-like cost spread
//! (`t_hi / t* > 2^200`) silently cap-terminated the cold bisection and
//! truncated the hinted search's containment chain at the cap depth,
//! pinning the returned path parameter to a cap-width bracket instead of
//! the achievable f64 resolution.

use fedfl_core::bound::BoundParams;
use fedfl_core::population::{ParamDist, Population, PopulationSpec};
use fedfl_core::server::{path_budget, solve_kkt_columns_hinted, SolverConfig, SolverOptions};

fn bound() -> BoundParams {
    BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
}

/// One cheap heavy client plus expensive feather-weight clients: the
/// saturation parameter is ~1e53 while the budget root sits near 1e-7 —
/// a bracket whose dyadic depth (to the 1e-10 tolerance) exceeds 200.
fn extreme_spread_population() -> Population {
    Population::builder()
        .weights(vec![1.0 - 1e-19, 5e-20, 5e-20])
        .g_squared(vec![4.0, 4.0, 4.0])
        .costs(vec![1e-6, 1e15, 1e15])
        .values(vec![0.0, 0.0, 0.0])
        .build()
        .unwrap()
}

#[test]
fn resolution_stop_not_the_cap_terminates_on_extreme_cost_spreads() {
    let p = extreme_spread_population();
    let b = bound();
    let opts = SolverOptions::default();
    // A budget whose root lies ~60 decades below the saturation parameter.
    let budget = path_budget(&p, &b, &opts, 1e-60);
    let cols = p.columns();
    let (cold, diag) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, None).unwrap();
    assert!(
        diag.bisect_iterations < opts.config.max_iters,
        "cold bisection cap-terminated: {} iterations at the {} cap",
        diag.bisect_iterations,
        opts.config.max_iters
    );
    // The pre-fix cap (200) sat below this bracket's dyadic depth.
    assert!(
        diag.bisect_iterations > 200,
        "expected a bracket deeper than the old 200-iteration cap, got {}",
        diag.bisect_iterations
    );
    assert!(!cold.saturated);
    assert!(diag.t_star.is_finite() && diag.t_star > 0.0);
    assert!(
        (cold.spent - budget).abs() <= 1e-6 * budget.abs().max(1.0),
        "budget not tight: spent {} vs {budget}",
        cold.spent
    );

    // Warm starts — exact, perturbed, wildly stale, and near-zero hints —
    // stay bit-identical and never run more iterations than the cold
    // solve, and the containment chain no longer stagnates at the cap.
    for hint in [
        diag.t_star,
        diag.t_star * 2.0,
        diag.t_star * 1e20,
        1e-30,
        f64::MIN_POSITIVE,
    ] {
        let (warm, wd) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, Some(hint)).unwrap();
        assert_eq!(warm, cold, "hint {hint:e} diverged");
        assert!(
            wd.bisect_iterations <= diag.bisect_iterations,
            "hint {hint:e}: warm {} > cold {} iterations",
            wd.bisect_iterations,
            diag.bisect_iterations
        );
        assert!(
            wd.bisect_iterations + wd.warm_start_depth < opts.config.max_iters,
            "hint {hint:e}: search cap-terminated ({} + {})",
            wd.bisect_iterations,
            wd.warm_start_depth
        );
    }
}

#[test]
fn f64_resolution_stop_terminates_below_any_tolerance() {
    // With a tolerance far below f64 resolution, only the resolution
    // stagnation stop can end the search — assert it does, well under the
    // cap, and that hints keep the bit-identity contract there.
    let p = extreme_spread_population();
    let b = bound();
    let opts = SolverOptions {
        config: SolverConfig {
            tolerance: 1e-300,
            ..SolverConfig::default()
        },
        ..SolverOptions::default()
    };
    let budget = path_budget(&p, &b, &opts, 1e-60);
    let cols = p.columns();
    let (cold, diag) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, None).unwrap();
    assert!(
        diag.bisect_iterations < opts.config.max_iters,
        "resolution stop never fired: {} iterations",
        diag.bisect_iterations
    );
    let (warm, wd) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, Some(diag.t_star)).unwrap();
    assert_eq!(warm, cold);
    assert!(wd.warm_start_depth > 100, "depth {}", wd.warm_start_depth);
    assert!(wd.bisect_iterations + wd.warm_start_depth < opts.config.max_iters);
}

#[test]
fn pareto_cost_spread_churns_stay_bit_identical_under_hints() {
    // A synthesized Pareto-like cost spread (12 decades) across a real
    // population: every stale hint must reproduce the cold solve exactly
    // and terminate off-cap.
    let spec = PopulationSpec {
        weight: ParamDist::BoundedPareto {
            lo: 1.0,
            hi: 1e6,
            alpha: 0.8,
        },
        g_squared: ParamDist::Uniform { lo: 4.0, hi: 36.0 },
        cost: ParamDist::BoundedPareto {
            lo: 1e-4,
            hi: 1e8,
            alpha: 0.5,
        },
        value: ParamDist::Exponential { mean: 4_000.0 },
        q_max: 1.0,
    };
    let p = Population::synthesize(2_000, &spec, 11).unwrap();
    let b = bound();
    let opts = SolverOptions::default();
    for frac in [1e-9, 1e-3, 0.3, 0.9] {
        let budget = path_budget(&p, &b, &opts, frac);
        let cols = p.columns();
        let (cold, diag) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, None).unwrap();
        assert!(
            diag.bisect_iterations < opts.config.max_iters,
            "frac {frac}"
        );
        for factor in [1.0, 1.001, 0.5, 2.0, 1e-6, 1e6, 1e-12] {
            let (warm, wd) =
                solve_kkt_columns_hinted(&cols, &b, budget, &opts, Some(diag.t_star * factor))
                    .unwrap();
            assert_eq!(warm, cold, "frac {frac} factor {factor}");
            assert!(
                wd.bisect_iterations <= diag.bisect_iterations,
                "frac {frac} factor {factor}: warm {} > cold {}",
                wd.bisect_iterations,
                diag.bisect_iterations
            );
        }
    }
}
