//! Error type for the game crate.

use fedfl_num::NumError;
use std::fmt;

/// Error returned by game construction and equilibrium solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum GameError {
    /// A parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the violated constraint.
        reason: String,
    },
    /// Client-parameter vectors disagree in length.
    LengthMismatch {
        /// Expected length.
        expected: usize,
        /// Found length.
        found: usize,
    },
    /// An underlying numeric routine failed.
    Numeric(NumError),
    /// The solver could not produce an equilibrium.
    SolverFailed {
        /// Which solver failed.
        solver: &'static str,
        /// Why it failed.
        reason: String,
    },
}

impl fmt::Display for GameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GameError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            GameError::LengthMismatch { expected, found } => {
                write!(
                    f,
                    "length mismatch: expected {expected} clients, found {found}"
                )
            }
            GameError::Numeric(e) => write!(f, "numeric error: {e}"),
            GameError::SolverFailed { solver, reason } => {
                write!(f, "{solver} failed: {reason}")
            }
        }
    }
}

impl std::error::Error for GameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GameError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NumError> for GameError {
    fn from(e: NumError) -> Self {
        GameError::Numeric(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(GameError::LengthMismatch {
            expected: 4,
            found: 3
        }
        .to_string()
        .contains("4"));
        let e: GameError = NumError::EmptyInput.into();
        assert!(std::error::Error::source(&e).is_some());
        assert!(GameError::SolverFailed {
            solver: "kkt",
            reason: "no bracket".into()
        }
        .to_string()
        .contains("kkt"));
    }
}
