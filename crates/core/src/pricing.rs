//! The pricing schemes compared in Section VI of the paper.
//!
//! * **Optimal** — the paper's mechanism: Stage-I prices from the KKT path
//!   (customised per client using `a_n² G_n²`, `c_n`, `v_n`).
//! * **Uniform** — one price for everyone, tuned so the induced payments
//!   exhaust the budget (the "uniform pricing Pᵘ" baseline).
//! * **Weighted** — prices proportional to datasize (`P_n = θ d_n`), tuned
//!   the same way (the "weighted pricing Pʷ" baseline).
//!
//! Every scheme produces a [`PricingOutcome`]: the price vector, the
//! participation profile the clients best-respond with, and the realised
//! spend. Baseline schemes floor the induced levels at the solver's `q_min`
//! so the resulting profile is always usable by the unbiased aggregation of
//! Lemma 1 (which needs `q_n > 0`).

use crate::bound::BoundParams;
use crate::error::GameError;
use crate::population::Population;
use crate::response::best_response;
use crate::server::{solve_kkt, SolverOptions, StageOneSolution};
use fedfl_num::solve::bisect_monotone_with;
use serde::{Deserialize, Serialize};

/// Which pricing scheme the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PricingScheme {
    /// The paper's optimal customised pricing (Section V).
    Optimal,
    /// One common price for all clients.
    Uniform,
    /// Prices proportional to client datasize.
    Weighted,
}

impl PricingScheme {
    /// Name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            PricingScheme::Optimal => "proposed",
            PricingScheme::Uniform => "uniform",
            PricingScheme::Weighted => "weighted",
        }
    }

    /// All schemes in the paper's column order (proposed, weighted, uniform).
    pub fn all() -> [PricingScheme; 3] {
        [
            PricingScheme::Optimal,
            PricingScheme::Weighted,
            PricingScheme::Uniform,
        ]
    }

    /// Compute this scheme's prices and the induced participation profile
    /// under budget `budget`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] for invalid inputs; baseline schemes also
    /// reject negative budgets (they cannot charge clients).
    pub fn solve(
        &self,
        population: &Population,
        bound: &BoundParams,
        budget: f64,
        options: &SolverOptions,
    ) -> Result<PricingOutcome, GameError> {
        match self {
            PricingScheme::Optimal => {
                let StageOneSolution {
                    q,
                    prices,
                    spent,
                    saturated,
                    ..
                } = solve_kkt(population, bound, budget, options)?;
                Ok(PricingOutcome {
                    scheme: *self,
                    prices,
                    q,
                    spent,
                    saturated,
                })
            }
            PricingScheme::Uniform => {
                solve_scaled(*self, population, bound, budget, options, |_n, scale| scale)
            }
            PricingScheme::Weighted => {
                let n = population.len() as f64;
                let weights = population.weights();
                solve_scaled(
                    *self,
                    population,
                    bound,
                    budget,
                    options,
                    move |i, scale| {
                        // Normalise so that `scale` is the mean price; keeps the
                        // bisection range comparable with the uniform scheme.
                        scale * weights[i] * n
                    },
                )
            }
        }
    }
}

/// A pricing scheme's prices and the clients' induced responses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PricingOutcome {
    /// Which scheme produced this outcome.
    pub scheme: PricingScheme,
    /// Per-client prices `P_n`.
    pub prices: Vec<f64>,
    /// Induced participation levels (floored at the solver's `q_min`).
    pub q: Vec<f64>,
    /// Realised total payment `Σ P_n q_n`.
    pub spent: f64,
    /// Whether every client saturated at `q_max` with budget left over.
    pub saturated: bool,
}

impl PricingOutcome {
    /// The Theorem 1 variance term at the induced profile (lower is better
    /// for the server).
    pub fn variance_term(&self, population: &Population, bound: &BoundParams) -> f64 {
        bound.variance_term(population, &self.q)
    }

    /// The full optimality-gap bound at the induced profile.
    pub fn optimality_gap(&self, population: &Population, bound: &BoundParams) -> f64 {
        bound.optimality_gap(population, &self.q)
    }

    /// Number of clients that pay the server (negative price).
    pub fn negative_payment_count(&self) -> usize {
        self.prices
            .iter()
            .zip(&self.q)
            .filter(|(&p, &q)| p * q < 0.0)
            .count()
    }
}

/// Shared solver for the scale-parameterised baselines: prices are
/// `P_n = shape(n, scale)` and the scalar `scale ≥ 0` is bisected until the
/// induced spend meets the budget (or everyone saturates).
fn solve_scaled<F>(
    scheme: PricingScheme,
    population: &Population,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    shape: F,
) -> Result<PricingOutcome, GameError>
where
    F: Fn(usize, f64) -> f64,
{
    if !(budget.is_finite() && budget >= 0.0) {
        return Err(GameError::InvalidParameter {
            name: "budget",
            reason: format!("baseline schemes need a non-negative budget, got {budget}"),
        });
    }
    let respond = |scale: f64| -> Result<(Vec<f64>, Vec<f64>, f64), GameError> {
        let mut prices = Vec::with_capacity(population.len());
        let mut q = Vec::with_capacity(population.len());
        let mut spent = 0.0;
        for (i, c) in population.iter().enumerate() {
            let p = shape(i, scale);
            let raw = best_response(c, bound, p)?;
            let level = raw.clamp(options.q_min, c.q_max);
            spent += p * level;
            prices.push(p);
            q.push(level);
        }
        Ok((prices, q, spent))
    };

    // Exponential search for an upper scale, then bisection. Spend grows
    // without bound in the scale (payments keep rising after saturation), so
    // the doubling always terminates for positive budgets.
    let mut hi = 1.0;
    for _ in 0..200 {
        let (_, _, spent) = respond(hi)?;
        if spent >= budget {
            break;
        }
        hi *= 2.0;
    }
    let scale = bisect_monotone_with(
        |s| match respond(s) {
            Ok((_, _, spent)) => spent,
            Err(_) => f64::INFINITY,
        },
        budget,
        0.0,
        hi,
        options.config.tolerance,
        options.config.max_iters,
    )?;
    let (prices, q, spent) = respond(scale)?;
    let saturated = q
        .iter()
        .zip(population.iter())
        .all(|(&qi, c)| qi >= c.q_max - 1e-9);
    Ok(PricingOutcome {
        scheme,
        prices,
        q,
        spent,
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Population {
        Population::builder()
            .weights(vec![0.4, 0.3, 0.2, 0.1])
            .g_squared(vec![9.0, 16.0, 25.0, 36.0])
            .costs(vec![30.0, 50.0, 70.0, 90.0])
            .values(vec![0.0, 2.0, 5.0, 10.0])
            .build()
            .unwrap()
    }

    fn bound() -> BoundParams {
        BoundParams::new(4000.0, 100.0, 1000).unwrap()
    }

    #[test]
    fn all_schemes_respect_the_budget() {
        let p = population();
        let b = bound();
        let budget = 10.0;
        for scheme in PricingScheme::all() {
            let outcome = scheme
                .solve(&p, &b, budget, &SolverOptions::default())
                .unwrap();
            assert!(
                outcome.spent <= budget + 1e-6,
                "{} overspent: {}",
                scheme.name(),
                outcome.spent
            );
            assert_eq!(outcome.q.len(), p.len());
            assert!(outcome.q.iter().all(|&q| q > 0.0 && q <= 1.0));
        }
    }

    #[test]
    fn optimal_achieves_the_lowest_bound() {
        // The whole point of the mechanism: for the same budget, customised
        // pricing beats both baselines on the convergence bound.
        let p = population();
        let b = bound();
        let budget = 10.0;
        let gaps: Vec<(PricingScheme, f64)> = PricingScheme::all()
            .into_iter()
            .map(|s| {
                let o = s.solve(&p, &b, budget, &SolverOptions::default()).unwrap();
                (s, o.optimality_gap(&p, &b))
            })
            .collect();
        let optimal_gap = gaps[0].1;
        for (scheme, gap) in &gaps[1..] {
            assert!(
                optimal_gap <= gap + 1e-9,
                "{} beat the optimal scheme: {gap} < {optimal_gap}",
                scheme.name()
            );
        }
    }

    #[test]
    fn uniform_prices_are_uniform() {
        let p = population();
        let o = PricingScheme::Uniform
            .solve(&p, &bound(), 10.0, &SolverOptions::default())
            .unwrap();
        let first = o.prices[0];
        assert!(o.prices.iter().all(|&x| (x - first).abs() < 1e-9));
        assert!(first >= 0.0);
    }

    #[test]
    fn weighted_prices_scale_with_datasize() {
        let p = population();
        let o = PricingScheme::Weighted
            .solve(&p, &bound(), 10.0, &SolverOptions::default())
            .unwrap();
        // P_n / a_n constant.
        let ratios: Vec<f64> = o
            .prices
            .iter()
            .zip(p.weights())
            .map(|(&pr, a)| pr / a)
            .collect();
        let first = ratios[0];
        assert!(
            ratios
                .iter()
                .all(|&r| (r - first).abs() < 1e-6 * first.abs().max(1.0)),
            "{ratios:?}"
        );
        // The largest client has the largest price.
        assert!(o.prices[0] > o.prices[3]);
    }

    #[test]
    fn baselines_spend_the_whole_budget_when_not_saturated() {
        let p = population();
        let b = bound();
        let budget = 10.0;
        for scheme in [PricingScheme::Uniform, PricingScheme::Weighted] {
            let o = scheme
                .solve(&p, &b, budget, &SolverOptions::default())
                .unwrap();
            if !o.saturated {
                assert!(
                    (o.spent - budget).abs() < 1e-5,
                    "{} left budget unspent: {}",
                    scheme.name(),
                    o.spent
                );
            }
        }
    }

    #[test]
    fn baselines_reject_negative_budget() {
        let p = population();
        let b = bound();
        assert!(PricingScheme::Uniform
            .solve(&p, &b, -5.0, &SolverOptions::default())
            .is_err());
        assert!(PricingScheme::Weighted
            .solve(&p, &b, -5.0, &SolverOptions::default())
            .is_err());
    }

    #[test]
    fn zero_budget_baselines_rely_on_intrinsic_value() {
        let p = population();
        let b = bound();
        let o = PricingScheme::Uniform
            .solve(&p, &b, 0.0, &SolverOptions::default())
            .unwrap();
        // Price 0: only intrinsic-value clients participate above the floor.
        assert!(o.prices.iter().all(|&x| x.abs() < 1e-6));
        assert!(o.q[3] > o.q[0], "high-value client should participate more");
    }

    #[test]
    fn scheme_names_and_order() {
        assert_eq!(
            PricingScheme::all().map(|s| s.name()),
            ["proposed", "weighted", "uniform"]
        );
    }

    #[test]
    fn negative_payment_count_detects_bidirectional_payments() {
        // Give one client an enormous intrinsic value: at the optimum it
        // should pay the server.
        let p = Population::builder()
            .weights(vec![0.5, 0.5])
            .g_squared(vec![4.0, 4.0])
            .costs(vec![50.0, 50.0])
            .values(vec![0.0, 100_000.0])
            .build()
            .unwrap();
        let b = bound();
        let o = PricingScheme::Optimal
            .solve(&p, &b, 10.0, &SolverOptions::default())
            .unwrap();
        assert!(
            o.negative_payment_count() >= 1,
            "expected a negative payment, got prices {:?}",
            o.prices
        );
    }
}
