//! Generalised cost exponent τ > 1 (the paper's Section III-B claim).
//!
//! The paper models local cost as `C_n = c_n q_n^τ` with `τ > 1`, sets
//! `τ = 2` "for analytical tractability", and claims "our theoretical
//! results in this paper also hold for an arbitrary τ > 1". This module
//! makes that claim executable:
//!
//! * Stage II: the first-order condition becomes
//!   `P + K/q² − τ c q^{τ−1} = 0`, whose left side is strictly decreasing
//!   on `q > 0`, so the best response is still unique
//!   ([`best_response_tau`], solved by bisection);
//! * the inverse price map generalises to
//!   `P(q) = τ c q^{τ−1} − K/q²` ([`inverse_price_tau`]);
//! * Stage I: the KKT condition generalises (22) to
//!   `1/λ = τ² c q^{τ+1} / ((α/R) a²G²) + v`, so the optimal profile is
//!   again a one-parameter family
//!   `q_n(t) = clamp( ((α/R)·a²G²·(t − v)/(τ² c))^{1/(τ+1)} )` and the
//!   tight-budget bisection of Lemma 3 carries over ([`solve_kkt_tau`]).
//!
//! For `τ = 2` everything here reproduces the closed-form cubic machinery
//! of [`crate::response`] and [`crate::server`] exactly (tested).

use crate::bound::BoundParams;
use crate::error::GameError;
use crate::population::Population;
use crate::response::intrinsic_gain;
use crate::server::{SolverOptions, StageOneSolution};
use fedfl_num::roots::bisect;
use fedfl_num::solve::bisect_monotone_with;

fn validate_tau(tau: f64) -> Result<(), GameError> {
    if !(tau.is_finite() && tau > 1.0) {
        return Err(GameError::InvalidParameter {
            name: "tau",
            reason: format!("cost exponent must be finite and > 1, got {tau}"),
        });
    }
    Ok(())
}

/// Best response under cost `c q^τ`: the unique positive root of
/// `P + K/q² − τ c q^{τ−1} = 0`, clamped to `[0, q_max]`.
///
/// # Errors
///
/// Returns [`GameError`] for invalid `tau`, a non-finite price, or an
/// invalid client profile.
pub fn best_response_tau(
    client: &crate::population::ClientProfile,
    bound: &BoundParams,
    price: f64,
    tau: f64,
) -> Result<f64, GameError> {
    validate_tau(tau)?;
    client.validate()?;
    if !price.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "price",
            reason: format!("must be finite, got {price}"),
        });
    }
    let k = intrinsic_gain(client, bound);
    let c = client.cost;
    if k == 0.0 {
        // No intrinsic value: q* solves P = τ c q^{τ−1} for P > 0, else 0.
        if price <= 0.0 {
            return Ok(0.0);
        }
        return Ok((price / (tau * c))
            .powf(1.0 / (tau - 1.0))
            .min(client.q_max));
    }
    // f(q) = P + K/q² − τ c q^{τ−1}: +∞ at 0+, strictly decreasing.
    let f = |q: f64| price + k / (q * q) - tau * c * q.powf(tau - 1.0);
    // Bracket: start above any root.
    let mut hi = 1.0;
    while f(hi) > 0.0 && hi < 1e9 {
        hi *= 2.0;
    }
    let lo = 1e-12;
    if f(lo) < 0.0 {
        return Ok(0.0);
    }
    let root = bisect(f, lo, hi, 1e-13).map_err(GameError::from)?;
    Ok(root.min(client.q_max))
}

/// The price that makes `q` the best response under exponent `tau`:
/// `P(q) = τ c q^{τ−1} − K/q²`.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] unless `q > 0` and `tau > 1`.
pub fn inverse_price_tau(
    client: &crate::population::ClientProfile,
    bound: &BoundParams,
    q: f64,
    tau: f64,
) -> Result<f64, GameError> {
    validate_tau(tau)?;
    if !(q.is_finite() && q > 0.0) {
        return Err(GameError::InvalidParameter {
            name: "q",
            reason: format!("must be finite and positive, got {q}"),
        });
    }
    Ok(tau * client.cost * q.powf(tau - 1.0) - intrinsic_gain(client, bound) / (q * q))
}

/// Total payment `Σ P_n(q_n) q_n = Σ (τ c q^τ − K/q)` under exponent `tau`.
fn spend_tau(population: &Population, bound: &BoundParams, q: &[f64], tau: f64) -> f64 {
    population
        .iter()
        .zip(q)
        .map(|(c, &qn)| tau * c.cost * qn.powf(tau) - intrinsic_gain(c, bound) / qn)
        .sum()
}

/// Participation profile along the generalised KKT path at `t = 1/λ`.
fn q_path_tau(
    population: &Population,
    bound: &BoundParams,
    options: &SolverOptions,
    t: f64,
    tau: f64,
) -> Vec<f64> {
    population
        .iter()
        .map(|c| {
            let slack = (t - c.value).max(0.0);
            let raw = (bound.alpha_over_r() * c.a2g2() * slack / (tau * tau * c.cost))
                .powf(1.0 / (tau + 1.0));
            raw.clamp(options.q_min, c.q_max)
        })
        .collect()
}

/// Stage-I solver for an arbitrary cost exponent `tau > 1`, generalising
/// [`crate::server::solve_kkt`].
///
/// # Errors
///
/// Returns [`GameError`] for invalid inputs.
pub fn solve_kkt_tau(
    population: &Population,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    tau: f64,
) -> Result<StageOneSolution, GameError> {
    validate_tau(tau)?;
    if !budget.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "budget",
            reason: format!("must be finite, got {budget}"),
        });
    }
    // t that saturates every client at its cap:
    // t = τ² c q_max^{τ+1} / ((α/R) a²G²) + v.
    let t_hi = population
        .iter()
        .map(|c| {
            tau * tau * c.cost * c.q_max.powf(tau + 1.0) / (bound.alpha_over_r() * c.a2g2())
                + c.value
        })
        .fold(0.0f64, f64::max)
        * (1.0 + 1e-12)
        + 1e-12;
    let q_at = |t: f64| q_path_tau(population, bound, options, t, tau);
    let spend_at = |t: f64| spend_tau(population, bound, &q_at(t), tau);

    let (q, lambda, saturated) = if spend_at(t_hi) <= budget {
        (q_at(t_hi), None, true)
    } else {
        let t_star = bisect_monotone_with(
            spend_at,
            budget,
            0.0,
            t_hi,
            options.config.tolerance,
            options.config.max_iters,
        )?;
        let lambda = if t_star > 0.0 {
            Some(1.0 / t_star)
        } else {
            None
        };
        (q_at(t_star), lambda, false)
    };
    let prices = population
        .iter()
        .zip(&q)
        .map(|(c, &qn)| inverse_price_tau(c, bound, qn, tau))
        .collect::<Result<Vec<f64>, _>>()?;
    let spent = spend_tau(population, bound, &q, tau);
    Ok(StageOneSolution {
        q,
        prices,
        spent,
        lambda,
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::ClientProfile;
    use crate::response::{best_response, inverse_price};
    use crate::server::solve_kkt;

    fn client(cost: f64, value: f64) -> ClientProfile {
        ClientProfile {
            weight: 0.1,
            g_squared: 25.0,
            cost,
            value,
            q_max: 1.0,
        }
    }

    fn bound() -> BoundParams {
        BoundParams::new(1_000.0, 0.0, 1_000).unwrap()
    }

    fn population() -> Population {
        Population::builder()
            .weights(vec![0.4, 0.3, 0.2, 0.1])
            .g_squared(vec![9.0, 16.0, 25.0, 36.0])
            .costs(vec![30.0, 50.0, 70.0, 90.0])
            .values(vec![0.0, 2.0, 5.0, 10.0])
            .build()
            .unwrap()
    }

    #[test]
    fn tau_two_matches_the_cubic_machinery() {
        let b = bound();
        for &(cost, value, price) in &[(50.0, 40.0, 10.0), (20.0, 0.0, 30.0), (80.0, 90.0, -5.0)] {
            let c = client(cost, value);
            let q_tau = best_response_tau(&c, &b, price, 2.0).unwrap();
            let q_cubic = best_response(&c, &b, price).unwrap();
            assert!(
                (q_tau - q_cubic).abs() < 1e-8,
                "mismatch at (c={cost}, v={value}, P={price}): {q_tau} vs {q_cubic}"
            );
        }
    }

    #[test]
    fn tau_two_inverse_price_matches() {
        let b = bound();
        let c = client(50.0, 40.0);
        for &q in &[0.1, 0.5, 0.9] {
            let p_tau = inverse_price_tau(&c, &b, q, 2.0).unwrap();
            let p_cubic = inverse_price(&c, &b, q).unwrap();
            assert!((p_tau - p_cubic).abs() < 1e-10);
        }
    }

    #[test]
    fn tau_two_stage_one_matches_solve_kkt() {
        let p = population();
        let b = bound();
        let sol_tau = solve_kkt_tau(&p, &b, 10.0, &SolverOptions::default(), 2.0).unwrap();
        let sol = solve_kkt(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        for (a, c) in sol_tau.q.iter().zip(&sol.q) {
            assert!((a - c).abs() < 1e-7, "{:?} vs {:?}", sol_tau.q, sol.q);
        }
        assert!((sol_tau.spent - sol.spent).abs() < 1e-6);
    }

    #[test]
    fn best_response_satisfies_generalised_foc() {
        let b = bound();
        for &tau in &[1.5, 2.0, 2.5, 3.0, 4.0] {
            let c = client(50.0, 30.0);
            let q = best_response_tau(&c, &b, 15.0, tau).unwrap();
            assert!(q > 0.0 && q <= 1.0);
            if q < 1.0 {
                let k = intrinsic_gain(&c, &b);
                let foc = 15.0 + k / (q * q) - tau * c.cost * q.powf(tau - 1.0);
                assert!(foc.abs() < 1e-6, "tau={tau}: residual {foc}");
            }
        }
    }

    #[test]
    fn inverse_price_roundtrips_for_all_tau() {
        let b = bound();
        let c = client(60.0, 20.0);
        for &tau in &[1.3, 2.0, 3.5] {
            for &q in &[0.2, 0.6, 0.95] {
                let p = inverse_price_tau(&c, &b, q, tau).unwrap();
                let q_back = best_response_tau(&c, &b, p, tau).unwrap();
                assert!(
                    (q_back - q).abs() < 1e-7,
                    "tau={tau}: {q} -> {p} -> {q_back}"
                );
            }
        }
    }

    #[test]
    fn stage_one_budget_tight_for_all_tau() {
        let p = population();
        let b = bound();
        for &tau in &[1.5, 2.0, 3.0] {
            let sol = solve_kkt_tau(&p, &b, 10.0, &SolverOptions::default(), tau).unwrap();
            assert!(!sol.saturated, "tau={tau} unexpectedly saturated");
            assert!(
                (sol.spent - 10.0).abs() < 1e-6,
                "tau={tau}: spent {}",
                sol.spent
            );
            // Theorem 2 invariant generalises: τ²cq^{τ+1}/((α/R)a²G²)+v const.
            let invariants: Vec<f64> = p
                .iter()
                .zip(&sol.q)
                .filter(|(c, &q)| q > 1e-3 && q < c.q_max * 0.999)
                .map(|(c, &q)| {
                    tau * tau * c.cost * q.powf(tau + 1.0) / (b.alpha_over_r() * c.a2g2()) + c.value
                })
                .collect();
            if invariants.len() >= 2 {
                let first = invariants[0];
                for inv in &invariants {
                    assert!(
                        (inv - first).abs() / first.max(1.0) < 1e-5,
                        "tau={tau}: invariant spread {invariants:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn steeper_cost_curvature_flattens_participation() {
        // Higher τ penalises high q harder, so the spread of q* shrinks.
        let p = population();
        let b = bound();
        let spread = |tau: f64| {
            let sol = solve_kkt_tau(&p, &b, 10.0, &SolverOptions::default(), tau).unwrap();
            let max = sol.q.iter().cloned().fold(f64::MIN, f64::max);
            let min = sol.q.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(3.0) < spread(1.5), "spread did not shrink with tau");
    }

    #[test]
    fn zero_value_zero_price_stays_out_for_all_tau() {
        let b = bound();
        let c = client(50.0, 0.0);
        for &tau in &[1.2, 2.0, 5.0] {
            assert_eq!(best_response_tau(&c, &b, 0.0, tau).unwrap(), 0.0);
            assert_eq!(best_response_tau(&c, &b, -3.0, tau).unwrap(), 0.0);
        }
    }

    #[test]
    fn rejects_invalid_tau() {
        let b = bound();
        let c = client(50.0, 0.0);
        assert!(best_response_tau(&c, &b, 1.0, 1.0).is_err());
        assert!(best_response_tau(&c, &b, 1.0, 0.5).is_err());
        assert!(best_response_tau(&c, &b, 1.0, f64::NAN).is_err());
        assert!(inverse_price_tau(&c, &b, 0.5, 1.0).is_err());
        assert!(inverse_price_tau(&c, &b, 0.0, 2.0).is_err());
        assert!(solve_kkt_tau(&population(), &b, 10.0, &SolverOptions::default(), 1.0).is_err());
        assert!(
            solve_kkt_tau(&population(), &b, f64::NAN, &SolverOptions::default(), 2.0).is_err()
        );
    }
}
