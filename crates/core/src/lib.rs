//! # fedfl-core — the CPL Stackelberg game (the paper's contribution)
//!
//! This crate implements the incentive mechanism of *"Incentive Mechanism
//! Design for Unbiased Federated Learning with Randomized Client
//! Participation"* (Luo et al., ICDCS 2023):
//!
//! * [`population`] — per-client parameters: data weight `a_n`, gradient
//!   heterogeneity `G_n²`, local cost `c_n`, intrinsic value `v_n`.
//! * [`bound`] — the convergence bound of **Theorem 1**, the analytical
//!   surrogate that lets the server price client participation without
//!   training the model.
//! * [`response`] — **Stage II**: each client's best-response participation
//!   level, the unique positive root of the cubic first-order condition
//!   (13), and its inverse price map (17).
//! * [`server`] — **Stage I**: the server's optimal-pricing problem P1′,
//!   solved both by the KKT/λ-bisection derived from (22) and by the
//!   paper's literal two-step `M`-search over P1″.
//! * [`pricing`] — the three pricing schemes compared in Section VI:
//!   optimal (ours), uniform, and datasize-weighted.
//! * [`equilibrium`] — the Stackelberg equilibrium object with the
//!   property checks of Section V-C (budget tightness, Theorem 2 invariant,
//!   Theorem 3 payment-direction threshold, client utilities).
//! * [`game`] — the [`game::CplGame`] façade tying the stages together.
//! * [`active_set`] — the threshold-indexed active-set structure behind
//!   the opt-in sub-linear λ-probe fast path of the Stage-I solver.
//!
//! Extensions beyond the paper's main text (each named as future work in
//! its Section VII):
//!
//! * [`tau`] — arbitrary cost exponents `τ > 1` (the paper's claim that
//!   its results survive general convex costs, made executable);
//! * [`bayesian`] — incomplete information: prices posted from priors over
//!   `(c_n, v_n)` instead of known types;
//! * [`cost`] — the decoupled computation/communication cost model.
//!
//! # Example
//!
//! ```
//! use fedfl_core::bound::BoundParams;
//! use fedfl_core::game::CplGame;
//! use fedfl_core::population::Population;
//!
//! // Four clients with equal data but different costs/values.
//! let population = Population::builder()
//!     .weights(vec![0.25; 4])
//!     .g_squared(vec![4.0; 4])
//!     .costs(vec![30.0, 50.0, 70.0, 90.0])
//!     .values(vec![0.0, 10.0, 20.0, 40.0])
//!     .build()?;
//! let bound = BoundParams::new(2000.0, 50.0, 100)?;
//! let game = CplGame::new(population, bound, 25.0)?;
//! let se = game.solve()?;
//! assert!(se.is_budget_tight(1e-6) || se.is_saturated());
//! # Ok::<(), fedfl_core::GameError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active_set;
pub mod bayesian;
pub mod bound;
pub mod cost;
pub mod equilibrium;
pub mod error;
pub mod game;
pub mod population;
pub mod pricing;
pub mod response;
pub mod server;
pub mod shard;
pub mod tau;

pub use bound::BoundParams;
pub use equilibrium::StackelbergEquilibrium;
pub use error::GameError;
pub use game::CplGame;
pub use population::{ClientProfile, Population};
pub use pricing::PricingScheme;
pub use shard::ShardedPopulation;
