//! Incomplete information — the Bayesian extension the paper names as
//! future work ("we can adopt Bayesian method to model and analyze the
//! performance similarly with a higher complexity", footnote 1 and
//! Section VII).
//!
//! Under incomplete information the server still observes each client's
//! *public* parameters — data weight `a_n` and gradient heterogeneity
//! `G_n²` (both measurable from the warm-up) — but knows the private local
//! cost `c_n` and intrinsic value `v_n` only through priors. The posted
//! mechanism is **certainty-equivalent pricing with Bayesian budget
//! calibration**:
//!
//! 1. build the certainty-equivalent (CE) population by replacing each
//!    private type with its prior mean; the CE KKT path gives a bounded
//!    one-parameter family of candidate price vectors `P(t)` (the target
//!    level is floored at a small fraction of the cap so the `1/q²` term of
//!    the price map (17) stays finite);
//! 2. sample `n_samples` virtual type vectors from the priors and find the
//!    path point `t*` at which the *expected* spend — Monte-Carlo over true
//!    best responses to `P(t)` — meets the budget (Lemma 3 in expectation);
//! 3. post `P(t*)`.
//!
//! Clients then best-respond with their true types, so the realised spend
//! is random around the budget and the achieved bound is weakly worse than
//! the complete-information benchmark — the measurable "price of incomplete
//! information" reported by the harness.

use crate::bound::BoundParams;
use crate::error::GameError;
use crate::population::Population;
use crate::response::{best_response, inverse_price};
use crate::server::SolverOptions;
use fedfl_num::dist::Exponential;
use fedfl_num::parallel::{chunked_fill, chunked_sum};
use fedfl_num::rng::substream;
use fedfl_num::solve::bisect_monotone_with;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A prior over one private scalar parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Prior {
    /// The parameter is known exactly (degenerate prior): incomplete
    /// information collapses to the complete-information mechanism.
    Point(f64),
    /// Exponential prior with the given mean — the distribution the paper's
    /// experiments draw `c_n` and `v_n` from (Table I).
    Exponential {
        /// Mean of the prior.
        mean: f64,
    },
}

impl Prior {
    /// Prior mean (the certainty-equivalent value).
    pub fn mean(&self) -> f64 {
        match *self {
            Prior::Point(v) => v,
            Prior::Exponential { mean } => mean,
        }
    }

    /// Draw one value.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for non-positive means or
    /// negative point values.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<f64, GameError> {
        match *self {
            Prior::Point(v) => {
                if !(v.is_finite() && v >= 0.0) {
                    return Err(GameError::InvalidParameter {
                        name: "prior",
                        reason: format!("point prior must be finite and non-negative, got {v}"),
                    });
                }
                Ok(v)
            }
            Prior::Exponential { mean } => {
                let dist = Exponential::with_mean(mean)?;
                Ok(dist.sample(rng))
            }
        }
    }
}

/// Configuration of the Bayesian mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BayesianConfig {
    /// Monte-Carlo type samples used to estimate the expected spend.
    pub n_samples: usize,
    /// Underlying solver options (floor, tolerances).
    pub options: SolverOptions,
    /// Seed for the type sampling.
    pub seed: u64,
    /// Floor (as a fraction of each client's cap) applied to the CE target
    /// level when forming prices, keeping the `1/q²` price term bounded.
    pub price_floor_fraction: f64,
}

impl Default for BayesianConfig {
    fn default() -> Self {
        Self {
            n_samples: 64,
            options: SolverOptions::default(),
            seed: 0,
            price_floor_fraction: 0.02,
        }
    }
}

/// Outcome of posting Bayesian prices against the true population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianOutcome {
    /// Posted prices (computed from priors only).
    pub prices: Vec<f64>,
    /// True clients' best responses to the posted prices (floored at
    /// `q_min`).
    pub q: Vec<f64>,
    /// Realised spend `Σ P_n q_n` against the true types.
    pub spent: f64,
    /// The spend the server *expected* under its priors (meets the budget
    /// by construction, up to Monte-Carlo and path-discretisation error).
    pub expected_spent: f64,
}

impl BayesianOutcome {
    /// The Theorem 1 variance term realised by the true responses.
    pub fn variance_term(&self, population: &Population, bound: &BoundParams) -> f64 {
        bound.variance_term(population, &self.q)
    }
}

/// Solve the incomplete-information mechanism: post prices from priors,
/// then evaluate them against the true population.
///
/// Only the `weight`, `g_squared` and `q_max` fields of `population` are
/// visible to the server; its private `cost`/`value` fields are used
/// *solely* to evaluate the clients' true best responses afterwards.
///
/// # Errors
///
/// Returns [`GameError`] for invalid priors/configuration.
pub fn solve_bayesian(
    population: &Population,
    cost_prior: &Prior,
    value_prior: &Prior,
    bound: &BoundParams,
    budget: f64,
    config: &BayesianConfig,
) -> Result<BayesianOutcome, GameError> {
    if !budget.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "budget",
            reason: format!("must be finite, got {budget}"),
        });
    }
    if config.n_samples == 0 {
        return Err(GameError::InvalidParameter {
            name: "n_samples",
            reason: "need at least one Monte-Carlo sample".into(),
        });
    }
    if !(config.price_floor_fraction > 0.0 && config.price_floor_fraction < 1.0) {
        return Err(GameError::InvalidParameter {
            name: "price_floor_fraction",
            reason: format!("must lie in (0, 1), got {}", config.price_floor_fraction),
        });
    }
    let n = population.len();
    let ce_cost = cost_prior.mean().max(1e-9);
    let ce_value = value_prior.mean();
    if !(ce_cost.is_finite() && ce_value.is_finite() && ce_value >= 0.0) {
        return Err(GameError::InvalidParameter {
            name: "priors",
            reason: "prior means must be finite and non-negative".into(),
        });
    }

    // The CE population: public (a, G², q_max) with prior-mean types.
    let ce_profiles: Vec<crate::population::ClientProfile> = population
        .iter()
        .map(|c| crate::population::ClientProfile {
            cost: ce_cost,
            value: ce_value,
            ..*c
        })
        .collect();

    // Candidate price vector along the CE KKT path at t, with a floored
    // target level so prices stay bounded. Filled into a reusable scratch
    // buffer (no allocation per bisection probe), in parallel chunks.
    let coef = bound.alpha_over_r() / 4.0;
    let threads = config.options.config.n_threads;
    let fill_prices_at = |t: f64, buf: &mut [f64]| {
        chunked_fill(buf, threads, |start, slice| {
            for (k, p) in slice.iter_mut().enumerate() {
                let c = &ce_profiles[start + k];
                let slack = (t - c.value).max(0.0);
                let raw = (coef * c.a2g2() * slack / c.cost).cbrt();
                let target = raw.clamp(config.price_floor_fraction * c.q_max, c.q_max);
                *p = inverse_price(c, bound, target).unwrap_or(f64::NAN);
            }
        });
    };

    // Virtual type table, sampled once so the expected-spend curve is
    // deterministic and monotone in t.
    let mut rng = substream(config.seed, 0xBA7E5);
    let mut types: Vec<Vec<(f64, f64)>> = Vec::with_capacity(config.n_samples);
    for _ in 0..config.n_samples {
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            let cost = cost_prior.sample(&mut rng)?.max(1e-9);
            let value = value_prior.sample(&mut rng)?;
            row.push((cost, value));
        }
        types.push(row);
    }

    // Expected spend over the sampled types when posting P(t): every
    // virtual client best-responds with its sampled type. Each sample row
    // is a deterministic chunked reduction over the clients, so the curve
    // is bit-identical for any thread count.
    let mut price_buf = vec![0.0f64; n];
    let mut expected_spend = |t: f64| -> f64 {
        fill_prices_at(t, &mut price_buf);
        if price_buf.iter().any(|p| !p.is_finite()) {
            return f64::INFINITY;
        }
        let prices = &price_buf;
        let mut total = 0.0;
        for row in &types {
            total += chunked_sum(n, threads, |range| {
                let mut acc = 0.0;
                for i in range {
                    let client = population.client(i);
                    let (cost, value) = row[i];
                    let virtual_client = crate::population::ClientProfile {
                        cost,
                        value,
                        ..*client
                    };
                    let q = best_response(&virtual_client, bound, prices[i])
                        .unwrap_or(0.0)
                        .clamp(config.options.q_min, client.q_max);
                    acc += prices[i] * q;
                }
                acc
            });
        }
        total / config.n_samples as f64
    };

    // t saturating the CE population.
    let t_hi = ce_profiles
        .iter()
        .map(|c| c.cost * c.q_max.powi(3) / (coef * c.a2g2()) + c.value)
        .fold(0.0f64, f64::max)
        * (1.0 + 1e-12)
        + 1e-12;
    let t_star = if expected_spend(t_hi) <= budget {
        t_hi
    } else {
        bisect_monotone_with(
            &mut expected_spend,
            budget,
            0.0,
            t_hi,
            config.options.config.tolerance,
            config.options.config.max_iters,
        )?
    };
    let expected_spent = expected_spend(t_star);
    let prices = price_buf;
    if let Some(bad) = prices.iter().position(|p| !p.is_finite()) {
        return Err(GameError::SolverFailed {
            solver: "bayesian",
            reason: format!("non-finite posted price for client {bad}"),
        });
    }

    // True responses.
    let mut q = Vec::with_capacity(n);
    let mut spent = 0.0;
    for (client, &price) in population.iter().zip(&prices) {
        let raw = best_response(client, bound, price)?;
        let level = raw.clamp(config.options.q_min, client.q_max);
        spent += price * level;
        q.push(level);
    }
    Ok(BayesianOutcome {
        prices,
        q,
        spent,
        expected_spent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::solve_kkt;

    fn population() -> Population {
        Population::builder()
            .weights(vec![0.4, 0.3, 0.2, 0.1])
            .g_squared(vec![9.0, 16.0, 25.0, 36.0])
            .costs(vec![30.0, 50.0, 70.0, 90.0])
            .values(vec![0.0, 2.0, 5.0, 10.0])
            .build()
            .unwrap()
    }

    fn bound() -> BoundParams {
        BoundParams::new(4_000.0, 100.0, 1_000).unwrap()
    }

    #[test]
    fn point_priors_recover_complete_information() {
        // Degenerate priors at the true (homogeneous) types: the Bayesian
        // mechanism must coincide with the complete-information optimum.
        let p = Population::builder()
            .weights(vec![0.25; 4])
            .g_squared(vec![16.0; 4])
            .costs(vec![50.0; 4])
            .values(vec![5.0; 4])
            .build()
            .unwrap();
        let b = bound();
        let budget = 20.0;
        let bayes = solve_bayesian(
            &p,
            &Prior::Point(50.0),
            &Prior::Point(5.0),
            &b,
            budget,
            &BayesianConfig::default(),
        )
        .unwrap();
        let complete = solve_kkt(&p, &b, budget, &SolverOptions::default()).unwrap();
        for (a, c) in bayes.q.iter().zip(&complete.q) {
            assert!((a - c).abs() < 1e-5, "{:?} vs {:?}", bayes.q, complete.q);
        }
        assert!((bayes.spent - complete.spent).abs() < 1e-4);
    }

    #[test]
    fn expected_spend_meets_budget() {
        let p = population();
        let b = bound();
        let budget = 10.0;
        let bayes = solve_bayesian(
            &p,
            &Prior::Exponential { mean: 50.0 },
            &Prior::Exponential { mean: 5.0 },
            &b,
            budget,
            &BayesianConfig {
                n_samples: 256,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (bayes.expected_spent - budget).abs() < 1e-3 * budget.max(1.0),
            "expected spend {} vs budget {budget}",
            bayes.expected_spent
        );
        assert!(bayes.spent.is_finite());
        assert!(bayes.q.iter().all(|&q| q > 0.0 && q <= 1.0));
    }

    #[test]
    fn incomplete_information_costs_bound_performance() {
        // Averaged over true-type draws, the complete-information optimum
        // achieves a weakly better bound than the prior-based mechanism at
        // the same *expected* budget.
        let b = bound();
        let budget = 10.0;
        let mut bayes_worse = 0u64;
        let trials = 10u64;
        for seed in 0..trials {
            let weights = vec![0.4, 0.3, 0.2, 0.1];
            let g2 = vec![9.0, 16.0, 25.0, 36.0];
            let p = Population::sample(seed, &weights, &g2, 50.0, 5.0, 1.0).unwrap();
            let complete = solve_kkt(&p, &b, budget, &SolverOptions::default()).unwrap();
            let bayes = solve_bayesian(
                &p,
                &Prior::Exponential { mean: 50.0 },
                &Prior::Exponential { mean: 5.0 },
                &b,
                budget,
                &BayesianConfig {
                    n_samples: 128,
                    seed,
                    ..Default::default()
                },
            )
            .unwrap();
            if bayes.variance_term(&p, &b) >= complete.variance_term(&p, &b) - 1e-9 {
                bayes_worse += 1;
            }
        }
        assert!(
            bayes_worse >= trials - 2,
            "Bayesian beat complete information too often: {bayes_worse}/{trials}"
        );
    }

    #[test]
    fn realised_spend_is_centred_on_the_budget() {
        // Over many true-type draws the realised spend fluctuates around
        // the budget rather than sitting far off on one side.
        let b = bound();
        let budget = 10.0;
        let weights = vec![0.4, 0.3, 0.2, 0.1];
        let g2 = vec![9.0, 16.0, 25.0, 36.0];
        let mut spends = Vec::new();
        for seed in 0..30u64 {
            let p = Population::sample(seed, &weights, &g2, 50.0, 5.0, 1.0).unwrap();
            let bayes = solve_bayesian(
                &p,
                &Prior::Exponential { mean: 50.0 },
                &Prior::Exponential { mean: 5.0 },
                &b,
                budget,
                &BayesianConfig {
                    n_samples: 128,
                    seed: 1234,
                    ..Default::default()
                },
            )
            .unwrap();
            spends.push(bayes.spent);
        }
        let mean = spends.iter().sum::<f64>() / spends.len() as f64;
        assert!(
            (mean - budget).abs() < 0.5 * budget,
            "realised spend badly off budget: mean {mean} vs {budget} ({spends:?})"
        );
    }

    #[test]
    fn posted_prices_are_bounded() {
        let p = population();
        let b = bound();
        let bayes = solve_bayesian(
            &p,
            &Prior::Exponential { mean: 50.0 },
            &Prior::Exponential { mean: 500.0 }, // heavy-tailed values
            &b,
            5.0,
            &BayesianConfig::default(),
        )
        .unwrap();
        for &price in &bayes.prices {
            assert!(price.is_finite());
            assert!(price.abs() < 1e7, "price blew up: {price}");
        }
    }

    #[test]
    fn rejects_invalid_inputs() {
        let p = population();
        let b = bound();
        assert!(solve_bayesian(
            &p,
            &Prior::Point(-1.0),
            &Prior::Point(0.0),
            &b,
            10.0,
            &BayesianConfig::default()
        )
        .is_err());
        assert!(solve_bayesian(
            &p,
            &Prior::Point(1.0),
            &Prior::Point(0.0),
            &b,
            f64::NAN,
            &BayesianConfig::default()
        )
        .is_err());
        let bad = BayesianConfig {
            n_samples: 0,
            ..Default::default()
        };
        assert!(
            solve_bayesian(&p, &Prior::Point(1.0), &Prior::Point(0.0), &b, 10.0, &bad).is_err()
        );
        let bad = BayesianConfig {
            price_floor_fraction: 0.0,
            ..Default::default()
        };
        assert!(
            solve_bayesian(&p, &Prior::Point(1.0), &Prior::Point(0.0), &b, 10.0, &bad).is_err()
        );
        assert!(Prior::Exponential { mean: 0.0 }
            .sample(&mut fedfl_num::rng::seeded(1))
            .is_err());
        assert_eq!(Prior::Point(7.0).mean(), 7.0);
        assert_eq!(Prior::Exponential { mean: 3.0 }.mean(), 3.0);
    }
}
