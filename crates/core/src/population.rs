//! Client populations: the per-client parameters of the CPL game.
//!
//! Every client `n` enters the game with four parameters (Section III of
//! the paper):
//!
//! * `a_n` — data weight `d_n / Σ d_m` (unbalanced data);
//! * `G_n²` — squared gradient-norm bound (Assumption 3), the statistical
//!   heterogeneity term the bound prices;
//! * `c_n`  — local cost parameter of `C_n = c_n q_n²` (equation (6));
//! * `v_n`  — intrinsic-value preference (equation (7)).
//!
//! The paper's experiments draw `c_n` and `v_n` from Exponential
//! distributions with the means of Table I; [`Population::sample`]
//! reproduces that.

use crate::error::GameError;
use fedfl_num::dist::{BoundedPareto, Exponential, LogNormal};
use fedfl_num::rng::{substream, uniform01};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Default minimum participation level enforced by the solvers.
///
/// Theorem 1 requires `q_n > 0` for every client (otherwise the bound — and
/// the number of rounds to converge — blows up), so the equilibrium solvers
/// work on `[Q_MIN, q_max]`.
pub const Q_MIN: f64 = 1e-4;

/// Parameters of one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Data weight `a_n` (the `a_n` sum to 1 across the population).
    pub weight: f64,
    /// Squared gradient-norm bound `G_n²`.
    pub g_squared: f64,
    /// Local cost parameter `c_n > 0`.
    pub cost: f64,
    /// Intrinsic-value preference `v_n ≥ 0`.
    pub value: f64,
    /// Maximum feasible participation level `q_{n,max} ∈ (0, 1]`.
    pub q_max: f64,
}

impl ClientProfile {
    /// The product `a_n² G_n²` that appears throughout the bound and the
    /// equilibrium formulas.
    pub fn a2g2(&self) -> f64 {
        self.weight * self.weight * self.g_squared
    }

    /// Validate one profile.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), GameError> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "weight",
                reason: format!("must be finite and positive, got {}", self.weight),
            });
        }
        if !(self.g_squared.is_finite() && self.g_squared > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "g_squared",
                reason: format!("must be finite and positive, got {}", self.g_squared),
            });
        }
        if !(self.cost.is_finite() && self.cost > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "cost",
                reason: format!("must be finite and positive, got {}", self.cost),
            });
        }
        if !(self.value.is_finite() && self.value >= 0.0) {
            return Err(GameError::InvalidParameter {
                name: "value",
                reason: format!("must be finite and non-negative, got {}", self.value),
            });
        }
        if !(self.q_max.is_finite() && self.q_max > Q_MIN && self.q_max <= 1.0) {
            return Err(GameError::InvalidParameter {
                name: "q_max",
                reason: format!("must lie in ({Q_MIN}, 1], got {}", self.q_max),
            });
        }
        Ok(())
    }
}

/// A validated population of clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    clients: Vec<ClientProfile>,
}

impl Population {
    /// Start building a population from parallel parameter vectors.
    pub fn builder() -> PopulationBuilder {
        PopulationBuilder::default()
    }

    /// Wrap pre-built profiles.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the population is empty, any profile is
    /// invalid, or the weights do not sum to 1 (tolerance 1e-6).
    pub fn new(clients: Vec<ClientProfile>) -> Result<Self, GameError> {
        if clients.is_empty() {
            return Err(GameError::InvalidParameter {
                name: "clients",
                reason: "need at least one client".into(),
            });
        }
        for c in &clients {
            c.validate()?;
        }
        let total: f64 = clients.iter().map(|c| c.weight).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(GameError::InvalidParameter {
                name: "weights",
                reason: format!("must sum to 1, got {total}"),
            });
        }
        Ok(Self { clients })
    }

    /// Draw a population in the style of the paper's Table I: weights and
    /// `G_n²` given (typically from the dataset and a warm-up run), `c_n`
    /// and `v_n` exponentially distributed with means `mean_cost` and
    /// `mean_value`.
    ///
    /// A `mean_value` of exactly 0 gives every client `v_n = 0` (the paper's
    /// `v = 0` column of Table V).
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] on invalid inputs.
    pub fn sample(
        seed: u64,
        weights: &[f64],
        g_squared: &[f64],
        mean_cost: f64,
        mean_value: f64,
        q_max: f64,
    ) -> Result<Self, GameError> {
        if weights.len() != g_squared.len() {
            return Err(GameError::LengthMismatch {
                expected: weights.len(),
                found: g_squared.len(),
            });
        }
        if !(mean_cost.is_finite() && mean_cost > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "mean_cost",
                reason: format!("must be finite and positive, got {mean_cost}"),
            });
        }
        if !(mean_value.is_finite() && mean_value >= 0.0) {
            return Err(GameError::InvalidParameter {
                name: "mean_value",
                reason: format!("must be finite and non-negative, got {mean_value}"),
            });
        }
        let mut rng = substream(seed, 0xC0_57);
        let cost_dist = Exponential::with_mean(mean_cost)?;
        let costs: Vec<f64> = (0..weights.len())
            .map(|_| cost_dist.sample(&mut rng).max(1e-6 * mean_cost))
            .collect();
        let values: Vec<f64> = if mean_value == 0.0 {
            vec![0.0; weights.len()]
        } else {
            let value_dist = Exponential::with_mean(mean_value)?;
            (0..weights.len())
                .map(|_| value_dist.sample(&mut rng))
                .collect()
        };
        Self::builder()
            .weights(weights.to_vec())
            .g_squared(g_squared.to_vec())
            .costs(costs)
            .values(values)
            .q_max_all(q_max)
            .build()
    }

    /// Wrap profiles whose weights are *raw* (unnormalised) data sizes,
    /// dividing each by their sequential sum so the weights sum to 1.
    ///
    /// This is the canonical normalisation step shared by
    /// [`Population::synthesize`] and the incremental pricing service: a
    /// delta-applied client store rebuilt through this constructor is
    /// bit-identical to a from-scratch build over the same profiles in the
    /// same order.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the profiles are empty or any normalised
    /// profile is invalid.
    pub fn from_raw(mut clients: Vec<ClientProfile>) -> Result<Self, GameError> {
        let total: f64 = clients.iter().map(|c| c.weight).sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "weights",
                reason: format!("raw weights must sum to a positive finite total, got {total}"),
            });
        }
        for c in &mut clients {
            c.weight /= total;
        }
        Population::new(clients)
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Borrow all profiles.
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Borrow client `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn client(&self, n: usize) -> &ClientProfile {
        &self.clients[n]
    }

    /// Iterate over the profiles.
    pub fn iter(&self) -> std::slice::Iter<'_, ClientProfile> {
        self.clients.iter()
    }

    /// Data weights `a_n` in client order.
    pub fn weights(&self) -> Vec<f64> {
        self.clients.iter().map(|c| c.weight).collect()
    }

    /// The per-client `a_n² G_n²` products.
    pub fn a2g2(&self) -> Vec<f64> {
        self.clients.iter().map(ClientProfile::a2g2).collect()
    }

    /// Extract the struct-of-arrays columns the Stage-I solvers iterate
    /// over. One pass, one allocation per column; see
    /// [`PopulationColumns`].
    pub fn columns(&self) -> PopulationColumns {
        let n = self.clients.len();
        let mut cols = PopulationColumns {
            a2g2: Vec::with_capacity(n),
            cost: Vec::with_capacity(n),
            value: Vec::with_capacity(n),
            q_max: Vec::with_capacity(n),
        };
        for c in &self.clients {
            cols.a2g2.push(c.a2g2());
            cols.cost.push(c.cost);
            cols.value.push(c.value);
            cols.q_max.push(c.q_max);
        }
        cols
    }

    /// Synthesize a heterogeneous population of `n` clients from
    /// distributional specifications — the scaling counterpart of
    /// [`Population::sample`].
    ///
    /// Client `i`'s raw parameters are drawn from its own RNG substream
    /// derived from `(seed, i)` alone, so generation is a single O(n)
    /// streaming pass: any contiguous shard of clients can be produced
    /// independently (and in any order) and the result is identical.
    /// Raw data weights are normalised to sum to 1 in one extra pass.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] for `n = 0` or an invalid specification.
    pub fn synthesize(n: usize, spec: &PopulationSpec, seed: u64) -> Result<Self, GameError> {
        if n == 0 {
            return Err(GameError::InvalidParameter {
                name: "n",
                reason: "need at least one client".into(),
            });
        }
        spec.validate()?;
        let mut clients = Vec::with_capacity(n);
        for i in 0..n {
            clients.push(spec.draw_client_unchecked(seed, i));
        }
        Population::from_raw(clients)
    }
}

/// Cache-friendly struct-of-arrays columns of a population.
///
/// The Stage-I solvers evaluate the same four per-client scalars —
/// `a_n² G_n²`, `c_n`, `v_n`, `q_{n,max}` — millions of times inside a
/// bisection loop. Iterating a `Vec<ClientProfile>` strides over the unused
/// `weight`/`g_squared` fields and recomputes `a²G²` per visit; these
/// parallel columns keep each pass sequential in memory and the product
/// precomputed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationColumns {
    /// Precomputed `a_n² G_n²` per client.
    pub a2g2: Vec<f64>,
    /// Local cost parameters `c_n`.
    pub cost: Vec<f64>,
    /// Intrinsic-value preferences `v_n`.
    pub value: Vec<f64>,
    /// Participation caps `q_{n,max}`.
    pub q_max: Vec<f64>,
}

impl PopulationColumns {
    /// Number of clients.
    pub fn len(&self) -> usize {
        self.a2g2.len()
    }

    /// Whether the columns are empty.
    pub fn is_empty(&self) -> bool {
        self.a2g2.is_empty()
    }

    /// The availability-effective view of these columns.
    ///
    /// When client `n` is only reachable a fraction `rate_n` of rounds, its
    /// *effective* per-round participation is `x = q · rate` (Lemma 1 holds
    /// with the effective levels). Rewriting the Stage-I problem in `x`
    /// transforms each client's parameters as
    ///
    /// * `cost → cost / rate²` — reaching effective level `x` requires
    ///   conditional participation `x / rate`, so the cost curve steepens
    ///   for intermittently-available clients (they are compensated more
    ///   per unit of effective participation);
    /// * `q_max → q_max · rate` — the cap on effective participation;
    /// * `a2g2`, `value` — unchanged (both act on the bound through `x`).
    ///
    /// A rate of exactly `1.0` reproduces the input columns bit-for-bit,
    /// so an all-always-on model prices identically to the paper's
    /// baseline.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if `rates` has the wrong length or any rate
    /// falls outside `(0, 1]` — never-available clients must be excluded
    /// *before* building the solver view (see the pricing service).
    pub fn effective(&self, rates: &[f64]) -> Result<PopulationColumns, GameError> {
        if rates.len() != self.len() {
            return Err(GameError::LengthMismatch {
                expected: self.len(),
                found: rates.len(),
            });
        }
        if let Some(bad) = rates
            .iter()
            .position(|r| !(r.is_finite() && *r > 0.0 && *r <= 1.0))
        {
            return Err(GameError::InvalidParameter {
                name: "rates",
                reason: format!("rate {} for client {bad} outside (0, 1]", rates[bad]),
            });
        }
        Ok(PopulationColumns {
            a2g2: self.a2g2.clone(),
            cost: self
                .cost
                .iter()
                .zip(rates)
                .map(|(&c, &r)| c / (r * r))
                .collect(),
            value: self.value.clone(),
            q_max: self.q_max.iter().zip(rates).map(|(&q, &r)| q * r).collect(),
        })
    }
}

/// Distribution of one synthesized per-client parameter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ParamDist {
    /// Every client gets the same value.
    Constant(f64),
    /// Exponential with the given mean — the paper's Table I choice for
    /// costs and values.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Log-normal around a median — mild, always-positive heterogeneity.
    LogNormal {
        /// Median of the distribution.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
    },
    /// Bounded Pareto (power law) on `[lo, hi]` — heavy-tailed data-shard
    /// sizes.
    BoundedPareto {
        /// Lower endpoint.
        lo: f64,
        /// Upper endpoint.
        hi: f64,
        /// Tail exponent.
        alpha: f64,
    },
}

impl ParamDist {
    /// Validate the distribution for a parameter whose draws must stay
    /// non-negative — or strictly positive when `strictly_positive` is
    /// set (costs, weights, `G²`). Draws of *exactly* 0 from a continuous
    /// distribution are measure-zero and floored by the generator, but a
    /// specification placing real mass below the requirement is an error,
    /// not bad luck.
    fn validate(&self, name: &'static str, strictly_positive: bool) -> Result<(), GameError> {
        let invalid = |reason: String| GameError::InvalidParameter { name, reason };
        match *self {
            ParamDist::Constant(v) => {
                let ok = v.is_finite() && if strictly_positive { v > 0.0 } else { v >= 0.0 };
                if !ok {
                    let need = if strictly_positive { "> 0" } else { ">= 0" };
                    return Err(invalid(format!(
                        "constant must be finite and {need}, got {v}"
                    )));
                }
            }
            ParamDist::Exponential { mean } => {
                if !(mean.is_finite() && mean > 0.0) {
                    return Err(invalid(format!("mean must be positive, got {mean}")));
                }
            }
            ParamDist::LogNormal { median, sigma } => {
                if !(median.is_finite() && median > 0.0 && sigma.is_finite() && sigma >= 0.0) {
                    return Err(invalid(format!(
                        "need median > 0 and sigma >= 0, got ({median}, {sigma})"
                    )));
                }
            }
            ParamDist::Uniform { lo, hi } => {
                let ok = lo.is_finite()
                    && hi.is_finite()
                    && 0.0 <= lo
                    && lo <= hi
                    && (!strictly_positive || hi > 0.0);
                if !ok {
                    return Err(invalid(format!("need 0 <= lo <= hi, got [{lo}, {hi}]")));
                }
            }
            ParamDist::BoundedPareto { lo, hi, alpha } => {
                if !(lo.is_finite() && hi.is_finite() && 0.0 < lo && lo < hi && alpha > 0.0) {
                    return Err(invalid(format!(
                        "need 0 < lo < hi and alpha > 0, got ([{lo}, {hi}], {alpha})"
                    )));
                }
            }
        }
        Ok(())
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ParamDist::Constant(v) => v,
            ParamDist::Exponential { mean } => {
                Exponential::with_mean(mean).expect("validated").sample(rng)
            }
            ParamDist::LogNormal { median, sigma } => LogNormal::with_median(median, sigma)
                .expect("validated")
                .sample(rng),
            ParamDist::Uniform { lo, hi } => lo + (hi - lo) * uniform01(rng),
            ParamDist::BoundedPareto { lo, hi, alpha } => BoundedPareto::new(lo, hi, alpha)
                .expect("validated")
                .sample(rng),
        }
    }
}

/// Distributional description of a synthesized population — what
/// [`Population::synthesize`] draws each client from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationSpec {
    /// Raw (unnormalised) data-shard sizes; normalised into the weights
    /// `a_n`.
    pub weight: ParamDist,
    /// Squared gradient-norm bounds `G_n²`.
    pub g_squared: ParamDist,
    /// Local cost parameters `c_n`.
    pub cost: ParamDist,
    /// Intrinsic-value preferences `v_n`.
    pub value: ParamDist,
    /// Participation cap applied to every client.
    pub q_max: f64,
}

impl PopulationSpec {
    /// A heterogeneous default in the spirit of the paper's Table I:
    /// power-law data shards, uniform gradient heterogeneity, exponential
    /// costs and values.
    pub fn table1_like() -> Self {
        Self {
            weight: ParamDist::BoundedPareto {
                lo: 1.0,
                hi: 1_000.0,
                alpha: 1.2,
            },
            g_squared: ParamDist::Uniform { lo: 4.0, hi: 36.0 },
            cost: ParamDist::Exponential { mean: 50.0 },
            value: ParamDist::Exponential { mean: 4_000.0 },
            q_max: 1.0,
        }
    }

    /// Validate the specification.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), GameError> {
        self.weight.validate("weight", true)?;
        self.g_squared.validate("g_squared", true)?;
        self.cost.validate("cost", true)?;
        self.value.validate("value", false)?;
        if !(self.q_max.is_finite() && self.q_max > Q_MIN && self.q_max <= 1.0) {
            return Err(GameError::InvalidParameter {
                name: "q_max",
                reason: format!("must lie in ({Q_MIN}, 1], got {}", self.q_max),
            });
        }
        Ok(())
    }

    /// Draw client `index`'s profile (with its *raw*, unnormalised weight)
    /// from the substream derived from `(seed, index)`.
    ///
    /// This is the sharding primitive behind [`Population::synthesize`]:
    /// the draw touches no state outside the client's own substream.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for an invalid
    /// specification.
    pub fn draw_client(&self, seed: u64, index: usize) -> Result<ClientProfile, GameError> {
        self.validate()?;
        Ok(self.draw_client_unchecked(seed, index))
    }

    pub(crate) fn draw_client_unchecked(&self, seed: u64, index: usize) -> ClientProfile {
        let mut rng = substream(seed, index as u64);
        // Positive-required parameters are floored away from 0 so that an
        // unlucky draw (e.g. an Exponential hitting exactly 0) cannot
        // produce an invalid client.
        let weight = self.weight.sample(&mut rng).max(1e-12);
        let g_squared = self.g_squared.sample(&mut rng).max(1e-12);
        let cost = self.cost.sample(&mut rng).max(1e-12);
        let value = self.value.sample(&mut rng).max(0.0);
        ClientProfile {
            weight,
            g_squared,
            cost,
            value,
            q_max: self.q_max,
        }
    }
}

impl<'a> IntoIterator for &'a Population {
    type Item = &'a ClientProfile;
    type IntoIter = std::slice::Iter<'a, ClientProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.clients.iter()
    }
}

/// Builder assembling a [`Population`] from parallel vectors.
#[derive(Debug, Clone, Default)]
pub struct PopulationBuilder {
    weights: Vec<f64>,
    g_squared: Vec<f64>,
    costs: Vec<f64>,
    values: Vec<f64>,
    q_max: Option<Vec<f64>>,
}

impl PopulationBuilder {
    /// Set the data weights `a_n` (must sum to 1).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = weights;
        self
    }

    /// Set the squared gradient bounds `G_n²`.
    pub fn g_squared(mut self, g_squared: Vec<f64>) -> Self {
        self.g_squared = g_squared;
        self
    }

    /// Set the cost parameters `c_n`.
    pub fn costs(mut self, costs: Vec<f64>) -> Self {
        self.costs = costs;
        self
    }

    /// Set the intrinsic values `v_n`.
    pub fn values(mut self, values: Vec<f64>) -> Self {
        self.values = values;
        self
    }

    /// Set per-client participation caps.
    pub fn q_max(mut self, q_max: Vec<f64>) -> Self {
        self.q_max = Some(q_max);
        self
    }

    /// Set a single participation cap for everyone (the paper uses
    /// `q_{n,max} = 1`).
    pub fn q_max_all(mut self, q_max: f64) -> Self {
        self.q_max = Some(vec![q_max; self.weights.len().max(1)]);
        self
    }

    /// Assemble and validate the population.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::LengthMismatch`] if the vectors disagree in
    /// length and [`GameError::InvalidParameter`] for invalid entries.
    pub fn build(self) -> Result<Population, GameError> {
        let n = self.weights.len();
        for (len, _name) in [
            (self.g_squared.len(), "g_squared"),
            (self.costs.len(), "costs"),
            (self.values.len(), "values"),
        ] {
            if len != n {
                return Err(GameError::LengthMismatch {
                    expected: n,
                    found: len,
                });
            }
        }
        let q_max = self.q_max.unwrap_or_else(|| vec![1.0; n]);
        if q_max.len() != n {
            return Err(GameError::LengthMismatch {
                expected: n,
                found: q_max.len(),
            });
        }
        let clients = (0..n)
            .map(|i| ClientProfile {
                weight: self.weights[i],
                g_squared: self.g_squared[i],
                cost: self.costs[i],
                value: self.values[i],
                q_max: q_max[i],
            })
            .collect();
        Population::new(clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_builder() -> PopulationBuilder {
        Population::builder()
            .weights(vec![0.5, 0.3, 0.2])
            .g_squared(vec![1.0, 2.0, 3.0])
            .costs(vec![10.0, 20.0, 30.0])
            .values(vec![0.0, 5.0, 10.0])
    }

    #[test]
    fn builder_happy_path() {
        let p = valid_builder().build().unwrap();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.client(1).cost, 20.0);
        assert_eq!(p.weights(), vec![0.5, 0.3, 0.2]);
        assert!((p.a2g2()[0] - 0.25).abs() < 1e-12);
        assert_eq!(p.iter().count(), 3);
        assert_eq!((&p).into_iter().count(), 3);
    }

    #[test]
    fn builder_rejects_mismatched_lengths() {
        assert!(matches!(
            valid_builder().g_squared(vec![1.0]).build(),
            Err(GameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            valid_builder().q_max(vec![1.0]).build(),
            Err(GameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(valid_builder()
            .weights(vec![0.5, 0.3, 0.3])
            .build()
            .is_err());
        assert!(valid_builder().costs(vec![0.0, 1.0, 1.0]).build().is_err());
        assert!(valid_builder()
            .values(vec![-1.0, 0.0, 0.0])
            .build()
            .is_err());
        assert!(valid_builder()
            .g_squared(vec![0.0, 1.0, 1.0])
            .build()
            .is_err());
        assert!(valid_builder().q_max_all(1.5).build().is_err());
        assert!(valid_builder().q_max_all(0.0).build().is_err());
        assert!(Population::new(vec![]).is_err());
    }

    #[test]
    fn default_q_max_is_one() {
        let p = valid_builder().build().unwrap();
        assert!(p.iter().all(|c| c.q_max == 1.0));
    }

    #[test]
    fn sampling_matches_table1_statistics() {
        let weights = vec![0.025; 40];
        let g2 = vec![4.0; 40];
        let p = Population::sample(3, &weights, &g2, 50.0, 4000.0, 1.0).unwrap();
        assert_eq!(p.len(), 40);
        let mean_c: f64 = p.iter().map(|c| c.cost).sum::<f64>() / 40.0;
        let mean_v: f64 = p.iter().map(|c| c.value).sum::<f64>() / 40.0;
        // Exponential with 40 draws: loose sanity interval.
        assert!(mean_c > 20.0 && mean_c < 110.0, "mean_c {mean_c}");
        assert!(mean_v > 1500.0 && mean_v < 9000.0, "mean_v {mean_v}");
    }

    #[test]
    fn sampling_zero_mean_value_gives_zero_values() {
        let p = Population::sample(1, &[0.5, 0.5], &[1.0, 1.0], 10.0, 0.0, 1.0).unwrap();
        assert!(p.iter().all(|c| c.value == 0.0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let w = vec![0.5, 0.5];
        let g = vec![1.0, 1.0];
        let a = Population::sample(9, &w, &g, 10.0, 100.0, 1.0).unwrap();
        let b = Population::sample(9, &w, &g, 10.0, 100.0, 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_rejects_bad_params() {
        let w = vec![0.5, 0.5];
        let g = vec![1.0, 1.0];
        assert!(Population::sample(1, &w, &[1.0], 10.0, 1.0, 1.0).is_err());
        assert!(Population::sample(1, &w, &g, 0.0, 1.0, 1.0).is_err());
        assert!(Population::sample(1, &w, &g, 10.0, -1.0, 1.0).is_err());
    }

    #[test]
    fn columns_mirror_the_profiles() {
        let p = valid_builder().build().unwrap();
        let cols = p.columns();
        assert_eq!(cols.len(), p.len());
        assert!(!cols.is_empty());
        for (i, c) in p.iter().enumerate() {
            assert_eq!(cols.a2g2[i], c.a2g2());
            assert_eq!(cols.cost[i], c.cost);
            assert_eq!(cols.value[i], c.value);
            assert_eq!(cols.q_max[i], c.q_max);
        }
    }

    #[test]
    fn from_raw_normalises_like_synthesize() {
        let raw = |w: f64| ClientProfile {
            weight: w,
            g_squared: 4.0,
            cost: 10.0,
            value: 1.0,
            q_max: 1.0,
        };
        let p = Population::from_raw(vec![raw(3.0), raw(1.0)]).unwrap();
        assert_eq!(p.client(0).weight, 0.75);
        assert_eq!(p.client(1).weight, 0.25);
        // Degenerate raw weights are rejected.
        assert!(Population::from_raw(vec![]).is_err());
        assert!(Population::from_raw(vec![raw(f64::INFINITY)]).is_err());
        assert!(Population::from_raw(vec![raw(-1.0), raw(0.5)]).is_err());
    }

    #[test]
    fn effective_columns_transform_cost_and_cap() {
        let cols = valid_builder().build().unwrap().columns();
        let rates = [1.0, 0.5, 0.25];
        let eff = cols.effective(&rates).unwrap();
        // Rate 1 is bit-exact identity.
        assert_eq!(eff.cost[0].to_bits(), cols.cost[0].to_bits());
        assert_eq!(eff.q_max[0].to_bits(), cols.q_max[0].to_bits());
        // cost / rate², q_max · rate; a2g2 and value untouched.
        assert_eq!(eff.cost[1], cols.cost[1] / 0.25);
        assert_eq!(eff.q_max[1], cols.q_max[1] * 0.5);
        assert_eq!(eff.cost[2], cols.cost[2] / 0.0625);
        assert_eq!(eff.a2g2, cols.a2g2);
        assert_eq!(eff.value, cols.value);
    }

    #[test]
    fn effective_columns_reject_bad_rates() {
        let cols = valid_builder().build().unwrap().columns();
        assert!(cols.effective(&[1.0, 1.0]).is_err());
        assert!(cols.effective(&[1.0, 0.0, 1.0]).is_err());
        assert!(cols.effective(&[1.0, -0.5, 1.0]).is_err());
        assert!(cols.effective(&[1.0, 1.5, 1.0]).is_err());
        assert!(cols.effective(&[1.0, f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn synthesize_is_deterministic_and_valid() {
        let spec = PopulationSpec::table1_like();
        let a = Population::synthesize(1_000, &spec, 7).unwrap();
        let b = Population::synthesize(1_000, &spec, 7).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1_000);
        let total: f64 = a.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
        assert_ne!(a, Population::synthesize(1_000, &spec, 8).unwrap());
    }

    #[test]
    fn synthesize_draws_are_per_client_streams() {
        // Client i's raw draw depends only on (seed, i): a prefix of a
        // larger population matches the smaller one up to renormalisation.
        let spec = PopulationSpec::table1_like();
        let small = Population::synthesize(10, &spec, 3).unwrap();
        let large = Population::synthesize(100, &spec, 3).unwrap();
        for i in 0..10 {
            let (s, l) = (small.client(i), large.client(i));
            assert_eq!(s.cost, l.cost);
            assert_eq!(s.value, l.value);
            assert_eq!(s.g_squared, l.g_squared);
            // Raw weights are equal; normalisation constants differ.
            let ratio = s.weight / l.weight;
            let ratio0 = small.client(0).weight / large.client(0).weight;
            assert!((ratio - ratio0).abs() < 1e-9 * ratio0);
        }
        // And draw_client reproduces the raw (pre-normalisation) draw.
        let direct = spec.draw_client(3, 4).unwrap();
        assert_eq!(direct.cost, small.client(4).cost);
    }

    #[test]
    fn synthesize_supports_every_distribution() {
        let spec = PopulationSpec {
            weight: ParamDist::Constant(2.0),
            g_squared: ParamDist::LogNormal {
                median: 9.0,
                sigma: 0.5,
            },
            cost: ParamDist::Uniform {
                lo: 10.0,
                hi: 100.0,
            },
            value: ParamDist::BoundedPareto {
                lo: 1.0,
                hi: 1_000.0,
                alpha: 1.5,
            },
            q_max: 0.9,
        };
        let p = Population::synthesize(200, &spec, 11).unwrap();
        assert!(p.iter().all(|c| (c.weight - 0.005).abs() < 1e-12));
        assert!(p.iter().all(|c| (10.0..=100.0).contains(&c.cost)));
        assert!(p.iter().all(|c| (1.0..=1_000.0).contains(&c.value)));
        assert!(p.iter().all(|c| c.q_max == 0.9));
    }

    #[test]
    fn synthesize_rejects_bad_specs() {
        let spec = PopulationSpec::table1_like();
        assert!(Population::synthesize(0, &spec, 1).is_err());
        let mut bad = spec;
        bad.q_max = 0.0;
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.cost = ParamDist::Exponential { mean: -1.0 };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.weight = ParamDist::BoundedPareto {
            lo: 5.0,
            hi: 1.0,
            alpha: 1.0,
        };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.g_squared = ParamDist::Uniform { lo: 2.0, hi: 1.0 };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.value = ParamDist::LogNormal {
            median: -1.0,
            sigma: 1.0,
        };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.value = ParamDist::Constant(f64::NAN);
        assert!(Population::synthesize(10, &bad, 1).is_err());
        // Positive-required parameters reject non-positive support outright
        // instead of silently clamping every draw to the floor.
        let mut bad = spec;
        bad.cost = ParamDist::Constant(-10.0);
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.cost = ParamDist::Constant(0.0);
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.weight = ParamDist::Uniform { lo: -5.0, hi: -1.0 };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.g_squared = ParamDist::Uniform { lo: 0.0, hi: 0.0 };
        assert!(Population::synthesize(10, &bad, 1).is_err());
        let mut bad = spec;
        bad.value = ParamDist::Constant(-5.0);
        assert!(Population::synthesize(10, &bad, 1).is_err());
        // value = 0 stays legal (the paper's v = 0 column).
        let mut ok = spec;
        ok.value = ParamDist::Constant(0.0);
        assert!(Population::synthesize(10, &ok, 1).is_ok());
    }
}
