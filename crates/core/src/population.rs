//! Client populations: the per-client parameters of the CPL game.
//!
//! Every client `n` enters the game with four parameters (Section III of
//! the paper):
//!
//! * `a_n` — data weight `d_n / Σ d_m` (unbalanced data);
//! * `G_n²` — squared gradient-norm bound (Assumption 3), the statistical
//!   heterogeneity term the bound prices;
//! * `c_n`  — local cost parameter of `C_n = c_n q_n²` (equation (6));
//! * `v_n`  — intrinsic-value preference (equation (7)).
//!
//! The paper's experiments draw `c_n` and `v_n` from Exponential
//! distributions with the means of Table I; [`Population::sample`]
//! reproduces that.

use crate::error::GameError;
use fedfl_num::dist::Exponential;
use fedfl_num::rng::substream;
use serde::{Deserialize, Serialize};

/// Default minimum participation level enforced by the solvers.
///
/// Theorem 1 requires `q_n > 0` for every client (otherwise the bound — and
/// the number of rounds to converge — blows up), so the equilibrium solvers
/// work on `[Q_MIN, q_max]`.
pub const Q_MIN: f64 = 1e-4;

/// Parameters of one client.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientProfile {
    /// Data weight `a_n` (the `a_n` sum to 1 across the population).
    pub weight: f64,
    /// Squared gradient-norm bound `G_n²`.
    pub g_squared: f64,
    /// Local cost parameter `c_n > 0`.
    pub cost: f64,
    /// Intrinsic-value preference `v_n ≥ 0`.
    pub value: f64,
    /// Maximum feasible participation level `q_{n,max} ∈ (0, 1]`.
    pub q_max: f64,
}

impl ClientProfile {
    /// The product `a_n² G_n²` that appears throughout the bound and the
    /// equilibrium formulas.
    pub fn a2g2(&self) -> f64 {
        self.weight * self.weight * self.g_squared
    }

    /// Validate one profile.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] describing the violated
    /// constraint.
    pub fn validate(&self) -> Result<(), GameError> {
        if !(self.weight.is_finite() && self.weight > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "weight",
                reason: format!("must be finite and positive, got {}", self.weight),
            });
        }
        if !(self.g_squared.is_finite() && self.g_squared > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "g_squared",
                reason: format!("must be finite and positive, got {}", self.g_squared),
            });
        }
        if !(self.cost.is_finite() && self.cost > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "cost",
                reason: format!("must be finite and positive, got {}", self.cost),
            });
        }
        if !(self.value.is_finite() && self.value >= 0.0) {
            return Err(GameError::InvalidParameter {
                name: "value",
                reason: format!("must be finite and non-negative, got {}", self.value),
            });
        }
        if !(self.q_max.is_finite() && self.q_max > Q_MIN && self.q_max <= 1.0) {
            return Err(GameError::InvalidParameter {
                name: "q_max",
                reason: format!("must lie in ({Q_MIN}, 1], got {}", self.q_max),
            });
        }
        Ok(())
    }
}

/// A validated population of clients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    clients: Vec<ClientProfile>,
}

impl Population {
    /// Start building a population from parallel parameter vectors.
    pub fn builder() -> PopulationBuilder {
        PopulationBuilder::default()
    }

    /// Wrap pre-built profiles.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the population is empty, any profile is
    /// invalid, or the weights do not sum to 1 (tolerance 1e-6).
    pub fn new(clients: Vec<ClientProfile>) -> Result<Self, GameError> {
        if clients.is_empty() {
            return Err(GameError::InvalidParameter {
                name: "clients",
                reason: "need at least one client".into(),
            });
        }
        for c in &clients {
            c.validate()?;
        }
        let total: f64 = clients.iter().map(|c| c.weight).sum();
        if (total - 1.0).abs() > 1e-6 {
            return Err(GameError::InvalidParameter {
                name: "weights",
                reason: format!("must sum to 1, got {total}"),
            });
        }
        Ok(Self { clients })
    }

    /// Draw a population in the style of the paper's Table I: weights and
    /// `G_n²` given (typically from the dataset and a warm-up run), `c_n`
    /// and `v_n` exponentially distributed with means `mean_cost` and
    /// `mean_value`.
    ///
    /// A `mean_value` of exactly 0 gives every client `v_n = 0` (the paper's
    /// `v = 0` column of Table V).
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] on invalid inputs.
    pub fn sample(
        seed: u64,
        weights: &[f64],
        g_squared: &[f64],
        mean_cost: f64,
        mean_value: f64,
        q_max: f64,
    ) -> Result<Self, GameError> {
        if weights.len() != g_squared.len() {
            return Err(GameError::LengthMismatch {
                expected: weights.len(),
                found: g_squared.len(),
            });
        }
        if !(mean_cost.is_finite() && mean_cost > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "mean_cost",
                reason: format!("must be finite and positive, got {mean_cost}"),
            });
        }
        if !(mean_value.is_finite() && mean_value >= 0.0) {
            return Err(GameError::InvalidParameter {
                name: "mean_value",
                reason: format!("must be finite and non-negative, got {mean_value}"),
            });
        }
        let mut rng = substream(seed, 0xC0_57);
        let cost_dist = Exponential::with_mean(mean_cost)?;
        let costs: Vec<f64> = (0..weights.len())
            .map(|_| cost_dist.sample(&mut rng).max(1e-6 * mean_cost))
            .collect();
        let values: Vec<f64> = if mean_value == 0.0 {
            vec![0.0; weights.len()]
        } else {
            let value_dist = Exponential::with_mean(mean_value)?;
            (0..weights.len())
                .map(|_| value_dist.sample(&mut rng))
                .collect()
        };
        Self::builder()
            .weights(weights.to_vec())
            .g_squared(g_squared.to_vec())
            .costs(costs)
            .values(values)
            .q_max_all(q_max)
            .build()
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the population is empty (never true after validation).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Borrow all profiles.
    pub fn clients(&self) -> &[ClientProfile] {
        &self.clients
    }

    /// Borrow client `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of bounds.
    pub fn client(&self, n: usize) -> &ClientProfile {
        &self.clients[n]
    }

    /// Iterate over the profiles.
    pub fn iter(&self) -> std::slice::Iter<'_, ClientProfile> {
        self.clients.iter()
    }

    /// Data weights `a_n` in client order.
    pub fn weights(&self) -> Vec<f64> {
        self.clients.iter().map(|c| c.weight).collect()
    }

    /// The per-client `a_n² G_n²` products.
    pub fn a2g2(&self) -> Vec<f64> {
        self.clients.iter().map(ClientProfile::a2g2).collect()
    }
}

impl<'a> IntoIterator for &'a Population {
    type Item = &'a ClientProfile;
    type IntoIter = std::slice::Iter<'a, ClientProfile>;

    fn into_iter(self) -> Self::IntoIter {
        self.clients.iter()
    }
}

/// Builder assembling a [`Population`] from parallel vectors.
#[derive(Debug, Clone, Default)]
pub struct PopulationBuilder {
    weights: Vec<f64>,
    g_squared: Vec<f64>,
    costs: Vec<f64>,
    values: Vec<f64>,
    q_max: Option<Vec<f64>>,
}

impl PopulationBuilder {
    /// Set the data weights `a_n` (must sum to 1).
    pub fn weights(mut self, weights: Vec<f64>) -> Self {
        self.weights = weights;
        self
    }

    /// Set the squared gradient bounds `G_n²`.
    pub fn g_squared(mut self, g_squared: Vec<f64>) -> Self {
        self.g_squared = g_squared;
        self
    }

    /// Set the cost parameters `c_n`.
    pub fn costs(mut self, costs: Vec<f64>) -> Self {
        self.costs = costs;
        self
    }

    /// Set the intrinsic values `v_n`.
    pub fn values(mut self, values: Vec<f64>) -> Self {
        self.values = values;
        self
    }

    /// Set per-client participation caps.
    pub fn q_max(mut self, q_max: Vec<f64>) -> Self {
        self.q_max = Some(q_max);
        self
    }

    /// Set a single participation cap for everyone (the paper uses
    /// `q_{n,max} = 1`).
    pub fn q_max_all(mut self, q_max: f64) -> Self {
        self.q_max = Some(vec![q_max; self.weights.len().max(1)]);
        self
    }

    /// Assemble and validate the population.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::LengthMismatch`] if the vectors disagree in
    /// length and [`GameError::InvalidParameter`] for invalid entries.
    pub fn build(self) -> Result<Population, GameError> {
        let n = self.weights.len();
        for (len, _name) in [
            (self.g_squared.len(), "g_squared"),
            (self.costs.len(), "costs"),
            (self.values.len(), "values"),
        ] {
            if len != n {
                return Err(GameError::LengthMismatch {
                    expected: n,
                    found: len,
                });
            }
        }
        let q_max = self.q_max.unwrap_or_else(|| vec![1.0; n]);
        if q_max.len() != n {
            return Err(GameError::LengthMismatch {
                expected: n,
                found: q_max.len(),
            });
        }
        let clients = (0..n)
            .map(|i| ClientProfile {
                weight: self.weights[i],
                g_squared: self.g_squared[i],
                cost: self.costs[i],
                value: self.values[i],
                q_max: q_max[i],
            })
            .collect();
        Population::new(clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_builder() -> PopulationBuilder {
        Population::builder()
            .weights(vec![0.5, 0.3, 0.2])
            .g_squared(vec![1.0, 2.0, 3.0])
            .costs(vec![10.0, 20.0, 30.0])
            .values(vec![0.0, 5.0, 10.0])
    }

    #[test]
    fn builder_happy_path() {
        let p = valid_builder().build().unwrap();
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert_eq!(p.client(1).cost, 20.0);
        assert_eq!(p.weights(), vec![0.5, 0.3, 0.2]);
        assert!((p.a2g2()[0] - 0.25).abs() < 1e-12);
        assert_eq!(p.iter().count(), 3);
        assert_eq!((&p).into_iter().count(), 3);
    }

    #[test]
    fn builder_rejects_mismatched_lengths() {
        assert!(matches!(
            valid_builder().g_squared(vec![1.0]).build(),
            Err(GameError::LengthMismatch { .. })
        ));
        assert!(matches!(
            valid_builder().q_max(vec![1.0]).build(),
            Err(GameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(valid_builder()
            .weights(vec![0.5, 0.3, 0.3])
            .build()
            .is_err());
        assert!(valid_builder().costs(vec![0.0, 1.0, 1.0]).build().is_err());
        assert!(valid_builder()
            .values(vec![-1.0, 0.0, 0.0])
            .build()
            .is_err());
        assert!(valid_builder()
            .g_squared(vec![0.0, 1.0, 1.0])
            .build()
            .is_err());
        assert!(valid_builder().q_max_all(1.5).build().is_err());
        assert!(valid_builder().q_max_all(0.0).build().is_err());
        assert!(Population::new(vec![]).is_err());
    }

    #[test]
    fn default_q_max_is_one() {
        let p = valid_builder().build().unwrap();
        assert!(p.iter().all(|c| c.q_max == 1.0));
    }

    #[test]
    fn sampling_matches_table1_statistics() {
        let weights = vec![0.025; 40];
        let g2 = vec![4.0; 40];
        let p = Population::sample(3, &weights, &g2, 50.0, 4000.0, 1.0).unwrap();
        assert_eq!(p.len(), 40);
        let mean_c: f64 = p.iter().map(|c| c.cost).sum::<f64>() / 40.0;
        let mean_v: f64 = p.iter().map(|c| c.value).sum::<f64>() / 40.0;
        // Exponential with 40 draws: loose sanity interval.
        assert!(mean_c > 20.0 && mean_c < 110.0, "mean_c {mean_c}");
        assert!(mean_v > 1500.0 && mean_v < 9000.0, "mean_v {mean_v}");
    }

    #[test]
    fn sampling_zero_mean_value_gives_zero_values() {
        let p = Population::sample(1, &[0.5, 0.5], &[1.0, 1.0], 10.0, 0.0, 1.0).unwrap();
        assert!(p.iter().all(|c| c.value == 0.0));
    }

    #[test]
    fn sampling_is_deterministic() {
        let w = vec![0.5, 0.5];
        let g = vec![1.0, 1.0];
        let a = Population::sample(9, &w, &g, 10.0, 100.0, 1.0).unwrap();
        let b = Population::sample(9, &w, &g, 10.0, 100.0, 1.0).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sampling_rejects_bad_params() {
        let w = vec![0.5, 0.5];
        let g = vec![1.0, 1.0];
        assert!(Population::sample(1, &w, &[1.0], 10.0, 1.0, 1.0).is_err());
        assert!(Population::sample(1, &w, &g, 0.0, 1.0, 1.0).is_err());
        assert!(Population::sample(1, &w, &g, 10.0, -1.0, 1.0).is_err());
    }
}
