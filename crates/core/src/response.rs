//! Stage II — the client's best response.
//!
//! Given the server's price `P_n`, client `n` maximises (Problem P2′ of the
//! paper)
//!
//! ```text
//! U_n(q_n) = P_n q_n − c_n q_n² + v_n [F(w*_n) − F* − gap(q)]
//! ```
//!
//! whose own-`q_n` part is `P_n q_n − c_n q_n² − K_n (1/q_n − 1)` with
//! `K_n = v_n (α/R) a_n² G_n²`. The objective is strictly concave on
//! `q_n > 0`, and the first-order condition (13),
//!
//! ```text
//! P_n + K_n / q_n² − 2 c_n q_n = 0,
//! ```
//!
//! has a unique positive root — computed analytically by
//! [`fedfl_num::roots::best_response_cubic`]. The inverse map (17),
//! `P_n(q_n) = 2 c_n q_n − K_n / q_n²`, is what the server substitutes into
//! Stage I.

use crate::bound::BoundParams;
use crate::error::GameError;
use crate::population::ClientProfile;
use fedfl_num::roots::best_response_cubic;

/// The intrinsic-gain coefficient `K_n = v_n (α/R) a_n² G_n²` — how much
/// client `n`'s own participation improves its intrinsic value through the
/// bound.
pub fn intrinsic_gain(client: &ClientProfile, bound: &BoundParams) -> f64 {
    client.value * bound.alpha_over_r() * client.a2g2()
}

/// Client `n`'s best-response participation level to price `price`,
/// clamped to `[0, q_max]`.
///
/// With `K_n > 0` the unconstrained optimum is strictly positive (the
/// intrinsic value makes total abstention infinitely bad); with `K_n = 0`
/// and `price ≤ 0` the client simply stays out (`q = 0`).
///
/// # Errors
///
/// Returns [`GameError`] if the client profile is invalid or the price is
/// non-finite.
pub fn best_response(
    client: &ClientProfile,
    bound: &BoundParams,
    price: f64,
) -> Result<f64, GameError> {
    client.validate()?;
    if !price.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "price",
            reason: format!("must be finite, got {price}"),
        });
    }
    let k = intrinsic_gain(client, bound);
    let unconstrained = best_response_cubic(client.cost, price, k)?;
    Ok(unconstrained.min(client.q_max))
}

/// The price that makes `q` client `n`'s best response — equation (17):
/// `P_n(q) = 2 c_n q − K_n / q²`.
///
/// # Errors
///
/// Returns [`GameError::InvalidParameter`] unless `q > 0`.
pub fn inverse_price(
    client: &ClientProfile,
    bound: &BoundParams,
    q: f64,
) -> Result<f64, GameError> {
    if !(q.is_finite() && q > 0.0) {
        return Err(GameError::InvalidParameter {
            name: "q",
            reason: format!("must be finite and positive, got {q}"),
        });
    }
    Ok(2.0 * client.cost * q - intrinsic_gain(client, bound) / (q * q))
}

/// The `q_n`-dependent part of client `n`'s utility,
/// `P q − c q² − K (1/q − 1)`; constants independent of the client's own
/// choice (`v_n (F(w*_n) − F* − β/R)` and the other clients' bound terms)
/// are omitted, so *differences* of this function across `q` values equal
/// differences of the full utility.
///
/// `q = 0` returns `0` when `K = 0` (staying out costs nothing) and `−∞`
/// when `K > 0`.
pub fn own_utility(client: &ClientProfile, bound: &BoundParams, price: f64, q: f64) -> f64 {
    let k = intrinsic_gain(client, bound);
    if q <= 0.0 {
        return if k == 0.0 { 0.0 } else { f64::NEG_INFINITY };
    }
    price * q - client.cost * q * q - k * (1.0 / q - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn client(cost: f64, value: f64) -> ClientProfile {
        ClientProfile {
            weight: 0.1,
            g_squared: 25.0,
            cost,
            value,
            q_max: 1.0,
        }
    }

    fn bound() -> BoundParams {
        BoundParams::new(4000.0, 100.0, 1000).unwrap()
    }

    #[test]
    fn intrinsic_gain_formula() {
        let c = client(50.0, 4000.0);
        let b = bound();
        // K = v · (α/R) · a²G² = 4000 · 4 · (0.01·25) = 4000.
        assert!((intrinsic_gain(&c, &b) - 4000.0).abs() < 1e-9);
        assert_eq!(intrinsic_gain(&client(50.0, 0.0), &b), 0.0);
    }

    #[test]
    fn best_response_is_global_argmax_on_grid() {
        let b = bound();
        for &(cost, value, price) in &[
            (50.0, 400.0, 10.0),
            (20.0, 3000.0, -5.0),
            (80.0, 1000.0, 60.0),
            (50.0, 0.0, 30.0),
        ] {
            let c = client(cost, value);
            let q_star = best_response(&c, &b, price).unwrap();
            let u_star = own_utility(&c, &b, price, q_star);
            for i in 1..=1000 {
                let q = i as f64 / 1000.0;
                let u = own_utility(&c, &b, price, q);
                assert!(
                    u <= u_star + 1e-6 * u_star.abs().max(1.0),
                    "q={q} beats q*={q_star} ({u} > {u_star}) for (c={cost}, v={value}, P={price})"
                );
            }
        }
    }

    #[test]
    fn best_response_clamps_at_q_max() {
        let mut c = client(0.001, 0.0);
        c.q_max = 0.6;
        // Tiny cost + big price would push q far above 1 unconstrained.
        let q = best_response(&c, &bound(), 100.0).unwrap();
        assert_eq!(q, 0.6);
    }

    #[test]
    fn no_value_no_pay_means_no_participation() {
        let c = client(50.0, 0.0);
        assert_eq!(best_response(&c, &bound(), 0.0).unwrap(), 0.0);
        assert_eq!(best_response(&c, &bound(), -10.0).unwrap(), 0.0);
    }

    #[test]
    fn intrinsic_value_sustains_participation_without_payment() {
        let c = client(50.0, 4000.0);
        let q = best_response(&c, &bound(), 0.0).unwrap();
        assert!(q > 0.0, "client with intrinsic value should join unpaid");
        // Even paying the server (negative price) keeps q > 0.
        let q_neg = best_response(&c, &bound(), -20.0).unwrap();
        assert!(q_neg > 0.0 && q_neg <= q);
    }

    #[test]
    fn best_response_monotone_increasing_and_convex_in_price() {
        let c = client(40.0, 500.0);
        let b = bound();
        let prices: Vec<f64> = (0..60).map(|i| -30.0 + i as f64).collect();
        let qs: Vec<f64> = prices
            .iter()
            .map(|&p| best_response(&c, &b, p).unwrap())
            .collect();
        for w in qs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "not monotone");
        }
        // Convexity of q*(P) (paper, Section V-A) on the interior segment.
        let interior: Vec<f64> = qs
            .iter()
            .cloned()
            .filter(|&q| q > 1e-9 && q < c.q_max - 1e-9)
            .collect();
        for w in interior.windows(3) {
            assert!(w[2] - w[1] >= w[1] - w[0] - 1e-9, "q*(P) not convex: {w:?}");
        }
    }

    #[test]
    fn inverse_price_roundtrips_with_best_response() {
        let b = bound();
        for &(cost, value) in &[(50.0, 400.0), (20.0, 3000.0), (80.0, 0.0)] {
            let c = client(cost, value);
            for &q in &[0.1, 0.35, 0.8] {
                let p = inverse_price(&c, &b, q).unwrap();
                let q_back = best_response(&c, &b, p).unwrap();
                assert!(
                    (q_back - q).abs() < 1e-8,
                    "roundtrip {q} -> {p} -> {q_back}"
                );
            }
        }
    }

    #[test]
    fn inverse_price_rejects_nonpositive_q() {
        let c = client(10.0, 0.0);
        assert!(inverse_price(&c, &bound(), 0.0).is_err());
        assert!(inverse_price(&c, &bound(), -0.5).is_err());
    }

    #[test]
    fn high_value_clients_accept_lower_prices_for_same_q() {
        let b = bound();
        let low_v = client(50.0, 100.0);
        let high_v = client(50.0, 5000.0);
        let q = 0.5;
        let p_low = inverse_price(&low_v, &b, q).unwrap();
        let p_high = inverse_price(&high_v, &b, q).unwrap();
        assert!(
            p_high < p_low,
            "higher intrinsic value should need a lower price"
        );
    }

    #[test]
    fn own_utility_edge_cases() {
        let b = bound();
        let with_value = client(10.0, 100.0);
        assert_eq!(own_utility(&with_value, &b, 5.0, 0.0), f64::NEG_INFINITY);
        let without_value = client(10.0, 0.0);
        assert_eq!(own_utility(&without_value, &b, 5.0, 0.0), 0.0);
    }

    #[test]
    fn best_response_rejects_bad_inputs() {
        let c = client(10.0, 0.0);
        assert!(best_response(&c, &bound(), f64::NAN).is_err());
        let mut bad = c;
        bad.cost = 0.0;
        assert!(best_response(&bad, &bound(), 1.0).is_err());
    }
}
