//! Decoupled local-cost model — the refinement the paper lists as future
//! work ("we will further refine our cost model by decoupling the local
//! cost into computation and communication consumption", Section VII).
//!
//! The game's scalar cost parameter `c_n` of `C_n = c_n q_n²` is derived
//! from measurable device characteristics instead of being drawn from a
//! distribution: a client that spends `s_n` device-seconds per participated
//! round (computation + upload) at a device-time price of `π` per second,
//! over an `R`-round horizon, has
//!
//! ```text
//! c_n = π · R · s_n = π · R · (E / compute_speed_n + model_size / upload_rate_n)
//! ```
//!
//! The quadratic shape in `q` is retained from the paper (opportunity cost
//! grows superlinearly as the device commits more of its duty cycle); the
//! decoupling only grounds the *coefficient* in the computation and
//! communication budgets, so every equilibrium result continues to apply.

use crate::error::GameError;
use serde::{Deserialize, Serialize};

/// Computation/communication decomposition of one client's per-round cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostComponents {
    /// Seconds of local computation per participated round.
    pub compute_seconds: f64,
    /// Seconds of uplink transmission per participated round.
    pub upload_seconds: f64,
}

impl CostComponents {
    /// Build from device characteristics: `E` local steps at
    /// `compute_speed` steps/second, and `model_size` parameters at
    /// `upload_rate` parameters/second.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for non-positive speeds.
    pub fn from_device(
        local_steps: usize,
        compute_speed: f64,
        model_size: usize,
        upload_rate: f64,
    ) -> Result<Self, GameError> {
        if !(compute_speed.is_finite() && compute_speed > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "compute_speed",
                reason: format!("must be finite and positive, got {compute_speed}"),
            });
        }
        if !(upload_rate.is_finite() && upload_rate > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "upload_rate",
                reason: format!("must be finite and positive, got {upload_rate}"),
            });
        }
        Ok(Self {
            compute_seconds: local_steps as f64 / compute_speed,
            upload_seconds: model_size as f64 / upload_rate,
        })
    }

    /// Total device-seconds per participated round.
    pub fn seconds_per_round(&self) -> f64 {
        self.compute_seconds + self.upload_seconds
    }

    /// The game's cost coefficient `c_n = π · R · s_n` for a device-time
    /// price `price_per_second` and an `R`-round horizon.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for a non-positive price or
    /// zero rounds.
    pub fn cost_coefficient(&self, price_per_second: f64, rounds: usize) -> Result<f64, GameError> {
        if !(price_per_second.is_finite() && price_per_second > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "price_per_second",
                reason: format!("must be finite and positive, got {price_per_second}"),
            });
        }
        if rounds == 0 {
            return Err(GameError::InvalidParameter {
                name: "rounds",
                reason: "must be at least 1".into(),
            });
        }
        Ok(price_per_second * rounds as f64 * self.seconds_per_round())
    }

    /// Fraction of this client's per-round cost that is communication —
    /// useful for diagnosing whether a pricing outcome is compute- or
    /// network-driven.
    pub fn communication_share(&self) -> f64 {
        let total = self.seconds_per_round();
        if total == 0.0 {
            0.0
        } else {
            self.upload_seconds / total
        }
    }
}

/// Derive the cost coefficients of a whole federation from per-device
/// components.
///
/// # Errors
///
/// Propagates [`CostComponents::cost_coefficient`] errors.
pub fn derive_cost_coefficients(
    components: &[CostComponents],
    price_per_second: f64,
    rounds: usize,
) -> Result<Vec<f64>, GameError> {
    components
        .iter()
        .map(|c| c.cost_coefficient(price_per_second, rounds))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_device_decomposes_times() {
        // 100 steps at 50/s = 2 s compute; 5000 params at 10000/s = 0.5 s.
        let c = CostComponents::from_device(100, 50.0, 5_000, 10_000.0).unwrap();
        assert!((c.compute_seconds - 2.0).abs() < 1e-12);
        assert!((c.upload_seconds - 0.5).abs() < 1e-12);
        assert!((c.seconds_per_round() - 2.5).abs() < 1e-12);
        assert!((c.communication_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn cost_coefficient_scales_linearly() {
        let c = CostComponents {
            compute_seconds: 1.0,
            upload_seconds: 1.0,
        };
        let base = c.cost_coefficient(0.5, 100).unwrap();
        assert!((base - 100.0).abs() < 1e-12);
        assert!((c.cost_coefficient(1.0, 100).unwrap() - 2.0 * base).abs() < 1e-9);
        assert!((c.cost_coefficient(0.5, 200).unwrap() - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn slow_devices_cost_more() {
        let fast = CostComponents::from_device(50, 400.0, 1_000, 1e6).unwrap();
        let slow = CostComponents::from_device(50, 40.0, 1_000, 1e5).unwrap();
        let cf = fast.cost_coefficient(1.0, 100).unwrap();
        let cs = slow.cost_coefficient(1.0, 100).unwrap();
        assert!(cs > 5.0 * cf, "slow {cs} vs fast {cf}");
    }

    #[test]
    fn derive_costs_for_a_fleet() {
        let fleet = vec![
            CostComponents::from_device(10, 100.0, 100, 1_000.0).unwrap(),
            CostComponents::from_device(10, 50.0, 100, 1_000.0).unwrap(),
        ];
        let costs = derive_cost_coefficients(&fleet, 1.0, 10).unwrap();
        assert_eq!(costs.len(), 2);
        assert!(costs[1] > costs[0]);
    }

    #[test]
    fn validation_rejects_bad_inputs() {
        assert!(CostComponents::from_device(10, 0.0, 100, 1.0).is_err());
        assert!(CostComponents::from_device(10, 1.0, 100, -1.0).is_err());
        let c = CostComponents {
            compute_seconds: 1.0,
            upload_seconds: 0.0,
        };
        assert!(c.cost_coefficient(0.0, 10).is_err());
        assert!(c.cost_coefficient(1.0, 0).is_err());
    }

    #[test]
    fn zero_time_components_have_zero_share() {
        let c = CostComponents {
            compute_seconds: 0.0,
            upload_seconds: 0.0,
        };
        assert_eq!(c.communication_share(), 0.0);
    }
}
