//! The CPL game façade: population + bound + budget.
//!
//! [`CplGame`] ties the two stages together: construct it with a
//! [`Population`], the Theorem 1 [`BoundParams`] and a budget, then
//! [`CplGame::solve`] for the Stackelberg equilibrium (backward induction:
//! the clients' response maps are substituted into Stage I, which is solved
//! on the KKT path, and prices are read back through equation (17)).

use crate::bound::BoundParams;
use crate::equilibrium::StackelbergEquilibrium;
use crate::error::GameError;
use crate::population::Population;
use crate::pricing::{PricingOutcome, PricingScheme};
use crate::server::{solve_kkt, solve_m_search, SolverOptions};
use serde::{Deserialize, Serialize};

/// A fully-specified instance of the Client Participation Level game.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CplGame {
    population: Population,
    bound: BoundParams,
    budget: f64,
    options: SolverOptions,
}

impl CplGame {
    /// Create a game instance.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] for a non-finite budget.
    pub fn new(population: Population, bound: BoundParams, budget: f64) -> Result<Self, GameError> {
        if !budget.is_finite() {
            return Err(GameError::InvalidParameter {
                name: "budget",
                reason: format!("must be finite, got {budget}"),
            });
        }
        Ok(Self {
            population,
            bound,
            budget,
            options: SolverOptions::default(),
        })
    }

    /// Replace the solver options.
    pub fn with_options(mut self, options: SolverOptions) -> Self {
        self.options = options;
        self
    }

    /// The client population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The Theorem 1 bound constants.
    pub fn bound(&self) -> &BoundParams {
        &self.bound
    }

    /// The server's budget `B`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The solver options in use.
    pub fn options(&self) -> &SolverOptions {
        &self.options
    }

    /// Solve for the Stackelberg equilibrium along the KKT path.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the Stage-I solver fails.
    pub fn solve(&self) -> Result<StackelbergEquilibrium, GameError> {
        let stage_one = solve_kkt(&self.population, &self.bound, self.budget, &self.options)?;
        Ok(StackelbergEquilibrium::from_stage_one(
            stage_one,
            &self.population,
            &self.bound,
            self.budget,
        ))
    }

    /// Solve with the paper's literal two-step `M`-search (slow; used for
    /// cross-validation and the solver ablation).
    ///
    /// # Errors
    ///
    /// Returns [`GameError::SolverFailed`] if no feasible `M` exists.
    pub fn solve_via_m_search(&self) -> Result<StackelbergEquilibrium, GameError> {
        let stage_one = solve_m_search(&self.population, &self.bound, self.budget, &self.options)?;
        Ok(StackelbergEquilibrium::from_stage_one(
            stage_one,
            &self.population,
            &self.bound,
            self.budget,
        ))
    }

    /// Run an arbitrary pricing scheme (optimal or a baseline) on this game
    /// instance.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] if the scheme's solver fails (e.g. baselines
    /// with a negative budget).
    pub fn run_scheme(&self, scheme: PricingScheme) -> Result<PricingOutcome, GameError> {
        scheme.solve(&self.population, &self.bound, self.budget, &self.options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn game(budget: f64) -> CplGame {
        let population = Population::builder()
            .weights(vec![0.4, 0.3, 0.2, 0.1])
            .g_squared(vec![9.0, 16.0, 25.0, 36.0])
            .costs(vec![30.0, 50.0, 70.0, 90.0])
            .values(vec![0.0, 2.0, 5.0, 10.0])
            .build()
            .unwrap();
        let bound = BoundParams::new(4000.0, 100.0, 1000).unwrap();
        CplGame::new(population, bound, budget).unwrap()
    }

    #[test]
    fn solve_produces_verified_equilibrium() {
        let g = game(10.0);
        let se = g.solve().unwrap();
        assert!(se.is_budget_tight(1e-6));
        assert!(se
            .verify_client_optimality(g.population(), g.bound(), 1e-6)
            .unwrap());
    }

    #[test]
    fn m_search_and_kkt_agree_on_the_gap() {
        let g = game(10.0);
        let kkt = g.solve().unwrap();
        let ms = g.solve_via_m_search().unwrap();
        let rel = (ms.optimality_gap() - kkt.optimality_gap()).abs()
            / kkt.optimality_gap().abs().max(1e-12);
        assert!(rel < 0.05, "gap mismatch: {rel}");
    }

    #[test]
    fn run_scheme_matches_direct_solvers() {
        let g = game(10.0);
        let direct = g.solve().unwrap();
        let via_scheme = g.run_scheme(PricingScheme::Optimal).unwrap();
        for (a, b) in direct.q().iter().zip(&via_scheme.q) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn constructor_rejects_nan_budget() {
        let population = Population::builder()
            .weights(vec![1.0])
            .g_squared(vec![1.0])
            .costs(vec![1.0])
            .values(vec![0.0])
            .build()
            .unwrap();
        let bound = BoundParams::new(1.0, 0.0, 1).unwrap();
        assert!(CplGame::new(population, bound, f64::NAN).is_err());
    }

    #[test]
    fn accessors_and_options() {
        let g = game(10.0).with_options(SolverOptions {
            m_grid_steps: 10,
            ..Default::default()
        });
        assert_eq!(g.budget(), 10.0);
        assert_eq!(g.options().m_grid_steps, 10);
        assert_eq!(g.population().len(), 4);
        assert_eq!(g.bound().rounds(), 1000);
    }
}
