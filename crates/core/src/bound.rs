//! The convergence bound of Theorem 1 — the server's surrogate objective.
//!
//! For arbitrary independent participation levels `q` and the unbiased
//! aggregation of Lemma 1, Theorem 1 of the paper gives
//!
//! ```text
//! E[F(w^R(q))] − F* ≤ (1/R) ( α Σ_n (1 − q_n) a_n² G_n² / q_n + β )
//! ```
//!
//! with `α = 8LE/µ²` and
//! `β = (2L/µ²E)·A₀ + (12L²/µ²E)·Γ + (4L²/µE)·‖w⁰ − w*‖²`,
//! `A₀ = Σ a_n² σ_n² + 8 Σ a_n G_n² (E−1)²`, `Γ = F* − Σ a_n F*_n`.
//!
//! Only the α-term depends on `q`; it is what the Stage-I problem minimises
//! and what prices client contributions: client `n`'s marginal effect on the
//! bound scales with `a_n² G_n²` — unbalanced data *and* statistical
//! heterogeneity, not just data quantity.

use crate::error::GameError;
use crate::population::Population;
use serde::{Deserialize, Serialize};

/// The constants `(α, β, R)` of the Theorem 1 bound.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundParams {
    alpha: f64,
    beta: f64,
    rounds: usize,
}

impl BoundParams {
    /// Create bound parameters from pre-computed constants.
    ///
    /// # Errors
    ///
    /// Returns [`GameError::InvalidParameter`] unless `alpha > 0`,
    /// `beta ≥ 0` and `rounds ≥ 1`.
    pub fn new(alpha: f64, beta: f64, rounds: usize) -> Result<Self, GameError> {
        if !(alpha.is_finite() && alpha > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "alpha",
                reason: format!("must be finite and positive, got {alpha}"),
            });
        }
        if !(beta.is_finite() && beta >= 0.0) {
            return Err(GameError::InvalidParameter {
                name: "beta",
                reason: format!("must be finite and non-negative, got {beta}"),
            });
        }
        if rounds == 0 {
            return Err(GameError::InvalidParameter {
                name: "rounds",
                reason: "must be at least 1".into(),
            });
        }
        Ok(Self {
            alpha,
            beta,
            rounds,
        })
    }

    /// Derive `(α, β)` from the problem constants of Assumptions 1–3, as
    /// Theorem 1 defines them.
    ///
    /// * `l`, `mu` — smoothness and strong convexity of the local losses;
    /// * `local_steps` — `E`;
    /// * `rounds` — `R`;
    /// * `weights`, `sigma_squared`, `g_squared` — per-client `a_n`,
    ///   `σ_n²`, `G_n²`;
    /// * `gamma` — the heterogeneity gap `Γ = F* − Σ a_n F*_n ≥ 0`;
    /// * `w0_dist_squared` — `‖w⁰ − w*‖²`.
    ///
    /// # Errors
    ///
    /// Returns [`GameError`] for non-positive `l`/`mu`, zero `local_steps`
    /// or `rounds`, mismatched vector lengths, or negative entries.
    #[allow(clippy::too_many_arguments)]
    pub fn from_constants(
        l: f64,
        mu: f64,
        local_steps: usize,
        rounds: usize,
        weights: &[f64],
        sigma_squared: &[f64],
        g_squared: &[f64],
        gamma: f64,
        w0_dist_squared: f64,
    ) -> Result<Self, GameError> {
        if !(l.is_finite() && l > 0.0 && mu.is_finite() && mu > 0.0) {
            return Err(GameError::InvalidParameter {
                name: "l/mu",
                reason: format!("must be finite and positive, got L={l}, mu={mu}"),
            });
        }
        if local_steps == 0 {
            return Err(GameError::InvalidParameter {
                name: "local_steps",
                reason: "must be at least 1".into(),
            });
        }
        if weights.len() != sigma_squared.len() || weights.len() != g_squared.len() {
            return Err(GameError::LengthMismatch {
                expected: weights.len(),
                found: sigma_squared.len().min(g_squared.len()),
            });
        }
        if gamma < 0.0 || w0_dist_squared < 0.0 {
            return Err(GameError::InvalidParameter {
                name: "gamma/w0_dist_squared",
                reason: "must be non-negative".into(),
            });
        }
        let e = local_steps as f64;
        let alpha = 8.0 * l * e / (mu * mu);
        let a0: f64 = weights
            .iter()
            .zip(sigma_squared)
            .map(|(&a, &s2)| a * a * s2)
            .sum::<f64>()
            + 8.0
                * weights
                    .iter()
                    .zip(g_squared)
                    .map(|(&a, &g2)| a * g2)
                    .sum::<f64>()
                * (e - 1.0)
                * (e - 1.0);
        let beta = 2.0 * l / (mu * mu * e) * a0
            + 12.0 * l * l / (mu * mu * e) * gamma
            + 4.0 * l * l / (mu * e) * w0_dist_squared;
        Self::new(alpha, beta, rounds)
    }

    /// The coefficient `α = 8LE/µ²`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The additive constant `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The number of rounds `R`.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The ratio `α/R` that scales every `q`-dependent term of the game.
    pub fn alpha_over_r(&self) -> f64 {
        self.alpha / self.rounds as f64
    }

    /// The variance-driven term `Σ_n (1 − q_n) a_n² G_n² / q_n` of the bound
    /// (Lemma 2's aggregate, without `α/R`).
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` differs from the population size; non-positive
    /// `q_n` yield `+∞` (the bound's message: never freeze a client out).
    pub fn variance_term(&self, population: &Population, q: &[f64]) -> f64 {
        assert_eq!(q.len(), population.len(), "q length mismatch");
        population
            .iter()
            .zip(q)
            .map(|(c, &qn)| {
                if qn <= 0.0 {
                    f64::INFINITY
                } else {
                    (1.0 - qn) * c.a2g2() / qn
                }
            })
            .sum()
    }

    /// The full optimality-gap bound
    /// `(1/R)(α · variance_term + β)` of Theorem 1.
    ///
    /// # Panics
    ///
    /// Panics if `q.len()` differs from the population size.
    pub fn optimality_gap(&self, population: &Population, q: &[f64]) -> f64 {
        (self.alpha * self.variance_term(population, q) + self.beta) / self.rounds as f64
    }

    /// Marginal decrease of the bound from raising `q_n`:
    /// `∂gap/∂q_n = −(α/R) a_n² G_n² / q_n²` — the "contribution" that the
    /// pricing scheme rewards.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range or `q_n ≤ 0`.
    pub fn marginal_gap(&self, population: &Population, n: usize, q_n: f64) -> f64 {
        assert!(q_n > 0.0, "q must be positive");
        -self.alpha_over_r() * population.client(n).a2g2() / (q_n * q_n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Population {
        Population::builder()
            .weights(vec![0.5, 0.3, 0.2])
            .g_squared(vec![1.0, 4.0, 9.0])
            .costs(vec![10.0, 10.0, 10.0])
            .values(vec![0.0, 0.0, 0.0])
            .build()
            .unwrap()
    }

    #[test]
    fn constructor_validates() {
        assert!(BoundParams::new(0.0, 1.0, 10).is_err());
        assert!(BoundParams::new(1.0, -1.0, 10).is_err());
        assert!(BoundParams::new(1.0, 1.0, 0).is_err());
        assert!(BoundParams::new(f64::NAN, 1.0, 10).is_err());
        let b = BoundParams::new(100.0, 5.0, 50).unwrap();
        assert_eq!(b.alpha(), 100.0);
        assert_eq!(b.beta(), 5.0);
        assert_eq!(b.rounds(), 50);
        assert!((b.alpha_over_r() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn from_constants_matches_formulas() {
        let l = 2.0;
        let mu = 0.5;
        let e = 4usize;
        let weights = [0.6, 0.4];
        let sigma2 = [1.0, 2.0];
        let g2 = [3.0, 5.0];
        let gamma = 0.7;
        let w0 = 1.5;
        let b =
            BoundParams::from_constants(l, mu, e, 100, &weights, &sigma2, &g2, gamma, w0).unwrap();
        let alpha_expected = 8.0 * l * e as f64 / (mu * mu);
        assert!((b.alpha() - alpha_expected).abs() < 1e-12);
        let a0 = 0.36 * 1.0 + 0.16 * 2.0 + 8.0 * (0.6 * 3.0 + 0.4 * 5.0) * 9.0;
        let beta_expected = 2.0 * l / (mu * mu * e as f64) * a0
            + 12.0 * l * l / (mu * mu * e as f64) * gamma
            + 4.0 * l * l / (mu * e as f64) * w0;
        assert!((b.beta() - beta_expected).abs() < 1e-9);
    }

    #[test]
    fn from_constants_validates() {
        let w = [1.0];
        assert!(BoundParams::from_constants(0.0, 1.0, 1, 1, &w, &[1.0], &[1.0], 0.0, 0.0).is_err());
        assert!(BoundParams::from_constants(1.0, 1.0, 0, 1, &w, &[1.0], &[1.0], 0.0, 0.0).is_err());
        assert!(BoundParams::from_constants(1.0, 1.0, 1, 1, &w, &[], &[1.0], 0.0, 0.0).is_err());
        assert!(
            BoundParams::from_constants(1.0, 1.0, 1, 1, &w, &[1.0], &[1.0], -0.1, 0.0).is_err()
        );
    }

    #[test]
    fn full_participation_zeroes_the_variance_term() {
        let p = population();
        let b = BoundParams::new(10.0, 3.0, 10).unwrap();
        assert_eq!(b.variance_term(&p, &[1.0, 1.0, 1.0]), 0.0);
        // The gap then reduces to β/R.
        assert!((b.optimality_gap(&p, &[1.0, 1.0, 1.0]) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn bound_decreases_in_each_q() {
        let p = population();
        let b = BoundParams::new(10.0, 0.0, 10).unwrap();
        let base = vec![0.5, 0.5, 0.5];
        let g0 = b.optimality_gap(&p, &base);
        for i in 0..3 {
            let mut higher = base.clone();
            higher[i] = 0.8;
            assert!(b.optimality_gap(&p, &higher) < g0, "client {i}");
        }
    }

    #[test]
    fn zero_q_blows_up() {
        let p = population();
        let b = BoundParams::new(10.0, 0.0, 10).unwrap();
        assert!(b.variance_term(&p, &[1.0, 0.0, 1.0]).is_infinite());
    }

    #[test]
    fn high_heterogeneity_clients_dominate_the_bound() {
        let p = population();
        let b = BoundParams::new(10.0, 0.0, 10).unwrap();
        // Same q for all: client ordering by a²G² is 0.25, 0.36, 0.36.
        // Raising the most heterogeneous client's q helps at least as much.
        let base = vec![0.5, 0.5, 0.5];
        let mut up1 = base.clone();
        up1[0] = 0.7;
        let mut up2 = base.clone();
        up2[1] = 0.7;
        let drop1 = b.optimality_gap(&p, &base) - b.optimality_gap(&p, &up1);
        let drop2 = b.optimality_gap(&p, &base) - b.optimality_gap(&p, &up2);
        assert!(drop2 >= drop1);
    }

    #[test]
    fn marginal_gap_matches_finite_difference() {
        let p = population();
        let b = BoundParams::new(10.0, 2.0, 10).unwrap();
        let q = vec![0.4, 0.6, 0.8];
        let eps = 1e-7;
        for n in 0..3 {
            let mut plus = q.clone();
            plus[n] += eps;
            let fd = (b.optimality_gap(&p, &plus) - b.optimality_gap(&p, &q)) / eps;
            let analytic = b.marginal_gap(&p, n, q[n]);
            assert!(
                (fd - analytic).abs() < 1e-4,
                "client {n}: {fd} vs {analytic}"
            );
        }
    }
}
