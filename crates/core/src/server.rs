//! Stage I — the server's optimal-pricing problem.
//!
//! Substituting the clients' inverse price map (17) into the server's
//! budgeted loss-minimisation problem gives Problem P1′ of the paper:
//!
//! ```text
//! min_q  Σ_n (1 − q_n) a_n² G_n² / q_n
//! s.t.   Σ_n (2 c_n q_n − (α/R) v_n a_n² G_n² / q_n²) q_n ≤ B,
//!        q_min ≤ q_n ≤ q_{n,max}.
//! ```
//!
//! Two solvers are provided:
//!
//! 1. [`solve_kkt`] — from the KKT condition (22),
//!    `1/λ = (4R/α) c_n q_n³ / (a_n² G_n²) + v_n` for interior clients, the
//!    whole optimal profile is a one-parameter family
//!    `q_n(t) = clamp(((α/4R)·a_n²G_n²·(t − v_n)/c_n)^{1/3})` in `t = 1/λ`;
//!    budget spend is monotone along the path (Proposition 1), so the tight
//!    budget of Lemma 3 pins `t` by bisection.
//! 2. [`solve_m_search`] — the paper's literal two-step method for P1″:
//!    fix `M = Σ c_n q_n²`, solve the then-convex inner problem (we use a
//!    quadratic-penalty projected-gradient method in place of CVX), and
//!    linearly search `M` with a fixed step ε₀.
//!
//! Both return the same profile up to solver tolerance (tested), with the
//! KKT path being orders of magnitude faster.
//!
//! # Scale
//!
//! [`solve_kkt`] runs its per-client passes — the λ-evaluation inside the
//! budget bisection, the final profile fill and the price read-back — as
//! deterministic chunked reductions over scoped crossbeam workers
//! ([`fedfl_num::parallel`]): one bisection step is O(N / threads) and
//! materialises no per-client buffers (each probe costs only the
//! O(N/8192) chunk bookkeeping of its worker crew), and the chunked
//! summation tree is fixed by the population size alone, so the same seed
//! and tolerance produce **bit-identical** prices whether
//! [`SolverConfig::n_threads`] is 1 or 16. Populations up to millions of
//! clients are in reach; see the `scale_equilibrium` binary.

use crate::active_set::ActiveSetIndex;
use crate::bound::BoundParams;
use crate::error::GameError;
use crate::population::{Population, PopulationColumns, Q_MIN};
use crate::shard::ShardedPopulation;
use fedfl_num::parallel::{chunked_fill, chunked_sum, multi_shard_sum};
use fedfl_num::solve::{
    bisect_monotone_instrumented, penalty_minimize, BisectStats, BoxConstraints, ConstraintFn,
    ConstraintKind, PgdConfig,
};
use fedfl_obs::{Metric, NoopRecorder, Recorder, Stopwatch};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Execution configuration shared by the Stage-I solvers: how hard to
/// iterate and how many workers run the per-client passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverConfig {
    /// Worker threads for the chunked per-client passes (0 = one per
    /// available core). Any value produces bit-identical results.
    pub n_threads: usize,
    /// Bisection tolerance on the KKT parameter and budget.
    pub tolerance: f64,
    /// Iteration budget of the budget-tightening bisection.
    ///
    /// The default (2,200) exceeds the ~2,100 halvings that exhaust f64
    /// resolution on *any* finite bracket, so the bisection always
    /// terminates on the tolerance or the f64-resolution stagnation stop —
    /// never on this cap. That matters for heavy-tailed populations, whose
    /// saturation parameter can sit 50+ decades above the budget root: a
    /// cap below the bracket's dyadic depth silently truncates the search
    /// (and the warm-start containment chain with it). The cap remains a
    /// backstop against non-terminating spend callbacks, not a precision
    /// knob.
    pub max_iters: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            n_threads: 0,
            tolerance: 1e-10,
            max_iters: 2_200,
        }
    }
}

/// Options shared by the Stage-I solvers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SolverOptions {
    /// Participation floor (Theorem 1 needs `q_n > 0`).
    pub q_min: f64,
    /// Grid steps for the outer `M`-search (the paper's ε₀ divides the `M`
    /// range into this many cells).
    pub m_grid_steps: usize,
    /// Execution configuration (threads, tolerance, iteration budget).
    pub config: SolverConfig,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            q_min: Q_MIN,
            m_grid_steps: 30,
            config: SolverConfig::default(),
        }
    }
}

impl SolverOptions {
    /// Default options with an explicit worker-thread count.
    pub fn with_threads(n_threads: usize) -> Self {
        Self {
            config: SolverConfig {
                n_threads,
                ..SolverConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The server's Stage-I decision: participation targets and the prices that
/// implement them.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageOneSolution {
    /// Optimal participation levels `q*`.
    pub q: Vec<f64>,
    /// Optimal prices `P*` from equation (17).
    pub prices: Vec<f64>,
    /// Total payment `Σ P*_n q*_n` actually spent.
    pub spent: f64,
    /// KKT multiplier `λ*` of the budget constraint, when the KKT solver
    /// produced an interior path point (`None` for the `M`-search and for
    /// saturated/floored corner cases).
    pub lambda: Option<f64>,
    /// Whether every client sits at `q_max` with budget left over (the
    /// budget constraint is slack; Lemma 3's tightness needs a binding
    /// budget).
    pub saturated: bool,
}

impl StageOneSolution {
    /// The bound's variance term `Σ (1 − q_n) a_n² G_n² / q_n` at this
    /// solution.
    pub fn variance_term(&self, population: &Population, bound: &BoundParams) -> f64 {
        bound.variance_term(population, &self.q)
    }

    /// Number of clients the server charges (negative price — Theorem 3's
    /// bi-directional payments).
    pub fn negative_price_count(&self) -> usize {
        self.prices.iter().filter(|&&p| p < 0.0).count()
    }
}

/// Borrowed view of one or many shard column-sets — the abstraction every
/// Stage-I per-client pass runs on.
///
/// A flat [`PopulationColumns`] is a single-shard view; a
/// [`ShardedPopulation`] contributes one shard per column-set. Reductions
/// are evaluated as a two-level merge: each shard produces its per-chunk
/// partial sums ([`chunk_partial_sums`]) and the partials are merged **in
/// shard order** ([`merge_shard_partials`]). Because shard boundaries are
/// chunk-aligned, the merged summation tree is the flat reduction's tree —
/// results are bit-identical for any shard count and any thread count.
struct ShardView<'a> {
    shards: Vec<&'a PopulationColumns>,
    /// Prefix offsets plus the total length (`offsets.len() == shards + 1`).
    offsets: Vec<usize>,
}

impl<'a> ShardView<'a> {
    /// View flat columns as a single shard.
    fn single(cols: &'a PopulationColumns) -> Self {
        Self {
            shards: vec![cols],
            offsets: vec![0, cols.len()],
        }
    }

    /// View a sharded population's column-sets.
    fn of(population: &'a ShardedPopulation) -> Self {
        let shards: Vec<&PopulationColumns> = population.shards().iter().collect();
        let mut offsets = Vec::with_capacity(shards.len() + 1);
        offsets.push(0);
        let mut total = 0usize;
        for shard in &shards {
            total += shard.len();
            offsets.push(total);
        }
        Self { shards, offsets }
    }

    /// Total number of clients across all shards.
    fn len(&self) -> usize {
        *self.offsets.last().expect("offsets never empty")
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Two-level deterministic reduction: `f` receives a shard's columns,
    /// a shard-local index range, and the shard's global offset (for
    /// indexing global per-client arrays such as a profile `q`). All
    /// shards' chunks share one job queue and one worker crew per call
    /// ([`multi_shard_sum`]), so a probe over many small shards spawns no
    /// per-shard crews and hits no per-shard barriers.
    fn sum<F>(&self, n_threads: usize, f: F) -> f64
    where
        F: Fn(&PopulationColumns, std::ops::Range<usize>, usize) -> f64 + Sync,
    {
        if self.shards.len() == 1 {
            let shard = self.shards[0];
            return chunked_sum(shard.len(), n_threads, |range| f(shard, range, 0));
        }
        let lens: Vec<usize> = self.shards.iter().map(|s| s.len()).collect();
        multi_shard_sum(&lens, n_threads, |s, local| {
            f(self.shards[s], local, self.offsets[s])
        })
    }

    /// Fill the global buffer `out` shard by shard; `f` receives a shard's
    /// columns, the shard-local start index of the slice, the shard's
    /// global offset, and the output sub-slice to write.
    fn fill<F>(&self, out: &mut [f64], n_threads: usize, f: F)
    where
        F: Fn(&PopulationColumns, usize, usize, &mut [f64]) + Sync,
    {
        debug_assert_eq!(out.len(), self.len());
        for (shard, &offset) in self.shards.iter().zip(&self.offsets) {
            chunked_fill(
                &mut out[offset..offset + shard.len()],
                n_threads,
                |local_start, slice| f(shard, local_start, offset, slice),
            );
        }
    }

    /// The shard and shard-local index of global client `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    fn locate(&self, i: usize) -> (&'a PopulationColumns, usize) {
        let s = self.offsets.partition_point(|&o| o <= i) - 1;
        (self.shards[s], i - self.offsets[s])
    }
}

/// The path parameter `t` at which every client sits at its cap (plus a
/// relative epsilon so the saturated profile is strictly inside).
fn saturation_t(view: &ShardView<'_>, aor: f64) -> f64 {
    view.shards
        .iter()
        .map(|cols| {
            (0..cols.len())
                .map(|i| {
                    4.0 / aor * cols.cost[i] * cols.q_max[i].powi(3) / cols.a2g2[i] + cols.value[i]
                })
                .fold(0.0f64, f64::max)
        })
        .fold(0.0f64, f64::max)
        * (1.0 + 1e-12)
        + 1e-12
}

/// The spend realised on the KKT path at `t = frac · t_sat`, where `t_sat`
/// saturates every client — a budget that is *exactly achievable* at
/// equilibrium, so [`solve_kkt`] meets it tightly (Lemma 3).
///
/// This is how the scale harness and benches construct interior budgets:
/// picking a fraction of the floor-to-saturation *spend* range instead
/// can land in a region where the spend curve of a heavy-tailed
/// population is steeper than f64 resolution in `t`, and no solver could
/// be budget-tight there. `frac` is clamped to `[0, 1]`.
pub fn path_budget(
    population: &Population,
    bound: &BoundParams,
    options: &SolverOptions,
    frac: f64,
) -> f64 {
    let cols = population.columns();
    path_budget_view(&ShardView::single(&cols), bound, options, frac)
}

/// [`path_budget`] over shard column-sets — bit-identical to the flat
/// version over the concatenated population, for any shard count.
pub fn path_budget_sharded(
    population: &ShardedPopulation,
    bound: &BoundParams,
    options: &SolverOptions,
    frac: f64,
) -> f64 {
    path_budget_view(&ShardView::of(population), bound, options, frac)
}

fn path_budget_view(
    view: &ShardView<'_>,
    bound: &BoundParams,
    options: &SolverOptions,
    frac: f64,
) -> f64 {
    let aor = bound.alpha_over_r();
    let t = frac.clamp(0.0, 1.0) * saturation_t(view, aor);
    path_spend(view, aor, options.q_min, t, options.config.n_threads)
}

/// The per-client participation level on the KKT path at `t = 1/λ`:
/// `clamp(((α/4R)·a²G²·(t − v)/c)^{1/3})`.
#[inline]
fn path_q(coef: f64, a2g2: f64, cost: f64, value: f64, q_max: f64, q_min: f64, t: f64) -> f64 {
    let slack = (t - value).max(0.0);
    (coef * a2g2 * slack / cost).cbrt().clamp(q_min, q_max)
}

/// Fused spend along the KKT path: `Σ P(q_n(t)) q_n(t)` evaluated without
/// materialising the profile — the λ-evaluation inside every bisection
/// step, as a two-level merge of per-shard partial spends.
fn path_spend(view: &ShardView<'_>, aor: f64, q_min: f64, t: f64, n_threads: usize) -> f64 {
    let coef = aor / 4.0;
    view.sum(n_threads, |cols, range, _offset| {
        let mut acc = 0.0;
        for i in range {
            let q = path_q(
                coef,
                cols.a2g2[i],
                cols.cost[i],
                cols.value[i],
                cols.q_max[i],
                q_min,
                t,
            );
            // P(q)·q = 2 c q² − K/q with K = v (α/R) a²G².
            acc += 2.0 * cols.cost[i] * q * q - cols.value[i] * aor * cols.a2g2[i] / q;
        }
        acc
    })
}

/// Fill `out` with the KKT-path profile at `t` (parallel, allocation-free).
fn fill_path_profile(
    view: &ShardView<'_>,
    aor: f64,
    q_min: f64,
    t: f64,
    out: &mut [f64],
    n_threads: usize,
) {
    let coef = aor / 4.0;
    view.fill(out, n_threads, |cols, local_start, _offset, slice| {
        for (k, q) in slice.iter_mut().enumerate() {
            let i = local_start + k;
            *q = path_q(
                coef,
                cols.a2g2[i],
                cols.cost[i],
                cols.value[i],
                cols.q_max[i],
                q_min,
                t,
            );
        }
    });
}

/// Total payment `Σ P_n(q_n) q_n` for an explicit participation profile
/// (indexed by the view's global order).
fn profile_spend(view: &ShardView<'_>, aor: f64, q: &[f64], n_threads: usize) -> f64 {
    view.sum(n_threads, |cols, range, offset| {
        let mut acc = 0.0;
        for i in range {
            let qn = q[offset + i];
            acc += 2.0 * cols.cost[i] * qn * qn - cols.value[i] * aor * cols.a2g2[i] / qn;
        }
        acc
    })
}

/// Fill `prices` with the equation-(17) read-back `P_n = 2 c q − K/q²`.
fn fill_prices(view: &ShardView<'_>, aor: f64, q: &[f64], prices: &mut [f64], n_threads: usize) {
    view.fill(prices, n_threads, |cols, local_start, offset, slice| {
        for (k, p) in slice.iter_mut().enumerate() {
            let i = local_start + k;
            let qn = q[offset + i];
            *p = 2.0 * cols.cost[i] * qn - cols.value[i] * aor * cols.a2g2[i] / (qn * qn);
        }
    });
}

fn validate_inputs(
    population: &Population,
    budget: f64,
    options: &SolverOptions,
) -> Result<(), GameError> {
    if !budget.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "budget",
            reason: format!("must be finite, got {budget}"),
        });
    }
    if !(options.q_min > 0.0 && options.q_min < 1.0) {
        return Err(GameError::InvalidParameter {
            name: "q_min",
            reason: format!("must lie in (0, 1), got {}", options.q_min),
        });
    }
    if options.m_grid_steps < 2 {
        return Err(GameError::InvalidParameter {
            name: "m_grid_steps",
            reason: "need at least 2 grid steps".into(),
        });
    }
    if !(options.config.tolerance.is_finite() && options.config.tolerance > 0.0) {
        return Err(GameError::InvalidParameter {
            name: "tolerance",
            reason: format!(
                "must be finite and positive, got {}",
                options.config.tolerance
            ),
        });
    }
    if options.config.max_iters == 0 {
        return Err(GameError::InvalidParameter {
            name: "max_iters",
            reason: "need at least one bisection iteration".into(),
        });
    }
    if population.iter().any(|c| c.q_max <= options.q_min) {
        return Err(GameError::InvalidParameter {
            name: "q_max",
            reason: "every client needs q_max > q_min".into(),
        });
    }
    Ok(())
}

/// Budget/option checks shared by every columns-level entry point.
fn validate_solver_knobs(budget: f64, options: &SolverOptions) -> Result<(), GameError> {
    if !budget.is_finite() {
        return Err(GameError::InvalidParameter {
            name: "budget",
            reason: format!("must be finite, got {budget}"),
        });
    }
    if !(options.q_min > 0.0 && options.q_min < 1.0) {
        return Err(GameError::InvalidParameter {
            name: "q_min",
            reason: format!("must lie in (0, 1), got {}", options.q_min),
        });
    }
    if !(options.config.tolerance.is_finite() && options.config.tolerance > 0.0) {
        return Err(GameError::InvalidParameter {
            name: "tolerance",
            reason: format!(
                "must be finite and positive, got {}",
                options.config.tolerance
            ),
        });
    }
    if options.config.max_iters == 0 {
        return Err(GameError::InvalidParameter {
            name: "max_iters",
            reason: "need at least one bisection iteration".into(),
        });
    }
    Ok(())
}

/// Input validation for the columns-level solver entry points, mirroring
/// [`validate_inputs`] for callers that never materialise a [`Population`]
/// — applied shard by shard, reporting global client indices.
fn validate_view(
    view: &ShardView<'_>,
    budget: f64,
    options: &SolverOptions,
) -> Result<(), GameError> {
    for shard in &view.shards {
        for (len, _name) in [
            (shard.cost.len(), "cost"),
            (shard.value.len(), "value"),
            (shard.q_max.len(), "q_max"),
        ] {
            if len != shard.a2g2.len() {
                return Err(GameError::LengthMismatch {
                    expected: shard.a2g2.len(),
                    found: len,
                });
            }
        }
    }
    if view.is_empty() {
        return Err(GameError::InvalidParameter {
            name: "columns",
            reason: "need at least one client".into(),
        });
    }
    validate_solver_knobs(budget, options)?;
    for (cols, &offset) in view.shards.iter().zip(&view.offsets) {
        for i in 0..cols.len() {
            let valid = cols.a2g2[i].is_finite()
                && cols.a2g2[i] > 0.0
                && cols.cost[i].is_finite()
                && cols.cost[i] > 0.0
                && cols.value[i].is_finite()
                && cols.value[i] >= 0.0
                && cols.q_max[i].is_finite()
                && cols.q_max[i] > options.q_min;
            if !valid {
                return Err(GameError::InvalidParameter {
                    name: "columns",
                    reason: format!(
                        "client {} invalid: a2g2={}, cost={}, value={}, q_max={} (need positives and q_max > q_min)",
                        offset + i, cols.a2g2[i], cols.cost[i], cols.value[i], cols.q_max[i]
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Solve Stage I along the KKT path (the fast solver).
///
/// # Errors
///
/// Returns [`GameError`] for invalid inputs; the solver itself is total —
/// budgets below the floor spend saturate at `q_min` and budgets above the
/// saturation spend return the all-`q_max` profile with `saturated = true`.
pub fn solve_kkt(
    population: &Population,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    validate_inputs(population, budget, options)?;
    let cols = population.columns();
    Ok(solve_kkt_view_unchecked(&ShardView::single(&cols), bound, budget, options, None)?.0)
}

/// Which Stage-I solver path produced a solution.
///
/// The exact chunked solver is the default and the certifier; the
/// threshold-indexed fast path is opt-in and demotes itself to
/// [`SolverMode::ThresholdIndexFallback`] whenever its certification
/// fails, in which case the returned solution is the exact solver's,
/// bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SolverMode {
    /// The exact chunked λ-bisection (O(N) per probe, bit-pinned).
    Exact,
    /// The threshold-indexed active-set fast path (O(log N) per probe),
    /// certified against exact probes and the Theorem-2 residual.
    ThresholdIndex,
    /// The fast path was requested but certification failed (or the
    /// index was unusable); the exact solver produced the result.
    ThresholdIndexFallback,
}

impl SolverMode {
    /// Stable snake_case name used in BENCH records and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolverMode::Exact => "exact",
            SolverMode::ThresholdIndex => "threshold_index",
            SolverMode::ThresholdIndexFallback => "threshold_index_fallback",
        }
    }
}

impl std::fmt::Display for SolverMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Diagnostics of one KKT solve: where on the path it landed and how the
/// budget bisection ran. The incremental pricing service's warm-start
/// contract — bit-identical prices, fewer iterations — is expressed and
/// verified in these numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KktDiagnostics {
    /// The path parameter `t = 1/λ` the profile was materialised at (the
    /// natural warm-start hint for the next solve of a perturbed
    /// population).
    pub t_star: f64,
    /// Midpoint iterations of the budget bisection (0 for saturated or
    /// endpoint-clamped solves).
    pub bisect_iterations: usize,
    /// Spend-curve probes, counted at the evaluation site: the saturation
    /// screen, the bisection endpoints and midpoints, any warm-start
    /// verification probes, and — on the fast path — the exact
    /// certification probes.
    pub bisect_evaluations: usize,
    /// Dyadic depth of the bracket the bisection started from (0 = cold).
    pub warm_start_depth: usize,
    /// Which solver path produced the solution.
    pub solver_mode: SolverMode,
    /// Probe-phase work in per-client spend-evaluation units: the exact
    /// solver pays `N` per probe; the fast path pays
    /// [`ActiveSetIndex::probe_cost`] (≈ `2·log₂ N`) per modelled probe
    /// plus `N` for each exact certification probe. Fallback solves
    /// include the wasted fast-phase work.
    pub probe_evaluations: u64,
    /// Nanoseconds spent (re)building or patching the threshold index
    /// for this solve (0 for the exact path and for solves reusing a
    /// caller-held index untouched).
    pub index_rebuild_ns: u64,
    /// Index segments re-sorted for this solve: the whole segment list
    /// on a cold build, only the dirty segments on an incremental patch,
    /// 0 when the index was reused or the exact path ran. Callers
    /// holding their own index (the pricing service) fill this from
    /// [`crate::active_set::PatchStats`].
    pub index_segments_rebuilt: u64,
    /// Clean segments re-sorted only because scale drift reordered
    /// their thresholds (patch "repairs" — no membership change).
    pub index_segments_repaired: u64,
    /// Segments reused verbatim by an incremental patch (zero sort
    /// work).
    pub index_segments_reused: u64,
}

impl KktDiagnostics {
    /// Record this solve into `recorder`: the per-mode solve counters,
    /// the probe/iteration totals, the solve wall time, and — when this
    /// solve built its own index — the index-build span.
    ///
    /// The `_observed` solver entry points call this once per solve;
    /// callers holding their own diagnostics (e.g. bench bins) can call
    /// it directly so every surface feeds the same counters.
    pub fn record_solve<R: Recorder + ?Sized>(&self, recorder: &R, solve_ns: u64) {
        recorder.add(Metric::SolverSolves, 1);
        let mode_metric = match self.solver_mode {
            SolverMode::Exact => Metric::SolverExactSolves,
            SolverMode::ThresholdIndex => Metric::SolverFastSolves,
            SolverMode::ThresholdIndexFallback => Metric::SolverFallbackSolves,
        };
        recorder.add(mode_metric, 1);
        recorder.add(Metric::SolverProbeEvaluations, self.probe_evaluations);
        recorder.add(
            Metric::SolverBisectIterations,
            self.bisect_iterations as u64,
        );
        recorder.observe(Metric::SolverSolveNs, solve_ns);
        if self.index_rebuild_ns > 0 {
            recorder.add(Metric::SolverIndexBuilds, 1);
            recorder.observe(Metric::SolverIndexBuildNs, self.index_rebuild_ns);
        }
    }
}

/// [`solve_kkt`] on pre-extracted [`PopulationColumns`] — the sweep/service
/// entry point that keeps the columns alive across many solves.
///
/// # Errors
///
/// Returns [`GameError`] for invalid inputs (mismatched column lengths,
/// non-finite budget, a client with `q_max <= q_min`, or non-positive
/// `a2g2`/`cost` entries).
pub fn solve_kkt_columns(
    cols: &PopulationColumns,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    let view = ShardView::single(cols);
    validate_view(&view, budget, options)?;
    Ok(solve_kkt_view_unchecked(&view, bound, budget, options, None)?.0)
}

/// [`solve_kkt_columns`] over a slice of shard column-sets: each λ-probe
/// evaluates the shards' partial spends and merges them in shard order, so
/// the result is **bit-identical** to the flat solve over
/// [`ShardedPopulation::concat`] for any shard count and thread count —
/// the contract that lets shards live on independent workers.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`], reported with global client
/// indices.
pub fn solve_kkt_sharded(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    Ok(solve_kkt_view_unchecked(&view, bound, budget, options, None)?.0)
}

/// [`solve_kkt_sharded`] with an optional warm-start hint and solve
/// diagnostics — the sharded counterpart of [`solve_kkt_columns_hinted`],
/// with the same bit-identity guarantee for any hint.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_sharded_hinted(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    hint: Option<f64>,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    solve_kkt_view_unchecked(&view, bound, budget, options, hint)
}

/// [`solve_kkt_sharded_hinted`] recording solve metrics into `recorder`.
///
/// The solve itself is byte-for-byte the unobserved one — the recorder is
/// only fed afterwards from the diagnostics plus a [`Stopwatch`] span, so
/// the bit-identity contract holds for any recorder.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_sharded_hinted_observed<R: Recorder + ?Sized>(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    hint: Option<f64>,
    recorder: &R,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    let watch = Stopwatch::start();
    let (solution, diagnostics) = solve_kkt_view_unchecked(&view, bound, budget, options, hint)?;
    diagnostics.record_solve(recorder, watch.elapsed_ns());
    Ok((solution, diagnostics))
}

/// [`solve_kkt_columns`] with an optional warm-start hint, returning solve
/// diagnostics alongside the solution.
///
/// `hint` is a guess at the path parameter `t = 1/λ` — typically
/// [`KktDiagnostics::t_star`] of the previous solve of a slightly different
/// population. The budget bisection descends its dyadic bracket tree toward
/// the hint and verifies containment before trusting it
/// ([`fedfl_num::solve::bisect_monotone_instrumented`]), so the returned
/// solution is **bit-identical** to the cold [`solve_kkt_columns`] result
/// for any hint; a good hint only removes bisection iterations, a useless
/// one falls back to the full bracket.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_columns_hinted(
    cols: &PopulationColumns,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    hint: Option<f64>,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::single(cols);
    validate_view(&view, budget, options)?;
    solve_kkt_view_unchecked(&view, bound, budget, options, hint)
}

fn solve_kkt_view_unchecked(
    view: &ShardView<'_>,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    hint: Option<f64>,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let n = view.len();
    let aor = bound.alpha_over_r();
    let threads = options.config.n_threads;
    // t needed for every client to hit its cap.
    let t_hi = saturation_t(view, aor);

    // The λ-evaluation: per-shard partial spends merged in shard order,
    // O(N / threads) per probe, materialising no per-client buffers.
    // Probes are counted here, at the evaluation site, so the saturation
    // screen and every bisection probe land in one counter (the
    // bisection's own memo never calls back on a cache hit, so each count
    // is a real O(N) sweep).
    let probes = Cell::new(0u64);
    let spend_at = |t: f64| {
        probes.set(probes.get() + 1);
        path_spend(view, aor, options.q_min, t, threads)
    };

    let (t_used, lambda, saturated, stats) = if spend_at(t_hi) <= budget {
        // Whole population affordable at the caps: budget slack.
        (t_hi, None, true, BisectStats::default())
    } else {
        let (t_star, stats) = bisect_monotone_instrumented(
            spend_at,
            budget,
            0.0,
            t_hi,
            options.config.tolerance,
            options.config.max_iters,
            hint,
        )?;
        let lambda = if t_star > 0.0 {
            Some(1.0 / t_star)
        } else {
            None
        };
        (t_star, lambda, false, stats)
    };
    // Materialise the profile and prices once, into buffers filled in
    // parallel chunks.
    let mut q = vec![0.0f64; n];
    fill_path_profile(view, aor, options.q_min, t_used, &mut q, threads);
    let mut prices = vec![0.0f64; n];
    fill_prices(view, aor, &q, &mut prices, threads);
    if let Some(bad) = prices.iter().position(|p| !p.is_finite()) {
        return Err(GameError::SolverFailed {
            solver: "kkt",
            reason: format!("non-finite price for client {bad}"),
        });
    }
    let spent = profile_spend(view, aor, &q, threads);
    Ok((
        StageOneSolution {
            q,
            prices,
            spent,
            lambda,
            saturated,
        },
        KktDiagnostics {
            t_star: t_used,
            bisect_iterations: stats.iterations,
            bisect_evaluations: probes.get() as usize,
            warm_start_depth: stats.start_depth,
            solver_mode: SolverMode::Exact,
            probe_evaluations: probes.get() * n as u64,
            index_rebuild_ns: 0,
            index_segments_rebuilt: 0,
            index_segments_repaired: 0,
            index_segments_reused: 0,
        },
    ))
}

/// Clients sampled by the fast path's exact Theorem-2 residual gate.
const FAST_RESIDUAL_SAMPLE: usize = 1_024;
/// Seed of the residual gate's deterministic sample stream.
const FAST_RESIDUAL_SEED: u64 = 0xFA57;
/// Relative half-widths of the exact bracket-certificate bands, widened
/// ×100 per retry before the fast path gives up and falls back.
const CERT_BANDS: [f64; 3] = [1e-9, 1e-7, 1e-5];

/// [`solve_kkt_columns`] through the threshold-indexed active-set fast
/// path (`SolverMode::ThresholdIndex`).
///
/// The budget bisection probes the O(log N) spend *model* of an
/// [`ActiveSetIndex`] built for this call instead of the O(N) exact
/// sweep. The root it finds is then **certified** against the exact
/// solver's ground truth:
///
/// 1. an exact monotone bracket certificate — two exact probes per band
///    of [`CERT_BANDS`] must pin the budget between
///    `spend(t̂ − ε)` and `spend(t̂ + ε)`;
/// 2. the exact sampled Theorem-2 residual of the materialised profile
///    must stay within the solver tolerance.
///
/// Any violation (or an unusable/degenerate index) demotes the solve to
/// the exact path — the returned solution is then bit-identical to
/// [`solve_kkt_columns_hinted`]'s, flagged `ThresholdIndexFallback`.
/// Certified fast solutions are *not* bit-pinned to the exact solver:
/// the index's reordered summation and truncated value series land the
/// bisection on a root within the certificate band of the exact root,
/// not on the same bits. The exact solver remains the default and the
/// goldens' reference.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_columns_fast(
    cols: &PopulationColumns,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::single(cols);
    validate_view(&view, budget, options)?;
    let build_watch = Stopwatch::start();
    let index = ActiveSetIndex::from_columns(cols, bound.alpha_over_r(), options.q_min);
    let index_rebuild_ns = build_watch.elapsed_ns();
    let (solution, mut diagnostics) = solve_kkt_view_fast(
        &view,
        bound,
        budget,
        options,
        &index,
        index_rebuild_ns,
        None,
        &NoopRecorder,
    )?;
    diagnostics.index_segments_rebuilt = index.segment_count() as u64;
    Ok((solution, diagnostics))
}

/// [`solve_kkt_columns_fast`] over shard column-sets: per-shard threshold
/// segments are built in parallel and merged (a build bit-identical to
/// the flat index for any shard or thread count), then the solve runs the
/// same certify-or-fallback contract.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_sharded_fast(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    let build_watch = Stopwatch::start();
    let index = ActiveSetIndex::build_sharded_threaded(
        population.shards(),
        bound.alpha_over_r(),
        options.q_min,
        options.config.n_threads,
    );
    let index_rebuild_ns = build_watch.elapsed_ns();
    let (solution, mut diagnostics) = solve_kkt_view_fast(
        &view,
        bound,
        budget,
        options,
        &index,
        index_rebuild_ns,
        None,
        &NoopRecorder,
    )?;
    diagnostics.index_segments_rebuilt = index.segment_count() as u64;
    Ok((solution, diagnostics))
}

/// [`solve_kkt_sharded_fast`] against a caller-maintained index — the
/// pricing service's warm re-solve entry point, where the index is reused
/// across budget-only updates and only rebuilt on churn.
///
/// The index must have been built over exactly this population at this
/// `α/R` and `q_min`; a stale or mismatched index is detected (length,
/// parameter bits, degeneracy) and demoted to the exact fallback rather
/// than trusted. `hint` warm-starts the model bisection just like the
/// exact solver's hinted entry points.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_sharded_fast_with_index(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    index: &ActiveSetIndex,
    hint: Option<f64>,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    solve_kkt_view_fast(&view, bound, budget, options, index, 0, hint, &NoopRecorder)
}

/// [`solve_kkt_sharded_fast_with_index`] recording solve metrics — the
/// per-mode counters, probe totals, certification-band outcomes and the
/// solve span — into `recorder`. The solve is byte-for-byte the
/// unobserved one for any recorder.
///
/// # Errors
///
/// Same conditions as [`solve_kkt_columns`].
pub fn solve_kkt_sharded_fast_with_index_observed<R: Recorder + ?Sized>(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    index: &ActiveSetIndex,
    hint: Option<f64>,
    recorder: &R,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    let watch = Stopwatch::start();
    let (solution, diagnostics) =
        solve_kkt_view_fast(&view, bound, budget, options, index, 0, hint, recorder)?;
    diagnostics.record_solve(recorder, watch.elapsed_ns());
    Ok((solution, diagnostics))
}

/// The certify-or-fallback core of the fast path. `index_rebuild_ns`
/// is reported through the diagnostics untouched (0 = reused index).
/// `recorder` only receives certification outcomes (band hits, failures,
/// residual rejects) — it never influences the solve.
#[allow(clippy::too_many_arguments)]
fn solve_kkt_view_fast<R: Recorder + ?Sized>(
    view: &ShardView<'_>,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
    index: &ActiveSetIndex,
    index_rebuild_ns: u64,
    hint: Option<f64>,
    recorder: &R,
) -> Result<(StageOneSolution, KktDiagnostics), GameError> {
    let n = view.len();
    let aor = bound.alpha_over_r();
    let threads = options.config.n_threads;
    // A usable index describes exactly this population at exactly these
    // solver knobs; anything else would certify against the wrong curve.
    let index_usable = index.len() == n
        && index.aor().to_bits() == aor.to_bits()
        && index.q_min().to_bits() == options.q_min.to_bits()
        && !index.is_degenerate()
        && index.bracket_hi().is_finite();
    let model_probes = Cell::new(0u64);
    let exact_probes = Cell::new(0u64);

    let fast: Option<(StageOneSolution, BisectStats, f64)> = 'fast: {
        if !index_usable {
            break 'fast None;
        }
        let exact_spend = |t: f64| {
            exact_probes.set(exact_probes.get() + 1);
            path_spend(view, aor, options.q_min, t, threads)
        };
        let t_hi = index.bracket_hi();

        // O(1) saturation screen, certified by a single exact probe.
        let (t_used, lambda, saturated, stats) = if index.saturated_spend() <= budget
            && exact_spend(t_hi) <= budget
        {
            (t_hi, None, true, BisectStats::default())
        } else {
            let model_spend = |t: f64| {
                model_probes.set(model_probes.get() + 1);
                index.spend(t)
            };
            let Ok((t_hat, stats)) = bisect_monotone_instrumented(
                model_spend,
                budget,
                0.0,
                t_hi,
                options.config.tolerance,
                options.config.max_iters,
                hint,
            ) else {
                break 'fast None;
            };
            if t_hat <= 0.0 {
                // Floored root: legitimate only if the exact floor
                // spend already exhausts the budget.
                if exact_spend(0.0) >= budget {
                    (t_hat, None, false, stats)
                } else {
                    break 'fast None;
                }
            } else {
                // Exact bracket certificate: monotonicity of the exact
                // spend pins the exact root inside [t̂ − ε, t̂ + ε]
                // whenever the budget sits between the band's probes.
                let mut certified = false;
                for (band_no, &band) in CERT_BANDS.iter().enumerate() {
                    let eps = (band * t_hat).max(options.config.tolerance);
                    if exact_spend(t_hat - eps) <= budget && exact_spend(t_hat + eps) >= budget {
                        recorder.add(Metric::cert_band_hit(band_no), 1);
                        certified = true;
                        break;
                    }
                }
                if !certified {
                    recorder.add(Metric::SolverCertFailures, 1);
                    break 'fast None;
                }
                (t_hat, Some(1.0 / t_hat), false, stats)
            }
        };

        // Materialise exactly, as the exact solver does.
        let mut q = vec![0.0f64; n];
        fill_path_profile(view, aor, options.q_min, t_used, &mut q, threads);
        let mut prices = vec![0.0f64; n];
        fill_prices(view, aor, &q, &mut prices, threads);
        if prices.iter().any(|p| !p.is_finite()) {
            // Let the exact path produce its own (identical) diagnosis.
            break 'fast None;
        }
        let spent = profile_spend(view, aor, &q, threads);
        let solution = StageOneSolution {
            q,
            prices,
            spent,
            lambda,
            saturated,
        };
        // Exact Theorem-2 residual gate on the materialised profile.
        let residual_ok = match theorem2_max_residual_view(
            view,
            bound,
            &solution,
            FAST_RESIDUAL_SAMPLE,
            FAST_RESIDUAL_SEED,
        ) {
            Some(residual) => residual <= options.config.tolerance.max(1e-9),
            None => true,
        };
        if !residual_ok {
            recorder.add(Metric::SolverResidualRejects, 1);
            break 'fast None;
        }
        Some((solution, stats, t_used))
    };

    let fast_phase_evaluations =
        model_probes.get() * index.probe_cost() + exact_probes.get() * n as u64;
    match fast {
        Some((solution, stats, t_used)) => Ok((
            solution,
            KktDiagnostics {
                t_star: t_used,
                bisect_iterations: stats.iterations,
                bisect_evaluations: (model_probes.get() + exact_probes.get()) as usize,
                warm_start_depth: stats.start_depth,
                solver_mode: SolverMode::ThresholdIndex,
                probe_evaluations: fast_phase_evaluations,
                index_rebuild_ns,
                index_segments_rebuilt: 0,
                index_segments_repaired: 0,
                index_segments_reused: 0,
            },
        )),
        None => {
            let (solution, mut diagnostics) =
                solve_kkt_view_unchecked(view, bound, budget, options, hint)?;
            diagnostics.solver_mode = SolverMode::ThresholdIndexFallback;
            diagnostics.index_rebuild_ns = index_rebuild_ns;
            diagnostics.probe_evaluations += fast_phase_evaluations;
            Ok((solution, diagnostics))
        }
    }
}

/// A cheap closed-form estimate of the KKT path parameter `t* = 1/λ*` at
/// which the path spend meets `budget` — the warm-start hint generator for
/// incremental re-solves.
///
/// Clients are split at the reference parameter `t_ref` (typically the
/// previous solve's [`KktDiagnostics::t_star`]) into cap-saturated and
/// interior sets. Saturated clients contribute their exact, `t`-independent
/// spend `C`; interior clients are modelled by the zero-value form of the
/// path, whose spend is `K · t^(2/3)` (exact for `v = 0`, relatively off by
/// `O(v/t)` otherwise). Solving `C + K·t^(2/3) = budget` in closed form and
/// refining the split once at the estimate costs a few `O(N)` passes —
/// cheap next to a bisection — and lands within a handful of dyadic levels
/// of the true root under realistic churn.
///
/// The result is *only a hint*: [`solve_kkt_columns_hinted`] verifies the
/// bracket it implies before trusting it, so a misprediction costs a few
/// probes, never correctness. Returns `None` when the model degenerates
/// (no interior clients at the split, or no budget left after `C`).
pub fn estimate_path_parameter(
    cols: &PopulationColumns,
    bound: &BoundParams,
    budget: f64,
    t_ref: f64,
    n_threads: usize,
) -> Option<f64> {
    estimate_path_parameter_view(&ShardView::single(cols), bound, budget, t_ref, n_threads)
}

/// [`estimate_path_parameter`] over shard column-sets (bit-identical to
/// the flat estimate over the concatenation, for any shard count).
pub fn estimate_path_parameter_sharded(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    t_ref: f64,
    n_threads: usize,
) -> Option<f64> {
    estimate_path_parameter_view(&ShardView::of(population), bound, budget, t_ref, n_threads)
}

fn estimate_path_parameter_view(
    view: &ShardView<'_>,
    bound: &BoundParams,
    budget: f64,
    t_ref: f64,
    n_threads: usize,
) -> Option<f64> {
    if view.is_empty() || !(t_ref.is_finite() && t_ref > 0.0) {
        return None;
    }
    let aor = bound.alpha_over_r();
    let coef = aor / 4.0;
    let mut t = t_ref;
    let mut estimate = None;
    for _ in 0..8 {
        let saturated_spend = view.sum(n_threads, |cols, range, _offset| {
            let mut acc = 0.0;
            for i in range {
                let t_sat =
                    cols.cost[i] * cols.q_max[i].powi(3) / (coef * cols.a2g2[i]) + cols.value[i];
                if t_sat <= t {
                    let q = cols.q_max[i];
                    acc += 2.0 * cols.cost[i] * q * q - cols.value[i] * aor * cols.a2g2[i] / q;
                }
            }
            acc
        });
        let remaining = budget - saturated_spend;
        if remaining <= 0.0 {
            // The split is too high: the clamped spend alone busts the
            // budget, so the root sits below — halve and retry.
            t *= 0.5;
            continue;
        }
        let interior_coefficient = view.sum(n_threads, |cols, range, _offset| {
            let mut acc = 0.0;
            for i in range {
                let t_sat =
                    cols.cost[i] * cols.q_max[i].powi(3) / (coef * cols.a2g2[i]) + cols.value[i];
                if t_sat > t {
                    let ka = coef * cols.a2g2[i];
                    acc += 2.0 * cols.cost[i].cbrt() * (ka * ka).cbrt();
                }
            }
            acc
        });
        if interior_coefficient.is_nan() || interior_coefficient <= 0.0 {
            // Everyone saturated with budget to spare: the slack regime,
            // where the solver never bisects anyway.
            break;
        }
        let ratio = remaining / interior_coefficient;
        let refined = ratio * ratio.sqrt(); // ratio^{3/2}
        if !(refined.is_finite() && refined > 0.0) {
            break;
        }
        let converged = (refined - t).abs() <= 1e-3 * t;
        estimate = Some(refined);
        t = refined;
        if converged {
            break;
        }
    }
    estimate
}

/// Theorem 2 spot check directly on solver columns: the maximum relative
/// deviation of the invariant `(4R/α)·c_n q_n³/a_n²G_n² + v_n` from `1/λ*`
/// over up to `sample` clients drawn deterministically from `seed` (with
/// replacement), skipping floored/capped clients.
///
/// This is the columns-level counterpart of
/// [`crate::equilibrium::StackelbergEquilibrium::theorem2_max_residual`];
/// the pricing service asserts it after every incremental re-solve. Returns
/// `None` when the solution has no interior KKT multiplier or no sampled
/// client is interior.
pub fn theorem2_max_residual_columns(
    cols: &PopulationColumns,
    bound: &BoundParams,
    solution: &StageOneSolution,
    sample: usize,
    seed: u64,
) -> Option<f64> {
    theorem2_max_residual_view(&ShardView::single(cols), bound, solution, sample, seed)
}

/// [`theorem2_max_residual_columns`] over shard column-sets — the sampled
/// indices and residuals are identical to the flat check over the
/// concatenation, for any shard count.
pub fn theorem2_max_residual_sharded(
    population: &ShardedPopulation,
    bound: &BoundParams,
    solution: &StageOneSolution,
    sample: usize,
    seed: u64,
) -> Option<f64> {
    theorem2_max_residual_view(&ShardView::of(population), bound, solution, sample, seed)
}

fn theorem2_max_residual_view(
    view: &ShardView<'_>,
    bound: &BoundParams,
    solution: &StageOneSolution,
    sample: usize,
    seed: u64,
) -> Option<f64> {
    let target = 1.0 / solution.lambda?;
    let coef = 4.0 / bound.alpha_over_r();
    let n = view.len().min(solution.q.len());
    if n == 0 {
        return None;
    }
    let mut rng = fedfl_num::rng::substream(seed, 0x7_4832);
    let mut worst: Option<f64> = None;
    for _ in 0..sample {
        let i = (rand::Rng::random::<u64>(&mut rng) % n as u64) as usize;
        let (cols, local) = view.locate(i);
        let q = solution.q[i];
        if q > Q_MIN * 1.01 && q < cols.q_max[local] * 0.999 {
            let invariant =
                coef * cols.cost[local] * q.powi(3) / cols.a2g2[local] + cols.value[local];
            let residual = (invariant - target).abs() / target.abs().max(1.0);
            worst = Some(worst.map_or(residual, |w| w.max(residual)));
        }
    }
    worst
}

/// Solve Stage I with the paper's literal two-step `M`-search on P1″.
///
/// For each candidate `M` the inner convex problem is solved by a
/// quadratic-penalty projected-gradient method (the CVX substitute of
/// DESIGN.md §3); the outer linear search scans
/// `M ∈ [Σ c_n q_min², Σ c_n q_{n,max}²]` with `options.m_grid_steps` cells
/// and refines the best cell by golden section.
///
/// # Errors
///
/// Returns [`GameError::SolverFailed`] if no feasible `M` exists (e.g. the
/// budget cannot even cover the `q_min` floor).
pub fn solve_m_search(
    population: &Population,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    validate_inputs(population, budget, options)?;
    let cols = population.columns();
    solve_m_search_view(&ShardView::single(&cols), bound, budget, options)
}

/// [`solve_m_search`] over shard column-sets: the P1″ inner loop's
/// reductions and gradient fills run as the same two-level shard merge as
/// the KKT solver, so the search is bit-identical to the flat
/// [`solve_m_search`] over the concatenated population for any shard
/// count.
///
/// # Errors
///
/// Same conditions as [`solve_m_search`].
pub fn solve_m_search_sharded(
    population: &ShardedPopulation,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    let view = ShardView::of(population);
    validate_view(&view, budget, options)?;
    if options.m_grid_steps < 2 {
        return Err(GameError::InvalidParameter {
            name: "m_grid_steps",
            reason: "need at least 2 grid steps".into(),
        });
    }
    solve_m_search_view(&view, bound, budget, options)
}

fn solve_m_search_view(
    view: &ShardView<'_>,
    bound: &BoundParams,
    budget: f64,
    options: &SolverOptions,
) -> Result<StageOneSolution, GameError> {
    let n = view.len();
    let threads = options.config.n_threads;
    let aor = bound.alpha_over_r();
    // Precomputed intrinsic gains `K_n = v_n (α/R) a_n²G_n²`: every inner
    // pass below is a shard-merged reduction or fill over the view's
    // columns, so one PGD iteration strides each column once and allocates
    // no per-client vectors.
    let mut gains = vec![0.0f64; n];
    view.fill(&mut gains, threads, |cols, local_start, _offset, slice| {
        for (k, g) in slice.iter_mut().enumerate() {
            let i = local_start + k;
            *g = cols.value[i] * aor * cols.a2g2[i];
        }
    });
    let lo: Vec<f64> = vec![options.q_min; n];
    let mut hi = vec![0.0f64; n];
    view.fill(&mut hi, threads, |cols, local_start, _offset, slice| {
        slice.copy_from_slice(&cols.q_max[local_start..local_start + slice.len()]);
    });
    let bounds_box = BoxConstraints::new(lo.clone(), hi.clone())?;
    // `M(q) = Σ c_n q_n²` and the realised spend, as shard-merged
    // reductions.
    let m_of = |q: &[f64]| {
        view.sum(threads, |cols, range, offset| {
            let mut acc = 0.0;
            for i in range {
                let qn = q[offset + i];
                acc += cols.cost[i] * qn * qn;
            }
            acc
        })
    };
    let spend_of = |q: &[f64]| profile_spend(view, aor, q, threads);
    let variance_of = |q: &[f64]| {
        view.sum(threads, |cols, range, offset| {
            let mut acc = 0.0;
            for i in range {
                acc += cols.a2g2[i] * (1.0 / q[offset + i] - 1.0);
            }
            acc
        })
    };
    let m_lo = m_of(&lo);
    let m_hi = m_of(&hi);

    let pgd = PgdConfig {
        max_iter: 8_000,
        tol: options.config.tolerance,
        ..Default::default()
    };
    // Constraints are normalised to O(1), so feasibility is relative.
    let feas_tol = 1e-6;
    let m_scale = m_hi.max(1.0);
    let budget_scale = budget.abs().max(m_hi).max(1.0);

    // Inner solve for a fixed M with an explicit warm start; returns the
    // variance-term value and the solution, or None if infeasible.
    let inner = |m: f64, x0: &[f64]| -> Option<(f64, Vec<f64>)> {
        let mut constraints: Vec<(ConstraintKind, ConstraintFn<'_>)> = vec![
            (
                ConstraintKind::Inequality,
                Box::new(|q: &[f64], g: &mut [f64]| {
                    let gain_term = chunked_sum(n, threads, |range| {
                        let mut acc = 0.0;
                        for i in range {
                            acc += gains[i] / q[i];
                        }
                        acc
                    });
                    chunked_fill(g, threads, |start, slice| {
                        for (k, gi) in slice.iter_mut().enumerate() {
                            let i = start + k;
                            *gi = gains[i] / (q[i] * q[i]) / budget_scale;
                        }
                    });
                    (2.0 * m - budget - gain_term) / budget_scale
                }),
            ),
            (
                ConstraintKind::Equality,
                Box::new(|q: &[f64], g: &mut [f64]| {
                    let val = m_of(q) - m;
                    view.fill(g, threads, |cols, local_start, offset, slice| {
                        for (k, gi) in slice.iter_mut().enumerate() {
                            let i = local_start + k;
                            *gi = 2.0 * cols.cost[i] * q[offset + i] / m_scale;
                        }
                    });
                    val / m_scale
                }),
            ),
        ];
        let result = penalty_minimize(
            |q: &[f64], g: &mut [f64]| {
                let val = variance_of(q);
                view.fill(g, threads, |cols, local_start, offset, slice| {
                    for (k, gi) in slice.iter_mut().enumerate() {
                        let i = local_start + k;
                        let qn = q[offset + i];
                        *gi = -cols.a2g2[i] / (qn * qn);
                    }
                });
                val
            },
            &mut constraints,
            x0,
            &bounds_box,
            &pgd,
            feas_tol,
        )
        .ok()?;
        // Check feasibility of the returned point.
        let q = result.x;
        let m_actual = m_of(&q);
        let spent_actual = spend_of(&q);
        if (m_actual - m).abs() / m_scale > 1e-3 || (spent_actual - budget) / budget_scale > 1e-3 {
            return None;
        }
        Some((variance_of(&q), q))
    };

    // Linear search over M with a fixed step ε₀ (the paper's outer loop),
    // sweeping from large M to small and warm-starting each cell from its
    // neighbour's solution.
    let steps = options.m_grid_steps;
    let mut best: Option<(f64, Vec<f64>)> = None;
    let mut warm: Vec<f64> = hi.clone();
    let mut x0 = vec![0.0f64; n];
    for k in (0..=steps).rev() {
        let m = m_lo + (m_hi - m_lo) * k as f64 / steps as f64;
        // Rescale the warm start towards the target M for a feasible-ish x0.
        let m_warm = m_of(&warm);
        let ratio = (m / m_warm.max(1e-300)).sqrt().clamp(0.1, 10.0);
        chunked_fill(&mut x0, threads, |start, slice| {
            for (j, xj) in slice.iter_mut().enumerate() {
                let i = start + j;
                *xj = (warm[i] * ratio).clamp(lo[i], hi[i]);
            }
        });
        if let Some((value, q)) = inner(m, &x0) {
            warm.copy_from_slice(&q);
            if best.as_ref().map(|(v, _)| value < *v).unwrap_or(true) {
                best = Some((value, q));
            }
        }
    }
    let (_, q) = best.ok_or(GameError::SolverFailed {
        solver: "m_search",
        reason: "no feasible M found".into(),
    })?;
    let mut prices = vec![0.0f64; n];
    fill_prices(view, aor, &q, &mut prices, threads);
    if let Some(bad) = prices.iter().position(|p| !p.is_finite()) {
        return Err(GameError::SolverFailed {
            solver: "m_search",
            reason: format!("non-finite price for client {bad}"),
        });
    }
    let spent = spend_of(&q);
    let saturated = q.iter().zip(&hi).all(|(&qi, &cap)| qi >= cap - 1e-6) && spent < budget - 1e-9;
    Ok(StageOneSolution {
        q,
        prices,
        spent,
        lambda: None,
        saturated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn population() -> Population {
        Population::builder()
            .weights(vec![0.4, 0.3, 0.2, 0.1])
            .g_squared(vec![9.0, 16.0, 25.0, 36.0])
            .costs(vec![30.0, 50.0, 70.0, 90.0])
            .values(vec![0.0, 2.0, 5.0, 10.0])
            .build()
            .unwrap()
    }

    fn bound() -> BoundParams {
        BoundParams::new(4000.0, 100.0, 1000).unwrap()
    }

    #[test]
    fn kkt_budget_is_tight_in_the_interior() {
        let p = population();
        let b = bound();
        let budget = 10.0;
        let sol = solve_kkt(&p, &b, budget, &SolverOptions::default()).unwrap();
        assert!(!sol.saturated);
        assert!(
            (sol.spent - budget).abs() < 1e-6,
            "spent {} vs budget {budget}",
            sol.spent
        );
        assert!(sol.lambda.unwrap() > 0.0);
        assert!(sol.q.iter().all(|&q| (Q_MIN..=1.0).contains(&q)));
    }

    #[test]
    fn kkt_saturates_with_huge_budget() {
        let p = population();
        let b = bound();
        let sol = solve_kkt(&p, &b, 1e9, &SolverOptions::default()).unwrap();
        assert!(sol.saturated);
        assert!(sol.q.iter().all(|&q| (q - 1.0).abs() < 1e-9));
        assert!(sol.spent < 1e9);
    }

    #[test]
    fn kkt_floors_with_tiny_budget() {
        let p = population();
        let b = bound();
        // Spend at the floor is negative (clients with value pay in), so a
        // deeply negative budget cannot be met: solver floors everyone.
        let sol = solve_kkt(&p, &b, -1e12, &SolverOptions::default()).unwrap();
        assert!(sol.q.iter().all(|&q| q <= Q_MIN * 1.01));
    }

    #[test]
    fn kkt_more_budget_means_more_participation_everywhere() {
        // Proposition 1: both q* and P* increase in B.
        let p = population();
        let b = bound();
        let small = solve_kkt(&p, &b, 4.0, &SolverOptions::default()).unwrap();
        let large = solve_kkt(&p, &b, 16.0, &SolverOptions::default()).unwrap();
        for n in 0..p.len() {
            assert!(
                large.q[n] >= small.q[n] - 1e-9,
                "q[{n}] decreased with budget"
            );
            assert!(
                large.prices[n] >= small.prices[n] - 1e-9,
                "P[{n}] decreased with budget"
            );
        }
        let vt_small = small.variance_term(&p, &b);
        let vt_large = large.variance_term(&p, &b);
        assert!(vt_large < vt_small, "bound did not improve with budget");
    }

    #[test]
    fn kkt_satisfies_theorem2_invariant_for_interior_clients() {
        let p = population();
        let b = bound();
        let sol = solve_kkt(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        // (4R/α) c q³ / (a²G²) + v must be constant over interior clients.
        let coef = 4.0 / b.alpha_over_r();
        let invariants: Vec<f64> = p
            .iter()
            .zip(&sol.q)
            .filter(|(c, &q)| q > Q_MIN * 1.01 && q < c.q_max * 0.999)
            .map(|(c, &q)| coef * c.cost * q.powi(3) / c.a2g2() + c.value)
            .collect();
        assert!(invariants.len() >= 2, "need interior clients for this test");
        let first = invariants[0];
        for inv in &invariants {
            assert!(
                (inv - first).abs() / first.abs().max(1.0) < 1e-6,
                "invariant broken: {invariants:?}"
            );
        }
    }

    #[test]
    fn kkt_prices_implement_q_as_best_responses() {
        use crate::response::best_response;
        let p = population();
        let b = bound();
        let sol = solve_kkt(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        for (n, c) in p.iter().enumerate() {
            let q_br = best_response(c, &b, sol.prices[n]).unwrap();
            // Floored clients may best-respond below the floor; others match.
            if sol.q[n] > Q_MIN * 1.01 {
                assert!(
                    (q_br - sol.q[n]).abs() < 1e-6,
                    "client {n}: br {q_br} vs q* {}",
                    sol.q[n]
                );
            }
        }
    }

    #[test]
    fn m_search_agrees_with_kkt() {
        let p = population();
        let b = bound();
        let budget = 10.0;
        let kkt = solve_kkt(&p, &b, budget, &SolverOptions::default()).unwrap();
        let msearch = solve_m_search(
            &p,
            &b,
            budget,
            &SolverOptions {
                m_grid_steps: 40,
                ..Default::default()
            },
        )
        .unwrap();
        let v_kkt = kkt.variance_term(&p, &b);
        let v_m = msearch.variance_term(&p, &b);
        // The grid search is approximate; it must come close to the KKT
        // optimum and never beat it by more than numerical slack.
        assert!(v_m >= v_kkt - 1e-6, "m-search beat the KKT optimum");
        assert!(
            (v_m - v_kkt) / v_kkt.abs().max(1.0) < 0.05,
            "m-search too far from optimum: {v_m} vs {v_kkt}"
        );
        assert!(msearch.spent <= budget + 1e-3);
    }

    #[test]
    fn solver_rejects_bad_inputs() {
        let p = population();
        let b = bound();
        assert!(solve_kkt(&p, &b, f64::NAN, &SolverOptions::default()).is_err());
        let bad = SolverOptions {
            q_min: 0.0,
            ..Default::default()
        };
        assert!(solve_kkt(&p, &b, 10.0, &bad).is_err());
        let bad = SolverOptions {
            m_grid_steps: 1,
            ..Default::default()
        };
        assert!(solve_m_search(&p, &b, 10.0, &bad).is_err());
    }

    #[test]
    fn columns_solver_matches_population_solver_bitwise() {
        let p = population();
        let b = bound();
        let from_population = solve_kkt(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        let from_columns =
            solve_kkt_columns(&p.columns(), &b, 10.0, &SolverOptions::default()).unwrap();
        assert_eq!(from_population, from_columns);
    }

    #[test]
    fn hinted_solver_is_bit_identical_and_skips_iterations() {
        let p = population();
        let b = bound();
        let cols = p.columns();
        let opts = SolverOptions::default();
        let (cold, cold_diag) = solve_kkt_columns_hinted(&cols, &b, 10.0, &opts, None).unwrap();
        for hint in [
            None,
            Some(cold_diag.t_star),
            Some(cold_diag.t_star * 1.001),
            Some(cold_diag.t_star * 0.5),
            Some(f64::NAN),
            Some(-1.0),
            Some(1e300),
        ] {
            let (warm, diag) = solve_kkt_columns_hinted(&cols, &b, 10.0, &opts, hint).unwrap();
            assert_eq!(warm, cold, "hint {hint:?}");
            assert!(
                diag.bisect_iterations <= cold_diag.bisect_iterations,
                "hint {hint:?}: {} > {}",
                diag.bisect_iterations,
                cold_diag.bisect_iterations
            );
        }
        let (_, exact) =
            solve_kkt_columns_hinted(&cols, &b, 10.0, &opts, Some(cold_diag.t_star)).unwrap();
        assert!(
            exact.warm_start_depth > 10,
            "depth {}",
            exact.warm_start_depth
        );
        assert!(exact.bisect_iterations < cold_diag.bisect_iterations / 2);
    }

    #[test]
    fn columns_solver_validates_inputs() {
        let p = population();
        let b = bound();
        let mut cols = p.columns();
        cols.cost.pop();
        assert!(solve_kkt_columns(&cols, &b, 10.0, &SolverOptions::default()).is_err());
        let mut cols = p.columns();
        cols.cost[1] = 0.0;
        assert!(solve_kkt_columns(&cols, &b, 10.0, &SolverOptions::default()).is_err());
        let mut cols = p.columns();
        cols.q_max[0] = Q_MIN / 2.0;
        assert!(solve_kkt_columns(&cols, &b, 10.0, &SolverOptions::default()).is_err());
        let empty = PopulationColumns {
            a2g2: vec![],
            cost: vec![],
            value: vec![],
            q_max: vec![],
        };
        assert!(solve_kkt_columns(&empty, &b, 10.0, &SolverOptions::default()).is_err());
        assert!(solve_kkt_columns(&p.columns(), &b, f64::NAN, &SolverOptions::default()).is_err());
    }

    #[test]
    fn path_parameter_estimate_lands_near_the_root() {
        use crate::population::{ParamDist, PopulationSpec};
        // A mostly-zero-value synthetic population: the closed-form model
        // is near-exact there, so the estimate must land within a few
        // dyadic levels of the true path parameter.
        let spec = PopulationSpec {
            value: ParamDist::Constant(0.0),
            ..PopulationSpec::table1_like()
        };
        let p = Population::synthesize(500, &spec, 11).unwrap();
        let b = bound();
        let opts = SolverOptions::default();
        let budget = path_budget(&p, &b, &opts, 0.4);
        let cols = p.columns();
        let (_, diag) = solve_kkt_columns_hinted(&cols, &b, budget, &opts, None).unwrap();
        // Start the split from a deliberately wrong reference.
        let estimate = estimate_path_parameter(&cols, &b, budget, diag.t_star * 3.0, 1).unwrap();
        let rel = (estimate - diag.t_star).abs() / diag.t_star;
        assert!(
            rel < 0.05,
            "estimate {estimate} vs t* {} ({rel})",
            diag.t_star
        );
        // Degenerate inputs give no estimate instead of nonsense.
        assert_eq!(
            estimate_path_parameter(&cols, &b, budget, f64::NAN, 1),
            None
        );
        assert_eq!(estimate_path_parameter(&cols, &b, budget, -1.0, 1), None);
        let empty = PopulationColumns {
            a2g2: vec![],
            cost: vec![],
            value: vec![],
            q_max: vec![],
        };
        assert_eq!(estimate_path_parameter(&empty, &b, budget, 1.0, 1), None);
        // A budget below any interior spend (here: deeply negative, while
        // every client's saturated/zero-value spend is non-negative)
        // degenerates the model.
        assert_eq!(
            estimate_path_parameter(&cols, &b, -1e18, diag.t_star, 1),
            None
        );
    }

    #[test]
    fn columns_residual_matches_equilibrium_residual() {
        use crate::equilibrium::StackelbergEquilibrium;
        let p = population();
        let b = bound();
        let sol = solve_kkt(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        let via_columns = theorem2_max_residual_columns(&p.columns(), &b, &sol, 100, 0).unwrap();
        let se = StackelbergEquilibrium::from_stage_one(sol, &p, &b, 10.0);
        let via_equilibrium = se.theorem2_max_residual(&p, &b, 100, 0).unwrap();
        assert_eq!(via_columns.to_bits(), via_equilibrium.to_bits());
        assert!(via_columns < 1e-6);
    }

    #[test]
    fn sharded_solver_is_bit_identical_to_flat_for_any_shard_count() {
        use crate::population::PopulationSpec;
        use fedfl_num::parallel::DEFAULT_CHUNK;
        // Enough clients for several chunks so shard boundaries genuinely
        // partition the reduction.
        let n = DEFAULT_CHUNK * 2 + 531;
        let p = Population::synthesize(n, &PopulationSpec::table1_like(), 5).unwrap();
        let b = bound();
        let budget = path_budget(&p, &b, &SolverOptions::default(), 0.4);
        let cols = p.columns();
        let flat = solve_kkt_columns(&cols, &b, budget, &SolverOptions::default()).unwrap();
        for shard_count in [1, 2, 7, 32] {
            let sharded = ShardedPopulation::from_columns(&cols, shard_count).unwrap();
            assert_eq!(
                path_budget_sharded(&sharded, &b, &SolverOptions::default(), 0.4).to_bits(),
                budget.to_bits(),
                "path budget drifted at shard_count {shard_count}"
            );
            for threads in [1, 3] {
                let opts = SolverOptions::with_threads(threads);
                let sol = solve_kkt_sharded(&sharded, &b, budget, &opts).unwrap();
                assert_eq!(sol, flat, "shard_count {shard_count} threads {threads}");
                let (hinted, diag) = solve_kkt_sharded_hinted(
                    &sharded,
                    &b,
                    budget,
                    &opts,
                    Some(flat.lambda.map(|l| 1.0 / l).unwrap()),
                )
                .unwrap();
                assert_eq!(hinted, flat, "hinted shard_count {shard_count}");
                assert!(diag.warm_start_depth > 0, "exact hint should verify deep");
            }
            // The sampled Theorem 2 check and the hint estimator agree
            // with their flat counterparts bit for bit.
            let flat_res = theorem2_max_residual_columns(&cols, &b, &flat, 256, 3).unwrap();
            let shard_res = theorem2_max_residual_sharded(&sharded, &b, &flat, 256, 3).unwrap();
            assert_eq!(flat_res.to_bits(), shard_res.to_bits());
            let t_star = 1.0 / flat.lambda.unwrap();
            let flat_est = estimate_path_parameter(&cols, &b, budget, t_star * 2.0, 1);
            let shard_est = estimate_path_parameter_sharded(&sharded, &b, budget, t_star * 2.0, 1);
            assert_eq!(
                flat_est.map(f64::to_bits),
                shard_est.map(f64::to_bits),
                "estimate drifted at shard_count {shard_count}"
            );
        }
    }

    #[test]
    fn sharded_m_search_matches_flat() {
        let p = population();
        let b = bound();
        let flat = solve_m_search(&p, &b, 10.0, &SolverOptions::default()).unwrap();
        let sharded = ShardedPopulation::from(&p);
        let via_shards =
            solve_m_search_sharded(&sharded, &b, 10.0, &SolverOptions::default()).unwrap();
        assert_eq!(via_shards, flat);
        let bad = SolverOptions {
            m_grid_steps: 1,
            ..Default::default()
        };
        assert!(solve_m_search_sharded(&sharded, &b, 10.0, &bad).is_err());
        assert!(solve_m_search_sharded(&sharded, &b, f64::NAN, &SolverOptions::default()).is_err());
    }

    #[test]
    fn single_client_population_works() {
        let p = Population::builder()
            .weights(vec![1.0])
            .g_squared(vec![4.0])
            .costs(vec![50.0])
            .values(vec![10.0])
            .build()
            .unwrap();
        let b = bound();
        let sol = solve_kkt(&p, &b, 20.0, &SolverOptions::default()).unwrap();
        assert_eq!(sol.q.len(), 1);
        assert!(sol.q[0] > 0.0 && sol.q[0] <= 1.0);
        assert!(sol.spent <= 20.0 + 1e-6);
    }

    #[test]
    fn high_cost_interior_clients_get_higher_prices() {
        // Theorem 3 insight: with identical a²G² and v, the pricier client
        // to incentivise is the one with larger c.
        let p = Population::builder()
            .weights(vec![0.5, 0.5])
            .g_squared(vec![4.0, 4.0])
            .costs(vec![20.0, 80.0])
            .values(vec![10.0, 10.0])
            .build()
            .unwrap();
        let b = bound();
        let sol = solve_kkt(&p, &b, 25.0, &SolverOptions::default()).unwrap();
        assert!(!sol.saturated);
        assert!(
            sol.prices[1] > sol.prices[0],
            "higher-cost client should get the higher price: {:?}",
            sol.prices
        );
        assert!(
            sol.q[1] < sol.q[0],
            "higher-cost client should participate less: {:?}",
            sol.q
        );
    }
}
