//! Threshold-indexed active sets: sub-linear λ-probes for the Stage-I
//! solver, with incremental segment rebuilds under churn.
//!
//! Every probe of the budget bisection in [`crate::server`] evaluates the
//! path spend `Σ_n P(q_n(t))·q_n(t)` — an O(N) sweep. But the KKT path is
//! piecewise in `t = 1/λ`: client `n` sits at the floor `q_min` until the
//! closed-form **entry threshold**
//!
//! ```text
//! t_entry,n = v_n + c_n·q_min³ / ((α/4R)·a_n²G_n²)
//! ```
//!
//! and at its cap `q_max,n` from the **saturation threshold**
//!
//! ```text
//! t_sat,n = v_n + c_n·q_max,n³ / ((α/4R)·a_n²G_n²)
//! ```
//!
//! (the same expression [`crate::server`]'s `saturation_t` maximises).
//! Sorting clients by each threshold — O(N log N) per cold build — and
//! holding prefix sums of the per-client spend constants and interior
//! moments in threshold order turns each probe into binary searches plus
//! an O(1) closed-form evaluation:
//!
//! * floored clients (`t <= t_entry`) contribute the constant
//!   `2c·q_min² − v·(α/R)·a²G²/q_min` — a suffix sum in entry order;
//! * saturated clients (`t_sat < t`) contribute the constant
//!   `2c·q_max² − v·(α/R)·a²G²/q_max` — a prefix sum in saturation order;
//! * interior clients contribute `A_n(t−v_n)^{2/3} − D_n(t−v_n)^{−1/3}`
//!   with `A_n = 2c_n^{1/3}((α/4R)a_n²G_n²)^{2/3}` and
//!   `D_n = v_n(α/R)a_n²G_n²·(c_n/((α/4R)a_n²G_n²))^{1/3}`. That term is
//!   not separable in `(n, t)` for heterogeneous values, so the index
//!   evaluates a third-order binomial expansion in `v_n/t` — **exact**
//!   for zero-value clients and relatively off by `O((v/t)⁴)` otherwise —
//!   from eight moment prefix sums (`A`, `Av`, `Av²`, `Av³`, `D`, `Dv`,
//!   `Dv²`, `Dv³`) held in *both* threshold orders.
//!
//! # Two-level segmented layout
//!
//! The index is a list of [`IndexSegment`]s — each one sorted threshold
//! run (entry and saturation order) with its own prefix-summed spend
//! constants and interior moments — walked in a fixed segment order by
//! every probe: per segment a boundary check (the "directory scan":
//! first/last threshold short-circuit all-floored / all-saturated
//! segments), an in-segment binary search otherwise, and one closed-form
//! interior evaluation over the accumulated moments at the end. Two
//! segmentation disciplines share the structure:
//!
//! * **Grid** ([`ActiveSetIndex::from_columns`] /
//!   [`ActiveSetIndex::build_sharded`]): fixed [`GRID_SEGMENT`]-length
//!   positional segments over the concatenated columns. Because solver
//!   shards are chunk-aligned contiguous partitions (chunk =
//!   `GRID_SEGMENT`), the segment list is a pure function of the
//!   concatenated columns — the sharded build is **bit-identical** to
//!   the flat build for any shard × thread count, the contract
//!   `fedfl_num::parallel` gives the chunked reductions.
//! * **Keyed** ([`ActiveSetIndex::build_keyed`] /
//!   [`ActiveSetIndex::patch`]): clients are bucketed by a caller-chosen
//!   stable key (the service keys on id blocks, aligned with its store
//!   shards), preserving global insertion order within each bucket. A
//!   churn batch that only touches some buckets re-sorts **only those
//!   segments**: [`ActiveSetIndex::patch`] rebuilds dirty segments in
//!   O(dirty·(N/S)·log(N/S)) sort work and revalidates clean ones in
//!   O(N/S) each, producing an index **bit-identical** to a cold
//!   [`ActiveSetIndex::build_keyed`] over the same rows.
//!
//! # Scale factorisation (why patching survives weight renormalisation)
//!
//! The normalised `a²G² = (w/W)²·G²` column depends on the global raw
//! weight total `W`, so *any* churn moves *every* threshold — fatal for
//! segment reuse if thresholds were stored. Segments therefore store
//! only **scale-free unit values** derived from the caller's `w²G²`
//! column (raw `w_raw²·G²` in the service, the normalised column with
//! `scale = 1` standalone), and the index evaluates thresholds on the
//! fly at its current `scale = σ` (the service passes `σ = W²`):
//!
//! ```text
//! t_entry = v + σ·e      e = c·q_min³/((α/4R)·w²G²)
//! t_sat   = max(v + σ·f, t_entry)
//! floor   = F0 − F1/σ    F0 = 2c·q_min²,  F1 = v·(α/R)·w²G²/q_min
//! sat     = S0 − S1/σ    (q_max analogues)
//! A, D    = A0·σ^{−2/3}, D0·σ^{−2/3}
//! ```
//!
//! so every prefix array is σ-independent and the σ corrections apply
//! once per probe. A weight drift can still *reorder* thresholds inside
//! a clean segment (keys are `v + σ·e`, and lines cross); the patch
//! validates each clean segment's stored permutation is still *the*
//! stable argsort at the new σ (an O(len) adjacent scan — sorted keys
//! with ties in ascending insertion order characterise the stable
//! argsort uniquely) and re-sorts the rare violators ("repaired"), so
//! reuse never costs bit-identity.
//!
//! The evaluation is a **model**, not the exact chunked reduction: its
//! summation order differs from the flat solver's fixed chunk tree and
//! its interior term truncates the value series, so it can never be
//! bit-pinned to the goldens. [`crate::server::solve_kkt_columns_fast`]
//! therefore treats the index as a probe accelerator only: the root it
//! finds is certified against *exact* spend probes and the Theorem-2
//! residual, and violations fall back to the exact solver.

use crate::population::PopulationColumns;
use fedfl_num::parallel::{resolve_threads, DEFAULT_CHUNK};
use fedfl_num::prefix::{exclusive_prefix_sums, gather, sort_permutation};
use std::cmp::Ordering;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::Arc;

/// Interior moment columns: `A`, `Av`, `Av²`, `Av³`, `D`, `Dv`, `Dv²`,
/// `Dv³`.
const MOMENTS: usize = 8;

/// Positional segment length of grid-mode indexes. Equal to the chunked
/// reductions' [`DEFAULT_CHUNK`], so chunk-aligned solver shards split
/// into the same global segment grid for any shard count.
pub const GRID_SEGMENT: usize = DEFAULT_CHUNK;

/// Borrowed scale-free index inputs: the `w²G²` column (raw
/// `w_raw²·G²` when probing at `scale = W²`, the normalised `a²G²`
/// column at `scale = 1`), effective costs, values, and caps.
#[derive(Debug, Clone, Copy)]
pub struct IndexColumns<'a> {
    /// Squared-weight gradient column (see above for the scale contract).
    pub w2g2: &'a [f64],
    /// Effective per-client costs.
    pub cost: &'a [f64],
    /// Per-client values.
    pub value: &'a [f64],
    /// Effective participation caps.
    pub q_max: &'a [f64],
}

impl<'a> IndexColumns<'a> {
    /// View normalised population columns as unit inputs (`scale = 1`).
    pub fn from_population(cols: &'a PopulationColumns) -> Self {
        IndexColumns {
            w2g2: &cols.a2g2,
            cost: &cols.cost,
            value: &cols.value,
            q_max: &cols.q_max,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.w2g2.len()
    }

    /// Whether there are no rows.
    pub fn is_empty(&self) -> bool {
        self.w2g2.is_empty()
    }
}

/// Accounting of one [`ActiveSetIndex::patch`]: how each segment was
/// produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatchStats {
    /// Segments re-sorted because their rows were dirty.
    pub rebuilt: usize,
    /// Clean segments re-sorted because the scale drift reordered their
    /// thresholds (the order-validation scan failed).
    pub repaired: usize,
    /// Clean segments reused verbatim (validation passed — zero sort
    /// work).
    pub reused: usize,
}

/// One sorted view of a segment: the stable argsort permutation of an
/// on-the-fly-evaluated threshold key, with exclusive prefix sums of the
/// spend constants and interior moments gathered in that order.
#[derive(Debug, Clone, PartialEq)]
struct SortedView {
    /// Sorted slot → row index within the segment (insertion order).
    perm: Vec<u32>,
    /// Prefix sums of the σ-free spend constant (`F0` / `S0`).
    c0_prefix: Vec<f64>,
    /// Prefix sums of the `/σ` spend constant (`F1` / `S1`).
    c1_prefix: Vec<f64>,
    /// Prefix sums of the unit interior moments.
    moment_prefix: [Vec<f64>; MOMENTS],
}

impl SortedView {
    fn build(keys: &[f64], c0: &[f64], c1: &[f64], moments: &[Vec<f64>; MOMENTS]) -> Self {
        let perm = sort_permutation(keys);
        SortedView {
            c0_prefix: exclusive_prefix_sums(&gather(c0, &perm)),
            c1_prefix: exclusive_prefix_sums(&gather(c1, &perm)),
            moment_prefix: std::array::from_fn(|k| {
                exclusive_prefix_sums(&gather(&moments[k], &perm))
            }),
            perm,
        }
    }

    /// Whether `perm` is still *the* stable argsort of the evaluated key
    /// (non-decreasing under `total_cmp`, ties in ascending row order,
    /// every key finite). Passing proves a cold rebuild at the current
    /// scale would reproduce this view bit for bit.
    fn is_stable_sorted(&self, eval: impl Fn(usize) -> f64) -> bool {
        let mut prev: Option<(f64, u32)> = None;
        for &row in &self.perm {
            let key = eval(row as usize);
            if !key.is_finite() {
                return false;
            }
            if let Some((prev_key, prev_row)) = prev {
                match prev_key.total_cmp(&key) {
                    Ordering::Less => {}
                    Ordering::Equal if prev_row < row => {}
                    _ => return false,
                }
            }
            prev = Some((key, row));
        }
        true
    }
}

/// Scale-free per-row unit values of one segment, in segment insertion
/// order (a stable subsequence of the global client order).
#[derive(Debug, Clone, PartialEq, Default)]
struct UnitColumns {
    v: Vec<f64>,
    e: Vec<f64>,
    f: Vec<f64>,
    f0: Vec<f64>,
    f1: Vec<f64>,
    s0: Vec<f64>,
    s1: Vec<f64>,
    moments: [Vec<f64>; MOMENTS],
    finite: bool,
}

impl UnitColumns {
    fn with_capacity(n: usize) -> Self {
        UnitColumns {
            v: Vec::with_capacity(n),
            e: Vec::with_capacity(n),
            f: Vec::with_capacity(n),
            f0: Vec::with_capacity(n),
            f1: Vec::with_capacity(n),
            s0: Vec::with_capacity(n),
            s1: Vec::with_capacity(n),
            moments: std::array::from_fn(|_| Vec::with_capacity(n)),
            finite: true,
        }
    }

    /// Derive one row's unit values. Columns are assumed already
    /// validated by the solver entry points (positive `w²G²`/`cost`,
    /// `q_max > q_min`); degenerate floating values don't panic — they
    /// mark the segment non-finite, which makes the fast solver fall
    /// back to the exact path.
    fn push_row(&mut self, cols: &IndexColumns<'_>, i: usize, aor: f64, q_min: f64) {
        let w2g2 = cols.w2g2[i];
        let cost = cols.cost[i];
        let value = cols.value[i];
        let q_max = cols.q_max[i];
        let ka = (aor / 4.0) * w2g2;
        let e = cost * q_min.powi(3) / ka;
        let f = cost * q_max.powi(3) / ka;
        let f0 = 2.0 * cost * q_min * q_min;
        let f1 = value * aor * w2g2 / q_min;
        let s0 = 2.0 * cost * q_max * q_max;
        let s1 = value * aor * w2g2 / q_max;
        let a0 = 2.0 * cost.cbrt() * (ka * ka).cbrt();
        let d0 = value * aor * w2g2 * (cost / ka).cbrt();
        let moments = [
            a0,
            a0 * value,
            a0 * value * value,
            a0 * value * value * value,
            d0,
            d0 * value,
            d0 * value * value,
            d0 * value * value * value,
        ];
        self.finite = self.finite
            && e.is_finite()
            && f.is_finite()
            && f0.is_finite()
            && f1.is_finite()
            && s0.is_finite()
            && s1.is_finite()
            && moments.iter().all(|m| m.is_finite());
        self.v.push(value);
        self.e.push(e);
        self.f.push(f);
        self.f0.push(f0);
        self.f1.push(f1);
        self.s0.push(s0);
        self.s1.push(s1);
        for (k, m) in moments.into_iter().enumerate() {
            self.moments[k].push(m);
        }
    }
}

/// The entry threshold `v + σ·e`, evaluated on the fly so stored segment
/// data stays σ-free. `σ = 1` makes the multiply bit-neutral.
#[inline]
fn entry_key(v: f64, e: f64, scale: f64) -> f64 {
    v + scale * e
}

/// The saturation threshold `max(v + σ·f, t_entry)`. `q_max > q_min`
/// makes it exceed the entry threshold analytically, but a
/// value-dominated sum can round them equal; the max keeps the invariant
/// `t_entry <= t_sat` the lookup relies on.
#[inline]
fn sat_key(v: f64, e: f64, f: f64, scale: f64) -> f64 {
    (v + scale * f).max(entry_key(v, e, scale))
}

/// One segment of the two-level index: scale-free unit rows plus both
/// threshold-sorted prefix views. Shared by `Arc` so a patch reuses
/// clean segments without copying.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexSegment {
    len: usize,
    unit: UnitColumns,
    entry: SortedView,
    sat: SortedView,
    /// Unit values *and* the evaluated keys at the build scale are
    /// finite. Clean-segment reuse re-proves key finiteness at the new
    /// scale through the validation scan.
    finite: bool,
}

impl IndexSegment {
    fn from_unit(unit: UnitColumns, scale: f64) -> Self {
        let n = unit.v.len();
        let mut entry_keys = Vec::with_capacity(n);
        let mut sat_keys = Vec::with_capacity(n);
        let mut finite = unit.finite;
        for i in 0..n {
            let ek = entry_key(unit.v[i], unit.e[i], scale);
            let sk = sat_key(unit.v[i], unit.e[i], unit.f[i], scale);
            finite = finite && ek.is_finite() && sk.is_finite();
            entry_keys.push(ek);
            sat_keys.push(sk);
        }
        let entry = SortedView::build(&entry_keys, &unit.f0, &unit.f1, &unit.moments);
        let sat = SortedView::build(&sat_keys, &unit.s0, &unit.s1, &unit.moments);
        IndexSegment {
            len: n,
            unit,
            entry,
            sat,
            finite,
        }
    }

    /// Build from a contiguous row range (grid mode).
    fn build_range(cols: &IndexColumns<'_>, range: Range<usize>, aor: f64, q_min: f64) -> Self {
        let mut unit = UnitColumns::with_capacity(range.len());
        for i in range {
            unit.push_row(cols, i, aor, q_min);
        }
        Self::from_unit(unit, 1.0)
    }

    /// Build from an explicit member list in ascending row order (keyed
    /// mode).
    fn build_members(
        cols: &IndexColumns<'_>,
        members: &[u32],
        aor: f64,
        q_min: f64,
        scale: f64,
    ) -> Self {
        let mut unit = UnitColumns::with_capacity(members.len());
        for &i in members {
            unit.push_row(cols, i as usize, aor, q_min);
        }
        Self::from_unit(unit, scale)
    }

    /// Re-sort the stored unit rows at a new scale (the "repair" path —
    /// same rows, drifted threshold order).
    fn resorted(&self, scale: f64) -> Self {
        Self::from_unit(self.unit.clone(), scale)
    }

    /// Whether both stored sort orders are still the stable argsorts of
    /// the on-the-fly keys at `scale` — the clean-segment reuse proof.
    fn is_sorted_at(&self, scale: f64) -> bool {
        let unit = &self.unit;
        self.entry
            .is_stable_sorted(|i| entry_key(unit.v[i], unit.e[i], scale))
            && self
                .sat
                .is_stable_sorted(|i| sat_key(unit.v[i], unit.e[i], unit.f[i], scale))
    }

    /// Number of clients in the segment.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the segment holds no clients.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Count of rows with entry threshold strictly below `t` at `scale`
    /// (`total_cmp` semantics, matching `fedfl_num::prefix::count_below`).
    /// First/last boundary checks short-circuit all-floored and
    /// all-past-entry segments — the directory half of a probe.
    fn count_entry_below(&self, t: f64, scale: f64) -> usize {
        let unit = &self.unit;
        self.count_below(&self.entry, t, |i| entry_key(unit.v[i], unit.e[i], scale))
    }

    /// Count of rows with saturation threshold strictly below `t`.
    fn count_sat_below(&self, t: f64, scale: f64) -> usize {
        let unit = &self.unit;
        self.count_below(&self.sat, t, |i| {
            sat_key(unit.v[i], unit.e[i], unit.f[i], scale)
        })
    }

    fn count_below(&self, view: &SortedView, t: f64, eval: impl Fn(usize) -> f64) -> usize {
        let below = |slot: usize| eval(view.perm[slot] as usize).total_cmp(&t) == Ordering::Less;
        if self.len == 0 || !below(0) {
            return 0;
        }
        if below(self.len - 1) {
            return self.len;
        }
        view.perm
            .partition_point(|&row| eval(row as usize).total_cmp(&t) == Ordering::Less)
    }

    /// Largest evaluated saturation threshold (`None` when empty).
    fn top_sat_key(&self, scale: f64) -> Option<f64> {
        let slot = self.len.checked_sub(1)?;
        let i = self.sat.perm[slot] as usize;
        Some(sat_key(
            self.unit.v[i],
            self.unit.e[i],
            self.unit.f[i],
            scale,
        ))
    }
}

/// The segmented, prefix-summed threshold index over a whole population
/// — the structure every fast λ-probe walks.
#[derive(Debug, Clone, PartialEq)]
pub struct ActiveSetIndex {
    len: usize,
    aor: f64,
    q_min: f64,
    /// The scale σ thresholds are evaluated at (`W²` in the service,
    /// `1` standalone).
    scale: f64,
    inv_scale: f64,
    inv_scale23: f64,
    /// `Some(segment_count)` for keyed indexes (the patchable kind),
    /// `None` for positional-grid indexes.
    keyed: Option<usize>,
    segments: Vec<Arc<IndexSegment>>,
    finite: bool,
}

impl ActiveSetIndex {
    fn assemble(
        segments: Vec<Arc<IndexSegment>>,
        aor: f64,
        q_min: f64,
        scale: f64,
        keyed: Option<usize>,
    ) -> Self {
        let len = segments.iter().map(|s| s.len).sum();
        let scale_ok = scale.is_finite() && scale > 0.0;
        let finite = scale_ok && segments.iter().all(|s| s.finite);
        let cbrt = scale.cbrt();
        ActiveSetIndex {
            len,
            aor,
            q_min,
            scale,
            inv_scale: 1.0 / scale,
            inv_scale23: 1.0 / (cbrt * cbrt),
            keyed,
            segments,
            finite,
        }
    }

    /// Build a flat grid index over one column set (`scale = 1`).
    pub fn from_columns(cols: &PopulationColumns, aor: f64, q_min: f64) -> Self {
        Self::build_sharded_threaded(std::slice::from_ref(cols), aor, q_min, 1)
    }

    /// Build a grid index from shard column-sets.
    ///
    /// Shards must be chunk-aligned contiguous partitions of the global
    /// column order (as `ShardedPopulation` produces); every shard then
    /// splits on the same global [`GRID_SEGMENT`] grid, so the result is
    /// **bit-identical** to [`Self::from_columns`] over the concatenated
    /// columns for any shard count.
    pub fn build_sharded(shards: &[PopulationColumns], aor: f64, q_min: f64) -> Self {
        Self::build_sharded_threaded(shards, aor, q_min, 0)
    }

    /// [`Self::build_sharded`] with an explicit thread knob (`0` = one
    /// worker per core). Segment builds parallelise; the segment order
    /// is fixed, so the result is thread-count independent.
    pub fn build_sharded_threaded(
        shards: &[PopulationColumns],
        aor: f64,
        q_min: f64,
        n_threads: usize,
    ) -> Self {
        let mut tasks: Vec<(usize, Range<usize>)> = Vec::new();
        for (s, cols) in shards.iter().enumerate() {
            let mut start = 0;
            while start < cols.len() {
                let end = (start + GRID_SEGMENT).min(cols.len());
                tasks.push((s, start..end));
                start = end;
            }
        }
        let segments = run_tasks(tasks.len(), n_threads, |i| {
            let (s, range) = &tasks[i];
            Arc::new(IndexSegment::build_range(
                &IndexColumns::from_population(&shards[*s]),
                range.clone(),
                aor,
                q_min,
            ))
        });
        Self::assemble(segments, aor, q_min, 1.0, None)
    }

    /// Build a keyed index: row `i` lands in segment
    /// `seg_keys[i] % segment_count`, keeping ascending row order within
    /// each segment. The partition depends only on the keys — never on
    /// how the caller shards or threads — and [`Self::patch`] can later
    /// rebuild any key subset incrementally.
    ///
    /// `scale` is the σ thresholds are evaluated at (pass the squared
    /// raw-weight total with a raw `w²G²` column, or `1.0` with
    /// normalised columns).
    ///
    /// # Panics
    ///
    /// Panics if `seg_keys.len()` differs from the column length or
    /// `segment_count` is zero.
    pub fn build_keyed(
        cols: &IndexColumns<'_>,
        seg_keys: &[u32],
        segment_count: usize,
        aor: f64,
        q_min: f64,
        scale: f64,
        n_threads: usize,
    ) -> Self {
        assert_eq!(seg_keys.len(), cols.len(), "one segment key per row");
        assert!(segment_count > 0, "segment_count must be positive");
        let members = bucket_members(seg_keys, segment_count);
        let segments = run_tasks(segment_count, n_threads, |k| {
            Arc::new(IndexSegment::build_members(
                cols,
                &members[k],
                aor,
                q_min,
                scale,
            ))
        });
        Self::assemble(segments, aor, q_min, scale, Some(segment_count))
    }

    /// Incrementally rebuild a keyed index after churn: segments flagged
    /// in `dirty` are re-sorted from the current rows; clean segments
    /// are revalidated at the new `scale` and reused (or re-sorted when
    /// scale drift reordered their thresholds). The result is
    /// **bit-identical** to [`Self::build_keyed`] over the same inputs.
    ///
    /// Contract (the caller's dirty tracking must guarantee it): a clean
    /// segment's member rows — values, order, and membership — are
    /// unchanged since this index was built. The service derives this
    /// from its per-shard store version counters; flagging a segment
    /// dirty is always safe, missing one is not.
    ///
    /// Sort work is O(Σ_dirty len·log len) instead of the cold build's
    /// O(N log N); clean segments cost one O(len) validation scan. Falls
    /// back to a cold keyed build (all segments "rebuilt") if this index
    /// is not keyed or `dirty.len()` disagrees with its segment count.
    ///
    /// # Panics
    ///
    /// Panics if `seg_keys.len()` differs from the column length.
    pub fn patch(
        &self,
        cols: &IndexColumns<'_>,
        seg_keys: &[u32],
        dirty: &[bool],
        scale: f64,
        n_threads: usize,
    ) -> (Self, PatchStats) {
        assert_eq!(seg_keys.len(), cols.len(), "one segment key per row");
        let compatible = self.keyed == Some(dirty.len()) && !dirty.is_empty();
        if !compatible {
            let segment_count = dirty.len().max(1);
            let rebuilt = Self::build_keyed(
                cols,
                seg_keys,
                segment_count,
                self.aor,
                self.q_min,
                scale,
                n_threads,
            );
            let stats = PatchStats {
                rebuilt: segment_count,
                ..PatchStats::default()
            };
            return (rebuilt, stats);
        }
        let segment_count = dirty.len();
        let members = bucket_members(seg_keys, segment_count);
        // 0 = reused, 1 = repaired, 2 = rebuilt — per-segment outcome.
        let outcomes: Vec<(Arc<IndexSegment>, u8)> = run_tasks(segment_count, n_threads, |k| {
            if dirty[k] {
                let segment =
                    IndexSegment::build_members(cols, &members[k], self.aor, self.q_min, scale);
                (Arc::new(segment), 2)
            } else if self.segments[k].is_sorted_at(scale) {
                (Arc::clone(&self.segments[k]), 0)
            } else {
                (Arc::new(self.segments[k].resorted(scale)), 1)
            }
        });
        let mut stats = PatchStats::default();
        let mut segments = Vec::with_capacity(segment_count);
        for (segment, outcome) in outcomes {
            match outcome {
                0 => stats.reused += 1,
                1 => stats.repaired += 1,
                _ => stats.rebuilt += 1,
            }
            segments.push(segment);
        }
        (
            Self::assemble(segments, self.aor, self.q_min, scale, Some(segment_count)),
            stats,
        )
    }

    /// Number of indexed clients.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the index covers no clients.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of segments (empty ones included).
    pub fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// The `α/R` the index was built at (fast solves must match it).
    pub fn aor(&self) -> f64 {
        self.aor
    }

    /// The participation floor the index was built at.
    pub fn q_min(&self) -> f64 {
        self.q_min
    }

    /// The scale σ probes currently evaluate thresholds at.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Whether some unit value or evaluated threshold overflowed f64. A
    /// degenerate index cannot model spends; the fast solver falls back
    /// to the exact path immediately.
    pub fn is_degenerate(&self) -> bool {
        !self.finite
    }

    /// A path parameter strictly above every saturation threshold — the
    /// upper bisection bracket, mirroring the exact solver's
    /// `saturation_t` epsilon inflation.
    pub fn bracket_hi(&self) -> f64 {
        let top = self
            .segments
            .iter()
            .filter_map(|s| s.top_sat_key(self.scale))
            .fold(f64::NEG_INFINITY, f64::max);
        let top = if top.is_finite() { top } else { 0.0 };
        top.max(0.0) * (1.0 + 1e-12) + 1e-12
    }

    /// Total spend with every client at its cap — exact up to the split
    /// `S0 − S1/σ` summation (one prefix-sum read per segment), used for
    /// the O(1) saturation check.
    pub fn saturated_spend(&self) -> f64 {
        let mut s0 = 0.0f64;
        let mut s1 = 0.0f64;
        for seg in &self.segments {
            s0 += seg.sat.c0_prefix[seg.len];
            s1 += seg.sat.c1_prefix[seg.len];
        }
        s0 - s1 * self.inv_scale
    }

    /// Total spend with every client at the floor (the `t <= 0` limit).
    pub fn floor_spend(&self) -> f64 {
        let mut f0 = 0.0f64;
        let mut f1 = 0.0f64;
        for seg in &self.segments {
            f0 += seg.entry.c0_prefix[seg.len];
            f1 += seg.entry.c1_prefix[seg.len];
        }
        f0 - f1 * self.inv_scale
    }

    /// The modelled path spend at `t` — the sub-linear λ-probe.
    ///
    /// Walks the segment directory in fixed order; per segment the
    /// boundary checks classify all-floored/all-saturated segments with
    /// two key evaluations, otherwise binary searches split the segment
    /// into floored / interior / saturated ranges. Spend constants and
    /// interior moments accumulate across segments in directory order
    /// (deterministic — the segment partition never depends on shard or
    /// thread counts), and the closed-form interior series plus the σ
    /// corrections apply once at the end.
    pub fn spend(&self, t: f64) -> f64 {
        let scale = self.scale;
        let mut floored0 = 0.0f64;
        let mut floored1 = 0.0f64;
        let mut sat0 = 0.0f64;
        let mut sat1 = 0.0f64;
        let mut m = [0.0f64; MOMENTS];
        let mut any_interior = false;
        for seg in &self.segments {
            if seg.len == 0 {
                continue;
            }
            let past_entry = seg.count_entry_below(t, scale);
            let saturated = seg.count_sat_below(t, scale);
            floored0 += seg.entry.c0_prefix[seg.len] - seg.entry.c0_prefix[past_entry];
            floored1 += seg.entry.c1_prefix[seg.len] - seg.entry.c1_prefix[past_entry];
            sat0 += seg.sat.c0_prefix[saturated];
            sat1 += seg.sat.c1_prefix[saturated];
            if past_entry > saturated {
                any_interior = true;
                for (k, slot) in m.iter_mut().enumerate() {
                    *slot += seg.entry.moment_prefix[k][past_entry]
                        - seg.sat.moment_prefix[k][saturated];
                }
            }
        }
        let floored = floored0 - floored1 * self.inv_scale;
        let saturated_spend = sat0 - sat1 * self.inv_scale;
        let interior = if any_interior {
            // Interior clients exist only for t above some positive
            // entry threshold, so t > 0 and the series in v/t is sound.
            let u = t.cbrt();
            let inv = 1.0 / t;
            // (1 − v/t)^{2/3}  ≈ 1 − (2/3)x − (1/9)x² − (4/81)x³
            // (1 − v/t)^{−1/3} ≈ 1 + (1/3)x + (2/9)x² + (14/81)x³
            let a_series = m[0]
                - inv
                    * (m[1] * (2.0 / 3.0) + inv * (m[2] * (1.0 / 9.0) + inv * m[3] * (4.0 / 81.0)));
            let d_series = m[4]
                + inv
                    * (m[5] * (1.0 / 3.0)
                        + inv * (m[6] * (2.0 / 9.0) + inv * m[7] * (14.0 / 81.0)));
            ((u * u) * a_series - d_series / u) * self.inv_scale23
        } else {
            0.0
        };
        floored + saturated_spend + interior
    }

    /// Modelled [`crate::server::path_budget`]: the spend at
    /// `frac · bracket_hi()`. Same certification caveat as
    /// [`Self::spend`].
    pub fn path_budget(&self, frac: f64) -> f64 {
        self.spend(frac.clamp(0.0, 1.0) * self.bracket_hi())
    }

    /// Cost of one modelled probe in per-client spend-evaluation units:
    /// two binary searches per non-empty segment
    /// (`2·⌈log₂(len+1)⌉` each) plus the O(1) closed form. The
    /// `probe_evaluations` diagnostics count fast probes at this cost,
    /// making them directly comparable with the exact solver's
    /// N-per-probe sweeps.
    pub fn probe_cost(&self) -> u64 {
        self.segments
            .iter()
            .filter(|s| s.len > 0)
            .map(|s| 2 * u64::from(u64::BITS - (s.len as u64).leading_zeros()))
            .sum::<u64>()
            + 1
    }
}

/// Bucket rows by `key % segment_count`, preserving ascending row order
/// within each bucket (the stable-subsequence contract segments rely
/// on).
fn bucket_members(seg_keys: &[u32], segment_count: usize) -> Vec<Vec<u32>> {
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); segment_count];
    for (i, &key) in seg_keys.iter().enumerate() {
        members[key as usize % segment_count].push(i as u32);
    }
    members
}

/// Deterministic parallel task fill: `build(i)` for `i in 0..count`,
/// results in task order, workers pulling from an atomic counter (the
/// same crew pattern as the sharded solvers — output is independent of
/// the worker count).
fn run_tasks<T: Send>(count: usize, n_threads: usize, build: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let workers = resolve_threads(n_threads).min(count).max(1);
    if workers <= 1 {
        return (0..count).map(build).collect();
    }
    let next = AtomicUsize::new(0);
    let built: Vec<Vec<(usize, T)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let build = &build;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, AtomicOrdering::Relaxed);
                        if i >= count {
                            break;
                        }
                        local.push((i, build(i)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("index task panicked"))
            .collect()
    });
    let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
    for (i, value) in built.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every task filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bound::BoundParams;
    use crate::population::{ParamDist, Population, PopulationSpec, Q_MIN};
    use crate::shard::ShardedPopulation;

    fn aor() -> f64 {
        BoundParams::new(4_000.0, 100.0, 1_000)
            .unwrap()
            .alpha_over_r()
    }

    /// The exact per-client path spend the index models.
    fn naive_spend(cols: &PopulationColumns, aor: f64, q_min: f64, t: f64) -> f64 {
        let coef = aor / 4.0;
        (0..cols.len())
            .map(|i| {
                let slack = (t - cols.value[i]).max(0.0);
                let q = (coef * cols.a2g2[i] * slack / cols.cost[i])
                    .cbrt()
                    .clamp(q_min, cols.q_max[i]);
                2.0 * cols.cost[i] * q * q - cols.value[i] * aor * cols.a2g2[i] / q
            })
            .sum()
    }

    #[test]
    fn model_is_near_exact_for_zero_value_populations() {
        // With v = 0 the interior series truncates nothing: the model
        // differs from the exact sweep only by summation order.
        let spec = PopulationSpec {
            value: ParamDist::Constant(0.0),
            ..PopulationSpec::table1_like()
        };
        let p = Population::synthesize(700, &spec, 3).unwrap();
        let cols = p.columns();
        let index = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        assert!(!index.is_degenerate());
        let hi = index.bracket_hi();
        for frac in [0.0, 1e-6, 0.01, 0.3, 0.7, 0.999, 1.0, 1.5] {
            let t = frac * hi;
            let exact = naive_spend(&cols, aor(), Q_MIN, t);
            let model = index.spend(t);
            let scale = exact.abs().max(1.0);
            assert!(
                (model - exact).abs() <= 1e-9 * scale,
                "frac {frac}: model {model} vs exact {exact}"
            );
        }
        assert!(
            (index.floor_spend() - naive_spend(&cols, aor(), Q_MIN, 0.0)).abs()
                <= 1e-9 * index.floor_spend().abs().max(1.0)
        );
        assert!(
            (index.saturated_spend() - naive_spend(&cols, aor(), Q_MIN, hi)).abs()
                <= 1e-9 * index.saturated_spend().abs().max(1.0)
        );
    }

    #[test]
    fn model_tracks_exact_spend_for_valued_populations() {
        // Heterogeneous values exercise the truncated series; at the
        // equilibrium scales of table1-like populations (t far above v)
        // the relative error is far below the certification band.
        let p = Population::synthesize(500, &PopulationSpec::table1_like(), 11).unwrap();
        let cols = p.columns();
        let index = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        let hi = index.bracket_hi();
        for frac in [0.05, 0.2, 0.5, 0.9] {
            let t = frac * hi;
            let exact = naive_spend(&cols, aor(), Q_MIN, t);
            let model = index.spend(t);
            assert!(
                (model - exact).abs() <= 1e-6 * exact.abs().max(1.0),
                "frac {frac}: model {model} vs exact {exact}"
            );
        }
    }

    #[test]
    fn sharded_build_is_bit_identical_to_flat() {
        let n = fedfl_num::parallel::DEFAULT_CHUNK + 997;
        let p = Population::synthesize(n, &PopulationSpec::table1_like(), 7).unwrap();
        let cols = p.columns();
        let flat = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        assert_eq!(flat.segment_count(), 2, "grid splits at GRID_SEGMENT");
        for shard_count in [1usize, 2, 7, 32] {
            let sharded = ShardedPopulation::from_columns(&cols, shard_count).unwrap();
            for threads in [1usize, 3] {
                let index =
                    ActiveSetIndex::build_sharded_threaded(sharded.shards(), aor(), Q_MIN, threads);
                assert_eq!(
                    index, flat,
                    "index diverged at shard_count {shard_count} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn spend_is_monotone_on_a_probe_grid() {
        let p = Population::synthesize(300, &PopulationSpec::table1_like(), 5).unwrap();
        let index = ActiveSetIndex::from_columns(&p.columns(), aor(), Q_MIN);
        let hi = index.bracket_hi();
        let mut last = f64::NEG_INFINITY;
        for k in 0..=200 {
            let s = index.spend(hi * k as f64 / 200.0);
            assert!(
                s >= last - 1e-9 * s.abs().max(1.0),
                "model spend decreased at grid point {k}"
            );
            last = s;
        }
    }

    #[test]
    fn degenerate_columns_are_flagged_not_modelled() {
        // A denormal a2g2 against a huge cost overflows the threshold.
        let cols = PopulationColumns {
            a2g2: vec![1e-300, 1.0],
            cost: vec![1e300, 30.0],
            value: vec![0.0, 2.0],
            q_max: vec![1.0, 1.0],
        };
        let index = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        assert!(index.is_degenerate());
    }

    #[test]
    fn probe_cost_is_logarithmic() {
        let cols = PopulationColumns {
            a2g2: vec![1.0; 1024],
            cost: vec![30.0; 1024],
            value: vec![0.0; 1024],
            q_max: vec![1.0; 1024],
        };
        let index = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        assert_eq!(index.len(), 1024);
        assert!(index.probe_cost() <= 2 * 11 + 1);
        assert!(index.probe_cost() >= 2 * 10);
    }

    #[test]
    fn single_bucket_keyed_index_probes_like_the_flat_grid() {
        // One keyed bucket at scale 1 holds the same rows in the same
        // order as a one-segment grid build, so every probe agrees
        // bit for bit.
        let p = Population::synthesize(900, &PopulationSpec::table1_like(), 13).unwrap();
        let cols = p.columns();
        let grid = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        let keys = vec![0u32; cols.len()];
        let keyed = ActiveSetIndex::build_keyed(
            &IndexColumns::from_population(&cols),
            &keys,
            1,
            aor(),
            Q_MIN,
            1.0,
            1,
        );
        assert_eq!(keyed.segment_count(), 1);
        assert_eq!(keyed.len(), grid.len());
        assert_eq!(
            keyed.bracket_hi().to_bits(),
            grid.bracket_hi().to_bits(),
            "bracket"
        );
        let hi = grid.bracket_hi();
        for k in 0..=50 {
            let t = hi * k as f64 / 50.0;
            assert_eq!(keyed.spend(t).to_bits(), grid.spend(t).to_bits(), "t {t}");
        }
    }

    #[test]
    fn scaled_keyed_index_models_the_normalised_population() {
        // Raw w²G² columns probed at σ = W² track the exact spend of
        // the W-normalised population — the factorisation the service's
        // incremental patching rests on.
        let p = Population::synthesize(400, &PopulationSpec::table1_like(), 17).unwrap();
        let cols = p.columns();
        // Fabricate raw weights: w_raw = a·W for an arbitrary W.
        let total_w = 137.5f64;
        let scale = total_w * total_w;
        let w2g2: Vec<f64> = cols.a2g2.iter().map(|&a2g2| a2g2 * scale).collect();
        let keys: Vec<u32> = (0..cols.len() as u32).map(|i| (i / 32) % 7).collect();
        let index = ActiveSetIndex::build_keyed(
            &IndexColumns {
                w2g2: &w2g2,
                cost: &cols.cost,
                value: &cols.value,
                q_max: &cols.q_max,
            },
            &keys,
            7,
            aor(),
            Q_MIN,
            scale,
            1,
        );
        assert!(!index.is_degenerate());
        let hi = index.bracket_hi();
        for frac in [0.05, 0.3, 0.7, 0.95] {
            let t = frac * hi;
            let exact = naive_spend(&cols, aor(), Q_MIN, t);
            let model = index.spend(t);
            assert!(
                (model - exact).abs() <= 1e-6 * exact.abs().max(1.0),
                "frac {frac}: model {model} vs exact {exact}"
            );
        }
    }

    #[test]
    fn patch_rebuilds_dirty_segments_and_reuses_clean_ones() {
        let p = Population::synthesize(600, &PopulationSpec::table1_like(), 23).unwrap();
        let cols = p.columns();
        let keys: Vec<u32> = (0..cols.len() as u32).map(|i| i % 8).collect();
        let unit = IndexColumns::from_population(&cols);
        let index = ActiveSetIndex::build_keyed(&unit, &keys, 8, aor(), Q_MIN, 1.0, 1);

        // Same rows, same scale, two dirty segments: those rebuild, the
        // other six reuse, and the result matches a cold build exactly.
        let mut dirty = vec![false; 8];
        dirty[1] = true;
        dirty[5] = true;
        let (patched, stats) = index.patch(&unit, &keys, &dirty, 1.0, 1);
        assert_eq!(
            stats,
            PatchStats {
                rebuilt: 2,
                repaired: 0,
                reused: 6
            }
        );
        let cold = ActiveSetIndex::build_keyed(&unit, &keys, 8, aor(), Q_MIN, 1.0, 1);
        assert_eq!(patched, cold, "patched index diverged from cold build");

        // A scale change alone (no dirty rows) revalidates every
        // segment; the patched index must equal a cold build at the new
        // scale whether segments were reused or repaired.
        let (rescaled, restats) = index.patch(&unit, &keys, &[false; 8], 4.0, 1);
        assert_eq!(restats.rebuilt, 0);
        assert_eq!(restats.reused + restats.repaired, 8);
        let cold_rescaled = ActiveSetIndex::build_keyed(&unit, &keys, 8, aor(), Q_MIN, 4.0, 1);
        assert_eq!(rescaled, cold_rescaled);
    }

    #[test]
    fn patch_on_a_grid_index_falls_back_to_a_cold_keyed_build() {
        let p = Population::synthesize(100, &PopulationSpec::table1_like(), 29).unwrap();
        let cols = p.columns();
        let grid = ActiveSetIndex::from_columns(&cols, aor(), Q_MIN);
        let keys = vec![0u32; cols.len()];
        let (patched, stats) = grid.patch(
            &IndexColumns::from_population(&cols),
            &keys,
            &[false, false],
            1.0,
            1,
        );
        assert_eq!(stats.rebuilt, 2, "incompatible patch rebuilds everything");
        assert_eq!(patched.segment_count(), 2);
        assert_eq!(patched.len(), cols.len());
    }
}
